// tsfm_loadgen — load generator for `tsfm serve`.
//
//   tsfm_loadgen --port P [--host 127.0.0.1] --input data.csv
//       [--connections 4] [--requests 200] [--mode closed|open]
//       [--rate 200]                  # open loop: target requests/sec total
//       [--expected labels.txt]       # per-line labels from `tsfm predict`;
//                                     # request r must match line (r % N)
//       [--out bench_results/BENCH_serve.json]
//       [--bench-prefix ObsOn]        # rename BM_ServeP99 -> BM_ServeObsOnP99
//                                     # etc. so paired obs-on/off waves can
//                                     # coexist in one merged JSON
//       [--trace out.json]            # record client-side trace spans (each
//                                     # request carries its trace id over the
//                                     # wire) and dump chrome://tracing JSON
//
// Each connection is a blocking serve::Client. In closed-loop mode every
// connection issues its next request as soon as the previous response
// arrives; in open-loop mode requests are dispatched on a fixed schedule so
// queueing delay shows up in the latencies instead of throttling the
// offered load. BUSY responses are retried with backoff and counted.
//
// The JSON output is Google-Benchmark-shaped so tools/bench_compare.py can
// gate on it directly:
//   BM_ServeP99        real_time = p99 latency (ns)
//   BM_ServeThroughput real_time = mean ns per request (1/throughput)
// Exit status: 0 = all requests answered (and matched --expected when
// given), 1 = mismatch or error, 2 = bad usage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/csv.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "tensor/tensor.h"

namespace tsfm {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string input;
  std::string expected;
  std::string out;
  std::string bench_prefix;  // inserted after "BM_Serve" in benchmark names
  std::string trace;         // chrome://tracing JSON output path
  int connections = 4;
  int64_t requests = 200;
  bool open_loop = false;
  double rate = 200.0;  // open loop only: offered requests/sec, all conns
};

struct WorkerResult {
  std::vector<int64_t> latencies_ns;
  int64_t mismatches = 0;
  int64_t busy_retries = 0;
  int64_t errors = 0;
};

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--host" && (v = next())) {
      opt->host = v;
    } else if (a == "--port" && (v = next())) {
      opt->port = std::atoi(v);
    } else if (a == "--input" && (v = next())) {
      opt->input = v;
    } else if (a == "--expected" && (v = next())) {
      opt->expected = v;
    } else if (a == "--out" && (v = next())) {
      opt->out = v;
    } else if (a == "--bench-prefix" && (v = next())) {
      opt->bench_prefix = v;
    } else if (a == "--trace" && (v = next())) {
      opt->trace = v;
    } else if (a == "--connections" && (v = next())) {
      opt->connections = std::atoi(v);
    } else if (a == "--requests" && (v = next())) {
      opt->requests = std::atoll(v);
    } else if (a == "--mode" && (v = next())) {
      opt->open_loop = std::strcmp(v, "open") == 0;
    } else if (a == "--rate" && (v = next())) {
      opt->rate = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown or valueless flag '%s'\n", a.c_str());
      return false;
    }
  }
  if (opt->port <= 0 || opt->input.empty() || opt->connections <= 0 ||
      opt->requests <= 0 || (opt->open_loop && opt->rate <= 0)) {
    std::fprintf(stderr,
                 "usage: tsfm_loadgen --port P --input data.csv "
                 "[--connections N] [--requests R] [--mode closed|open] "
                 "[--rate RPS] [--expected labels.txt] [--out file.json] "
                 "[--bench-prefix Name] [--trace out.json]\n");
    return false;
  }
  return true;
}

// One worker owns one connection and the request ids r with
// r % connections == worker_index, so the sample for request r is always
// x[r % num_samples] regardless of scheduling — that is what lets
// --expected verify byte-identity against the offline `tsfm predict` run.
void Worker(const Options& opt, int index, const Tensor& x,
            const std::vector<int64_t>* expected, Clock::time_point start,
            WorkerResult* out) {
  auto client = serve::Client::Connect(opt.host, opt.port);
  if (!client.ok()) {
    std::fprintf(stderr, "conn %d: %s\n", index,
                 client.status().ToString().c_str());
    out->errors = 1;
    return;
  }
  const int64_t num_samples = x.dim(0);
  const double interval_s =
      opt.open_loop ? static_cast<double>(opt.connections) / opt.rate : 0.0;
  int64_t k = 0;  // how many requests this worker has issued
  for (int64_t r = index; r < opt.requests; r += opt.connections, ++k) {
    if (opt.open_loop) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>((index + 1e-3) / opt.rate +
                                                    k * interval_s));
      std::this_thread::sleep_until(due);  // no-op once we fall behind
    }
    const Tensor sample = x.Narrow(0, r % num_samples, 1);
    const auto t0 = Clock::now();
    auto labels = client->Classify(sample);
    // Shed load comes back as ResourceExhausted; retry with backoff so a
    // burst does not turn into dropped coverage of the request space.
    int backoff_ms = 1;
    while (!labels.ok() &&
           labels.status().code() == StatusCode::kResourceExhausted &&
           backoff_ms <= 64) {
      ++out->busy_retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
      labels = client->Classify(sample);
    }
    const auto t1 = Clock::now();
    if (!labels.ok()) {
      std::fprintf(stderr, "request %lld: %s\n", static_cast<long long>(r),
                   labels.status().ToString().c_str());
      ++out->errors;
      continue;
    }
    out->latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (expected != nullptr &&
        (*labels)[0] != (*expected)[r % expected->size()]) {
      std::fprintf(stderr,
                   "request %lld: label %lld != expected %lld (sample "
                   "%lld)\n",
                   static_cast<long long>(r),
                   static_cast<long long>((*labels)[0]),
                   static_cast<long long>((*expected)[r % expected->size()]),
                   static_cast<long long>(r % num_samples));
      ++out->mismatches;
    }
  }
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int Run(const Options& opt) {
  if (!opt.trace.empty()) obs::EnableTracing();
  auto ds = data::LoadCsv(opt.input, "loadgen");
  if (!ds.ok()) {
    std::fprintf(stderr, "input: %s\n", ds.status().ToString().c_str());
    return 2;
  }

  std::vector<int64_t> expected;
  if (!opt.expected.empty()) {
    std::ifstream is(opt.expected);
    if (!is) {
      std::fprintf(stderr, "cannot read %s\n", opt.expected.c_str());
      return 2;
    }
    int64_t label;
    while (is >> label) expected.push_back(label);
    if (expected.empty() ||
        expected.size() != static_cast<size_t>(ds->x.dim(0))) {
      std::fprintf(stderr, "%s: %zu labels, input has %lld samples\n",
                   opt.expected.c_str(), expected.size(),
                   static_cast<long long>(ds->x.dim(0)));
      return 2;
    }
  }

  std::vector<WorkerResult> results(opt.connections);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int i = 0; i < opt.connections; ++i) {
    threads.emplace_back(Worker, std::cref(opt), i, std::cref(ds->x),
                         expected.empty() ? nullptr : &expected, start,
                         &results[i]);
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<int64_t> latencies;
  int64_t mismatches = 0, busy_retries = 0, errors = 0;
  for (const auto& r : results) {
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
    mismatches += r.mismatches;
    busy_retries += r.busy_retries;
    errors += r.errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const int64_t answered = static_cast<int64_t>(latencies.size());
  const int64_t p50 = Percentile(latencies, 0.50);
  const int64_t p95 = Percentile(latencies, 0.95);
  const int64_t p99 = Percentile(latencies, 0.99);
  const double throughput = answered / std::max(wall_s, 1e-9);
  const double mean_ns_per_req =
      answered > 0 ? wall_s * 1e9 / static_cast<double>(answered) : 0.0;

  std::printf(
      "loadgen: %lld/%lld answered in %.3fs (%.1f req/s), %d conns, "
      "%s loop\n"
      "latency ns: p50 %lld  p95 %lld  p99 %lld  max %lld\n"
      "busy retries %lld, errors %lld, mismatches %lld%s\n",
      static_cast<long long>(answered),
      static_cast<long long>(opt.requests), wall_s, throughput,
      opt.connections, opt.open_loop ? "open" : "closed",
      static_cast<long long>(p50), static_cast<long long>(p95),
      static_cast<long long>(p99),
      static_cast<long long>(latencies.empty() ? 0 : latencies.back()),
      static_cast<long long>(busy_retries), static_cast<long long>(errors),
      static_cast<long long>(mismatches),
      expected.empty() ? "" : " (verified against --expected)");

  if (!opt.out.empty()) {
    std::ofstream os(opt.out, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 2;
    }
    const std::string prefix = "BM_Serve" + opt.bench_prefix;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"context\": {\"executable\": \"tsfm_loadgen\", "
        "\"connections\": %d, \"requests\": %lld, \"mode\": \"%s\"},\n"
        "  \"benchmarks\": [\n"
        "    {\"name\": \"%sP99\", \"run_type\": \"iteration\",\n"
        "     \"iterations\": %lld, \"real_time\": %lld, "
        "\"cpu_time\": %lld, \"time_unit\": \"ns\",\n"
        "     \"p50\": %lld, \"p95\": %lld},\n"
        "    {\"name\": \"%sThroughput\", \"run_type\": "
        "\"iteration\",\n"
        "     \"iterations\": %lld, \"real_time\": %.1f, "
        "\"cpu_time\": %.1f, \"time_unit\": \"ns\",\n"
        "     \"requests_per_second\": %.1f}\n"
        "  ]\n"
        "}\n",
        opt.connections, static_cast<long long>(opt.requests),
        opt.open_loop ? "open" : "closed", prefix.c_str(),
        static_cast<long long>(answered),
        static_cast<long long>(p99), static_cast<long long>(p99),
        static_cast<long long>(p50), static_cast<long long>(p95),
        prefix.c_str(), static_cast<long long>(answered), mean_ns_per_req,
        mean_ns_per_req, throughput);
    os << buf;
    std::printf("wrote %s\n", opt.out.c_str());
  }

  if (!opt.trace.empty()) {
    if (obs::WriteTrace(opt.trace)) {
      std::fprintf(stderr, "trace: wrote %lld spans to %s\n",
                   static_cast<long long>(obs::TraceEventCount()),
                   opt.trace.c_str());
    } else {
      std::fprintf(stderr, "trace: cannot write %s\n", opt.trace.c_str());
    }
  }

  const bool all_answered = answered == opt.requests;
  return (mismatches == 0 && errors == 0 && all_answered) ? 0 : 1;
}

}  // namespace
}  // namespace tsfm

int main(int argc, char** argv) {
  tsfm::Options opt;
  if (!tsfm::ParseArgs(argc, argv, &opt)) return 2;
  return tsfm::Run(opt);
}
