#!/usr/bin/env python3
"""Compare two Google Benchmark JSON files and fail on perf regressions.

Used by the CI `bench-regression` job: the baseline is the committed
`bench_results/BENCH_baseline.json` from the PR's base ref, the candidate is
the JSON the job just produced. Two kinds of gates:

  * real_time on watched benchmarks must not regress more than
    --max-regression (fractional, default 0.15);
  * the pooled-allocator benchmark (BM_FineTuneInnerLoopAlloc/1) must keep
    heap_allocs_per_iter at 0 — the BufferPool's whole point;
  * candidate-internal paired gates: BM_EncoderForwardGraph must run at
    least 10% faster than BM_EncoderForwardEager and not exceed its
    peak_bytes counter. Unlike the baseline-relative gates, a missing pair
    member FAILS — the graph-mode speedup is an acceptance criterion, not
    an optional benchmark. Paired gates only fire when at least one member
    is present in the candidate, so micro-kernel-only runs are unaffected.

Benchmarks present in only one file are reported but never fail the gate, so
adding or renaming a benchmark does not require touching the baseline in the
same PR. Exit status: 0 = OK, 1 = regression, 2 = bad input.

Example:
  python3 tools/bench_compare.py bench_results/BENCH_baseline.json \
      bench_results/BENCH_micro_kernels.json --max-regression 0.15
"""

import argparse
import json
import sys

# Benchmarks whose real_time regressions gate the PR. Prefix match on the
# benchmark name (covers every Arg variant).
WATCHED_PREFIXES = (
    "BM_MatMulSquare/",
    "BM_FineTuneInnerLoopAlloc/",
    "BM_PredictSingle",
    "BM_PredictBatch32",
    "BM_ServeMetricsScrape",
    # Produced by tools/tsfm_loadgen.cc (serve-smoke job), not gbench:
    # p99 latency and mean ns/request of the dynamically-batched server.
    "BM_ServeP99",
    "BM_ServeThroughput",
    # SIMD row kernels and the int8 quantized path (ISSUE 10): the fused
    # softmax/gelu rows, the quantized GEMM, and the encoder-forward pair
    # that carries the quantization speedup gate below.
    "BM_SoftmaxRow/",
    "BM_GeluRow/",
    "BM_QuantMatMul/",
    "BM_EncoderForwardFp32",
    "BM_EncoderForwardInt8",
)

# name -> (counter, max allowed value) hard invariants on the candidate run.
COUNTER_LIMITS = {
    "BM_FineTuneInnerLoopAlloc/1": ("heap_allocs_per_iter", 0.0),
}

# (fast, slow, max_time_ratio, counter, abs_slack_ns): candidate-internal
# invariants. fast.real_time must be <= max_time_ratio * slow.real_time +
# abs_slack_ns, and fast.counter <= slow.counter (counter None = time-only
# gate). Checked whenever either member appears in the candidate run; a
# half-present or half-instrumented pair fails.
# The ViT pair's time ratio is looser: its forward is matmul-dominated, so
# the graph win is smaller and noisier — the gate only insists graph mode is
# never a slowdown there.
# The serve obs pair gates the observability tax: an unsaturated loadgen
# wave against a server with tracing + access log + SLO evaluation on must
# keep p99 within 5% of an identically-shaped plain wave (BM_ServeBaseP99,
# not the saturated BM_ServeP99 wave, whose tail is queueing-dominated).
# The absolute slack (5 ms) absorbs the extreme-order-statistic noise of a
# few-hundred-request p99 on shared runners; a systematic tax (e.g. a
# blocking flush on the response path) still lands far outside it.
# The int8 pair carries the quantization acceptance criterion: the frozen
# encoder forward under --quantize int8 must be at least 1.5x faster than
# the same forward in fp32 (ratio <= 0.67). Both benches run the identical
# MomentSmallConfig forward, so the ratio is shape- and machine-paired.
PAIRED_GATES = (
    ("BM_EncoderForwardGraph", "BM_EncoderForwardEager", 0.90, "peak_bytes",
     0.0),
    ("BM_EncoderForwardInt8", "BM_EncoderForwardFp32", 0.67, None, 0.0),
    ("BM_VitForwardGraph", "BM_VitForwardEager", 1.00, "peak_bytes", 0.0),
    ("BM_ServeObsOnP99", "BM_ServeBaseP99", 1.05, None, 5_000_000.0),
)


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    if not out:
        print(f"bench_compare: no benchmarks in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def is_watched(name):
    return any(name.startswith(p) or name == p.rstrip("/")
               for p in WATCHED_PREFIXES)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="max allowed fractional real_time increase on "
                             "watched benchmarks (default 0.15)")
    parser.add_argument("--all", action="store_true",
                        help="gate every common benchmark, not just the "
                             "watched list")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    failures = []
    rows = []
    for name in sorted(set(base) | set(cand)):
        if name not in cand:
            rows.append((name, "only in baseline", ""))
            continue
        if name not in base:
            rows.append((name, "only in candidate", ""))
            continue
        b, c = base[name], cand[name]
        bt, ct = b.get("real_time"), c.get("real_time")
        if not bt or not ct:
            continue
        ratio = ct / bt
        gated = args.all or is_watched(name)
        verdict = "ok"
        if gated and ratio > 1.0 + args.max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: real_time {bt:.1f} -> {ct:.1f} "
                f"{b.get('time_unit', 'ns')} ({(ratio - 1.0) * 100:+.1f}%, "
                f"limit {args.max_regression * 100:.0f}%)")
        rows.append((name, f"{(ratio - 1.0) * 100:+6.1f}%",
                     verdict if gated else "untracked"))

    for fast, slow, max_ratio, counter, abs_slack in PAIRED_GATES:
        if fast not in cand and slow not in cand:
            continue  # pair not exercised by this run
        if fast not in cand or slow not in cand:
            failures.append(
                f"paired gate {fast} vs {slow}: only "
                f"{'fast' if fast in cand else 'slow'} member present")
            continue
        ft, st = cand[fast].get("real_time"), cand[slow].get("real_time")
        if not ft or not st:
            failures.append(f"paired gate {fast} vs {slow}: missing real_time")
            continue
        ratio = ft / st
        if ft > st * max_ratio + abs_slack:
            failures.append(
                f"{fast}: real_time {ft:.1f} is {ratio:.2f}x of {slow} "
                f"({st:.1f}); required <= {max_ratio:.2f}x"
                + (f" + {abs_slack:g} ns slack" if abs_slack else ""))
        else:
            rows.append((fast, f"{ratio:.2f}x of {slow.split('_')[-1]}", "ok"))
        if counter is None:
            continue  # time-only gate
        fb, sb = cand[fast].get(counter), cand[slow].get(counter)
        if fb is None or sb is None:
            failures.append(
                f"paired gate {fast} vs {slow}: counter {counter} missing")
        elif fb > sb:
            failures.append(
                f"{fast}: {counter} = {fb:g} exceeds {slow}'s {sb:g}")
        else:
            rows.append((fast, f"{counter} {fb:g} <= {sb:g}", "ok"))

    for name, (counter, limit) in COUNTER_LIMITS.items():
        if name not in cand:
            rows.append((name, "missing", "counter not checked"))
            continue
        value = cand[name].get(counter)
        if value is None:
            failures.append(f"{name}: counter {counter} missing")
        elif value > limit:
            failures.append(
                f"{name}: {counter} = {value} (limit {limit:g})")
        else:
            rows.append((name, f"{counter}={value:g}", "ok"))

    width = max(len(r[0]) for r in rows) if rows else 0
    for name, delta, verdict in rows:
        print(f"{name:<{width}}  {delta:>10}  {verdict}")

    if failures:
        print("\nbench_compare: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
