#!/usr/bin/env python3
"""Compare two Google Benchmark JSON files and fail on perf regressions.

Used by the CI `bench-regression` job: the baseline is the committed
`bench_results/BENCH_baseline.json` from the PR's base ref, the candidate is
the JSON the job just produced. Two kinds of gates:

  * real_time on watched benchmarks must not regress more than
    --max-regression (fractional, default 0.15);
  * the pooled-allocator benchmark (BM_FineTuneInnerLoopAlloc/1) must keep
    heap_allocs_per_iter at 0 — the BufferPool's whole point.

Benchmarks present in only one file are reported but never fail the gate, so
adding or renaming a benchmark does not require touching the baseline in the
same PR. Exit status: 0 = OK, 1 = regression, 2 = bad input.

Example:
  python3 tools/bench_compare.py bench_results/BENCH_baseline.json \
      bench_results/BENCH_micro_kernels.json --max-regression 0.15
"""

import argparse
import json
import sys

# Benchmarks whose real_time regressions gate the PR. Prefix match on the
# benchmark name (covers every Arg variant).
WATCHED_PREFIXES = (
    "BM_MatMulSquare/",
    "BM_FineTuneInnerLoopAlloc/",
)

# name -> (counter, max allowed value) hard invariants on the candidate run.
COUNTER_LIMITS = {
    "BM_FineTuneInnerLoopAlloc/1": ("heap_allocs_per_iter", 0.0),
}


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    if not out:
        print(f"bench_compare: no benchmarks in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def is_watched(name):
    return any(name.startswith(p) or name == p.rstrip("/")
               for p in WATCHED_PREFIXES)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="max allowed fractional real_time increase on "
                             "watched benchmarks (default 0.15)")
    parser.add_argument("--all", action="store_true",
                        help="gate every common benchmark, not just the "
                             "watched list")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    failures = []
    rows = []
    for name in sorted(set(base) | set(cand)):
        if name not in cand:
            rows.append((name, "only in baseline", ""))
            continue
        if name not in base:
            rows.append((name, "only in candidate", ""))
            continue
        b, c = base[name], cand[name]
        bt, ct = b.get("real_time"), c.get("real_time")
        if not bt or not ct:
            continue
        ratio = ct / bt
        gated = args.all or is_watched(name)
        verdict = "ok"
        if gated and ratio > 1.0 + args.max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: real_time {bt:.1f} -> {ct:.1f} "
                f"{b.get('time_unit', 'ns')} ({(ratio - 1.0) * 100:+.1f}%, "
                f"limit {args.max_regression * 100:.0f}%)")
        rows.append((name, f"{(ratio - 1.0) * 100:+6.1f}%",
                     verdict if gated else "untracked"))

    for name, (counter, limit) in COUNTER_LIMITS.items():
        if name not in cand:
            rows.append((name, "missing", "counter not checked"))
            continue
        value = cand[name].get(counter)
        if value is None:
            failures.append(f"{name}: counter {counter} missing")
        elif value > limit:
            failures.append(
                f"{name}: {counter} = {value} (limit {limit:g})")
        else:
            rows.append((name, f"{counter}={value:g}", "ok"))

    width = max(len(r[0]) for r in rows) if rows else 0
    for name, delta, verdict in rows:
        print(f"{name:<{width}}  {delta:>10}  {verdict}")

    if failures:
        print("\nbench_compare: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
