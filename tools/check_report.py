#!/usr/bin/env python3
"""Validate run-report manifests written by obs::WriteRunReport.

Used by the CI `bench-regression` job after its `tsfm classify --report`
smoke run, and handy locally after any run with TSFM_RUN_REPORT set. The
report is hand-rendered JSON (schema_version 1, see src/obs/run_report.cc),
so this script is the contract test: every section present, every field of
the right type, and the cross-field invariants that make a report usable
(headroom consistent with the verdict, epoch indices contiguous per phase).

Exit status: 0 = every report valid, 1 = at least one invalid, 2 = bad
input (missing path, unreadable file, not JSON).

Example:
  python3 tools/check_report.py reports/run_report_0.json
  python3 tools/check_report.py reports/          # validate every report in a dir
"""

import argparse
import glob
import json
import os
import sys

NUMBER = (int, float)

RUN_FIELDS = {
    "command": str,
    "model": str,
    "adapter": str,
    "strategy": str,
    "dprime": NUMBER,
}

EPOCH_FIELDS = {
    "epoch": NUMBER,
    "phase": str,
    "loss": NUMBER,
    "accuracy": NUMBER,
    "seconds": NUMBER,
    "pool_live_bytes": NUMBER,
}

STAGE_FIELDS = {
    "stage": str,
    "seconds": NUMBER,
}

STAGE_NAMES = {"normalize", "adapt", "embed", "head"}

MEMORY_FIELDS = {
    "baseline_bytes": NUMBER,
    "peak_bytes": NUMBER,
    "acquires": NUMBER,
    "pool_hits": NUMBER,
    "heap_allocs": NUMBER,
}

EXECUTION_FIELDS = {
    "graph_enabled": bool,
    "embed_mode": str,
    "graph_captures": NUMBER,
    "graph_executions": NUMBER,
    "graph_eager_fallbacks": NUMBER,
    "graph_fused_ops": NUMBER,
    "graph_peak_bytes": NUMBER,
}

EMBED_MODES = {"graph", "eager", "cache", "int8"}

RESULT_FIELDS = {
    "train_accuracy": NUMBER,
    "test_accuracy": NUMBER,
    "final_loss": NUMBER,
    "adapter_fit_seconds": NUMBER,
    "train_seconds": NUMBER,
    "total_seconds": NUMBER,
}

ESTIMATE_FIELDS = {
    "model": str,
    "regime": str,
    "channels": NUMBER,
    "verdict": str,
}

BUDGET_FIELDS = {
    "verdict": str,
    "mem_budget_bytes": NUMBER,
    "time_budget_seconds": NUMBER,
    "mem_used_bytes": NUMBER,
    "time_used_seconds": NUMBER,
    "mem_headroom_pct": NUMBER,
    "time_headroom_pct": NUMBER,
}

BUDGET_VERDICTS = {"fits", "exceeds_memory", "exceeds_time"}
ESTIMATE_VERDICTS = {"OK", "COM", "TO"}


def check_fields(obj, fields, where, errors):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected an object, got {type(obj).__name__}")
        return
    for key, typ in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing key '{key}'")
        elif not isinstance(obj[key], typ):
            errors.append(
                f"{where}.{key}: expected {typ}, got {type(obj[key]).__name__}"
            )


def validate(report, errors):
    if report.get("schema_version") != 1:
        errors.append(
            f"schema_version: expected 1, got {report.get('schema_version')!r}"
        )
    for section in (
        "run",
        "options",
        "epochs",
        "stages",
        "measured_memory",
        "execution",
        "result",
        "budget",
    ):
        if section not in report:
            errors.append(f"missing section '{section}'")
    if "estimate" not in report:
        errors.append("missing section 'estimate' (may be null, not absent)")
    if errors:
        return

    check_fields(report["run"], RUN_FIELDS, "run", errors)
    if not isinstance(report["options"], dict):
        errors.append("options: expected an object")

    epochs = report["epochs"]
    if not isinstance(epochs, list):
        errors.append("epochs: expected a list")
    else:
        last_by_phase = {}
        for i, epoch in enumerate(epochs):
            check_fields(epoch, EPOCH_FIELDS, f"epochs[{i}]", errors)
            if not isinstance(epoch, dict):
                continue
            phase = epoch.get("phase")
            if phase not in ("head", "joint"):
                errors.append(f"epochs[{i}].phase: unknown phase {phase!r}")
            acc = epoch.get("accuracy")
            if isinstance(acc, NUMBER) and not 0.0 <= acc <= 1.0:
                errors.append(f"epochs[{i}].accuracy: {acc} outside [0, 1]")
            # Epoch indices count up contiguously from 0 within each phase.
            expect = last_by_phase.get(phase, -1) + 1
            if isinstance(epoch.get("epoch"), NUMBER):
                if epoch["epoch"] != expect:
                    errors.append(
                        f"epochs[{i}]: phase '{phase}' index {epoch['epoch']}"
                        f", expected {expect}"
                    )
                last_by_phase[phase] = epoch["epoch"]

    stages = report["stages"]
    if not isinstance(stages, list):
        errors.append("stages: expected a list")
    else:
        seen = set()
        for i, stage in enumerate(stages):
            check_fields(stage, STAGE_FIELDS, f"stages[{i}]", errors)
            if not isinstance(stage, dict):
                continue
            name = stage.get("stage")
            if name not in STAGE_NAMES:
                errors.append(f"stages[{i}].stage: unknown stage {name!r}")
            if name in seen:
                errors.append(f"stages[{i}].stage: duplicate stage {name!r}")
            seen.add(name)
            seconds = stage.get("seconds")
            if isinstance(seconds, NUMBER) and seconds < 0:
                errors.append(f"stages[{i}].seconds: negative ({seconds})")

    check_fields(report["measured_memory"], MEMORY_FIELDS, "measured_memory",
                 errors)
    mem = report["measured_memory"]
    if isinstance(mem, dict) and all(
        isinstance(mem.get(k), NUMBER) for k in ("acquires", "pool_hits")
    ):
        if mem["pool_hits"] > mem["acquires"]:
            errors.append("measured_memory: pool_hits > acquires")

    check_fields(report["execution"], EXECUTION_FIELDS, "execution", errors)
    execution = report["execution"]
    if isinstance(execution, dict):
        mode = execution.get("embed_mode")
        if mode not in EMBED_MODES:
            errors.append(f"execution.embed_mode: unknown mode {mode!r}")
        # Eager runs record no graph activity; graph runs that embedded
        # anything must have captured or replayed at least one plan.
        if execution.get("graph_enabled") is False:
            for key in ("graph_captures", "graph_executions"):
                if execution.get(key):
                    errors.append(
                        f"execution.{key}: nonzero with graph_enabled false"
                    )

    check_fields(report["result"], RESULT_FIELDS, "result", errors)
    result = report["result"]
    if isinstance(result, dict):
        for key in ("train_accuracy", "test_accuracy"):
            v = result.get(key)
            if isinstance(v, NUMBER) and not 0.0 <= v <= 1.0:
                errors.append(f"result.{key}: {v} outside [0, 1]")

    estimate = report["estimate"]
    if estimate is not None:
        check_fields(estimate, ESTIMATE_FIELDS, "estimate", errors)
        if isinstance(estimate, dict):
            verdict = estimate.get("verdict")
            if verdict not in ESTIMATE_VERDICTS:
                errors.append(f"estimate.verdict: unknown verdict {verdict!r}")

    budget = report["budget"]
    check_fields(budget, BUDGET_FIELDS, "budget", errors)
    if isinstance(budget, dict):
        verdict = budget.get("verdict")
        if verdict not in BUDGET_VERDICTS:
            errors.append(f"budget.verdict: unknown verdict {verdict!r}")
        # A "fits" verdict cannot coexist with negative headroom, and an
        # exceeded axis must show negative headroom on that axis.
        mem_hr = budget.get("mem_headroom_pct")
        time_hr = budget.get("time_headroom_pct")
        if isinstance(mem_hr, NUMBER) and isinstance(time_hr, NUMBER):
            if verdict == "fits" and (mem_hr < 0 or time_hr < 0):
                errors.append("budget: verdict 'fits' with negative headroom")
            if verdict == "exceeds_memory" and mem_hr >= 0:
                errors.append(
                    "budget: verdict 'exceeds_memory' with non-negative "
                    "memory headroom"
                )
            if verdict == "exceeds_time" and time_hr >= 0:
                errors.append(
                    "budget: verdict 'exceeds_time' with non-negative "
                    "time headroom"
                )


def expand(paths):
    out = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(glob.glob(os.path.join(path, "run_report_*.json")))
            if not found:
                print(f"error: no run_report_*.json in {path}",
                      file=sys.stderr)
                sys.exit(2)
            out.extend(found)
        else:
            out.append(path)
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Validate run-report JSON manifests (schema_version 1)."
    )
    parser.add_argument("paths", nargs="+",
                        help="report files or directories of them")
    args = parser.parse_args()

    failed = False
    for path in expand(args.paths):
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except OSError as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        except json.JSONDecodeError as e:
            print(f"error: {path} is not valid JSON: {e}", file=sys.stderr)
            sys.exit(2)
        errors = []
        validate(report, errors)
        if errors:
            failed = True
            print(f"INVALID {path}")
            for err in errors:
                print(f"  {err}")
        else:
            epochs = len(report.get("epochs", []))
            verdict = report.get("budget", {}).get("verdict", "?")
            print(f"OK      {path} ({epochs} epochs, budget: {verdict})")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
