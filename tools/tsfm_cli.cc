// tsfm — command-line front end to the adapter library.
//
//   tsfm datasets
//       List the built-in UEA-like dataset specs.
//   tsfm generate --dataset NATOPS [--seed 0] [--out dir] [--full]
//       Write train/test CSVs of a synthetic dataset.
//   tsfm estimate --dataset NATOPS --model MOMENT --regime full|head|lcomb
//       Paper-scale V100 verdict (COM/TO/OK) with memory and time.
//   tsfm classify --train a.csv --test b.csv [--model moment|vit]
//                 [--adapter PCA|SVD|Rand_Proj|VAR|lcomb|lcomb_top_k|LDA|none]
//                 [--dprime 5] [--checkpoint path] [--save prefix]
//       Fine-tune on your own CSV data and report accuracy; --save
//       persists the fitted bundle for `pipeline describe --prefix` /
//       the pipeline registry.
//   tsfm cache list|verify|clear [--cache-dir dir]
//       Maintain the embedding cache: list entries, re-check every CRC,
//       or delete all entries. Defaults to TSFM_CACHE_DIR.
//   tsfm predict --prefix saved_prefix --input data.csv --classes C
//                 [--model moment|vit] [--adapter PCA|...|none] [--dprime 5]
//                 [--checkpoint path] [--out labels.txt]
//       Load a fitted bundle and print one predicted label per input sample
//       (the offline reference the serve smoke diffs responses against).
//   tsfm serve --prefix saved_prefix --classes C [--port 7070] [--host IP]
//                 [--model moment|vit] [--adapter PCA|...|none] [--dprime 5]
//                 [--checkpoint path] [--name default]
//                 [--batch-window-us 1000] [--max-batch 64]
//                 [--max-pending 256]
//                 [--slo-p99-ms MS] [--slo-error-rate FRAC]
//                 [--access-log [path]] [--access-log-sample N]
//       Serve classify/embed traffic over the length-prefixed TCP protocol
//       with dynamic micro-batching; SIGTERM/SIGINT drain gracefully.
//       --slo-* evaluate the rolling 60s window and emit structured
//       breach/recovery events on stderr; --access-log writes one JSON
//       line per request (stderr/stdout/file, every Nth with --access-
//       log-sample).
//   tsfm serve reload --prefix new_prefix [--port 7070] [--host IP]
//       Hot-swap a re-fitted bundle into a running server (zero downtime).
//   tsfm serve stats [--port 7070]   print the server's live metrics
//   tsfm serve stop  [--port 7070]   ask the server to drain and exit
//   tsfm serve-stats [--port 7070] [--follow] [--interval-ms 1000]
//       Scrape a running server's metrics in Prometheus text exposition
//       format (one shot, or repeatedly with --follow).
//   tsfm pipeline describe [--model moment|vit] [--adapter PCA|...|none]
//                 [--dprime 5] [--classes 2] [--checkpoint path]
//                 [--prefix saved_prefix] [--check-fitted]
//       Print the composed stage list (name, in/out shape, fitted-state
//       bytes) for a configuration, or — with --prefix — for a fitted
//       bundle saved by classifier Save / the pipeline registry.
//       --check-fitted exits nonzero unless every stage is fitted.
//   tsfm quantize --in model.ckpt --out model.q8.ckpt
//       Transcode an fp32 checkpoint into the int8 container (~4x smaller
//       on encoder-sized weights). The output loads wherever --checkpoint
//       is accepted; the file magic selects the decoder.
//
// Observability flags (valid with every command):
//   --trace out.json     record trace spans and write chrome://tracing JSON
//                        (same effect as TSFM_TRACE=out.json)
//   --profile out.txt    record spans and write an aggregated call-tree
//                        profile; .json / .folded (flamegraph) selected by
//                        extension (same as TSFM_PROFILE=out.txt)
//   --metrics [dest]     dump the metrics registry on exit: stderr (default),
//                        stdout, or a file path (TSFM_METRICS does the same)
//   --report [dir]       write a run-report JSON manifest per fine-tune run
//                        into dir (default "reports"; TSFM_RUN_REPORT=dir)
//   --threads N          size of the parallel runtime's thread pool
//                        (same as TSFM_NUM_THREADS=N)
//   --mem-budget BYTES   live resource budget; K/M/G suffixes accepted.
//   --time-budget SECS   Fine-tune runs stop with ResourceExhausted at the
//                        cap; `estimate` judges the paper-scale prediction
//                        against it (defaults: V100 32G / 7200s).
//   --cache-dir DIR      content-addressed embedding cache: identical
//                        frozen-encoder embed passes are served from disk
//                        (same as TSFM_CACHE_DIR; watch cache.hit/cache.miss
//                        in --metrics output)
//   --graph              run no-grad encoder forwards through the captured
//                        graph IR (fused kernels + planned activation
//                        memory); bit-identical to eager, usually faster
//                        (same as TSFM_GRAPH=1; watch graph.* in --metrics)
//   --simd               dispatch exp/tanh/erf/gelu/softmax through the
//                        vectorized kernels in src/simd/ (AVX2/NEON with a
//                        lane-exact scalar fallback); results stay
//                        bit-identical across thread counts and graph/eager,
//                        and differ from scalar fp32 only within the CI
//                        accuracy epsilon (same as TSFM_SIMD=1)
//   --quantize int8      run frozen-encoder (no-grad) Linear layers through
//                        the dynamically quantized int8 path: per-channel
//                        weight scales computed once at load, int32
//                        accumulation, dequantize at layer boundaries
//                        (same as TSFM_QUANT=int8; deterministic across
//                        thread counts by exact integer accumulation)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/adapter.h"
#include "data/csv.h"
#include "io/embed_cache.h"
#include "data/uea_like.h"
#include "finetune/classifier.h"
#include "graph/executor.h"
#include "nn/serialize.h"
#include "obs/budget.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "models/pretrained.h"
#include "pipeline/pipeline.h"
#include "pipeline/registry.h"
#include "pipeline/stages.h"
#include "resources/cost_model.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "simd/dispatch.h"

namespace tsfm::cli {
namespace {

using ArgMap = std::map<std::string, std::string>;

ArgMap ParseArgs(int argc, char** argv, int start) {
  ArgMap args;
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const bool next_is_value =
        i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0;
    // Valueless flags may appear anywhere without shifting later pairs;
    // --metrics and --report take an optional value.
    if (std::strcmp(argv[i], "--full") == 0) {
      args["full"] = "1";
    } else if (std::strcmp(argv[i], "--graph") == 0) {
      args["graph"] = "1";
    } else if (std::strcmp(argv[i], "--simd") == 0) {
      args["simd"] = "1";
    } else if (std::strcmp(argv[i], "--check-fitted") == 0) {
      args["check-fitted"] = "1";
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      args["metrics"] = next_is_value ? argv[++i] : "stderr";
    } else if (std::strcmp(argv[i], "--report") == 0) {
      args["report"] = next_is_value ? argv[++i] : "reports";
    } else if (std::strcmp(argv[i], "--access-log") == 0) {
      args["access-log"] = next_is_value ? argv[++i] : "stderr";
    } else if (std::strcmp(argv[i], "--follow") == 0) {
      args["follow"] = "1";
    } else if (next_is_value) {
      const std::string key = argv[i] + 2;
      args[key] = argv[++i];
    }
  }
  return args;
}

// "512M" / "2G" / "4096" -> bytes; returns false on parse failure.
bool ParseBytes(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v < 0) return false;
  switch (*end) {
    case '\0':
      break;
    case 'k': case 'K': v *= 1024.0; break;
    case 'm': case 'M': v *= 1024.0 * 1024.0; break;
    case 'g': case 'G': v *= 1024.0 * 1024.0 * 1024.0; break;
    default: return false;
  }
  *out = v;
  return true;
}

std::string GetOr(const ArgMap& args, const std::string& key,
                  const std::string& fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int CmdDatasets() {
  std::printf("%-24s %6s %6s %9s %7s %8s\n", "name", "train", "test",
              "channels", "length", "classes");
  for (const auto& spec : data::UeaSpecs()) {
    std::printf("%-24s %6lld %6lld %9lld %7lld %8lld\n", spec.name.c_str(),
                static_cast<long long>(spec.train_size),
                static_cast<long long>(spec.test_size),
                static_cast<long long>(spec.channels),
                static_cast<long long>(spec.length),
                static_cast<long long>(spec.classes));
  }
  return 0;
}

int CmdGenerate(const ArgMap& args) {
  auto spec = data::FindUeaSpec(GetOr(args, "dataset", "NATOPS"));
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = std::stoull(GetOr(args, "seed", "0"));
  const std::string out = GetOr(args, "out", ".");
  const data::GeneratorCaps caps = args.count("full")
                                       ? data::GeneratorCaps{}
                                       : data::DefaultCaps();
  data::DatasetPair pair = data::GenerateUeaLike(*spec, seed, caps);
  const std::string train_path = out + "/" + spec->abbrev + "_train.csv";
  const std::string test_path = out + "/" + spec->abbrev + "_test.csv";
  if (auto s = data::SaveCsv(pair.train, train_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = data::SaveCsv(pair.test, test_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%lld samples) and %s (%lld samples)\n",
              train_path.c_str(), static_cast<long long>(pair.train.size()),
              test_path.c_str(), static_cast<long long>(pair.test.size()));
  return 0;
}

int CmdEstimate(const ArgMap& args) {
  auto spec = data::FindUeaSpec(GetOr(args, "dataset", "NATOPS"));
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const std::string model_name = GetOr(args, "model", "MOMENT");
  const resources::PaperModelSpec model =
      model_name == "ViT" || model_name == "vit" ? resources::VitPaperSpec()
                                                 : resources::MomentPaperSpec();
  const std::string regime_name = GetOr(args, "regime", "full");
  resources::TrainRegime regime = resources::TrainRegime::kFullFineTune;
  int64_t channels = spec->channels;
  if (regime_name == "head") {
    regime = resources::TrainRegime::kEmbedOnceHeadOnly;
  } else if (regime_name == "lcomb") {
    regime = resources::TrainRegime::kAdapterPlusHeadLearnable;
    channels = std::stoll(GetOr(args, "dprime", "5"));
  } else if (regime_name != "full") {
    std::fprintf(stderr, "unknown regime '%s' (full|head|lcomb)\n",
                 regime_name.c_str());
    return 1;
  }
  resources::Workload workload{spec->train_size, spec->test_size, channels};
  auto est = resources::EstimateRun(model, resources::V100Spec(), workload,
                                    regime);
  // Judge the prediction against the user's budget; axes left unset fall
  // back to the paper's V100 testbed (32 GB, 2 hours).
  obs::BudgetLimits limits;
  limits.mem_bytes = resources::V100Spec().memory_bytes;
  limits.time_seconds = resources::V100Spec().time_limit_seconds;
  if (obs::BudgetConfigured()) {
    const obs::BudgetLimits user = obs::CurrentBudget();
    if (user.mem_bytes > 0) limits.mem_bytes = user.mem_bytes;
    if (user.time_seconds > 0) limits.time_seconds = user.time_seconds;
  }
  const obs::BudgetVerdict verdict =
      obs::JudgeBudget(limits, est.peak_memory_bytes, est.total_seconds);
  std::printf("%s on %s, %s, D=%lld:\n", model.name.c_str(),
              spec->name.c_str(), resources::TrainRegimeName(regime),
              static_cast<long long>(channels));
  std::printf("  peak memory  %.1f GB (budget: %.1f GB)\n",
              est.peak_memory_bytes / (1ull << 30),
              limits.mem_bytes / (1ull << 30));
  std::printf("  time         %.0f s (budget: %.0f s)\n", est.total_seconds,
              limits.time_seconds);
  std::printf("  verdict      %s\n", resources::VerdictString(est.verdict));
  std::printf("  budget       %s (mem headroom %.1f%%, time headroom "
              "%.1f%%)\n",
              obs::BudgetVerdictName(verdict.kind), verdict.mem_headroom_pct,
              verdict.time_headroom_pct);
  return est.verdict == resources::Verdict::kOk && verdict.fits() ? 0 : 2;
}

// Parses --adapter into the config; returns false on an unknown name.
bool ParseAdapter(const std::string& adapter_name,
                  finetune::ClassifierConfig* config) {
  if (adapter_name == "none") {
    config->adapter.reset();
    return true;
  }
  for (auto kind :
       {core::AdapterKind::kPca, core::AdapterKind::kSvd,
        core::AdapterKind::kRandProj, core::AdapterKind::kVar,
        core::AdapterKind::kLcomb, core::AdapterKind::kLcombTopK,
        core::AdapterKind::kLda}) {
    if (adapter_name == core::AdapterKindName(kind)) {
      config->adapter = kind;
      return true;
    }
  }
  return false;
}

int CmdClassify(const ArgMap& args) {
  const std::string train_path = GetOr(args, "train", "");
  const std::string test_path = GetOr(args, "test", "");
  if (train_path.empty() || test_path.empty()) {
    std::fprintf(stderr, "classify needs --train and --test CSV paths\n");
    return 1;
  }
  auto train = data::LoadCsv(train_path, "train");
  if (!train.ok()) {
    std::fprintf(stderr, "train: %s\n", train.status().ToString().c_str());
    return 1;
  }
  auto test = data::LoadCsv(test_path, "test");
  if (!test.ok()) {
    std::fprintf(stderr, "test: %s\n", test.status().ToString().c_str());
    return 1;
  }
  // Splits may disagree on inferred class counts; align them.
  const int64_t classes = std::max(train->num_classes, test->num_classes);
  train->num_classes = classes;
  test->num_classes = classes;

  finetune::ClassifierConfig config;
  const std::string model_name = GetOr(args, "model", "moment");
  config.model_kind = model_name == "vit" || model_name == "ViT"
                          ? models::ModelKind::kVit
                          : models::ModelKind::kMoment;
  config.checkpoint_path =
      GetOr(args, "checkpoint",
            std::string("checkpoints/cli_") + model_name + ".ckpt");
  const std::string adapter_name = GetOr(args, "adapter", "PCA");
  if (!ParseAdapter(adapter_name, &config)) {
    std::fprintf(stderr, "unknown adapter '%s'\n", adapter_name.c_str());
    return 1;
  }
  config.adapter_options.out_channels =
      std::stoll(GetOr(args, "dprime", "5"));
  config.report_dir = GetOr(args, "report", "");

  auto classifier = finetune::TsfmClassifier::Create(config);
  if (!classifier.ok()) {
    std::fprintf(stderr, "%s\n", classifier.status().ToString().c_str());
    return 1;
  }
  if (auto s = classifier->Fit(*train, &*test); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto& result = classifier->last_fit_result();
  std::printf("model=%s adapter=%s D'=%lld\n", model_name.c_str(),
              adapter_name.c_str(),
              static_cast<long long>(config.adapter_options.out_channels));
  std::printf("train accuracy %.4f\n", result.train_accuracy);
  std::printf("test accuracy  %.4f\n", result.test_accuracy);
  std::printf("total seconds  %.2f\n", result.total_seconds);
  if (!classifier->last_report_path().empty()) {
    std::printf("report         %s\n", classifier->last_report_path().c_str());
  }
  if (const std::string save = GetOr(args, "save", ""); !save.empty()) {
    if (auto s = classifier->Save(save); !s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("saved          %s.{adapter,head,stats}\n", save.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Serving commands.

// Signal-to-drain flag: SIGTERM/SIGINT ask the serve loop for a graceful
// stop (answer everything in flight, then exit 0).
std::atomic<int> g_serve_signal{0};
void OnServeSignal(int sig) {
  g_serve_signal.store(sig, std::memory_order_relaxed);
}

// Loads the frozen model named by the args and installs the fitted bundle
// under `--prefix` into the process registry as `name`. Shared by `predict`
// and `serve`; on success the out-params describe what was installed.
int LoadServingSession(
    const ArgMap& args, const std::string& name, int64_t default_classes,
    std::shared_ptr<const models::FoundationModel>* model_out,
    std::optional<core::AdapterKind>* adapter_out, int64_t* classes_out,
    std::shared_ptr<const pipeline::InferenceSession>* session_out) {
  const std::string prefix = GetOr(args, "prefix", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "needs --prefix (a bundle saved by classify "
                         "--save)\n");
    return 1;
  }
  finetune::ClassifierConfig config;
  const std::string model_name = GetOr(args, "model", "moment");
  config.model_kind = model_name == "vit" || model_name == "ViT"
                          ? models::ModelKind::kVit
                          : models::ModelKind::kMoment;
  if (config.model_kind == models::ModelKind::kVit) {
    config.model_config = models::VitSmallConfig();
  }
  config.checkpoint_path =
      GetOr(args, "checkpoint",
            std::string("checkpoints/cli_") + model_name + ".ckpt");
  const std::string adapter_name = GetOr(args, "adapter", "PCA");
  if (!ParseAdapter(adapter_name, &config)) {
    std::fprintf(stderr, "unknown adapter '%s'\n", adapter_name.c_str());
    return 1;
  }
  const int64_t classes =
      std::stoll(GetOr(args, "classes", std::to_string(default_classes)));
  if (classes <= 0) {
    std::fprintf(stderr, "needs --classes (the fitted head's logit "
                         "count)\n");
    return 1;
  }
  auto model = models::LoadOrPretrain(config.model_kind, config.model_config,
                                      config.pretrain, config.checkpoint_path);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const models::FoundationModel> frozen = *model;
  auto session = pipeline::Registry::Instance().LoadAndInstall(
      name, prefix, frozen, config.adapter, classes,
      pipeline::SessionOptions{});
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  *model_out = std::move(frozen);
  *adapter_out = config.adapter;
  *classes_out = classes;
  *session_out = *session;
  return 0;
}

// `tsfm predict`: offline per-sample labels from a fitted bundle — the
// byte-for-byte reference that served responses are diffed against.
int CmdPredict(const ArgMap& args) {
  const std::string input = GetOr(args, "input", "");
  if (input.empty()) {
    std::fprintf(stderr, "predict needs --input CSV path\n");
    return 1;
  }
  auto ds = data::LoadCsv(input, "predict");
  if (!ds.ok()) {
    std::fprintf(stderr, "input: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const models::FoundationModel> model;
  std::optional<core::AdapterKind> adapter;
  int64_t classes = 0;
  std::shared_ptr<const pipeline::InferenceSession> session;
  if (int rc = LoadServingSession(args, "predict", ds->num_classes, &model,
                                  &adapter, &classes, &session);
      rc != 0) {
    return rc;
  }
  auto labels = session->PredictBatch(ds->x);
  if (!labels.ok()) {
    std::fprintf(stderr, "%s\n", labels.status().ToString().c_str());
    return 1;
  }
  const std::string out_path = GetOr(args, "out", "");
  if (out_path.empty()) {
    for (int64_t label : *labels) {
      std::printf("%lld\n", static_cast<long long>(label));
    }
    return 0;
  }
  std::ofstream os(out_path, std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  for (int64_t label : *labels) {
    os << label << "\n";
  }
  std::printf("wrote %zu labels to %s\n", labels->size(), out_path.c_str());
  return 0;
}

// `tsfm serve` (no verb): run the inference server until SIGTERM/SIGINT or
// a client shutdown request, then drain and exit 0.
int CmdServeRun(const ArgMap& args) {
  const std::string name = GetOr(args, "name", "default");
  std::shared_ptr<const models::FoundationModel> model;
  std::optional<core::AdapterKind> adapter;
  int64_t classes = 0;
  std::shared_ptr<const pipeline::InferenceSession> session;
  if (int rc = LoadServingSession(args, name, 0, &model, &adapter, &classes,
                                  &session);
      rc != 0) {
    return rc;
  }

  serve::ServerOptions options;
  options.host = GetOr(args, "host", "127.0.0.1");
  options.port = std::atoi(GetOr(args, "port", "7070").c_str());
  options.session_name = name;
  options.batch.window_us = std::stoll(GetOr(args, "batch-window-us", "1000"));
  options.batch.max_batch = std::stoll(GetOr(args, "max-batch", "64"));
  options.max_pending = std::stoll(GetOr(args, "max-pending", "256"));
  options.slo.p99_ms = std::atof(GetOr(args, "slo-p99-ms", "0").c_str());
  options.slo.error_rate =
      std::atof(GetOr(args, "slo-error-rate", "0").c_str());
  options.access_log.path = GetOr(args, "access-log", "");
  options.access_log.sample =
      std::stoll(GetOr(args, "access-log-sample", "1"));
  // `tsfm serve reload` hot-swaps a re-fitted bundle with the same model,
  // adapter kind, and class count into the serving slot.
  options.reload_fn = [model, adapter, classes,
                       name](const std::string& prefix) -> Status {
    auto swapped = pipeline::Registry::Instance().LoadAndInstall(
        name, prefix, model, adapter, classes, pipeline::SessionOptions{});
    return swapped.ok() ? Status::OK() : swapped.status();
  };

  auto server = serve::Server::Start(&pipeline::Registry::Instance(),
                                     std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGTERM, OnServeSignal);
  std::signal(SIGINT, OnServeSignal);
  std::printf("tsfm serve: listening on %s:%d (session '%s', window %lld us, "
              "max batch %lld, max pending %lld)\n",
              (*server)->options().host.c_str(), (*server)->port(),
              name.c_str(),
              static_cast<long long>((*server)->options().batch.window_us),
              static_cast<long long>((*server)->options().batch.max_batch),
              static_cast<long long>((*server)->options().max_pending));
  std::fflush(stdout);

  while (g_serve_signal.load(std::memory_order_relaxed) == 0 &&
         !(*server)->ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "tsfm serve: draining\n");
  (*server)->Stop();
  const auto snapshot = obs::Registry::Instance().TakeSnapshot();
  const auto metric = [&snapshot](const char* key) {
    auto it = snapshot.find(key);
    return it == snapshot.end() ? 0.0 : it->second;
  };
  std::fprintf(stderr,
               "tsfm serve: drained (%.0f requests, %.0f responses, "
               "%.0f shed, %.0f batches)\n",
               metric("serve.requests"), metric("serve.responses"),
               metric("serve.shed"), metric("serve.batches"));
  return 0;
}

// `tsfm serve reload|stats|stop`: thin client verbs against a running
// server.
int CmdServeClient(const std::string& verb, const ArgMap& args) {
  const std::string host = GetOr(args, "host", "127.0.0.1");
  const int port = std::atoi(GetOr(args, "port", "7070").c_str());
  auto client = serve::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  if (verb == "reload") {
    const std::string prefix = GetOr(args, "prefix", "");
    if (prefix.empty()) {
      std::fprintf(stderr, "serve reload needs --prefix\n");
      return 1;
    }
    auto session_name = client->Reload(prefix);
    if (!session_name.ok()) {
      std::fprintf(stderr, "%s\n",
                   session_name.status().ToString().c_str());
      return 1;
    }
    std::printf("reloaded %s into session '%s'\n", prefix.c_str(),
                session_name->c_str());
    return 0;
  }
  if (verb == "stats") {
    auto stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::fputs(stats->c_str(), stdout);
    return 0;
  }
  if (verb == "stop") {
    if (auto s = client->Shutdown(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("server draining\n");
    return 0;
  }
  std::fprintf(stderr, "unknown serve verb '%s' (reload|stats|stop)\n",
               verb.c_str());
  return 1;
}

// `tsfm serve-stats`: scrape a running server's metrics in Prometheus text
// exposition format; --follow re-scrapes every --interval-ms until killed.
int CmdServeStats(const ArgMap& args) {
  const std::string host = GetOr(args, "host", "127.0.0.1");
  const int port = std::atoi(GetOr(args, "port", "7070").c_str());
  const bool follow = GetOr(args, "follow", "") == "1";
  const int interval_ms =
      std::atoi(GetOr(args, "interval-ms", "1000").c_str());
  auto client = serve::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  do {
    auto text = client->MetricsText();
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    std::fputs(text->c_str(), stdout);
    std::fflush(stdout);
    if (follow) {
      std::printf("\n");  // blank line between scrapes for `--follow` eyes
      std::this_thread::sleep_for(std::chrono::milliseconds(
          interval_ms > 0 ? interval_ms : 1000));
    }
  } while (follow && g_serve_signal.load(std::memory_order_relaxed) == 0);
  return 0;
}

void PrintStages(const std::vector<pipeline::StageDescription>& stages) {
  std::printf("%-12s %-28s %-8s %12s\n", "stage", "shape", "fitted",
              "state bytes");
  for (const auto& d : stages) {
    std::printf("%-12s %-28s %-8s %12lld\n", d.name.c_str(),
                d.signature.c_str(), d.fitted ? "yes" : "no",
                static_cast<long long>(d.state_bytes));
  }
}

// With --check-fitted, `pipeline describe` becomes a machine-checkable
// assertion: exit 3 unless every stage reports fitted (so CI does not have
// to grep the table's whitespace).
int FinishDescribe(const std::vector<pipeline::StageDescription>& stages,
                   bool check_fitted) {
  PrintStages(stages);
  if (!check_fitted) return 0;
  int unfitted = 0;
  for (const auto& d : stages) {
    if (!d.fitted) {
      std::fprintf(stderr, "check-fitted: stage '%s' is not fitted\n",
                   d.name.c_str());
      ++unfitted;
    }
  }
  if (unfitted > 0) return 3;
  std::printf("check-fitted: all %zu stages fitted\n", stages.size());
  return 0;
}

// `tsfm pipeline describe`: the composed stage list for a configuration
// (unfitted stages) or a saved fitted bundle (--prefix).
int CmdPipeline(const std::string& verb, const ArgMap& args) {
  if (verb != "describe") {
    std::fprintf(stderr, "unknown pipeline verb '%s' (describe)\n",
                 verb.c_str());
    return 1;
  }
  const bool check_fitted = GetOr(args, "check-fitted", "") == "1";
  finetune::ClassifierConfig config;
  const std::string model_name = GetOr(args, "model", "moment");
  config.model_kind = model_name == "vit" || model_name == "ViT"
                          ? models::ModelKind::kVit
                          : models::ModelKind::kMoment;
  if (config.model_kind == models::ModelKind::kVit) {
    config.model_config = models::VitSmallConfig();
  }
  config.checkpoint_path =
      GetOr(args, "checkpoint",
            std::string("checkpoints/cli_") + model_name + ".ckpt");
  const std::string adapter_name = GetOr(args, "adapter", "PCA");
  if (!ParseAdapter(adapter_name, &config)) {
    std::fprintf(stderr, "unknown adapter '%s'\n", adapter_name.c_str());
    return 1;
  }
  config.adapter_options.out_channels = std::stoll(GetOr(args, "dprime", "5"));
  const int64_t classes = std::stoll(GetOr(args, "classes", "2"));

  auto model = models::LoadOrPretrain(config.model_kind, config.model_config,
                                      config.pretrain, config.checkpoint_path);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const models::FoundationModel> frozen = *model;

  const std::string prefix = GetOr(args, "prefix", "");
  if (!prefix.empty()) {
    // Describe the fitted bundle saved under the prefix.
    auto session = pipeline::Registry::Instance().LoadAndInstall(
        "cli", prefix, frozen, config.adapter, classes,
        pipeline::SessionOptions{});
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return 1;
    }
    std::printf("fitted pipeline at %s (model=%s, E=%lld, C=%lld):\n",
                prefix.c_str(), model_name.c_str(),
                static_cast<long long>(frozen->embedding_dim()),
                static_cast<long long>(classes));
    return FinishDescribe((*session)->Describe(), check_fitted);
  }

  // No prefix: describe the configured (unfitted) composition.
  pipeline::Pipeline pipe;
  pipe.Add(std::make_unique<pipeline::NormalizeStage>());
  if (config.adapter.has_value()) {
    pipe.Add(std::make_unique<pipeline::AdaptStage>(
        core::CreateAdapter(*config.adapter, config.adapter_options)));
  }
  pipe.Add(std::make_unique<pipeline::EmbedStage>(frozen));
  Rng head_rng(0);
  pipe.Add(std::make_unique<pipeline::HeadStage>(
      std::make_shared<models::ClassificationHead>(frozen->embedding_dim(),
                                                   classes, &head_rng),
      frozen->embedding_dim(), classes, pipeline::HeadTrainOptions{}));
  std::printf("configured pipeline (model=%s, adapter=%s, D'=%lld, E=%lld, "
              "C=%lld):\n",
              model_name.c_str(), adapter_name.c_str(),
              static_cast<long long>(config.adapter_options.out_channels),
              static_cast<long long>(frozen->embedding_dim()),
              static_cast<long long>(classes));
  return FinishDescribe(pipe.Describe(), check_fitted);
}

// Maintenance verbs for the embedding cache; the directory comes from
// --cache-dir or TSFM_CACHE_DIR.
int CmdCache(const std::string& verb, const ArgMap& args) {
  const std::string dir = GetOr(args, "cache-dir", io::EmbedCacheDir());
  if (dir.empty()) {
    std::fprintf(stderr,
                 "cache %s needs --cache-dir or TSFM_CACHE_DIR\n",
                 verb.c_str());
    return 1;
  }
  if (verb == "clear") {
    const auto removed = io::EmbedCacheClear(dir);
    if (!removed.ok()) {
      std::fprintf(stderr, "%s\n", removed.status().ToString().c_str());
      return 1;
    }
    std::printf("removed %lld entries from %s\n",
                static_cast<long long>(*removed), dir.c_str());
    return 0;
  }
  if (verb != "list" && verb != "verify") {
    std::fprintf(stderr, "unknown cache verb '%s' (list|verify|clear)\n",
                 verb.c_str());
    return 1;
  }
  const bool verify = verb == "verify";
  const auto entries = io::EmbedCacheScan(dir, verify);
  int64_t total = 0;
  int corrupt = 0;
  std::printf("%-32s %12s%s\n", "key", "bytes", verify ? "  crc" : "");
  for (const auto& e : entries) {
    std::printf("%-32s %12lld%s\n", e.key.c_str(),
                static_cast<long long>(e.bytes),
                verify ? (e.valid ? "  ok" : "  CORRUPT") : "");
    total += e.bytes;
    if (verify && !e.valid) ++corrupt;
  }
  std::printf("%zu entries, %lld bytes in %s\n", entries.size(),
              static_cast<long long>(total), dir.c_str());
  if (corrupt > 0) {
    std::fprintf(stderr, "%d corrupt entries\n", corrupt);
    return 1;
  }
  return 0;
}

// `tsfm quantize`: transcode an fp32 checkpoint into the int8 container
// (per-column symmetric scales for every 2-D parameter) without needing the
// model architecture. The output loads through the same LoadCheckpoint call
// as fp32 files — the magic is sniffed.
int CmdQuantize(const ArgMap& args) {
  const std::string in = GetOr(args, "in", "");
  const std::string out = GetOr(args, "out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: tsfm quantize --in model.ckpt --out model.q8.ckpt\n");
    return 1;
  }
  if (Status s = nn::QuantizeCheckpointFile(in, out); !s.ok()) {
    std::fprintf(stderr, "quantize failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::error_code ec;
  const auto in_bytes = std::filesystem::file_size(in, ec);
  const auto out_bytes = ec ? 0 : std::filesystem::file_size(out, ec);
  if (!ec && out_bytes > 0) {
    std::printf("%s (%lld bytes) -> %s (%lld bytes), %.2fx smaller\n",
                in.c_str(), static_cast<long long>(in_bytes), out.c_str(),
                static_cast<long long>(out_bytes),
                static_cast<double>(in_bytes) /
                    static_cast<double>(out_bytes));
  } else {
    std::printf("%s -> %s\n", in.c_str(), out.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tsfm <datasets|generate|estimate|classify|predict|"
               "serve|serve-stats|cache|pipeline|quantize> [--args]\n"
               "       [--trace out.json] [--profile out.txt|.json|.folded]\n"
               "       [--metrics [dest]] [--report [dir]] [--threads N]\n"
               "       [--mem-budget BYTES[K|M|G]] [--time-budget SECONDS]\n"
               "       [--cache-dir DIR] [--graph] [--simd] "
               "[--quantize int8]\n"
               "see the header of tools/tsfm_cli.cc for details\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const ArgMap args = ParseArgs(argc, argv, 2);

  if (const std::string threads = GetOr(args, "threads", "");
      !threads.empty()) {
    runtime::SetNumThreads(std::atoi(threads.c_str()));
  }

  obs::BudgetLimits budget;
  bool have_budget = false;
  if (const std::string mem = GetOr(args, "mem-budget", ""); !mem.empty()) {
    if (!ParseBytes(mem, &budget.mem_bytes)) {
      std::fprintf(stderr, "cannot parse --mem-budget '%s'\n", mem.c_str());
      return 1;
    }
    have_budget = true;
  }
  if (const std::string t = GetOr(args, "time-budget", ""); !t.empty()) {
    char* end = nullptr;
    budget.time_seconds = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0' || budget.time_seconds < 0) {
      std::fprintf(stderr, "cannot parse --time-budget '%s'\n", t.c_str());
      return 1;
    }
    have_budget = true;
  }
  if (have_budget) obs::SetBudget(budget);

  if (const std::string cache_dir = GetOr(args, "cache-dir", "");
      !cache_dir.empty()) {
    io::SetEmbedCacheDir(cache_dir);
  }

  if (GetOr(args, "graph", "") == "1") graph::SetGraphMode(true);
  if (GetOr(args, "simd", "") == "1") simd::SetSimdMode(true);
  if (const std::string q = GetOr(args, "quantize", ""); !q.empty()) {
    if (q != "int8") {
      std::fprintf(stderr, "unknown --quantize scheme '%s' (int8)\n",
                   q.c_str());
      return 1;
    }
    simd::SetQuantMode(true);
  }

  const std::string trace_path = GetOr(args, "trace", "");
  const std::string profile_path = GetOr(args, "profile", "");
  if (!trace_path.empty() || !profile_path.empty()) obs::EnableTracing();

  int rc;
  if (command == "datasets") {
    rc = CmdDatasets();
  } else if (command == "generate") {
    rc = CmdGenerate(args);
  } else if (command == "estimate") {
    rc = CmdEstimate(args);
  } else if (command == "classify") {
    rc = CmdClassify(args);
  } else if (command == "predict") {
    rc = CmdPredict(args);
  } else if (command == "serve") {
    const std::string verb =
        argc > 2 && std::strncmp(argv[2], "--", 2) != 0 ? argv[2] : "";
    rc = verb.empty() ? CmdServeRun(args) : CmdServeClient(verb, args);
  } else if (command == "serve-stats") {
    std::signal(SIGTERM, OnServeSignal);
    std::signal(SIGINT, OnServeSignal);
    rc = CmdServeStats(args);
  } else if (command == "cache") {
    rc = CmdCache(argc > 2 && std::strncmp(argv[2], "--", 2) != 0 ? argv[2]
                                                                  : "list",
                  args);
  } else if (command == "pipeline") {
    rc = CmdPipeline(argc > 2 && std::strncmp(argv[2], "--", 2) != 0
                         ? argv[2]
                         : "describe",
                     args);
  } else if (command == "quantize") {
    rc = CmdQuantize(args);
  } else {
    return Usage();
  }

  if (!trace_path.empty()) {
    if (obs::WriteTrace(trace_path)) {
      std::fprintf(stderr, "trace: wrote %lld spans to %s\n",
                   static_cast<long long>(obs::TraceEventCount()),
                   trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path.c_str());
    }
  }
  if (!profile_path.empty()) {
    const obs::Profile profile = obs::Profile::FromCurrentTrace();
    if (obs::WriteProfile(profile, profile_path)) {
      std::fprintf(stderr, "profile: wrote %zu call-tree nodes to %s\n",
                   profile.nodes().size(), profile_path.c_str());
    } else {
      std::fprintf(stderr, "profile: cannot write %s\n", profile_path.c_str());
    }
  }
  const std::string metrics_dest = GetOr(args, "metrics", "");
  if (!metrics_dest.empty()) {
    const std::string text = obs::Registry::Instance().RenderText();
    if (metrics_dest == "stdout") {
      std::fputs(text.c_str(), stdout);
    } else if (metrics_dest == "stderr") {
      std::fputs(text.c_str(), stderr);
    } else {
      std::ofstream os(metrics_dest, std::ios::trunc);
      if (os) {
        os << text;
      } else {
        std::fprintf(stderr, "metrics: cannot write %s\n",
                     metrics_dest.c_str());
      }
    }
  }
  return rc;
}

}  // namespace
}  // namespace tsfm::cli

int main(int argc, char** argv) { return tsfm::cli::Main(argc, argv); }
