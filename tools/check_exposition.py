#!/usr/bin/env python3
"""Validate Prometheus text exposition scraped from `tsfm serve`.

Used by the serve-smoke CI job: the scrape (via `tsfm serve-stats` or the
kMetricsRequest verb) is piped into this script, which fails on anything a
real Prometheus server would reject — and, with --require/--require-nonzero,
on missing or stale series the job depends on.

Checks (stdlib only, exposition format 0.0.4):
  * every non-comment line matches  name{labels} value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and parseable float value;
  * label blocks are well-formed (key="value", escaped quotes honored);
  * a # TYPE line precedes the first sample of its family, at most one per
    family, with a known type;
  * histogram families keep their invariants: _bucket le= values ascend,
    bucket counts are monotonically non-decreasing, the +Inf bucket equals
    _count (per label set);
  * --require NAME: at least one sample of NAME exists;
  * --require-nonzero NAME: at least one sample of NAME exists with a
    nonzero value (how CI asserts the rolling window is live, not stale).

NAME matches the sample name exactly (labels stripped), so
`--require-nonzero tsfm_serve_request_latency_window_p99` matches the series
for every {model,op} label set.

Exit status: 0 = valid, 1 = validation failure, 2 = bad usage/input.
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(?:\s+(-?\d+))?$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_labels(block, errors, lineno):
    """'{k="v",k2="v2"}' -> dict; reports malformed blocks."""
    if not block:
        return {}
    inner = block[1:-1]
    labels = {}
    consumed = 0
    for m in LABEL_RE.finditer(inner):
        if m.start() != consumed:
            break
        labels[m.group(1)] = m.group(2)
        consumed = m.end()
    if consumed != len(inner):
        errors.append(f"line {lineno}: malformed label block {block!r}")
    return labels


def family_of(name):
    """Strips histogram series suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(lines):
    errors = []
    types = {}          # family -> declared type
    samples = []        # (name, labels, value, lineno)
    seen_families = set()

    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: malformed TYPE comment")
                    continue
                _, _, family, ptype = parts
                if ptype not in KNOWN_TYPES:
                    errors.append(
                        f"line {lineno}: unknown type {ptype!r} for "
                        f"{family}")
                if family in types:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {family}")
                if family in seen_families:
                    errors.append(
                        f"line {lineno}: TYPE for {family} after its "
                        f"samples")
                types[family] = ptype
            continue  # HELP and other comments pass through
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, label_block, value_text = m.group(1), m.group(2), m.group(3)
        if not METRIC_NAME_RE.match(name):
            errors.append(f"line {lineno}: illegal metric name {name!r}")
            continue
        try:
            value = parse_value(value_text)
        except ValueError:
            errors.append(
                f"line {lineno}: unparseable value {value_text!r} for "
                f"{name}")
            continue
        labels = parse_labels(label_block or "", errors, lineno)
        samples.append((name, labels, value, lineno))
        seen_families.add(family_of(name))

    # Histogram invariants, per family and per non-le label set.
    for family, ptype in types.items():
        if ptype != "histogram":
            continue
        series = {}  # frozenset(non-le labels) -> list[(le, count, lineno)]
        counts = {}  # frozenset(labels) -> _count value
        for name, labels, value, lineno in samples:
            if name == family + "_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(
                        f"line {lineno}: {name} without an le label")
                    continue
                key = frozenset(
                    (k, v) for k, v in labels.items() if k != "le")
                series.setdefault(key, []).append(
                    (parse_value(le), value, lineno))
            elif name == family + "_count":
                counts[frozenset(labels.items())] = (value, lineno)
        for key, buckets in series.items():
            les = [b[0] for b in buckets]
            if les != sorted(les):
                errors.append(
                    f"{family}: bucket le values not ascending ({les})")
            values = [b[1] for b in buckets]
            if values != sorted(values):
                errors.append(
                    f"{family}: bucket counts not monotone ({values})")
            if not buckets or not math.isinf(buckets[-1][0]):
                errors.append(f"{family}: missing +Inf bucket")
                continue
            if key in counts and buckets[-1][1] != counts[key][0]:
                errors.append(
                    f"{family}: +Inf bucket {buckets[-1][1]:g} != _count "
                    f"{counts[key][0]:g}")
    return errors, samples


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default="-",
                        help="exposition file ('-' = stdin, the default)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a sample of NAME exists")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a sample of NAME exists with a "
                             "nonzero value")
    args = parser.parse_args()

    try:
        if args.path == "-":
            lines = sys.stdin.readlines()
        else:
            with open(args.path, "r", encoding="utf-8") as f:
                lines = f.readlines()
    except OSError as e:
        print(f"check_exposition: cannot read {args.path}: {e}",
              file=sys.stderr)
        return 2
    if not any(line.strip() for line in lines):
        print("check_exposition: empty exposition", file=sys.stderr)
        return 2

    errors, samples = validate(lines)
    by_name = {}
    for name, _, value, _ in samples:
        by_name.setdefault(name, []).append(value)

    for name in args.require:
        if name not in by_name:
            errors.append(f"required series {name} is missing")
    for name in args.require_nonzero:
        values = by_name.get(name)
        if values is None:
            errors.append(f"required series {name} is missing")
        elif not any(v != 0 for v in values):
            errors.append(
                f"required series {name} is all-zero ({len(values)} "
                f"sample(s)) — stale or never observed")

    if errors:
        print("check_exposition: FAILED", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"check_exposition: OK ({len(samples)} samples, "
          f"{len(by_name)} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
