#include "finetune/forecast.h"

#include <cmath>

#include "data/dataset.h"
#include "optim/optim.h"
#include "tensor/ops.h"

namespace tsfm::finetune {

namespace {

// Embeds univariate contexts (B, T_ctx) -> (B, E) with the frozen encoder.
Tensor EmbedContexts(const models::FoundationModel& model,
                     const Tensor& contexts) {
  ag::NoGradGuard guard;
  nn::ForwardContext ctx{/*training=*/false, nullptr};
  ag::Var tokens = model.EncodeSeries(ag::Constant(contexts), ctx);
  return ag::MeanAxis(tokens, 1, /*keepdim=*/false).value();
}

Status CheckSeries(const Tensor& series, int64_t horizon,
                   int64_t min_context) {
  if (series.ndim() != 2) {
    return Status::InvalidArgument("series must be (N, T)");
  }
  if (horizon <= 0) return Status::InvalidArgument("horizon must be positive");
  if (series.dim(1) < horizon + min_context) {
    return Status::InvalidArgument(
        "series too short for the requested horizon");
  }
  return Status::OK();
}

}  // namespace

Result<double> FitForecaster(const models::FoundationModel& model,
                             ForecastingHead* head, const Tensor& series,
                             const ForecastOptions& options) {
  TSFM_RETURN_IF_ERROR(CheckSeries(series, options.horizon,
                                   model.config().patch_len));
  const int64_t n = series.dim(0);
  const int64_t t = series.dim(1);
  const int64_t ctx_len = t - options.horizon;
  Tensor contexts = Slice(series, 1, 0, ctx_len);
  Tensor targets = Slice(series, 1, ctx_len, t);  // (N, H)
  Tensor embeddings = EmbedContexts(model, contexts);

  optim::AdamW opt(head->Parameters(), options.lr);
  Rng rng(options.seed ^ 0xF0CA57ULL);
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    auto batches = data::MakeBatches(n, options.batch_size, &rng);
    double loss_sum = 0.0;
    for (const auto& idx : batches) {
      Tensor xb = TakeRows(embeddings, idx);
      Tensor yb = TakeRows(targets, idx);
      ag::Var pred = head->Forward(ag::Constant(xb));
      ag::Var loss = ag::MseLoss(pred, yb);
      loss.Backward();
      opt.Step();
      opt.ZeroGrad();
      loss_sum += loss.value()[0];
    }
    last = loss_sum / static_cast<double>(batches.size());
  }
  return last;
}

Result<Tensor> Forecast(const models::FoundationModel& model,
                        const ForecastingHead& head, const Tensor& contexts) {
  if (contexts.ndim() != 2) {
    return Status::InvalidArgument("contexts must be (B, T_ctx)");
  }
  Tensor embeddings = EmbedContexts(model, contexts);
  ag::NoGradGuard guard;
  return head.Forward(ag::Constant(embeddings)).value();
}

Result<ForecastMetrics> EvaluateForecaster(const models::FoundationModel& model,
                                           const ForecastingHead& head,
                                           const Tensor& series) {
  TSFM_RETURN_IF_ERROR(CheckSeries(series, head.horizon(),
                                   model.config().patch_len));
  const int64_t n = series.dim(0);
  const int64_t t = series.dim(1);
  const int64_t h = head.horizon();
  const int64_t ctx_len = t - h;
  Tensor contexts = Slice(series, 1, 0, ctx_len);
  Tensor targets = Slice(series, 1, ctx_len, t);
  TSFM_ASSIGN_OR_RETURN(Tensor pred, Forecast(model, head, contexts));

  ForecastMetrics metrics;
  for (int64_t i = 0; i < n; ++i) {
    const float last_value = contexts.at({i, ctx_len - 1});
    for (int64_t s = 0; s < h; ++s) {
      const double truth = targets.at({i, s});
      const double model_err = pred.at({i, s}) - truth;
      const double naive_err = last_value - truth;
      metrics.mse += model_err * model_err;
      metrics.mae += std::fabs(model_err);
      metrics.naive_mse += naive_err * naive_err;
      metrics.naive_mae += std::fabs(naive_err);
    }
  }
  const double count = static_cast<double>(n * h);
  metrics.mse /= count;
  metrics.mae /= count;
  metrics.naive_mse /= count;
  metrics.naive_mae /= count;
  return metrics;
}

}  // namespace tsfm::finetune
