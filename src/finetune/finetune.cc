#include "finetune/finetune.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/check.h"
#include "graph/executor.h"
#include "obs/budget.h"
#include "obs/trace.h"
#include "optim/optim.h"
#include "pipeline/pipeline.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "tensor/ops.h"

namespace tsfm::finetune {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Argmax predictions of a logits matrix (N, C).
std::vector<int64_t> Predict(const Tensor& logits) { return ArgMaxLast(logits); }

// Correct predictions in one training batch (for the per-epoch timeline;
// the argmax rides on logits that are already computed).
int64_t CountCorrect(const Tensor& logits, const std::vector<int64_t>& yb) {
  const std::vector<int64_t> pred = ArgMaxLast(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size() && i < yb.size(); ++i) {
    if (pred[i] == yb[i]) ++correct;
  }
  return correct;
}

// Non-owning shared_ptr over a caller-owned object, so the Stage wrappers
// (which hold shared ownership) can compose state the FineTune API still
// receives as raw pointers. The stages live only within this call.
template <typename T>
std::shared_ptr<T> Unowned(T* ptr) {
  return std::shared_ptr<T>(ptr, [](T*) {});
}

}  // namespace

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kHeadOnly:
      return "head_only";
    case Strategy::kAdapterPlusHead:
      return "adapter_plus_head";
    case Strategy::kFullFineTune:
      return "full_fine_tune";
  }
  return "unknown";
}

Tensor EmbedDataset(const models::FoundationModel& model, const Tensor& x,
                    int64_t batch_size, uint64_t seed) {
  return pipeline::EmbedDataset(model, x, batch_size, seed);
}

Tensor EmbedDatasetCached(const models::FoundationModel& model,
                          const Tensor& x, int64_t batch_size, uint64_t seed,
                          const std::string& salt, std::string* mode,
                          const data::ChannelStats* stats) {
  return pipeline::EmbedDatasetCached(model, x, batch_size, seed, salt, stats,
                                      mode);
}

Result<FineTuneResult> FineTune(models::FoundationModel* model,
                                core::Adapter* adapter,
                                const data::TimeSeriesDataset& train,
                                const data::TimeSeriesDataset& test,
                                const FineTuneOptions& options) {
  TSFM_RETURN_IF_ERROR(data::Validate(train));
  Rng head_seed_rng(options.seed ^ 0x51A7E5ULL);
  Rng head_rng = head_seed_rng.Fork();
  models::ClassificationHead head(model->embedding_dim(), train.num_classes,
                                  &head_rng);
  return FineTuneWithHead(model, adapter, &head, train, test, options);
}

Result<FineTuneResult> FineTuneWithHead(models::FoundationModel* model,
                                        core::Adapter* adapter,
                                        models::ClassificationHead* head_ptr,
                                        const data::TimeSeriesDataset& train,
                                        const data::TimeSeriesDataset& test,
                                        const FineTuneOptions& options) {
  TSFM_RETURN_IF_ERROR(data::Validate(train));
  TSFM_RETURN_IF_ERROR(data::Validate(test));
  if (train.channels() != test.channels() ||
      train.num_classes != test.num_classes) {
    return Status::InvalidArgument("train/test splits are inconsistent");
  }
  TSFM_CHECK(head_ptr != nullptr);
  // The budget window covers this run only: clock restarted, allocator peak
  // rebased to the current live footprint (weights still count).
  obs::BeginBudgetRun();
  const auto t_start = Clock::now();
  FineTuneResult result;
  result.graph_enabled = graph::GraphModeEnabled();
  result.embed_mode = simd::QuantModeEnabled()
                          ? "int8"
                          : (result.graph_enabled ? "graph" : "eager");

  auto norm = options.normalize ? std::make_shared<pipeline::NormalizeStage>()
                                : nullptr;
  auto adapt = adapter != nullptr
                   ? std::make_shared<pipeline::AdaptStage>(Unowned(adapter))
                   : nullptr;

  Rng rng(options.seed ^ 0x51A7E5ULL);
  (void)rng.Fork();  // head-init stream consumed by FineTune's wrapper

  const bool learnable_adapter = adapter != nullptr && adapter->IsLearnable();
  const bool encoder_in_loop =
      options.strategy == Strategy::kFullFineTune || learnable_adapter;

  pipeline::ExecutionContext ctx;
  ctx.batch_size = options.batch_size;
  ctx.seed = options.seed;
  ctx.timings = &result.stage_timings;
  ctx.rng = &rng;
  ctx.on_epoch = options.on_epoch;

  if (!encoder_in_loop) {
    // Embed-once fast path: static adapter (or none) + frozen encoder. The
    // whole path is one pipeline — normalize -> adapt -> embed -> head —
    // fitted stage by stage on the training split, then applied as a fitted
    // chain to the test split.
    auto embed = std::make_shared<pipeline::EmbedStage>(
        Unowned<const models::FoundationModel>(model));
    auto head_stage = std::make_shared<pipeline::HeadStage>(
        Unowned(head_ptr), model->embedding_dim(), train.num_classes,
        pipeline::HeadTrainOptions{options.head_epochs, options.head_lr,
                                   options.weight_decay});
    pipeline::Pipeline pipe;
    if (norm != nullptr) pipe.Add(norm);
    if (adapt != nullptr) pipe.Add(adapt);
    pipe.Add(embed).Add(head_stage);

    ctx.allow_embed_cache = true;
    ctx.cache_salt = std::string(StrategyName(options.strategy)) + "/" +
                     (adapter != nullptr ? adapter->name() : "no_adapter");
    ctx.cache_stats = norm != nullptr ? &norm->stats() : nullptr;

    std::string train_mode = result.embed_mode;
    std::string test_mode = result.embed_mode;
    const auto t_train = Clock::now();
    pipeline::ExecutionContext train_ctx = ctx;
    train_ctx.seed = options.seed + 1;
    train_ctx.embed_mode = &train_mode;
    TSFM_ASSIGN_OR_RETURN(Tensor train_logits,
                          pipe.FitTransform(train.x, train.y, train_ctx));
    result.final_loss = head_stage->final_loss();
    result.adapter_fit_seconds =
        adapt != nullptr ? adapt->last_fit_seconds() : 0.0;
    result.train_seconds = SecondsSince(t_train);
    result.train_accuracy = data::Accuracy(Predict(train_logits), train);

    pipeline::ExecutionContext test_ctx = ctx;
    test_ctx.seed = options.seed + 2;
    test_ctx.embed_mode = &test_mode;
    TSFM_ASSIGN_OR_RETURN(Tensor test_logits, pipe.Apply(test.x, test_ctx));
    result.test_accuracy = data::Accuracy(Predict(test_logits), test);
    // "cache" only when the encoder truly never ran for either split.
    result.embed_mode = (train_mode == "cache" && test_mode == "cache")
                            ? "cache"
                            : result.embed_mode;
    result.total_seconds = SecondsSince(t_start);
    return result;
  }

  // Joint loop: encoder in the training graph (lcomb and/or full FT). The
  // prologue stages (normalize, adapter fit) still run as pipeline stages —
  // same stats, same metrics, same timing sink — but each step then drives
  // the encoder through the tape, which no embed-once stage can do.
  models::ClassificationHead& head = *head_ptr;
  data::TimeSeriesDataset train_n = train;
  data::TimeSeriesDataset test_n = test;
  if (norm != nullptr) {
    pipeline::Pipeline prep;
    prep.Add(norm);
    TSFM_ASSIGN_OR_RETURN(train_n.x, prep.FitTransform(train.x, train.y, ctx));
    TSFM_ASSIGN_OR_RETURN(test_n.x, prep.Apply(test.x, ctx));
  }
  if (adapt != nullptr) {
    obs::TraceSpan span(adapt->name());
    const auto t_adapter = Clock::now();
    TSFM_RETURN_IF_ERROR(adapt->Fit(train_n.x, train_n.y, ctx));
    result.adapter_fit_seconds = adapt->last_fit_seconds();
    pipeline::AccumulateStageTiming(ctx.timings, adapt->name(),
                                    SecondsSince(t_adapter));
  }

  // Two parameter groups: the head keeps its (large) head_lr while the
  // adapter/encoder train at the smaller joint_lr — a single small lr
  // starves the randomly initialized head.
  std::vector<ag::Var> slow_params;
  if (learnable_adapter) {
    for (auto& p : adapter->TrainableParameters()) slow_params.push_back(p);
  }
  if (options.strategy == Strategy::kFullFineTune) {
    for (auto& p : model->Parameters()) slow_params.push_back(p);
  }
  std::vector<ag::Var> trainable = head.Parameters();
  trainable.insert(trainable.end(), slow_params.begin(), slow_params.end());
  optim::AdamW head_opt(head.Parameters(), options.head_lr, 0.9f, 0.999f,
                        1e-8f, options.weight_decay);
  std::unique_ptr<optim::AdamW> slow_opt;
  if (!slow_params.empty()) {
    slow_opt = std::make_unique<optim::AdamW>(slow_params, options.joint_lr,
                                              0.9f, 0.999f, 1e-8f,
                                              options.weight_decay);
  }

  const auto t_train = Clock::now();
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.joint_epochs; ++epoch) {
    TSFM_TRACE_SPAN("finetune.joint_epoch");
    const auto t_epoch = Clock::now();
    auto batches =
        data::MakeBatches(train_n.size(), options.batch_size, &rng);
    double loss_sum = 0.0;
    int64_t correct = 0;
    for (const auto& idx : batches) {
      Tensor xb = TakeRows(train_n.x, idx);
      std::vector<int64_t> yb;
      yb.reserve(idx.size());
      for (int64_t i : idx) yb.push_back(train_n.y[static_cast<size_t>(i)]);
      nn::ForwardContext fwd{/*training=*/true, &rng};
      ag::Var input = ag::Constant(xb);
      if (adapter != nullptr) input = adapter->TransformVar(input);
      ag::Var emb = model->EncodeChannels(input, fwd);
      ag::Var logits = head.Forward(emb);
      ag::Var loss = ag::CrossEntropy(logits, yb);
      loss.Backward();
      optim::ClipGradNorm(trainable, 5.0f);
      head_opt.Step();
      if (slow_opt != nullptr) slow_opt->Step();
      head_opt.ZeroGrad();
      if (slow_opt != nullptr) slow_opt->ZeroGrad();
      // Clear stray gradients on frozen parameters too.
      model->ZeroGrad();
      head.ZeroGrad();
      loss_sum += loss.value()[0];
      if (options.on_epoch) correct += CountCorrect(logits.value(), yb);
    }
    pipeline::RecordSteps(static_cast<int64_t>(batches.size()));
    last = loss_sum / static_cast<double>(batches.size());
    TSFM_RETURN_IF_ERROR(pipeline::FinishEpoch(
        options.on_epoch, pipeline::Phase::kJoint, epoch, options.joint_epochs,
        SecondsSince(t_epoch), last, correct, train_n.size()));
  }
  result.final_loss = last;
  result.train_seconds = SecondsSince(t_train);

  // Joint training mutates encoder weights in place; the int8 caches are
  // keyed by weight-data pointer, and a pool could hand a rebuilt tensor the
  // same address, so in quant mode refresh the caches explicitly before the
  // frozen-weight evaluation below.
  if (encoder_in_loop && simd::QuantModeEnabled()) model->PrepareQuantized();

  // Evaluate end-to-end. Batches are independent under NoGrad, so they
  // run in parallel; per-batch predictions are stitched together in batch
  // order so the result matches the serial loop.
  auto evaluate = [&](const data::TimeSeriesDataset& ds) -> Result<double> {
    TSFM_TRACE_SPAN("finetune.evaluate");
    const int64_t bs = std::max<int64_t>(1, options.batch_size);
    const int64_t num_batches = (ds.size() + bs - 1) / bs;
    std::vector<std::vector<int64_t>> batch_preds(
        static_cast<size_t>(num_batches));
    runtime::ParallelFor(0, num_batches, /*grain=*/1, [&](int64_t lo,
                                                          int64_t hi) {
      ag::NoGradGuard guard;
      Rng eval_rng(options.seed + 99);
      nn::ForwardContext fwd{/*training=*/false, &eval_rng};
      for (int64_t b = lo; b < hi; ++b) {
        const int64_t start = b * bs;
        const int64_t end = std::min(ds.size(), start + bs);
        Tensor xb = Slice(ds.x, 0, start, end);
        ag::Var input = ag::Constant(xb);
        if (adapter != nullptr) input = adapter->TransformVar(input);
        ag::Var emb = model->EncodeChannels(input, fwd);
        ag::Var logits = head.Forward(emb);
        batch_preds[static_cast<size_t>(b)] = Predict(logits.value());
      }
    });
    std::vector<int64_t> preds;
    preds.reserve(static_cast<size_t>(ds.size()));
    for (const auto& bp : batch_preds) {
      preds.insert(preds.end(), bp.begin(), bp.end());
    }
    return data::Accuracy(preds, ds);
  };
  TSFM_ASSIGN_OR_RETURN(result.train_accuracy, evaluate(train_n));
  TSFM_ASSIGN_OR_RETURN(result.test_accuracy, evaluate(test_n));
  result.total_seconds = SecondsSince(t_start);
  return result;
}

}  // namespace tsfm::finetune
