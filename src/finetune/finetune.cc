#include "finetune/finetune.h"

#include <chrono>
#include <cstdio>
#include <memory>

#include "graph/executor.h"
#include "io/embed_cache.h"
#include "io/hash.h"
#include "obs/budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optim.h"
#include "resources/measured.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm::finetune {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Training-loop telemetry: every epoch (head-only and joint alike) records
// its wall-clock and throughput and publishes the running loss, so a
// metrics snapshot taken mid-run answers "how fast and how converged".
struct LoopMetrics {
  obs::Counter* epochs;
  obs::Counter* steps;
  obs::Histogram* epoch_seconds;
  obs::Gauge* last_loss;
  obs::Gauge* samples_per_sec;
  obs::Histogram* adapter_fit_seconds;
};

LoopMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static LoopMetrics m{r.GetCounter("finetune.epochs"),
                       r.GetCounter("finetune.steps"),
                       r.GetHistogram("finetune.epoch_seconds"),
                       r.GetGauge("finetune.last_loss"),
                       r.GetGauge("finetune.samples_per_sec"),
                       r.GetHistogram("adapter.fit_seconds")};
  return m;
}

// Publishes one finished epoch: loss gauge, epoch timing histogram, and the
// samples/s gauge the throughput regressions are judged by.
void RecordEpoch(double seconds, double mean_loss, int64_t samples) {
  LoopMetrics& m = Metrics();
  m.epochs->Add(1);
  m.epoch_seconds->Observe(seconds);
  m.last_loss->Set(mean_loss);
  if (seconds > 0.0) {
    m.samples_per_sec->Set(static_cast<double>(samples) / seconds);
  }
}

// Argmax predictions of a logits matrix (N, C).
std::vector<int64_t> Predict(const Tensor& logits) { return ArgMaxLast(logits); }

// Correct predictions in one training batch (for the per-epoch timeline;
// the argmax rides on logits that are already computed).
int64_t CountCorrect(const Tensor& logits, const std::vector<int64_t>& yb) {
  const std::vector<int64_t> pred = ArgMaxLast(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size() && i < yb.size(); ++i) {
    if (pred[i] == yb[i]) ++correct;
  }
  return correct;
}

// Shared per-epoch bookkeeping: publishes the metrics, delivers the
// progress callback (when installed), and polls the resource budget.
Status FinishEpoch(const FineTuneOptions& options, const char* phase,
                   int64_t epoch, int64_t total_epochs, double seconds,
                   double mean_loss, int64_t correct, int64_t samples) {
  RecordEpoch(seconds, mean_loss, samples);
  if (options.on_epoch) {
    EpochProgress progress;
    progress.epoch = epoch;
    progress.total_epochs = total_epochs;
    progress.phase = phase;
    progress.loss = mean_loss;
    progress.accuracy =
        samples > 0 ? static_cast<double>(correct) / samples : 0.0;
    progress.seconds = seconds;
    progress.pool_live_bytes = resources::CurrentLiveBytes();
    progress.samples_per_sec =
        seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
    options.on_epoch(progress);
  }
  return obs::CheckBudget(phase[0] == 'h' ? "finetune.head_epoch"
                                          : "finetune.joint_epoch");
}

// Trains a linear head on cached embeddings; returns final mean loss.
Result<double> TrainHead(models::ClassificationHead* head,
                         const Tensor& embeddings,  // (N, E)
                         const std::vector<int64_t>& labels,
                         const FineTuneOptions& options, Rng* rng) {
  optim::AdamW opt(head->Parameters(), options.head_lr, 0.9f, 0.999f, 1e-8f,
                   options.weight_decay);
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.head_epochs; ++epoch) {
    TSFM_TRACE_SPAN("finetune.head_epoch");
    const auto t_epoch = Clock::now();
    auto batches =
        data::MakeBatches(embeddings.dim(0), options.batch_size, rng);
    double loss_sum = 0.0;
    int64_t correct = 0;
    for (const auto& idx : batches) {
      Tensor xb = TakeRows(embeddings, idx);
      std::vector<int64_t> yb;
      yb.reserve(idx.size());
      for (int64_t i : idx) yb.push_back(labels[static_cast<size_t>(i)]);
      ag::Var logits = head->Forward(ag::Constant(xb));
      ag::Var loss = ag::CrossEntropy(logits, yb);
      loss.Backward();
      opt.Step();
      opt.ZeroGrad();
      head->ZeroGrad();
      loss_sum += loss.value()[0];
      if (options.on_epoch) correct += CountCorrect(logits.value(), yb);
    }
    Metrics().steps->Add(batches.size());
    last = loss_sum / static_cast<double>(batches.size());
    TSFM_RETURN_IF_ERROR(FinishEpoch(options, "head", epoch,
                                     options.head_epochs,
                                     SecondsSince(t_epoch), last, correct,
                                     embeddings.dim(0)));
  }
  return last;
}

double EvaluateOnEmbeddings(const models::ClassificationHead& head,
                            const Tensor& embeddings,
                            const data::TimeSeriesDataset& ds) {
  ag::NoGradGuard guard;
  ag::Var logits = head.Forward(ag::Constant(embeddings));
  return data::Accuracy(Predict(logits.value()), ds);
}

}  // namespace

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kHeadOnly:
      return "head_only";
    case Strategy::kAdapterPlusHead:
      return "adapter_plus_head";
    case Strategy::kFullFineTune:
      return "full_fine_tune";
  }
  return "unknown";
}

Tensor EmbedDataset(const models::FoundationModel& model, const Tensor& x,
                    int64_t batch_size, uint64_t seed) {
  TSFM_TRACE_SPAN("finetune.embed_dataset");
  const int64_t n = x.dim(0);
  const int64_t bs = std::max<int64_t>(1, batch_size);
  const int64_t num_batches = (n + bs - 1) / bs;
  std::vector<Tensor> chunks(static_cast<size_t>(num_batches));
  // Batches are independent under the frozen encoder, so they embed in
  // parallel; results land in per-batch slots and concatenate in batch
  // order, so the output matches the serial loop exactly. The NoGradGuard
  // (thread-local) and the inference Rng are per task: evaluation forward
  // passes never consume randomness, so per-task re-seeding is equivalent
  // to the former shared stream.
  runtime::ParallelFor(0, num_batches, /*grain=*/1, [&](int64_t lo,
                                                        int64_t hi) {
    ag::NoGradGuard guard;
    Rng rng(seed);
    nn::ForwardContext ctx{/*training=*/false, &rng};
    for (int64_t b = lo; b < hi; ++b) {
      // Budget poll per batch: a long embed pass over a large dataset must
      // abort at the cap, not after it. A tripped budget abandons the
      // remaining batches; the caller sees it via CheckBudget and discards
      // the partial result.
      if (!obs::CheckBudget("finetune.embed_dataset").ok()) return;
      const int64_t start = b * bs;
      const int64_t end = std::min(n, start + bs);
      Tensor xb = Slice(x, 0, start, end);
      ag::Var emb = model.EncodeChannels(ag::Constant(xb), ctx);
      chunks[static_cast<size_t>(b)] = emb.value();
    }
  });
  if (obs::BudgetTripped()) return Tensor();
  return Concat(chunks, 0);
}

Tensor EmbedDatasetCached(const models::FoundationModel& model,
                          const Tensor& x, int64_t batch_size, uint64_t seed,
                          const std::string& salt, std::string* mode) {
  // The cache key is deliberately independent of execution mode: graph and
  // eager runs are bit-identical, so they share entries (asserted by the CI
  // smoke test that warms the cache eager and hits it with --graph).
  const char* encoder_mode =
      graph::GraphModeEnabled() ? "graph" : "eager";
  if (mode != nullptr) *mode = encoder_mode;
  if (!io::EmbedCacheEnabled()) {
    return EmbedDataset(model, x, batch_size, seed);
  }
  // The encoder is frozen on this path, so the embedding is a pure function
  // of the weights, the (normalized, adapter-transformed) input, and the
  // batch split. Hash exactly those; the salt folds in strategy/adapter tags
  // so unrelated pipelines can never share an entry even on a hash fluke.
  io::HashBuilder key;
  key.AddString("tsfm.embed.v2");
  key.AddString(salt);
  key.AddU64(static_cast<uint64_t>(batch_size));
  for (const auto& [name, p] : model.NamedParameters()) {
    key.AddString(name);
    key.AddTensor(p.value());
  }
  key.AddTensor(x);
  const std::string digest = key.HexDigest();
  if (Result<Tensor> hit = io::EmbedCacheLookup(digest); hit.ok()) {
    if (mode != nullptr) *mode = "cache";
    return std::move(hit).value();
  }
  Tensor emb = EmbedDataset(model, x, batch_size, seed);
  if (!obs::BudgetTripped() && emb.numel() > 0) {
    if (Status s = io::EmbedCacheStore(digest, emb); !s.ok()) {
      // A failed store never fails the run; the embedding is already here.
      std::fprintf(stderr, "embed cache store failed: %s\n",
                   s.ToString().c_str());
    }
  }
  return emb;
}

Result<FineTuneResult> FineTune(models::FoundationModel* model,
                                core::Adapter* adapter,
                                const data::TimeSeriesDataset& train,
                                const data::TimeSeriesDataset& test,
                                const FineTuneOptions& options) {
  TSFM_RETURN_IF_ERROR(data::Validate(train));
  Rng head_seed_rng(options.seed ^ 0x51A7E5ULL);
  Rng head_rng = head_seed_rng.Fork();
  models::ClassificationHead head(model->embedding_dim(), train.num_classes,
                                  &head_rng);
  return FineTuneWithHead(model, adapter, &head, train, test, options);
}

Result<FineTuneResult> FineTuneWithHead(models::FoundationModel* model,
                                        core::Adapter* adapter,
                                        models::ClassificationHead* head_ptr,
                                        const data::TimeSeriesDataset& train,
                                        const data::TimeSeriesDataset& test,
                                        const FineTuneOptions& options) {
  TSFM_RETURN_IF_ERROR(data::Validate(train));
  TSFM_RETURN_IF_ERROR(data::Validate(test));
  if (train.channels() != test.channels() ||
      train.num_classes != test.num_classes) {
    return Status::InvalidArgument("train/test splits are inconsistent");
  }
  TSFM_CHECK(head_ptr != nullptr);
  models::ClassificationHead& head = *head_ptr;
  // The budget window covers this run only: clock restarted, allocator peak
  // rebased to the current live footprint (weights still count).
  obs::BeginBudgetRun();
  const auto t_start = Clock::now();
  FineTuneResult result;
  result.graph_enabled = graph::GraphModeEnabled();
  result.embed_mode = result.graph_enabled ? "graph" : "eager";

  // 1. Normalize with train statistics.
  data::TimeSeriesDataset train_n = train;
  data::TimeSeriesDataset test_n = test;
  if (options.normalize) {
    const data::ChannelStats stats = data::ComputeChannelStats(train);
    train_n = data::NormalizeWith(train, stats);
    test_n = data::NormalizeWith(test, stats);
  }

  // 2. Fit the adapter on the training split.
  const auto t_adapter = Clock::now();
  if (adapter != nullptr) {
    TSFM_TRACE_SPAN("finetune.adapter_fit");
    TSFM_RETURN_IF_ERROR(adapter->Fit(train_n.x, train_n.y));
    Metrics().adapter_fit_seconds->Observe(SecondsSince(t_adapter));
  }
  result.adapter_fit_seconds = SecondsSince(t_adapter);

  Rng rng(options.seed ^ 0x51A7E5ULL);
  (void)rng.Fork();  // head-init stream consumed by FineTune's wrapper

  const bool learnable_adapter = adapter != nullptr && adapter->IsLearnable();
  const bool encoder_in_loop =
      options.strategy == Strategy::kFullFineTune || learnable_adapter;

  const auto t_train = Clock::now();
  if (!encoder_in_loop) {
    // Embed-once fast path: static adapter (or none) + frozen encoder.
    Tensor train_x = train_n.x;
    Tensor test_x = test_n.x;
    if (adapter != nullptr) {
      TSFM_ASSIGN_OR_RETURN(train_x, adapter->Transform(train_n.x));
      TSFM_ASSIGN_OR_RETURN(test_x, adapter->Transform(test_n.x));
    }
    const std::string cache_salt =
        std::string(StrategyName(options.strategy)) + "/" +
        (adapter != nullptr ? adapter->name() : "no_adapter");
    std::string train_mode, test_mode;
    Tensor train_emb = EmbedDatasetCached(*model, train_x, options.batch_size,
                                          options.seed + 1, cache_salt,
                                          &train_mode);
    TSFM_RETURN_IF_ERROR(obs::CheckBudget("finetune.embed_dataset"));
    Tensor test_emb = EmbedDatasetCached(*model, test_x, options.batch_size,
                                         options.seed + 2, cache_salt,
                                         &test_mode);
    TSFM_RETURN_IF_ERROR(obs::CheckBudget("finetune.embed_dataset"));
    // "cache" only when the encoder truly never ran for either split.
    result.embed_mode = (train_mode == "cache" && test_mode == "cache")
                            ? "cache"
                            : result.embed_mode;
    TSFM_ASSIGN_OR_RETURN(
        result.final_loss,
        TrainHead(&head, train_emb, train_n.y, options, &rng));
    result.train_seconds = SecondsSince(t_train);
    result.train_accuracy = EvaluateOnEmbeddings(head, train_emb, train_n);
    result.test_accuracy = EvaluateOnEmbeddings(head, test_emb, test_n);
    result.total_seconds = SecondsSince(t_start);
    return result;
  }

  // 3. Joint loop: encoder in the training graph (lcomb and/or full FT).
  // Two parameter groups: the head keeps its (large) head_lr while the
  // adapter/encoder train at the smaller joint_lr — a single small lr
  // starves the randomly initialized head.
  std::vector<ag::Var> slow_params;
  if (learnable_adapter) {
    for (auto& p : adapter->TrainableParameters()) slow_params.push_back(p);
  }
  if (options.strategy == Strategy::kFullFineTune) {
    for (auto& p : model->Parameters()) slow_params.push_back(p);
  }
  std::vector<ag::Var> trainable = head.Parameters();
  trainable.insert(trainable.end(), slow_params.begin(), slow_params.end());
  optim::AdamW head_opt(head.Parameters(), options.head_lr, 0.9f, 0.999f,
                        1e-8f, options.weight_decay);
  std::unique_ptr<optim::AdamW> slow_opt;
  if (!slow_params.empty()) {
    slow_opt = std::make_unique<optim::AdamW>(slow_params, options.joint_lr,
                                              0.9f, 0.999f, 1e-8f,
                                              options.weight_decay);
  }

  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.joint_epochs; ++epoch) {
    TSFM_TRACE_SPAN("finetune.joint_epoch");
    const auto t_epoch = Clock::now();
    auto batches =
        data::MakeBatches(train_n.size(), options.batch_size, &rng);
    double loss_sum = 0.0;
    int64_t correct = 0;
    for (const auto& idx : batches) {
      Tensor xb = TakeRows(train_n.x, idx);
      std::vector<int64_t> yb;
      yb.reserve(idx.size());
      for (int64_t i : idx) yb.push_back(train_n.y[static_cast<size_t>(i)]);
      nn::ForwardContext ctx{/*training=*/true, &rng};
      ag::Var input = ag::Constant(xb);
      if (adapter != nullptr) input = adapter->TransformVar(input);
      ag::Var emb = model->EncodeChannels(input, ctx);
      ag::Var logits = head.Forward(emb);
      ag::Var loss = ag::CrossEntropy(logits, yb);
      loss.Backward();
      optim::ClipGradNorm(trainable, 5.0f);
      head_opt.Step();
      if (slow_opt != nullptr) slow_opt->Step();
      head_opt.ZeroGrad();
      if (slow_opt != nullptr) slow_opt->ZeroGrad();
      // Clear stray gradients on frozen parameters too.
      model->ZeroGrad();
      head.ZeroGrad();
      loss_sum += loss.value()[0];
      if (options.on_epoch) correct += CountCorrect(logits.value(), yb);
    }
    Metrics().steps->Add(batches.size());
    last = loss_sum / static_cast<double>(batches.size());
    TSFM_RETURN_IF_ERROR(FinishEpoch(options, "joint", epoch,
                                     options.joint_epochs,
                                     SecondsSince(t_epoch), last, correct,
                                     train_n.size()));
  }
  result.final_loss = last;
  result.train_seconds = SecondsSince(t_train);

  // 4. Evaluate end-to-end. Batches are independent under NoGrad, so they
  // run in parallel; per-batch predictions are stitched together in batch
  // order so the result matches the serial loop.
  auto evaluate = [&](const data::TimeSeriesDataset& ds) -> Result<double> {
    TSFM_TRACE_SPAN("finetune.evaluate");
    const int64_t bs = std::max<int64_t>(1, options.batch_size);
    const int64_t num_batches = (ds.size() + bs - 1) / bs;
    std::vector<std::vector<int64_t>> batch_preds(
        static_cast<size_t>(num_batches));
    runtime::ParallelFor(0, num_batches, /*grain=*/1, [&](int64_t lo,
                                                          int64_t hi) {
      ag::NoGradGuard guard;
      Rng eval_rng(options.seed + 99);
      nn::ForwardContext ctx{/*training=*/false, &eval_rng};
      for (int64_t b = lo; b < hi; ++b) {
        const int64_t start = b * bs;
        const int64_t end = std::min(ds.size(), start + bs);
        Tensor xb = Slice(ds.x, 0, start, end);
        ag::Var input = ag::Constant(xb);
        if (adapter != nullptr) input = adapter->TransformVar(input);
        ag::Var emb = model->EncodeChannels(input, ctx);
        ag::Var logits = head.Forward(emb);
        batch_preds[static_cast<size_t>(b)] = Predict(logits.value());
      }
    });
    std::vector<int64_t> preds;
    preds.reserve(static_cast<size_t>(ds.size()));
    for (const auto& bp : batch_preds) {
      preds.insert(preds.end(), bp.begin(), bp.end());
    }
    return data::Accuracy(preds, ds);
  };
  TSFM_ASSIGN_OR_RETURN(result.train_accuracy, evaluate(train_n));
  TSFM_ASSIGN_OR_RETURN(result.test_accuracy, evaluate(test_n));
  result.total_seconds = SecondsSince(t_start);
  return result;
}

}  // namespace tsfm::finetune
