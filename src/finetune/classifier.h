#ifndef TSFM_FINETUNE_CLASSIFIER_H_
#define TSFM_FINETUNE_CLASSIFIER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "finetune/finetune.h"
#include "models/head.h"
#include "models/pretrained.h"
#include "obs/run_report.h"
#include "pipeline/session.h"

namespace tsfm::finetune {

/// Configuration of the one-stop classifier pipeline.
struct ClassifierConfig {
  models::ModelKind model_kind = models::ModelKind::kMoment;
  models::FoundationModelConfig model_config;  // defaulted from model_kind
  models::PretrainOptions pretrain;
  /// Pretrained checkpoint location; empty = pretrain in memory each time.
  std::string checkpoint_path;
  /// nullopt = no adapter (all channels go to the encoder).
  std::optional<core::AdapterKind> adapter = core::AdapterKind::kPca;
  core::AdapterOptions adapter_options;
  FineTuneOptions finetune;
  /// Directory for the run-report manifest written after Fit. Empty = fall
  /// back to TSFM_RUN_REPORT; when that is unset too, no file is written
  /// (the report is still assembled and available via `last_report()`).
  std::string report_dir;

  ClassifierConfig() : model_config(models::MomentSmallConfig()) {}
};

/// High-level "user-friendly" API: a foundation model + adapter + head bundle
/// with an sklearn-like Fit / Predict / Evaluate surface. This is the object
/// a downstream user adopts; the lower-level pieces stay available for
/// research use.
///
/// Since the pipeline refactor this is a facade over the pipeline layer:
/// Fit drives the stage pipeline (via FineTuneWithHead), the fitted state is
/// published as an immutable pipeline::InferenceSession, and Predict /
/// Evaluate delegate to that session — so classifier predictions and session
/// predictions are bit-identical by construction. `session()` hands the
/// bundle out for concurrent serving; each Fit or Load publishes a fresh
/// session and never mutates a previously handed-out one.
class TsfmClassifier {
 public:
  /// Builds the pipeline: loads (or pretrains) the foundation model and
  /// constructs the adapter.
  static Result<TsfmClassifier> Create(const ClassifierConfig& config);

  TsfmClassifier(TsfmClassifier&&) = default;
  TsfmClassifier& operator=(TsfmClassifier&&) = default;

  /// Fits adapter + head on `train` (and reports held-out accuracy on
  /// `valid` if provided; otherwise training accuracy is reported).
  Status Fit(const data::TimeSeriesDataset& train,
             const data::TimeSeriesDataset* valid = nullptr);

  /// Predicts class labels for a raw (N, T, D) batch.
  Result<std::vector<int64_t>> Predict(const Tensor& x) const;

  /// Accuracy on a labeled dataset.
  Result<double> Evaluate(const data::TimeSeriesDataset& ds) const;

  bool fitted() const { return fitted_; }
  /// Metrics of the last Fit call. Requires fitted().
  const FineTuneResult& last_fit_result() const { return last_result_; }
  /// Full run-report manifest of the last Fit call (timeline, measured
  /// memory, paper-scale estimate, budget verdict). Requires fitted().
  const obs::RunReport& last_report() const { return last_report_; }
  /// Path the last report was written to; empty when no report directory
  /// was configured (config or TSFM_RUN_REPORT).
  const std::string& last_report_path() const { return last_report_path_; }
  const models::FoundationModel& model() const { return *model_; }
  /// Null if the pipeline was configured without an adapter.
  const core::Adapter* adapter() const { return adapter_.get(); }

  /// The immutable fitted bundle serving Predict: safe to share across
  /// threads and to keep using after this classifier refits (a refit
  /// publishes a new session; handed-out sessions are never mutated).
  /// Null before Fit/Load.
  std::shared_ptr<const pipeline::InferenceSession> session() const {
    return session_;
  }

  /// Persists the *fitted* pipeline state — adapter, trained head, and the
  /// training-set normalization statistics — under `prefix` (three files
  /// via the pipeline registry's artifact naming: `<prefix>.adapter` when an
  /// adapter is configured, `<prefix>.head`, `<prefix>.stats`). The
  /// foundation-model weights are NOT duplicated; they live in the
  /// checkpoint referenced by the config. Requires fitted().
  Status Save(const std::string& prefix) const;

  /// Restores state written by `Save` into a classifier created with the
  /// same configuration (same model family/config, adapter kind and D',
  /// same number of classes). The pipeline is ready to Predict afterwards.
  Status Load(const std::string& prefix, int64_t num_classes);

 private:
  TsfmClassifier() = default;

  /// Publishes the current fitted state as a fresh immutable session.
  Status RefreshSession();

  ClassifierConfig config_;
  std::shared_ptr<models::FoundationModel> model_;
  std::shared_ptr<core::Adapter> adapter_;
  std::shared_ptr<models::ClassificationHead> head_;
  data::ChannelStats stats_;
  int64_t num_classes_ = 0;
  bool fitted_ = false;
  std::shared_ptr<const pipeline::InferenceSession> session_;
  FineTuneResult last_result_;
  obs::RunReport last_report_;
  std::string last_report_path_;
};

}  // namespace tsfm::finetune

#endif  // TSFM_FINETUNE_CLASSIFIER_H_
