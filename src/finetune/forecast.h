#ifndef TSFM_FINETUNE_FORECAST_H_
#define TSFM_FINETUNE_FORECAST_H_

#include <cstdint>
#include <memory>

#include "models/foundation_model.h"
#include "nn/layers.h"

namespace tsfm::finetune {

/// Linear forecasting head: maps the pooled context embedding (B, E) to the
/// next `horizon` values (B, H). Together with a frozen pretrained encoder
/// this is the forecasting analogue of the classification head — the "more
/// complex time series tasks" direction from the paper's conclusion.
class ForecastingHead : public nn::Module {
 public:
  ForecastingHead(int64_t embedding_dim, int64_t horizon, Rng* rng)
      : horizon_(horizon),
        fc_(std::make_shared<nn::Linear>(embedding_dim, horizon, rng)) {
    RegisterModule("fc", fc_);
  }

  ag::Var Forward(const ag::Var& embeddings) const {
    return fc_->Forward(embeddings);
  }

  int64_t horizon() const { return horizon_; }

 private:
  int64_t horizon_;
  std::shared_ptr<nn::Linear> fc_;
};

/// Hyper-parameters for head-only forecasting fine-tuning.
struct ForecastOptions {
  int64_t horizon = 8;
  int64_t epochs = 40;
  int64_t batch_size = 32;
  float lr = 5e-2f;
  uint64_t seed = 0;
};

/// Forecast quality metrics, reported against the last-value (persistence)
/// naive baseline.
struct ForecastMetrics {
  double mse = 0.0;
  double mae = 0.0;
  double naive_mse = 0.0;  // persistence baseline
  double naive_mae = 0.0;
};

/// Trains `head` (frozen encoder) to predict the last `horizon` steps of each
/// series in `series` (N, T) from the preceding context. Returns the final
/// training loss. The encoder embeds each context once (embed-once path).
Result<double> FitForecaster(const models::FoundationModel& model,
                             ForecastingHead* head, const Tensor& series,
                             const ForecastOptions& options);

/// Predicts `horizon` values following each context row (B, T_ctx).
Result<Tensor> Forecast(const models::FoundationModel& model,
                        const ForecastingHead& head, const Tensor& contexts);

/// Splits each series of `series` (N, T) into (context, target-of-horizon),
/// forecasts, and reports MSE/MAE against the truth plus the persistence
/// baseline.
Result<ForecastMetrics> EvaluateForecaster(const models::FoundationModel& model,
                                           const ForecastingHead& head,
                                           const Tensor& series);

}  // namespace tsfm::finetune

#endif  // TSFM_FINETUNE_FORECAST_H_
