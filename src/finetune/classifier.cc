#include "finetune/classifier.h"

#include <algorithm>
#include <fstream>

#include "core/io_util.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace tsfm::finetune {

Result<TsfmClassifier> TsfmClassifier::Create(const ClassifierConfig& config) {
  TsfmClassifier classifier;
  classifier.config_ = config;
  // Default the architecture to the requested family if the caller left the
  // config at its MOMENT default but asked for ViT.
  if (config.model_kind == models::ModelKind::kVit &&
      classifier.config_.model_config.name == "MOMENT") {
    classifier.config_.model_config = models::VitSmallConfig();
  }
  TSFM_ASSIGN_OR_RETURN(
      classifier.model_,
      models::LoadOrPretrain(config.model_kind,
                             classifier.config_.model_config, config.pretrain,
                             config.checkpoint_path));
  if (config.adapter.has_value()) {
    classifier.adapter_ =
        core::CreateAdapter(*config.adapter, config.adapter_options);
    if (classifier.adapter_ == nullptr) {
      return Status::InvalidArgument("unknown adapter kind");
    }
  }
  return classifier;
}

Status TsfmClassifier::Fit(const data::TimeSeriesDataset& train,
                           const data::TimeSeriesDataset* valid) {
  TSFM_RETURN_IF_ERROR(data::Validate(train));
  stats_ = data::ComputeChannelStats(train);

  Rng head_rng(config_.finetune.seed * 2654435761ULL + 13);
  head_ = std::make_unique<models::ClassificationHead>(
      model_->embedding_dim(), train.num_classes, &head_rng);

  // FineTuneWithHead normalizes internally; we keep `stats_` only for
  // Predict-time preprocessing, so the two normalizations are identical by
  // construction.
  const data::TimeSeriesDataset& eval_split =
      valid != nullptr ? *valid : train;
  auto result = FineTuneWithHead(model_.get(), adapter_.get(), head_.get(),
                                 train, eval_split, config_.finetune);
  TSFM_RETURN_IF_ERROR(result.status());
  last_result_ = *result;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<int64_t>> TsfmClassifier::Predict(const Tensor& x) const {
  if (!fitted_) return Status::FailedPrecondition("classifier not fitted");
  if (x.ndim() != 3) {
    return Status::InvalidArgument("Predict expects (N, T, D)");
  }
  ag::NoGradGuard guard;
  Tensor input = x;
  if (config_.finetune.normalize) {
    input = Div(Sub(x, stats_.mean), stats_.std);
  }
  std::vector<int64_t> predictions;
  predictions.reserve(static_cast<size_t>(x.dim(0)));
  const int64_t batch = std::max<int64_t>(1, config_.finetune.batch_size);
  Rng eval_rng(config_.finetune.seed + 99);
  nn::ForwardContext ctx{/*training=*/false, &eval_rng};
  for (int64_t start = 0; start < input.dim(0); start += batch) {
    const int64_t end = std::min(input.dim(0), start + batch);
    Tensor xb = Slice(input, 0, start, end);
    ag::Var reduced = ag::Constant(xb);
    if (adapter_ != nullptr) reduced = adapter_->TransformVar(reduced);
    ag::Var emb = model_->EncodeChannels(reduced, ctx);
    ag::Var logits = head_->Forward(emb);
    for (int64_t p : ArgMaxLast(logits.value())) predictions.push_back(p);
  }
  return predictions;
}

Result<double> TsfmClassifier::Evaluate(
    const data::TimeSeriesDataset& ds) const {
  TSFM_RETURN_IF_ERROR(data::Validate(ds));
  TSFM_ASSIGN_OR_RETURN(std::vector<int64_t> predictions, Predict(ds.x));
  return data::Accuracy(predictions, ds);
}

Status TsfmClassifier::Save(const std::string& prefix) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted classifier");
  }
  if (adapter_ != nullptr) {
    TSFM_RETURN_IF_ERROR(core::SaveAdapter(*adapter_, config_.adapter_options,
                                           prefix + ".adapter"));
  }
  TSFM_RETURN_IF_ERROR(nn::SaveCheckpoint(*head_, prefix + ".head"));
  std::ofstream os(prefix + ".stats", std::ios::binary | std::ios::trunc);
  if (!os) return Status::IoError("cannot open " + prefix + ".stats");
  core::io::WriteTensor(&os, stats_.mean);
  core::io::WriteTensor(&os, stats_.std);
  if (!os) return Status::IoError("write failed: " + prefix + ".stats");
  return Status::OK();
}

Status TsfmClassifier::Load(const std::string& prefix, int64_t num_classes) {
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (config_.adapter.has_value()) {
    TSFM_ASSIGN_OR_RETURN(adapter_, core::LoadAdapter(prefix + ".adapter"));
    if (adapter_->kind() != *config_.adapter) {
      return Status::InvalidArgument(
          "saved adapter kind does not match the classifier configuration");
    }
  }
  Rng head_rng(0);  // weights are overwritten by the checkpoint below
  head_ = std::make_unique<models::ClassificationHead>(
      model_->embedding_dim(), num_classes, &head_rng);
  TSFM_RETURN_IF_ERROR(nn::LoadCheckpoint(head_.get(), prefix + ".head"));
  std::ifstream is(prefix + ".stats", std::ios::binary);
  if (!is) return Status::IoError("cannot open " + prefix + ".stats");
  TSFM_RETURN_IF_ERROR(core::io::ReadTensor(&is, &stats_.mean));
  TSFM_RETURN_IF_ERROR(core::io::ReadTensor(&is, &stats_.std));
  fitted_ = true;
  last_result_ = FineTuneResult{};
  return Status::OK();
}

}  // namespace tsfm::finetune
