#include "finetune/classifier.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/budget.h"
#include "obs/metrics.h"
#include "pipeline/registry.h"
#include "resources/cost_model.h"
#include "resources/measured.h"
#include "tensor/ops.h"

namespace tsfm::finetune {

namespace {

// JSON literals for RunReport::options (the report writer emits values
// verbatim, so numbers stay typed without a JSON library).
std::string JsonInt(int64_t v) { return std::to_string(v); }

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// The paper-scale prediction for the configuration this classifier just ran:
// same model family, same regime, channels clamped to the adapter's D'.
void FillEstimate(const ClassifierConfig& config, const core::Adapter* adapter,
                  const data::TimeSeriesDataset& train,
                  const data::TimeSeriesDataset& eval_split,
                  obs::RunReport* report) {
  const resources::PaperModelSpec spec =
      config.model_kind == models::ModelKind::kMoment
          ? resources::MomentPaperSpec()
          : resources::VitPaperSpec();
  resources::TrainRegime regime = resources::TrainRegime::kEmbedOnceHeadOnly;
  if (config.finetune.strategy == Strategy::kFullFineTune) {
    regime = resources::TrainRegime::kFullFineTune;
  } else if (adapter != nullptr && adapter->IsLearnable()) {
    regime = resources::TrainRegime::kAdapterPlusHeadLearnable;
  }
  int64_t channels = train.channels();
  if (adapter != nullptr) {
    channels = std::min(channels, config.adapter_options.out_channels);
  }
  const resources::Workload workload{train.size(), eval_split.size(),
                                     channels};
  const resources::ResourceEstimate est = resources::EstimateRun(
      spec, resources::V100Spec(), workload, regime);
  report->has_estimate = true;
  report->estimate_model = spec.name;
  report->estimate_regime = resources::TrainRegimeName(regime);
  report->estimate_verdict = resources::VerdictString(est.verdict);
  report->estimate_channels = channels;
  report->estimate_values = {
      {"param_bytes", est.param_bytes},
      {"optimizer_bytes", est.optimizer_bytes},
      {"activation_bytes", est.activation_bytes},
      {"attention_bytes", est.attention_bytes},
      {"peak_memory_bytes", est.peak_memory_bytes},
      {"total_flops", est.total_flops},
      {"total_seconds", est.total_seconds},
  };
}

}  // namespace

Result<TsfmClassifier> TsfmClassifier::Create(const ClassifierConfig& config) {
  TsfmClassifier classifier;
  classifier.config_ = config;
  // Default the architecture to the requested family if the caller left the
  // config at its MOMENT default but asked for ViT.
  if (config.model_kind == models::ModelKind::kVit &&
      classifier.config_.model_config.name == "MOMENT") {
    classifier.config_.model_config = models::VitSmallConfig();
  }
  TSFM_ASSIGN_OR_RETURN(
      classifier.model_,
      models::LoadOrPretrain(config.model_kind,
                             classifier.config_.model_config, config.pretrain,
                             config.checkpoint_path));
  if (config.adapter.has_value()) {
    classifier.adapter_ =
        core::CreateAdapter(*config.adapter, config.adapter_options);
    if (classifier.adapter_ == nullptr) {
      return Status::InvalidArgument("unknown adapter kind");
    }
  }
  return classifier;
}

Status TsfmClassifier::RefreshSession() {
  pipeline::SessionOptions session_options;
  session_options.normalize = config_.finetune.normalize;
  session_options.batch_size = config_.finetune.batch_size;
  session_options.seed = config_.finetune.seed;
  TSFM_ASSIGN_OR_RETURN(
      session_, pipeline::InferenceSession::Create(model_, adapter_, head_,
                                                   stats_, num_classes_,
                                                   session_options));
  return Status::OK();
}

Status TsfmClassifier::Fit(const data::TimeSeriesDataset& train,
                           const data::TimeSeriesDataset* valid) {
  TSFM_RETURN_IF_ERROR(data::Validate(train));
  stats_ = data::ComputeChannelStats(train);

  // Fresh adapter and head every Fit: sessions handed out before this call
  // keep serving the previous fitted state untouched.
  if (config_.adapter.has_value()) {
    adapter_ = core::CreateAdapter(*config_.adapter, config_.adapter_options);
    if (adapter_ == nullptr) {
      return Status::InvalidArgument("unknown adapter kind");
    }
  }
  Rng head_rng(config_.finetune.seed * 2654435761ULL + 13);
  head_ = std::make_shared<models::ClassificationHead>(
      model_->embedding_dim(), train.num_classes, &head_rng);
  num_classes_ = train.num_classes;

  // FineTuneWithHead normalizes internally; we keep `stats_` only for
  // Predict-time preprocessing, so the two normalizations are identical by
  // construction.
  const data::TimeSeriesDataset& eval_split =
      valid != nullptr ? *valid : train;

  // Run-report assembly: chain a timeline collector onto the caller's
  // epoch callback and measure the allocator footprint around the run.
  obs::RunReport report;
  report.command = "classify";
  report.model = models::ModelKindName(config_.model_kind);
  report.adapter = config_.adapter.has_value()
                       ? core::AdapterKindName(*config_.adapter)
                       : "none";
  report.strategy = StrategyName(config_.finetune.strategy);
  report.dprime = config_.adapter.has_value()
                      ? config_.adapter_options.out_channels
                      : 0;
  const FineTuneOptions& ft = config_.finetune;
  report.options = {
      {"head_epochs", JsonInt(ft.head_epochs)},
      {"joint_epochs", JsonInt(ft.joint_epochs)},
      {"batch_size", JsonInt(ft.batch_size)},
      {"head_lr", JsonDouble(ft.head_lr)},
      {"joint_lr", JsonDouble(ft.joint_lr)},
      {"weight_decay", JsonDouble(ft.weight_decay)},
      {"seed", JsonInt(static_cast<int64_t>(ft.seed))},
      {"normalize", ft.normalize ? "true" : "false"},
  };

  FineTuneOptions run_options = config_.finetune;
  const auto user_on_epoch = run_options.on_epoch;
  run_options.on_epoch = [&report, &user_on_epoch](const EpochProgress& p) {
    obs::RunReportEpoch e;
    e.epoch = p.epoch;
    e.phase = PhaseName(p.phase);
    e.loss = p.loss;
    e.accuracy = p.accuracy;
    e.seconds = p.seconds;
    e.pool_live_bytes = static_cast<double>(p.pool_live_bytes);
    report.epochs.push_back(std::move(e));
    if (user_on_epoch) user_on_epoch(p);
  };

  Result<FineTuneResult> result = Status::Internal("fit did not run");
  const resources::MeasuredMemory mem = resources::MeasurePeak([&] {
    result = FineTuneWithHead(model_.get(), adapter_.get(), head_.get(),
                              train, eval_split, run_options);
  });
  TSFM_RETURN_IF_ERROR(result.status());
  last_result_ = *result;

  report.mem_baseline_bytes = static_cast<double>(mem.baseline_bytes);
  report.mem_peak_bytes = static_cast<double>(mem.peak_bytes);
  report.mem_acquires = static_cast<double>(mem.acquires);
  report.mem_pool_hits = static_cast<double>(mem.pool_hits);
  report.mem_heap_allocs = static_cast<double>(mem.heap_allocs);
  report.graph_enabled = last_result_.graph_enabled;
  report.embed_mode = last_result_.embed_mode;
  {
    auto& reg = obs::Registry::Instance();
    report.graph_captures =
        static_cast<double>(reg.GetCounter("graph.captures")->value());
    report.graph_executions =
        static_cast<double>(reg.GetCounter("graph.executions")->value());
    report.graph_eager_fallbacks =
        static_cast<double>(reg.GetCounter("graph.eager_fallbacks")->value());
    report.graph_fused_ops =
        static_cast<double>(reg.GetCounter("graph.fused_ops")->value());
    report.graph_peak_bytes = reg.GetGauge("graph.peak_bytes")->value();
  }
  report.train_accuracy = last_result_.train_accuracy;
  report.test_accuracy = last_result_.test_accuracy;
  report.final_loss = last_result_.final_loss;
  report.adapter_fit_seconds = last_result_.adapter_fit_seconds;
  report.train_seconds = last_result_.train_seconds;
  report.total_seconds = last_result_.total_seconds;
  for (const pipeline::StageTiming& t : last_result_.stage_timings) {
    report.stages.push_back(obs::RunReportStage{t.stage, t.seconds});
  }
  FillEstimate(config_, adapter_.get(), train, eval_split, &report);
  // Device-budget semantics: what had to fit is baseline (weights, cached
  // data) plus the run's peak on top of it.
  report.budget = obs::JudgeBudget(
      obs::CurrentBudget(),
      static_cast<double>(mem.baseline_bytes + mem.peak_bytes),
      last_result_.total_seconds);
  last_report_ = std::move(report);

  last_report_path_.clear();
  const std::string report_dir = !config_.report_dir.empty()
                                     ? config_.report_dir
                                     : obs::RunReportDirFromEnv();
  if (!report_dir.empty()) {
    TSFM_ASSIGN_OR_RETURN(last_report_path_,
                          obs::WriteRunReport(last_report_, report_dir));
  }
  TSFM_RETURN_IF_ERROR(RefreshSession());
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<int64_t>> TsfmClassifier::Predict(const Tensor& x) const {
  if (!fitted_) return Status::FailedPrecondition("classifier not fitted");
  // Delegation, not reimplementation: the session runs exactly the
  // training-time preprocessing and evaluation loop, so facade and session
  // predictions are bit-identical by construction.
  return session_->PredictBatch(x);
}

Result<double> TsfmClassifier::Evaluate(
    const data::TimeSeriesDataset& ds) const {
  TSFM_RETURN_IF_ERROR(data::Validate(ds));
  TSFM_ASSIGN_OR_RETURN(std::vector<int64_t> predictions, Predict(ds.x));
  return data::Accuracy(predictions, ds);
}

Status TsfmClassifier::Save(const std::string& prefix) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted classifier");
  }
  return pipeline::SaveFittedBundle(prefix, adapter_.get(),
                                    config_.adapter_options, *head_, stats_);
}

Status TsfmClassifier::Load(const std::string& prefix, int64_t num_classes) {
  TSFM_ASSIGN_OR_RETURN(
      pipeline::FittedBundle bundle,
      pipeline::LoadFittedBundle(prefix, config_.adapter.has_value(),
                                 model_->embedding_dim(), num_classes));
  if (config_.adapter.has_value() &&
      bundle.adapter->kind() != *config_.adapter) {
    return Status::InvalidArgument(
        "saved adapter kind does not match the classifier configuration");
  }
  adapter_ = std::move(bundle.adapter);
  head_ = std::move(bundle.head);
  stats_ = std::move(bundle.stats);
  num_classes_ = num_classes;
  TSFM_RETURN_IF_ERROR(RefreshSession());
  fitted_ = true;
  last_result_ = FineTuneResult{};
  return Status::OK();
}

}  // namespace tsfm::finetune
