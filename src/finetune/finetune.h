#ifndef TSFM_FINETUNE_FINETUNE_H_
#define TSFM_FINETUNE_FINETUNE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "core/adapter.h"
#include "data/dataset.h"
#include "models/foundation_model.h"
#include "models/head.h"
#include "pipeline/stage.h"
#include "pipeline/stages.h"

namespace tsfm::finetune {

/// Fine-tuning strategies from the paper:
///  - kHeadOnly: encoder frozen; the dataset is embedded once and only the
///    linear head is trained (with or without a static adapter in front).
///  - kAdapterPlusHead: the adapter and head are trained; for static
///    adapters this reduces to the embed-once path (the adapter is fitted,
///    not gradient-trained), for lcomb every step runs through the encoder.
///  - kFullFineTune: adapter (if learnable), encoder and head all train.
enum class Strategy { kHeadOnly, kAdapterPlusHead, kFullFineTune };

const char* StrategyName(Strategy strategy);

/// Epoch progress now lives in the pipeline layer (it is shared by every
/// training loop); these aliases keep the historical finetune:: spellings
/// working. `EpochProgress::phase` is a pipeline::Phase enum — use
/// PhaseName(phase) where the old code compared the raw string.
using pipeline::EpochProgress;
using pipeline::Phase;
using pipeline::PhaseName;

/// Hyper-parameters of one fine-tuning run.
struct FineTuneOptions {
  Strategy strategy = Strategy::kAdapterPlusHead;
  /// Epochs of head training on cached embeddings (embed-once path).
  int64_t head_epochs = 60;
  /// Epochs of joint training when the encoder is in the loop.
  int64_t joint_epochs = 20;
  int64_t batch_size = 32;
  float head_lr = 5e-2f;
  float joint_lr = 5e-3f;
  float weight_decay = 1e-4f;
  /// Seed for batching, head init, dropout.
  uint64_t seed = 0;
  /// Z-score-normalize with train statistics before the adapter (paper
  /// preprocessing).
  bool normalize = true;
  /// Invoked after every finished training epoch (head and joint phases
  /// alike). Must be cheap and must not mutate the model. Leave empty when
  /// no timeline is wanted — the loops then skip all progress bookkeeping.
  pipeline::EpochCallback on_epoch;
};

/// Outcome of a fine-tuning run on the scaled models (real measured numbers,
/// not the paper-scale simulation — that lives in tsfm::resources).
struct FineTuneResult {
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double final_loss = 0.0;
  /// Wall-clock seconds: fitting the adapter, embedding/training, total.
  double adapter_fit_seconds = 0.0;
  double train_seconds = 0.0;
  double total_seconds = 0.0;
  /// Whether graph mode (TSFM_GRAPH=1 / --graph) was on during the run.
  bool graph_enabled = false;
  /// How the no-grad encoder forwards actually ran: "graph", "eager", or
  /// "cache" when every dataset embedding came from the embedding cache and
  /// the encoder never executed. Surfaces in the run report's "execution"
  /// section.
  std::string embed_mode = "eager";
  /// Wall-clock per pipeline stage (normalize/adapt/embed/head), aggregated
  /// over the run's passes. Surfaces in the run report's "stages" section.
  std::vector<pipeline::StageTiming> stage_timings;
};

/// Runs one fine-tuning experiment.
///
/// `adapter` may be null (no adapter: all channels go to the encoder).
/// `model` is mutated only under kFullFineTune; learnable adapters are
/// mutated by training. Returns InvalidArgument on shape mismatches and
/// propagates adapter failures.
///
/// When a live resource budget is configured (obs::SetBudget, or the CLI's
/// --mem-budget / --time-budget), the epoch and embed loops poll it and the
/// run stops early with ResourceExhausted — diagnosis included — instead of
/// blowing the cap.
Result<FineTuneResult> FineTune(models::FoundationModel* model,
                                core::Adapter* adapter,
                                const data::TimeSeriesDataset& train,
                                const data::TimeSeriesDataset& test,
                                const FineTuneOptions& options);

/// Like `FineTune`, but trains into a caller-owned classification head so
/// the fitted (adapter, head) pair can keep serving predictions afterwards
/// (used by `TsfmClassifier`). `head` must map the model's embedding to
/// `train.num_classes` logits.
Result<FineTuneResult> FineTuneWithHead(models::FoundationModel* model,
                                        core::Adapter* adapter,
                                        models::ClassificationHead* head,
                                        const data::TimeSeriesDataset& train,
                                        const data::TimeSeriesDataset& test,
                                        const FineTuneOptions& options);

/// Embeds every sample of `ds` (already adapter-transformed) with the frozen
/// encoder in `batch_size` chunks, without building a tape. Returns (N, E).
/// Thin forwarder to pipeline::EmbedDataset (the implementation moved into
/// the pipeline layer with the Stage refactor).
Tensor EmbedDataset(const models::FoundationModel& model, const Tensor& x,
                    int64_t batch_size, uint64_t seed);

/// `EmbedDataset` behind the content-addressed embedding cache
/// (io::EmbedCache*). When a cache directory is configured (TSFM_CACHE_DIR
/// or the CLI's --cache-dir), the key hashes the model's parameters, the
/// adapter-transformed input tensor, the batch size, `salt` (strategy +
/// adapter tag from the caller) and — when `stats` is non-null — the
/// normalization statistics the input was produced with; a hit skips the
/// encoder entirely and is bit-identical to the miss path. With the cache
/// disabled this is exactly `EmbedDataset`. Results of budget-aborted embed
/// passes are never stored. When `mode` is non-null it receives how the
/// embedding was produced: "cache" on a hit, otherwise "graph"/"eager" per
/// the current graph mode. Thin forwarder to pipeline::EmbedDatasetCached.
Tensor EmbedDatasetCached(const models::FoundationModel& model,
                          const Tensor& x, int64_t batch_size, uint64_t seed,
                          const std::string& salt, std::string* mode = nullptr,
                          const data::ChannelStats* stats = nullptr);

}  // namespace tsfm::finetune

#endif  // TSFM_FINETUNE_FINETUNE_H_
