#ifndef TSFM_RESOURCES_COST_MODEL_H_
#define TSFM_RESOURCES_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace tsfm::resources {

/// Architecture of a foundation model at *paper scale*, used to predict the
/// memory/time behaviour the paper observed on a V100 (Table 1, Figure 1,
/// Appendix C.5). These are the published model sizes, not our scaled-down
/// CPU models.
struct PaperModelSpec {
  std::string name;
  int64_t params;          // total parameter count
  int64_t d_model;
  int64_t num_layers;
  int64_t num_heads;
  int64_t d_hidden;
  int64_t padded_length;   // inputs are padded/resized to this length
  int64_t patch_len;
  int64_t patch_stride;
  int64_t train_batch;     // per-step fine-tuning batch size
  int64_t infer_batch;     // batch used for embed-once inference
  /// Activation floats stored per token per layer per d_model unit during
  /// training (calibrated to the paper's observed COM boundary).
  double act_floats_per_token;
  int64_t full_ft_epochs;     // epochs of a full fine-tuning run
  int64_t adapter_ft_epochs;  // epochs when training adapter+head (lcomb)

  /// Number of patch tokens per channel (fixed by padding).
  int64_t NumPatches() const;
};

/// MOMENT-large (341 M params; Goswami et al., 2024). Inputs are padded to
/// 512 steps and split into 64 non-overlapping patches of 8.
PaperModelSpec MomentPaperSpec();

/// The paper's ViT model (8 M params): overlapping patches (len 8, stride 4)
/// over inputs padded to 512 steps -> 127 tokens per channel.
PaperModelSpec VitPaperSpec();

/// GPU budget of the paper's testbed.
struct GpuSpec {
  double memory_bytes;        // 32 GB V100
  double throughput_flops;    // effective sustained FLOP/s
  double time_limit_seconds;  // 2-hour cap per run
};
GpuSpec V100Spec();

/// How the model is fine-tuned, which determines what must stay resident in
/// GPU memory and how many model passes the run performs.
enum class TrainRegime {
  /// Frozen encoder, embed the dataset once, train only the linear head.
  /// Static adapters (PCA/SVD/Rand_Proj/VAR) also use this path.
  kEmbedOnceHeadOnly,
  /// Learnable adapter (lcomb) + head: every step runs forward AND backward
  /// through the frozen encoder (gradients must reach the adapter).
  kAdapterPlusHeadLearnable,
  /// All weights trainable (optionally behind an adapter).
  kFullFineTune,
};

const char* TrainRegimeName(TrainRegime regime);

/// Shape of one fine-tuning workload.
struct Workload {
  int64_t train_size;
  int64_t test_size;
  /// Channels seen by the encoder (D, or D' when an adapter is in front).
  int64_t channels;
};

/// Outcome of a simulated run.
enum class Verdict { kOk, kCudaOutOfMemory, kTimeout };

const char* VerdictString(Verdict verdict);

/// Predicted resource usage of one fine-tuning run at paper scale.
struct ResourceEstimate {
  double param_bytes = 0;
  double optimizer_bytes = 0;
  double activation_bytes = 0;
  double attention_bytes = 0;
  double peak_memory_bytes = 0;
  double total_flops = 0;
  double total_seconds = 0;
  Verdict verdict = Verdict::kOk;
};

/// Simulates fine-tuning `model` on `workload` under `regime` with `gpu`.
///
/// Memory model: parameters + optimizer state (12 B per trainable scalar)
/// + training-graph activations (act_floats_per_token * d_model * layers *
/// 4 B per token, over train_batch * channels * patches tokens) + attention
/// score matrices (batch * channels * heads * patches^2 * layers * 4 B).
/// Embed-once inference streams layer-by-layer with a batch of one sample,
/// so only one layer of activations is resident.
///
/// Time model: 2 * params * tokens FLOPs per forward, 6 * params * tokens per
/// training step (fwd+bwd), divided by sustained throughput; embed-once runs
/// a single forward pass over train+test followed by a fixed head-training
/// cost; COM is checked before TO (a run that cannot allocate never times
/// out).
ResourceEstimate EstimateRun(const PaperModelSpec& model, const GpuSpec& gpu,
                             const Workload& workload, TrainRegime regime);

/// Fixed wall-clock charged for fitting a static adapter + training the
/// classification head on cached embeddings (seconds, paper scale).
double HeadTrainSeconds();

}  // namespace tsfm::resources

#endif  // TSFM_RESOURCES_COST_MODEL_H_
