#include "resources/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tsfm::resources {

int64_t PaperModelSpec::NumPatches() const {
  if (patch_stride == patch_len) return padded_length / patch_len;
  return (padded_length - patch_len) / patch_stride + 1;
}

PaperModelSpec MomentPaperSpec() {
  PaperModelSpec s;
  s.name = "MOMENT";
  s.params = 341'000'000;
  s.d_model = 1024;
  s.num_layers = 24;
  s.num_heads = 16;
  s.d_hidden = 4096;
  s.padded_length = 512;
  s.patch_len = 8;
  s.patch_stride = 8;  // 64 patches
  s.train_batch = 16;
  s.infer_batch = 1;
  s.act_floats_per_token = 9.5;
  s.full_ft_epochs = 80;
  s.adapter_ft_epochs = 25;
  return s;
}

PaperModelSpec VitPaperSpec() {
  PaperModelSpec s;
  s.name = "ViT";
  s.params = 8'000'000;
  s.d_model = 320;
  s.num_layers = 6;
  s.num_heads = 8;
  s.d_hidden = 1280;
  s.padded_length = 512;
  s.patch_len = 8;
  s.patch_stride = 4;  // 127 patches
  s.train_batch = 64;
  s.infer_batch = 1;
  s.act_floats_per_token = 17.0;
  s.full_ft_epochs = 60;
  s.adapter_ft_epochs = 25;
  return s;
}

GpuSpec V100Spec() {
  return GpuSpec{/*memory_bytes=*/32.0 * (1ull << 30),
                 /*throughput_flops=*/5e12,
                 /*time_limit_seconds=*/7200.0};
}

const char* TrainRegimeName(TrainRegime regime) {
  switch (regime) {
    case TrainRegime::kEmbedOnceHeadOnly:
      return "embed_once_head_only";
    case TrainRegime::kAdapterPlusHeadLearnable:
      return "adapter_plus_head_learnable";
    case TrainRegime::kFullFineTune:
      return "full_fine_tune";
  }
  return "unknown";
}

const char* VerdictString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return "OK";
    case Verdict::kCudaOutOfMemory:
      return "COM";
    case Verdict::kTimeout:
      return "TO";
  }
  return "unknown";
}

double HeadTrainSeconds() { return 120.0; }

ResourceEstimate EstimateRun(const PaperModelSpec& model, const GpuSpec& gpu,
                             const Workload& workload, TrainRegime regime) {
  TSFM_CHECK_GT(workload.channels, 0);
  TSFM_CHECK_GT(workload.train_size, 0);
  const double patches = static_cast<double>(model.NumPatches());
  const double params = static_cast<double>(model.params);

  ResourceEstimate est;
  est.param_bytes = params * 4.0;

  // Bytes of stored activations per token of the *training* graph.
  const double act_bytes_per_token = model.act_floats_per_token *
                                     static_cast<double>(model.d_model) *
                                     static_cast<double>(model.num_layers) *
                                     4.0;

  const double train_batch =
      static_cast<double>(std::min(model.train_batch, workload.train_size));
  const double batch_tokens =
      train_batch * static_cast<double>(workload.channels) * patches;

  switch (regime) {
    case TrainRegime::kEmbedOnceHeadOnly: {
      // Inference streams one sample and one layer at a time.
      const double infer_tokens = static_cast<double>(model.infer_batch) *
                                  static_cast<double>(workload.channels) *
                                  patches;
      est.activation_bytes = infer_tokens * act_bytes_per_token /
                             static_cast<double>(model.num_layers);
      est.attention_bytes = static_cast<double>(model.infer_batch) *
                            static_cast<double>(workload.channels) *
                            static_cast<double>(model.num_heads) * patches *
                            patches * 4.0;  // one layer resident
      est.optimizer_bytes = 0.0;  // head optimizer state is negligible
      const double embed_samples =
          static_cast<double>(workload.train_size + workload.test_size);
      const double embed_tokens =
          embed_samples * static_cast<double>(workload.channels) * patches;
      est.total_flops = 2.0 * params * embed_tokens;
      est.total_seconds =
          est.total_flops / gpu.throughput_flops + HeadTrainSeconds();
      break;
    }
    case TrainRegime::kAdapterPlusHeadLearnable: {
      // Gradients flow to the adapter: full training graph resident, but
      // optimizer state only covers the adapter + head (negligible).
      est.activation_bytes = batch_tokens * act_bytes_per_token;
      est.attention_bytes = train_batch *
                            static_cast<double>(workload.channels) *
                            static_cast<double>(model.num_heads) * patches *
                            patches * static_cast<double>(model.num_layers) *
                            4.0;
      est.optimizer_bytes = 0.0;
      const double epoch_tokens = static_cast<double>(workload.train_size) *
                                  static_cast<double>(workload.channels) *
                                  patches;
      est.total_flops = 6.0 * params * epoch_tokens *
                        static_cast<double>(model.adapter_ft_epochs);
      est.total_seconds = est.total_flops / gpu.throughput_flops;
      break;
    }
    case TrainRegime::kFullFineTune: {
      est.activation_bytes = batch_tokens * act_bytes_per_token;
      est.attention_bytes = train_batch *
                            static_cast<double>(workload.channels) *
                            static_cast<double>(model.num_heads) * patches *
                            patches * static_cast<double>(model.num_layers) *
                            4.0;
      est.optimizer_bytes = params * 12.0;  // AdamW grad + m + v
      const double epoch_tokens = static_cast<double>(workload.train_size) *
                                  static_cast<double>(workload.channels) *
                                  patches;
      est.total_flops = 6.0 * params * epoch_tokens *
                        static_cast<double>(model.full_ft_epochs);
      est.total_seconds = est.total_flops / gpu.throughput_flops;
      break;
    }
  }

  est.peak_memory_bytes = est.param_bytes + est.optimizer_bytes +
                          est.activation_bytes + est.attention_bytes;
  if (est.peak_memory_bytes > gpu.memory_bytes) {
    est.verdict = Verdict::kCudaOutOfMemory;
  } else if (est.total_seconds > gpu.time_limit_seconds) {
    est.verdict = Verdict::kTimeout;
  } else {
    est.verdict = Verdict::kOk;
  }
  return est;
}

}  // namespace tsfm::resources
