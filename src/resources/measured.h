#ifndef TSFM_RESOURCES_MEASURED_H_
#define TSFM_RESOURCES_MEASURED_H_

#include <cstdint>
#include <functional>

namespace tsfm::resources {

/// Allocator telemetry for one measured workload, read from the obs metrics
/// registry's `pool.*` values (published by `memory::BufferPool`). All byte
/// figures count allocator capacity (bucket sizes), which is what would
/// actually have to fit on a device.
struct MeasuredMemory {
  /// Capacity live before the workload ran (model weights, cached data, ...).
  int64_t baseline_bytes = 0;
  /// High-water mark of capacity the workload held *above* the baseline.
  int64_t peak_bytes = 0;
  /// Buffer requests the workload issued.
  int64_t acquires = 0;
  /// Requests served from the pool's freelists (no heap traffic).
  int64_t pool_hits = 0;
  /// Requests that went to the heap (pool miss, oversize, or pool disabled).
  int64_t heap_allocs = 0;
};

/// Runs `fn` and reports the BufferPool's peak memory and allocation counts
/// during the call. This is the measured counterpart to `EstimateRun`: the
/// cost model predicts peak bytes analytically at paper scale, this observes
/// them for a real run of the scaled-down CPU models.
///
/// The measurement is a process-wide counter delta, so concurrent allocations
/// from *other* threads during `fn` are attributed to it; measure quiesced
/// workloads (tests, benches) for meaningful numbers.
MeasuredMemory MeasurePeak(const std::function<void()>& fn);

/// Capacity currently held by live tensors, in bytes.
int64_t CurrentLiveBytes();

}  // namespace tsfm::resources

#endif  // TSFM_RESOURCES_MEASURED_H_
