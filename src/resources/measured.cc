#include "resources/measured.h"

#include "memory/buffer_pool.h"
#include "obs/metrics.h"

namespace tsfm::resources {

namespace {

// Reads one named value from a metrics snapshot (0 when absent — e.g. a
// binary that never allocated a tensor has no pool provider yet).
int64_t Value(const obs::Snapshot& snap, const char* name) {
  auto it = snap.find(name);
  return it == snap.end() ? 0 : static_cast<int64_t>(it->second);
}

}  // namespace

MeasuredMemory MeasurePeak(const std::function<void()>& fn) {
  // All allocator telemetry flows through the obs registry's pool.* values;
  // the only direct coupling to the memory layer left is making sure the
  // provider exists even if no tensor has been allocated yet.
  memory::RegisterPoolMetrics();
  obs::Registry& registry = obs::Registry::Instance();
  registry.ResetPeaks();
  const obs::Snapshot before = registry.TakeSnapshot();
  fn();
  const obs::Snapshot after = registry.TakeSnapshot();

  MeasuredMemory m;
  m.baseline_bytes = Value(before, "pool.live_bytes");
  m.peak_bytes = Value(after, "pool.peak_live_bytes") - m.baseline_bytes;
  if (m.peak_bytes < 0) m.peak_bytes = 0;
  m.acquires = Value(after, "pool.acquires") - Value(before, "pool.acquires");
  m.pool_hits =
      Value(after, "pool.pool_hits") - Value(before, "pool.pool_hits");
  m.heap_allocs =
      Value(after, "pool.heap_allocs") - Value(before, "pool.heap_allocs");
  return m;
}

int64_t CurrentLiveBytes() {
  memory::RegisterPoolMetrics();
  return Value(obs::Registry::Instance().TakeSnapshot(), "pool.live_bytes");
}

}  // namespace tsfm::resources
