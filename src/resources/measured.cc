#include "resources/measured.h"

#include "memory/buffer_pool.h"

namespace tsfm::resources {

MeasuredMemory MeasurePeak(const std::function<void()>& fn) {
  memory::BufferPool& pool = memory::BufferPool::Instance();
  pool.ResetPeak();
  const memory::PoolStats before = pool.Snapshot();
  fn();
  const memory::PoolStats after = pool.Snapshot();

  MeasuredMemory m;
  m.baseline_bytes = static_cast<int64_t>(before.live_bytes);
  m.peak_bytes = static_cast<int64_t>(after.peak_live_bytes) -
                 static_cast<int64_t>(before.live_bytes);
  if (m.peak_bytes < 0) m.peak_bytes = 0;
  m.acquires =
      static_cast<int64_t>(after.acquires) - static_cast<int64_t>(before.acquires);
  m.pool_hits = static_cast<int64_t>(after.pool_hits) -
                static_cast<int64_t>(before.pool_hits);
  m.heap_allocs = static_cast<int64_t>(after.heap_allocs) -
                  static_cast<int64_t>(before.heap_allocs);
  return m;
}

int64_t CurrentLiveBytes() {
  return static_cast<int64_t>(
      memory::BufferPool::Instance().Snapshot().live_bytes);
}

}  // namespace tsfm::resources
