#ifndef TSFM_STATS_STATS_H_
#define TSFM_STATS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tsfm::stats {

/// Sample mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// Unbiased (n-1) sample standard deviation; 0 for fewer than two values.
double SampleStd(const std::vector<double>& values);

/// Regularized incomplete beta function I_x(a, b), for a, b > 0 and
/// x in [0, 1]. Continued-fraction evaluation (Numerical Recipes style).
double RegularizedIncompleteBeta(double a, double b, double x);

/// Two-tailed p-value of a Student-t statistic `t` with `df` degrees of
/// freedom.
double StudentTTwoTailedP(double t, double df);

/// Result of a two-sample Welch t-test (unequal variances), the test used for
/// the paper's Figure 5 heatmaps.
struct WelchResult {
  double t_statistic;
  double degrees_of_freedom;
  double p_value;
};

/// Welch two-sample t-test between accuracy samples `a` and `b` (each needs
/// at least two values). The null hypothesis is equal means; a p-value near 1
/// means the two methods perform statistically alike.
Result<WelchResult> WelchTTest(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Pairwise Welch p-value matrix between methods; entry (i, j) is the p-value
/// of methods[i] vs methods[j], with 1.0 on the diagonal. Each inner vector
/// holds the per-seed accuracies of one method. If either sample in a pair is
/// degenerate (fewer than 2 values), the pair's entry is NaN.
std::vector<std::vector<double>> PairwisePValueMatrix(
    const std::vector<std::vector<double>>& methods);

/// Competition ranks with ties averaged: the highest value gets rank 1.
/// (Used for the paper's Figure 4 average-rank comparison, where lower rank
/// is better performance.)
std::vector<double> RankDescending(const std::vector<double>& values);

/// Averages per-dataset rank vectors into one rank per method.
/// `per_dataset[d][m]` is the accuracy of method m on dataset d.
std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& per_dataset);

/// Formats "0.123 +- 0.456" paper-style from per-seed values.
std::string FormatMeanStd(const std::vector<double>& values);

/// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
double RegularizedLowerGamma(double a, double x);

/// Upper-tail p-value of a chi-square statistic with `df` degrees of freedom.
double ChiSquareUpperTailP(double statistic, double df);

/// Result of the Friedman rank test over N datasets and k methods — the
/// standard omnibus test in time-series-classification papers (the
/// significance companion to Figure 4's average ranks).
struct FriedmanResult {
  double chi_square;
  double degrees_of_freedom;
  double p_value;                   // small => methods differ somewhere
  std::vector<double> average_ranks;
};

/// Friedman test from a matrix `per_dataset[d][m]` of method accuracies.
/// Requires >= 2 datasets and >= 2 methods.
Result<FriedmanResult> FriedmanTest(
    const std::vector<std::vector<double>>& per_dataset);

/// Nemenyi critical difference at alpha = 0.05: two methods' average ranks
/// are significantly different iff they differ by more than this. Supported
/// for 2..10 methods.
Result<double> NemenyiCriticalDifference(int64_t num_methods,
                                         int64_t num_datasets);

}  // namespace tsfm::stats

#endif  // TSFM_STATS_STATS_H_
