#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace tsfm::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double SampleStd(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

namespace {

// Continued fraction for the incomplete beta function (Lentz's algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  TSFM_CHECK_GT(a, 0.0);
  TSFM_CHECK_GT(b, 0.0);
  TSFM_CHECK_GE(x, 0.0);
  TSFM_CHECK_LE(x, 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoTailedP(double t, double df) {
  TSFM_CHECK_GT(df, 0.0);
  if (!std::isfinite(t)) return 0.0;
  const double x = df / (df + t * t);
  // P(|T| > |t|) = I_x(df/2, 1/2).
  return std::clamp(RegularizedIncompleteBeta(df / 2.0, 0.5, x), 0.0, 1.0);
}

Result<WelchResult> WelchTTest(const std::vector<double>& a,
                               const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    return Status::InvalidArgument(
        "WelchTTest needs at least two observations per sample");
  }
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ma = Mean(a);
  const double mb = Mean(b);
  const double sa = SampleStd(a);
  const double sb = SampleStd(b);
  const double va = sa * sa / na;
  const double vb = sb * sb / nb;
  const double denom = std::sqrt(va + vb);
  WelchResult result{};
  if (denom < 1e-300) {
    // Identical (or both zero-variance) samples: no evidence of difference
    // if means agree, total evidence otherwise.
    result.t_statistic = ma == mb ? 0.0 : std::numeric_limits<double>::infinity();
    result.degrees_of_freedom = na + nb - 2.0;
    result.p_value = ma == mb ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = (ma - mb) / denom;
  result.degrees_of_freedom =
      (va + vb) * (va + vb) /
      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  result.p_value =
      StudentTTwoTailedP(result.t_statistic, result.degrees_of_freedom);
  return result;
}

std::vector<std::vector<double>> PairwisePValueMatrix(
    const std::vector<std::vector<double>>& methods) {
  const size_t m = methods.size();
  std::vector<std::vector<double>> out(
      m, std::vector<double>(m, std::numeric_limits<double>::quiet_NaN()));
  for (size_t i = 0; i < m; ++i) {
    out[i][i] = 1.0;
    for (size_t j = i + 1; j < m; ++j) {
      auto r = WelchTTest(methods[i], methods[j]);
      if (r.ok()) {
        out[i][j] = r->p_value;
        out[j][i] = r->p_value;
      }
    }
  }
  return out;
}

std::vector<double> RankDescending(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return values[a] > values[b];
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& per_dataset) {
  if (per_dataset.empty()) return {};
  const size_t m = per_dataset[0].size();
  std::vector<double> sum(m, 0.0);
  for (const auto& dataset : per_dataset) {
    TSFM_CHECK_EQ(dataset.size(), m);
    const std::vector<double> ranks = RankDescending(dataset);
    for (size_t i = 0; i < m; ++i) sum[i] += ranks[i];
  }
  for (double& s : sum) s /= static_cast<double>(per_dataset.size());
  return sum;
}

std::string FormatMeanStd(const std::vector<double>& values) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f+-%.3f", Mean(values),
                SampleStd(values));
  return buf;
}

namespace {

// Series expansion of P(a, x), valid for x < a + 1.
double LowerGammaSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double UpperGammaContinuedFraction(double a, double x) {
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedLowerGamma(double a, double x) {
  TSFM_CHECK_GT(a, 0.0);
  TSFM_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return LowerGammaSeries(a, x);
  return 1.0 - UpperGammaContinuedFraction(a, x);
}

double ChiSquareUpperTailP(double statistic, double df) {
  TSFM_CHECK_GT(df, 0.0);
  if (statistic <= 0.0) return 1.0;
  return std::clamp(1.0 - RegularizedLowerGamma(df / 2.0, statistic / 2.0),
                    0.0, 1.0);
}

Result<FriedmanResult> FriedmanTest(
    const std::vector<std::vector<double>>& per_dataset) {
  const size_t n = per_dataset.size();
  if (n < 2) return Status::InvalidArgument("FriedmanTest needs >= 2 datasets");
  const size_t k = per_dataset[0].size();
  if (k < 2) return Status::InvalidArgument("FriedmanTest needs >= 2 methods");
  for (const auto& row : per_dataset) {
    if (row.size() != k) {
      return Status::InvalidArgument("ragged accuracy matrix");
    }
  }
  FriedmanResult result;
  result.average_ranks = AverageRanks(per_dataset);
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  double sum_r2 = 0.0;
  for (double r : result.average_ranks) sum_r2 += r * r;
  result.chi_square =
      12.0 * dn / (dk * (dk + 1.0)) * (sum_r2 - dk * (dk + 1.0) * (dk + 1.0) / 4.0);
  // Ties deflate the statistic slightly; the untied formula is the standard
  // approximation reported in TSC papers.
  result.chi_square = std::max(0.0, result.chi_square);
  result.degrees_of_freedom = dk - 1.0;
  result.p_value =
      ChiSquareUpperTailP(result.chi_square, result.degrees_of_freedom);
  return result;
}

Result<double> NemenyiCriticalDifference(int64_t num_methods,
                                         int64_t num_datasets) {
  if (num_datasets < 2) {
    return Status::InvalidArgument("need >= 2 datasets");
  }
  // q_0.05 values of the studentized range statistic / sqrt(2) for
  // k = 2..10 (Demsar, 2006, Table 5a).
  static const double kQ05[] = {0.0,   0.0,   1.960, 2.343, 2.569, 2.728,
                                2.850, 2.949, 3.031, 3.102, 3.164};
  if (num_methods < 2 || num_methods > 10) {
    return Status::InvalidArgument(
        "Nemenyi table covers 2..10 methods, got " +
        std::to_string(num_methods));
  }
  const double k = static_cast<double>(num_methods);
  const double n = static_cast<double>(num_datasets);
  return kQ05[num_methods] * std::sqrt(k * (k + 1.0) / (6.0 * n));
}

}  // namespace tsfm::stats
