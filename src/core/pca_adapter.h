#ifndef TSFM_CORE_PCA_ADAPTER_H_
#define TSFM_CORE_PCA_ADAPTER_H_

#include <string>
#include <vector>

#include "core/adapter.h"

namespace tsfm::core {

/// Principal Component Analysis adapter (paper Section 3.3 and Appendix C.1).
///
/// Standard mode (pws == 1): the input (N, T, D) is reshaped to (N*T, D) so
/// PCA captures correlations *between channels* across all time steps; the
/// learned rotation W (D, D') is applied at every time step, preserving the
/// temporal structure. With `scale` set, columns are standardized first
/// ("Scaled PCA").
///
/// Patch mode (pws > 1): the input is reshaped to (N*n_p, pws*D) with
/// n_p = T / pws ("Patch PCA"); each window of pws consecutive time steps is
/// reduced jointly, producing an output of shape (N, n_p, D').
class PcaAdapter : public Adapter {
 public:
  explicit PcaAdapter(const AdapterOptions& options);

  std::string name() const override;
  int64_t output_channels() const override { return out_channels_; }
  bool fitted() const override { return fitted_; }
  Status Fit(const Tensor& x, const std::vector<int64_t>& y) override;
  Result<Tensor> Transform(const Tensor& x) const override;
  AdapterKind kind() const override;
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;

  /// Fraction of total variance captured by the retained components.
  /// Requires fitted().
  double explained_variance_ratio() const { return explained_variance_; }

  /// The learned projection, shape (in_dim, D') where in_dim = pws * D.
  const Tensor& components() const { return components_; }

 private:
  int64_t out_channels_;
  bool scale_;
  int64_t patch_window_;
  bool fitted_ = false;
  int64_t in_channels_ = 0;
  Tensor mean_;        // (pws * D)
  Tensor std_;         // (pws * D), ones when !scale_
  Tensor components_;  // (pws * D, D')
  double explained_variance_ = 0.0;
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_PCA_ADAPTER_H_
