#include "core/lcomb_adapter.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/check.h"
#include "core/io_util.h"
#include "tensor/ops.h"

namespace tsfm::core {

LinearCombinerAdapter::LinearCombinerAdapter(const AdapterOptions& options,
                                             bool use_top_k)
    : out_channels_(options.out_channels),
      use_top_k_(use_top_k),
      top_k_(options.top_k),
      seed_(options.seed) {}

Status LinearCombinerAdapter::Fit(const Tensor& x,
                                  const std::vector<int64_t>& y) {
  TSFM_TRACE_SPAN("adapter.lcomb.fit");
  (void)y;
  if (x.ndim() != 3) {
    return Status::InvalidArgument("adapter input must be (N, T, D)");
  }
  const int64_t d = x.dim(2);
  if (out_channels_ <= 0 || out_channels_ > d) {
    return Status::InvalidArgument("lcomb out_channels out of range");
  }
  if (use_top_k_ && (top_k_ <= 0 || top_k_ > d)) {
    return Status::InvalidArgument("lcomb top_k out of range");
  }
  in_channels_ = d;
  Rng rng(seed_);
  // Small random init scaled like an average over channels so initial
  // outputs are O(1) regardless of D.
  Tensor w = Tensor::RandN(Shape{out_channels_, d}, &rng,
                           1.0f / std::sqrt(static_cast<float>(d)));
  weight_ = ag::Var(std::move(w), /*requires_grad=*/true);
  fitted_ = true;
  return Status::OK();
}

Tensor LinearCombinerAdapter::CurrentTopKMask() const {
  const Tensor& w = weight_.value();
  Tensor mask = Tensor::Zeros(w.shape());
  const int64_t d = in_channels_;
  std::vector<int64_t> order(static_cast<size_t>(d));
  for (int64_t r = 0; r < out_channels_; ++r) {
    const float* row = w.data() + r * d;
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + top_k_, order.end(),
                      [row](int64_t a, int64_t b) {
                        return std::fabs(row[a]) > std::fabs(row[b]);
                      });
    float* mrow = mask.mutable_data() + r * d;
    for (int64_t j = 0; j < top_k_; ++j) {
      mrow[order[static_cast<size_t>(j)]] = 1.0f;
    }
  }
  return mask;
}

ag::Var LinearCombinerAdapter::TransformVar(const ag::Var& x) const {
  TSFM_CHECK(fitted_) << "lcomb adapter not fitted";
  TSFM_CHECK_EQ(x.ndim(), 3);
  TSFM_CHECK_EQ(x.dim(2), in_channels_);

  ag::Var w_eff = weight_;
  if (use_top_k_) {
    // Keep top-k magnitudes per row; rescale each row by the sum of kept
    // magnitudes (selection mask is constant w.r.t. gradients).
    ag::Var masked = ag::Mul(weight_, ag::Constant(CurrentTopKMask()));
    // |w| computed as sqrt(w^2 + eps) to stay differentiable; the masked-out
    // zeros contribute only sqrt(eps) each, which is negligible.
    ag::Var magnitudes = ag::Sqrt(ag::AddScalar(ag::Square(masked), 1e-12f));
    ag::Var denom = ag::AddScalar(
        ag::SumAxis(magnitudes, 1, /*keepdim=*/true), 1e-6f);
    w_eff = ag::Div(masked, denom);
  }
  // (N, T, D) @ (D, D') -> (N, T, D')
  return ag::MatMul(x, ag::TransposeLast2(w_eff));
}

Result<Tensor> LinearCombinerAdapter::Transform(const Tensor& x) const {
  TSFM_TRACE_SPAN("adapter.lcomb.transform");
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  if (x.ndim() != 3 || x.dim(2) != in_channels_) {
    return Status::InvalidArgument("bad input shape for lcomb Transform");
  }
  return TransformVar(ag::Constant(x)).value();
}

std::vector<ag::Var> LinearCombinerAdapter::TrainableParameters() const {
  if (!fitted_) return {};
  return {weight_};
}

AdapterKind LinearCombinerAdapter::kind() const {
  return use_top_k_ ? AdapterKind::kLcombTopK : AdapterKind::kLcomb;
}

Status LinearCombinerAdapter::SaveState(std::ostream* os) const {
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  io::WriteU64(os, static_cast<uint64_t>(in_channels_));
  io::WriteTensor(os, weight_.value());
  return Status::OK();
}

Status LinearCombinerAdapter::LoadState(std::istream* is) {
  uint64_t in_channels = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(is, &in_channels));
  in_channels_ = static_cast<int64_t>(in_channels);
  Tensor w;
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &w));
  if (w.ndim() != 2 || w.dim(0) != out_channels_ ||
      w.dim(1) != in_channels_) {
    return Status::InvalidArgument("lcomb adapter file/config mismatch");
  }
  weight_ = ag::Var(std::move(w), /*requires_grad=*/true);
  fitted_ = true;
  return Status::OK();
}

}  // namespace tsfm::core
