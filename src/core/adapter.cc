#include "core/adapter.h"

#include <sstream>

#include "common/check.h"
#include "core/io_util.h"
#include "core/lcomb_adapter.h"
#include "core/lda_adapter.h"
#include "core/pca_adapter.h"
#include "core/static_adapters.h"
#include "io/artifact.h"

namespace tsfm::core {

namespace {
// Adapter format v2: the option block + SaveState stream live inside the
// io::WriteArtifact container (CRC-32 trailer, atomic replace). Pre-v2
// files ("TSFMADAP" magic, no integrity data) fail the container check.
constexpr uint64_t kAdapterMagic = 0x325044414D465354ULL;  // "TSFMADP2"
constexpr uint32_t kAdapterVersion = 2;
}  // namespace

ag::Var Adapter::TransformVar(const ag::Var& x) const {
  Result<Tensor> out = Transform(x.value());
  TSFM_CHECK(out.ok()) << "Transform failed in TransformVar: "
                       << out.status().ToString();
  return ag::Constant(*out);
}

const char* AdapterKindName(AdapterKind kind) {
  switch (kind) {
    case AdapterKind::kNone:
      return "no_adapter";
    case AdapterKind::kPca:
      return "PCA";
    case AdapterKind::kSvd:
      return "SVD";
    case AdapterKind::kRandProj:
      return "Rand_Proj";
    case AdapterKind::kVar:
      return "VAR";
    case AdapterKind::kLcomb:
      return "lcomb";
    case AdapterKind::kLcombTopK:
      return "lcomb_top_k";
    case AdapterKind::kLda:
      return "LDA";
  }
  return "unknown";
}

std::unique_ptr<Adapter> CreateAdapter(AdapterKind kind,
                                       const AdapterOptions& options) {
  switch (kind) {
    case AdapterKind::kNone:
      return std::make_unique<IdentityAdapter>();
    case AdapterKind::kPca:
      return std::make_unique<PcaAdapter>(options);
    case AdapterKind::kSvd:
      return std::make_unique<SvdAdapter>(options);
    case AdapterKind::kRandProj:
      return std::make_unique<RandProjAdapter>(options);
    case AdapterKind::kVar:
      return std::make_unique<VarAdapter>(options);
    case AdapterKind::kLcomb:
      return std::make_unique<LinearCombinerAdapter>(options,
                                                     /*use_top_k=*/false);
    case AdapterKind::kLcombTopK:
      return std::make_unique<LinearCombinerAdapter>(options,
                                                     /*use_top_k=*/true);
    case AdapterKind::kLda:
      return std::make_unique<LdaAdapter>(options);
  }
  return nullptr;
}

Status SaveAdapter(const Adapter& adapter, const AdapterOptions& options,
                   const std::string& path) {
  if (!adapter.fitted()) {
    return Status::FailedPrecondition("cannot save an unfitted adapter");
  }
  std::ostringstream os;
  io::WriteU64(&os, static_cast<uint64_t>(adapter.kind()));
  io::WriteU64(&os, static_cast<uint64_t>(options.out_channels));
  io::WriteU64(&os, options.pca_scale ? 1 : 0);
  io::WriteU64(&os, static_cast<uint64_t>(options.pca_patch_window));
  io::WriteU64(&os, static_cast<uint64_t>(options.top_k));
  io::WriteU64(&os, options.seed);
  TSFM_RETURN_IF_ERROR(adapter.SaveState(&os));
  if (!os) return Status::IoError("adapter serialization failed");
  return tsfm::io::WriteArtifact(path, kAdapterMagic, kAdapterVersion,
                                 os.str());
}

Result<std::unique_ptr<Adapter>> LoadAdapter(const std::string& path) {
  TSFM_ASSIGN_OR_RETURN(
      const std::string payload,
      tsfm::io::ReadArtifactPayload(path, kAdapterMagic, kAdapterVersion));
  std::istringstream is(payload);
  uint64_t kind_raw = 0, out_channels = 0, pca_scale = 0, pws = 0, top_k = 0,
           seed = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(&is, &kind_raw));
  TSFM_RETURN_IF_ERROR(io::ReadU64(&is, &out_channels));
  TSFM_RETURN_IF_ERROR(io::ReadU64(&is, &pca_scale));
  TSFM_RETURN_IF_ERROR(io::ReadU64(&is, &pws));
  TSFM_RETURN_IF_ERROR(io::ReadU64(&is, &top_k));
  TSFM_RETURN_IF_ERROR(io::ReadU64(&is, &seed));
  if (kind_raw > static_cast<uint64_t>(AdapterKind::kLda)) {
    return Status::IoError("unknown adapter kind in file");
  }
  AdapterOptions options;
  options.out_channels = static_cast<int64_t>(out_channels);
  options.pca_scale = pca_scale != 0;
  options.pca_patch_window = static_cast<int64_t>(pws);
  options.top_k = static_cast<int64_t>(top_k);
  options.seed = seed;
  std::unique_ptr<Adapter> adapter =
      CreateAdapter(static_cast<AdapterKind>(kind_raw), options);
  if (adapter == nullptr) return Status::Internal("factory returned null");
  TSFM_RETURN_IF_ERROR(adapter->LoadState(&is));
  return adapter;
}

const std::vector<AdapterKind>& AllAdapterKinds() {
  static const std::vector<AdapterKind>* kKinds = new std::vector<AdapterKind>{
      AdapterKind::kPca,   AdapterKind::kSvd,   AdapterKind::kRandProj,
      AdapterKind::kVar,   AdapterKind::kLcomb, AdapterKind::kLcombTopK,
  };
  return *kKinds;
}

}  // namespace tsfm::core
