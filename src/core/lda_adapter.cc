#include "core/lda_adapter.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "core/io_util.h"
#include "linalg/linalg.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm::core {

LdaAdapter::LdaAdapter(const AdapterOptions& options)
    : out_channels_(options.out_channels), regularization_(1e-3f) {}

AdapterKind LdaAdapter::kind() const { return AdapterKind::kLda; }

Status LdaAdapter::Fit(const Tensor& x, const std::vector<int64_t>& y) {
  TSFM_TRACE_SPAN("adapter.lda.fit");
  if (x.ndim() != 3) {
    return Status::InvalidArgument("adapter input must be (N, T, D)");
  }
  const int64_t n = x.dim(0);
  const int64_t t = x.dim(1);
  const int64_t d = x.dim(2);
  if (static_cast<int64_t>(y.size()) != n) {
    return Status::InvalidArgument("LDA needs one label per sample");
  }
  if (out_channels_ <= 0 || out_channels_ > d) {
    return Status::InvalidArgument("LDA out_channels out of range");
  }
  if (d > 512) {
    return Status::InvalidArgument(
        "LDA adapter supports up to 512 channels (full eigendecomposition); "
        "reduce with PCA first");
  }
  int64_t num_classes = 0;
  for (int64_t label : y) {
    if (label < 0) return Status::InvalidArgument("negative label");
    num_classes = std::max(num_classes, label + 1);
  }
  in_channels_ = d;

  // Per-time-step rows labeled by their sample's class.
  Tensor rows = x.Reshape(Shape{n * t, d});
  mean_ = Mean(rows, 0);

  // Class means and counts.
  Tensor class_means = Tensor::Zeros(Shape{num_classes, d});
  std::vector<int64_t> counts(static_cast<size_t>(num_classes), 0);
  const float* pr = rows.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = y[static_cast<size_t>(i)];
    counts[static_cast<size_t>(c)] += t;
    float* cm = class_means.mutable_data() + c * d;
    for (int64_t s = 0; s < t; ++s) {
      const float* row = pr + (i * t + s) * d;
      for (int64_t j = 0; j < d; ++j) cm[j] += row[j];
    }
  }
  for (int64_t c = 0; c < num_classes; ++c) {
    if (counts[static_cast<size_t>(c)] == 0) continue;
    const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
    float* cm = class_means.mutable_data() + c * d;
    for (int64_t j = 0; j < d; ++j) cm[j] *= inv;
  }

  // Within-class scatter Sw and between-class scatter Sb (both / total).
  const int64_t total = n * t;
  Tensor sw = Tensor::Zeros(Shape{d, d});
  {
    // Sw = (1/total) sum_i (x_i - mu_{c(i)}) (x_i - mu_{c(i)})^T computed as
    // centered-rows Gram. Centering is elementwise per sample (disjoint
    // output rows), so it parallelizes freely; the Gram accumulation itself
    // runs on the parallel MatMul.
    Tensor centered(Shape{n * t, d});
    float* pc = centered.mutable_data();
    const int64_t grain = std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, t * d));
    runtime::ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const float* cm =
            class_means.data() + y[static_cast<size_t>(i)] * d;
        for (int64_t s = 0; s < t; ++s) {
          const float* row = pr + (i * t + s) * d;
          float* dst = pc + (i * t + s) * d;
          for (int64_t j = 0; j < d; ++j) dst[j] = row[j] - cm[j];
        }
      }
    });
    sw = Scale(MatMul(TransposeLast2(centered), centered),
               1.0f / static_cast<float>(total));
  }
  // Between-class scatter, parallel over output rows. The class loop stays
  // innermost-ascending per row, preserving the serial accumulation order.
  Tensor sb = Tensor::Zeros(Shape{d, d});
  runtime::ParallelFor(0, d, /*grain=*/32, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* row = sb.mutable_data() + i * d;
      for (int64_t c = 0; c < num_classes; ++c) {
        if (counts[static_cast<size_t>(c)] == 0) continue;
        const float weight =
            static_cast<float>(counts[static_cast<size_t>(c)]) /
            static_cast<float>(total);
        const float* cm = class_means.data() + c * d;
        const float di = cm[i] - mean_[i];
        for (int64_t j = 0; j < d; ++j) {
          row[j] += weight * di * (cm[j] - mean_[j]);
        }
      }
    }
  });

  // Regularized whitening of Sw.
  const float trace_scale =
      std::max(1e-12f, SumAll(Mul(sw, Tensor::Eye(d))) / static_cast<float>(d));
  Tensor sw_reg = Add(sw, Scale(Tensor::Eye(d), regularization_ * trace_scale));
  TSFM_ASSIGN_OR_RETURN(EigenResult sw_eig, SymmetricEigen(sw_reg));
  Tensor whiten(Shape{d, d});  // U * Lambda^{-1/2}
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      const float lambda = std::max(sw_eig.eigenvalues[j], 1e-10f);
      whiten.at({i, j}) =
          sw_eig.eigenvectors.at({i, j}) / std::sqrt(lambda);
    }
  }

  // Top directions of the whitened between-class scatter. Beyond rank(Sb)
  // (= classes - 1) eigenvalues are ~0 and the eigenvectors fill the space
  // orthogonally, giving a well-defined D'-dimensional projection.
  Tensor m = MatMul(TransposeLast2(whiten), MatMul(sb, whiten));
  TSFM_ASSIGN_OR_RETURN(EigenResult m_eig, TopKEigen(m, out_channels_));
  components_ = MatMul(whiten, m_eig.eigenvectors);  // (d, D')
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> LdaAdapter::Transform(const Tensor& x) const {
  TSFM_TRACE_SPAN("adapter.lda.transform");
  if (!fitted_) return Status::FailedPrecondition("LDA adapter not fitted");
  if (x.ndim() != 3 || x.dim(2) != in_channels_) {
    return Status::InvalidArgument("bad input shape for LDA Transform");
  }
  const int64_t n = x.dim(0);
  const int64_t t = x.dim(1);
  Tensor rows = x.Reshape(Shape{n * t, in_channels_});
  Tensor projected = MatMul(Sub(rows, mean_), components_);
  return projected.Reshape(Shape{n, t, out_channels_});
}

Status LdaAdapter::SaveState(std::ostream* os) const {
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  io::WriteU64(os, static_cast<uint64_t>(in_channels_));
  io::WriteTensor(os, mean_);
  io::WriteTensor(os, components_);
  return Status::OK();
}

Status LdaAdapter::LoadState(std::istream* is) {
  uint64_t in_channels = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(is, &in_channels));
  in_channels_ = static_cast<int64_t>(in_channels);
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &mean_));
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &components_));
  if (components_.ndim() != 2 || components_.dim(1) != out_channels_) {
    return Status::InvalidArgument("LDA adapter file/config mismatch");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace tsfm::core
