#ifndef TSFM_CORE_LCOMB_ADAPTER_H_
#define TSFM_CORE_LCOMB_ADAPTER_H_

#include <string>
#include <vector>

#include "core/adapter.h"

namespace tsfm::core {

/// Linear Combiner (lcomb) adapter: a *learnable* rotation W (D', D) that
/// linearly recombines the original channels, trained in a supervised manner
/// jointly with the classification head (and optionally the full network)
/// through the foundation model.
///
/// With `use_top_k` (lcomb_top_k, Appendix C.2) a top-k rule regularizes each
/// row of W at every application: only the k entries of largest magnitude are
/// kept, and the row is rescaled by the sum of the magnitudes of the kept
/// entries so the combination stays well-scaled. Gradients flow through the
/// kept entries (the selection mask is treated as constant, straight-through).
class LinearCombinerAdapter : public Adapter {
 public:
  LinearCombinerAdapter(const AdapterOptions& options, bool use_top_k);

  std::string name() const override {
    return use_top_k_ ? "lcomb_top_k" : "lcomb";
  }
  int64_t output_channels() const override { return out_channels_; }
  bool fitted() const override { return fitted_; }

  /// Initializes W with small random values (supervised training happens in
  /// the fine-tuning loop, not here).
  Status Fit(const Tensor& x, const std::vector<int64_t>& y) override;

  /// Applies the *current* W without gradient tracking.
  Result<Tensor> Transform(const Tensor& x) const override;

  /// Differentiable application of W (with the top-k rule if enabled).
  ag::Var TransformVar(const ag::Var& x) const override;

  std::vector<ag::Var> TrainableParameters() const override;
  bool IsLearnable() const override { return true; }
  AdapterKind kind() const override;
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;


  /// The raw (pre-top-k) weight matrix, shape (D', D).
  const ag::Var& weight() const { return weight_; }
  int64_t top_k() const { return top_k_; }

 private:
  /// Builds the constant 0/1 mask selecting the top-k magnitudes per row of
  /// the current weight value.
  Tensor CurrentTopKMask() const;

  int64_t out_channels_;
  bool use_top_k_;
  int64_t top_k_;
  uint64_t seed_;
  bool fitted_ = false;
  int64_t in_channels_ = 0;
  ag::Var weight_;  // (D', D)
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_LCOMB_ADAPTER_H_
