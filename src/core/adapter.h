#ifndef TSFM_CORE_ADAPTER_H_
#define TSFM_CORE_ADAPTER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace tsfm::core {

enum class AdapterKind;  // defined below

/// Interface for channel-dimensionality-reduction adapters.
///
/// An adapter is inserted *before* a univariate-channel foundation model: it
/// maps a multivariate batch (N, T, D) to (N, T', D') with D' <= D (and
/// T' == T except for Patch-PCA, which coarsens time by its window size).
/// Static adapters (PCA, SVD, random projection, variance selection) are
/// fitted once on training data and then act as fixed linear maps; learnable
/// adapters (the linear combiner, lcomb) expose trainable parameters that are
/// optimized jointly with the classification head through the foundation
/// model.
class Adapter {
 public:
  virtual ~Adapter() = default;

  Adapter() = default;
  Adapter(const Adapter&) = delete;
  Adapter& operator=(const Adapter&) = delete;

  /// Human-readable identifier ("PCA", "lcomb_top_k", ...).
  virtual std::string name() const = 0;

  /// Number of output channels D'.
  virtual int64_t output_channels() const = 0;

  /// True once Fit succeeded (learnable adapters are fit by initialization).
  virtual bool fitted() const = 0;

  /// Fits the adapter on training data `x` (N, T, D). Labels `y` are
  /// available for supervised adapters; unsupervised ones ignore them.
  virtual Status Fit(const Tensor& x, const std::vector<int64_t>& y) = 0;

  /// Applies the fitted adapter: (N, T, D) -> (N, T', D').
  virtual Result<Tensor> Transform(const Tensor& x) const = 0;

  /// Differentiable transform used when training through the adapter.
  /// The default lowers to the static `Transform` (constant w.r.t. any
  /// parameters); learnable adapters override it.
  virtual ag::Var TransformVar(const ag::Var& x) const;

  /// Trainable parameters (empty for static adapters).
  virtual std::vector<ag::Var> TrainableParameters() const { return {}; }

  /// True if the adapter has trainable parameters and must run inside the
  /// fine-tuning loop (instead of the embed-once fast path).
  virtual bool IsLearnable() const { return false; }

  /// The adapter's family tag (used when reloading from disk).
  virtual AdapterKind kind() const = 0;

  /// Serializes the fitted state (not the configuration) to `os`.
  /// Requires fitted(). Used by SaveAdapter.
  virtual Status SaveState(std::ostream* os) const = 0;

  /// Restores state written by SaveState; leaves the adapter fitted.
  virtual Status LoadState(std::istream* is) = 0;
};

/// Adapter families implemented by the library (the paper's Section 3.3).
enum class AdapterKind {
  kNone,       // identity: keep all D channels
  kPca,        // principal component analysis (+ scaled and patch variants)
  kSvd,        // truncated SVD (uncentered)
  kRandProj,   // Gaussian random projection
  kVar,        // variance-based channel selection
  kLcomb,      // learnable linear combiner
  kLcombTopK,  // lcomb with the top-k row-sparsification rule
  kLda,        // extension: supervised Fisher-discriminant combiner
};

const char* AdapterKindName(AdapterKind kind);

/// Configuration shared by all adapter kinds.
struct AdapterOptions {
  /// Target number of channels D' (the paper fixes 5 in Table 2).
  int64_t out_channels = 5;
  /// PCA: standardize columns before the eigendecomposition ("Scaled PCA").
  bool pca_scale = false;
  /// PCA: patch window size pws; 1 = standard PCA, 8/16 = Patch-PCA
  /// (Appendix C.1). Patch-PCA reshapes (N, T, D) to (N*n_p, pws*D) and
  /// coarsens the output time axis to n_p = T / pws.
  int64_t pca_patch_window = 1;
  /// lcomb_top_k: number of entries kept per row of W (paper uses k = 7).
  int64_t top_k = 7;
  /// Seed for stochastic adapters (random projection, lcomb init).
  uint64_t seed = 13;
};

/// Creates an adapter of `kind` with `options`.
std::unique_ptr<Adapter> CreateAdapter(AdapterKind kind,
                                       const AdapterOptions& options);

/// All kinds compared in the paper's Table 2, in presentation order.
const std::vector<AdapterKind>& AllAdapterKinds();

/// Writes a *fitted* adapter (kind + options + fitted state) to `path` so a
/// deployed pipeline can reload it without refitting.
Status SaveAdapter(const Adapter& adapter, const AdapterOptions& options,
                   const std::string& path);

/// Reloads an adapter written by SaveAdapter; the result is fitted and ready
/// to Transform.
Result<std::unique_ptr<Adapter>> LoadAdapter(const std::string& path);

}  // namespace tsfm::core

#endif  // TSFM_CORE_ADAPTER_H_
