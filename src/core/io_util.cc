#include "core/io_util.h"

namespace tsfm::core::io {

void WriteU64(std::ostream* os, uint64_t v) {
  os->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

Status ReadU64(std::istream* is, uint64_t* v) {
  is->read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!*is) return Status::IoError("truncated adapter file (u64)");
  return Status::OK();
}

void WriteF32(std::ostream* os, float v) {
  os->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

Status ReadF32(std::istream* is, float* v) {
  is->read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!*is) return Status::IoError("truncated adapter file (f32)");
  return Status::OK();
}

void WriteTensor(std::ostream* os, const Tensor& t) {
  WriteU64(os, static_cast<uint64_t>(t.ndim()));
  for (int64_t d : t.shape()) WriteU64(os, static_cast<uint64_t>(d));
  const Tensor dense = t.Contiguous();  // views serialize packed
  os->write(reinterpret_cast<const char*>(dense.data()),
            static_cast<std::streamsize>(dense.numel() * sizeof(float)));
}

Status ReadTensor(std::istream* is, Tensor* t) {
  uint64_t ndim = 0;
  TSFM_RETURN_IF_ERROR(ReadU64(is, &ndim));
  if (ndim > 8) return Status::IoError("implausible tensor rank in file");
  Shape shape(ndim);
  uint64_t numel = 1;
  for (uint64_t i = 0; i < ndim; ++i) {
    uint64_t d = 0;
    TSFM_RETURN_IF_ERROR(ReadU64(is, &d));
    // Reject non-positive dims and anything whose element count could not
    // come from a real adapter (the cap is far above any D x D' matrix but
    // keeps a corrupt length field from allocating gigabytes). The divide
    // keeps the running product overflow-free.
    if (d == 0 || d > kMaxTensorElements / numel) {
      return Status::IoError("non-positive or oversized dim in file");
    }
    numel *= d;
    shape[i] = static_cast<int64_t>(d);
  }
  Tensor out(shape);
  is->read(reinterpret_cast<char*>(out.mutable_data()),
           static_cast<std::streamsize>(out.numel() * sizeof(float)));
  if (!*is) return Status::IoError("truncated adapter file (tensor data)");
  *t = std::move(out);
  return Status::OK();
}

void WriteInt64Vector(std::ostream* os, const std::vector<int64_t>& v) {
  WriteU64(os, v.size());
  for (int64_t x : v) WriteU64(os, static_cast<uint64_t>(x));
}

Status ReadInt64Vector(std::istream* is, std::vector<int64_t>* v) {
  uint64_t n = 0;
  TSFM_RETURN_IF_ERROR(ReadU64(is, &n));
  // Stored vectors are channel-index lists (VAR selection, lcomb top-k
  // masks), at most a few thousand entries; an unbounded `n` from a corrupt
  // file must not drive the resize below.
  if (n > kMaxVectorLength) {
    return Status::IoError("implausible vector length in file");
  }
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    TSFM_RETURN_IF_ERROR(ReadU64(is, &x));
    v->push_back(static_cast<int64_t>(x));
  }
  return Status::OK();
}

}  // namespace tsfm::core::io
