#include "core/pca_adapter.h"

#include "obs/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "core/io_util.h"
#include "linalg/linalg.h"
#include "tensor/ops.h"

namespace tsfm::core {

namespace {

// Reshapes (N, T, D) into the PCA design matrix.
// pws == 1: (N*T, D). pws > 1: (N*n_p, pws*D) with n_p = T / pws (the time
// tail not filling a full window is dropped).
Result<Tensor> ToDesignMatrix(const Tensor& x, int64_t pws) {
  if (x.ndim() != 3) {
    return Status::InvalidArgument("adapter input must be (N, T, D), got " +
                                   ShapeToString(x.shape()));
  }
  const int64_t n = x.dim(0);
  const int64_t t = x.dim(1);
  const int64_t d = x.dim(2);
  if (pws <= 1) return x.Reshape(Shape{n * t, d});
  if (t < pws) {
    return Status::InvalidArgument(
        "patch window larger than series length");
  }
  const int64_t np = t / pws;
  Tensor trimmed = t % pws == 0 ? x : Slice(x, 1, 0, np * pws);
  // (N, n_p, pws, D) -> rows of pws*D values.
  return trimmed.Reshape(Shape{n * np, pws * d});
}

}  // namespace

PcaAdapter::PcaAdapter(const AdapterOptions& options)
    : out_channels_(options.out_channels),
      scale_(options.pca_scale),
      patch_window_(std::max<int64_t>(1, options.pca_patch_window)) {}

std::string PcaAdapter::name() const {
  if (patch_window_ > 1) return "PatchPCA_" + std::to_string(patch_window_);
  return scale_ ? "ScaledPCA" : "PCA";
}

Status PcaAdapter::Fit(const Tensor& x, const std::vector<int64_t>& y) {
  TSFM_TRACE_SPAN("adapter.pca.fit");
  (void)y;  // unsupervised
  TSFM_ASSIGN_OR_RETURN(Tensor design, ToDesignMatrix(x, patch_window_));
  const int64_t in_dim = design.dim(1);
  if (out_channels_ <= 0 || out_channels_ > in_dim) {
    return Status::InvalidArgument(
        "PCA out_channels must be in [1, " + std::to_string(in_dim) + "]");
  }
  in_channels_ = x.dim(2);
  mean_ = Mean(design, 0);
  if (scale_) {
    std_ = ColumnStds(design);
  } else {
    std_ = Tensor::Ones(Shape{in_dim});
  }
  Tensor centered = Div(Sub(design, mean_), std_);
  Tensor cov = Scale(MatMul(TransposeLast2(centered), centered),
                     1.0f / static_cast<float>(design.dim(0)));
  TSFM_ASSIGN_OR_RETURN(EigenResult eig, TopKEigen(cov, out_channels_));
  components_ = eig.eigenvectors;  // (in_dim, D')

  // Explained variance: sum of retained eigenvalues over total variance
  // (the trace of the covariance), computable without a full decomposition.
  double total = 0.0;
  for (int64_t i = 0; i < in_dim; ++i) total += cov.at({i, i});
  double kept = 0.0;
  for (int64_t j = 0; j < out_channels_; ++j) {
    kept += std::max(0.0f, eig.eigenvalues[j]);
  }
  explained_variance_ = total > 0.0 ? kept / total : 0.0;
  fitted_ = true;
  return Status::OK();
}

AdapterKind PcaAdapter::kind() const { return AdapterKind::kPca; }

Status PcaAdapter::SaveState(std::ostream* os) const {
  if (!fitted_) return Status::FailedPrecondition("PCA adapter not fitted");
  io::WriteU64(os, static_cast<uint64_t>(in_channels_));
  io::WriteTensor(os, mean_);
  io::WriteTensor(os, std_);
  io::WriteTensor(os, components_);
  io::WriteF32(os, static_cast<float>(explained_variance_));
  return Status::OK();
}

Status PcaAdapter::LoadState(std::istream* is) {
  uint64_t in_channels = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(is, &in_channels));
  in_channels_ = static_cast<int64_t>(in_channels);
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &mean_));
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &std_));
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &components_));
  float explained = 0.0f;
  TSFM_RETURN_IF_ERROR(io::ReadF32(is, &explained));
  explained_variance_ = explained;
  if (components_.ndim() != 2 || components_.dim(1) != out_channels_) {
    return Status::InvalidArgument(
        "adapter file does not match the configured out_channels");
  }
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> PcaAdapter::Transform(const Tensor& x) const {
  TSFM_TRACE_SPAN("adapter.pca.transform");
  if (!fitted_) return Status::FailedPrecondition("PCA adapter not fitted");
  if (x.ndim() != 3) {
    return Status::InvalidArgument("adapter input must be (N, T, D)");
  }
  if (x.dim(2) != in_channels_) {
    return Status::InvalidArgument("channel count changed since Fit");
  }
  const int64_t n = x.dim(0);
  TSFM_ASSIGN_OR_RETURN(Tensor design, ToDesignMatrix(x, patch_window_));
  Tensor centered = Div(Sub(design, mean_), std_);
  Tensor projected = MatMul(centered, components_);  // (rows, D')
  const int64_t rows_per_sample = design.dim(0) / n;
  return projected.Reshape(Shape{n, rows_per_sample, out_channels_});
}

}  // namespace tsfm::core
