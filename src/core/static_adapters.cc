#include "core/static_adapters.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "core/io_util.h"
#include "linalg/linalg.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm::core {

namespace {

Status CheckInput3d(const Tensor& x) {
  if (x.ndim() != 3) {
    return Status::InvalidArgument("adapter input must be (N, T, D), got " +
                                   ShapeToString(x.shape()));
  }
  return Status::OK();
}

// Applies a (D, D') projection at every time step: (N, T, D) -> (N, T, D').
Tensor ProjectChannels(const Tensor& x, const Tensor& projection) {
  const int64_t n = x.dim(0);
  const int64_t t = x.dim(1);
  const int64_t d = x.dim(2);
  Tensor flat = x.Reshape(Shape{n * t, d});
  Tensor out = MatMul(flat, projection);
  return out.Reshape(Shape{n, t, projection.dim(1)});
}

}  // namespace

Status IdentityAdapter::Fit(const Tensor& x, const std::vector<int64_t>& y) {
  (void)y;
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  channels_ = x.dim(2);
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> IdentityAdapter::Transform(const Tensor& x) const {
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  if (x.dim(2) != channels_) {
    return Status::InvalidArgument("channel count changed since Fit");
  }
  return x;
}

AdapterKind IdentityAdapter::kind() const { return AdapterKind::kNone; }

Status IdentityAdapter::SaveState(std::ostream* os) const {
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  io::WriteU64(os, static_cast<uint64_t>(channels_));
  return Status::OK();
}

Status IdentityAdapter::LoadState(std::istream* is) {
  uint64_t channels = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(is, &channels));
  channels_ = static_cast<int64_t>(channels);
  fitted_ = true;
  return Status::OK();
}

Status SvdAdapter::Fit(const Tensor& x, const std::vector<int64_t>& y) {
  TSFM_TRACE_SPAN("adapter.svd.fit");
  (void)y;
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  const int64_t d = x.dim(2);
  if (out_channels_ <= 0 || out_channels_ > d) {
    return Status::InvalidArgument("SVD out_channels out of range");
  }
  in_channels_ = d;
  Tensor design = x.Reshape(Shape{-1, d});
  TSFM_ASSIGN_OR_RETURN(SvdResult svd, TruncatedSvd(design, out_channels_));
  singular_values_ = svd.s;
  // components_ = V (D, D'): transpose of vt. Stored packed — this matrix is
  // serialized and matmul'd on every Transform, so paying one copy here beats
  // keeping a strided view alive.
  components_ = TransposeLast2(svd.vt).Contiguous();
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> SvdAdapter::Transform(const Tensor& x) const {
  TSFM_TRACE_SPAN("adapter.svd.transform");
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  if (x.dim(2) != in_channels_) {
    return Status::InvalidArgument("channel count changed since Fit");
  }
  return ProjectChannels(x, components_);
}

AdapterKind SvdAdapter::kind() const { return AdapterKind::kSvd; }

Status SvdAdapter::SaveState(std::ostream* os) const {
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  io::WriteU64(os, static_cast<uint64_t>(in_channels_));
  io::WriteTensor(os, components_);
  io::WriteTensor(os, singular_values_);
  return Status::OK();
}

Status SvdAdapter::LoadState(std::istream* is) {
  uint64_t in_channels = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(is, &in_channels));
  in_channels_ = static_cast<int64_t>(in_channels);
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &components_));
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &singular_values_));
  if (components_.ndim() != 2 || components_.dim(1) != out_channels_) {
    return Status::InvalidArgument("SVD adapter file/config mismatch");
  }
  fitted_ = true;
  return Status::OK();
}

Status RandProjAdapter::Fit(const Tensor& x, const std::vector<int64_t>& y) {
  TSFM_TRACE_SPAN("adapter.rand_proj.fit");
  (void)y;
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  const int64_t d = x.dim(2);
  if (out_channels_ <= 0 || out_channels_ > d) {
    return Status::InvalidArgument("Rand_Proj out_channels out of range");
  }
  in_channels_ = d;
  Rng rng(seed_);
  projection_ = Tensor::RandN(
      Shape{d, out_channels_}, &rng,
      1.0f / std::sqrt(static_cast<float>(out_channels_)));
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> RandProjAdapter::Transform(const Tensor& x) const {
  TSFM_TRACE_SPAN("adapter.rand_proj.transform");
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  if (x.dim(2) != in_channels_) {
    return Status::InvalidArgument("channel count changed since Fit");
  }
  return ProjectChannels(x, projection_);
}

AdapterKind RandProjAdapter::kind() const { return AdapterKind::kRandProj; }

Status RandProjAdapter::SaveState(std::ostream* os) const {
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  io::WriteU64(os, static_cast<uint64_t>(in_channels_));
  io::WriteTensor(os, projection_);
  return Status::OK();
}

Status RandProjAdapter::LoadState(std::istream* is) {
  uint64_t in_channels = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(is, &in_channels));
  in_channels_ = static_cast<int64_t>(in_channels);
  TSFM_RETURN_IF_ERROR(io::ReadTensor(is, &projection_));
  if (projection_.ndim() != 2 || projection_.dim(1) != out_channels_) {
    return Status::InvalidArgument("Rand_Proj adapter file/config mismatch");
  }
  fitted_ = true;
  return Status::OK();
}

Status VarAdapter::Fit(const Tensor& x, const std::vector<int64_t>& y) {
  TSFM_TRACE_SPAN("adapter.var.fit");
  (void)y;
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  const int64_t d = x.dim(2);
  if (out_channels_ <= 0 || out_channels_ > d) {
    return Status::InvalidArgument("VAR out_channels out of range");
  }
  in_channels_ = d;
  Tensor flat = x.Reshape(Shape{-1, d});
  Tensor var = Variance(flat, 0);  // (D)
  std::vector<int64_t> order(static_cast<size_t>(d));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return var[a] > var[b];
  });
  selected_.assign(order.begin(), order.begin() + out_channels_);
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> VarAdapter::Transform(const Tensor& x) const {
  TSFM_TRACE_SPAN("adapter.var.transform");
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  TSFM_RETURN_IF_ERROR(CheckInput3d(x));
  if (x.dim(2) != in_channels_) {
    return Status::InvalidArgument("channel count changed since Fit");
  }
  const int64_t n = x.dim(0);
  const int64_t t = x.dim(1);
  const Tensor xd = x.Contiguous();
  Tensor out = Tensor::Empty(Shape{n, t, out_channels_});
  const float* pi = xd.data();
  float* po = out.mutable_data();
  const int64_t d = in_channels_;
  const int64_t grain =
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, out_channels_));
  runtime::ParallelFor(0, n * t, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t row = lo; row < hi; ++row) {
      const float* src = pi + row * d;
      float* dst = po + row * out_channels_;
      for (int64_t j = 0; j < out_channels_; ++j) {
        dst[j] = src[selected_[static_cast<size_t>(j)]];
      }
    }
  });
  return out;
}

}  // namespace tsfm::core

namespace tsfm::core {

AdapterKind VarAdapter::kind() const { return AdapterKind::kVar; }

Status VarAdapter::SaveState(std::ostream* os) const {
  if (!fitted_) return Status::FailedPrecondition("adapter not fitted");
  io::WriteU64(os, static_cast<uint64_t>(in_channels_));
  io::WriteInt64Vector(os, selected_);
  return Status::OK();
}

Status VarAdapter::LoadState(std::istream* is) {
  uint64_t in_channels = 0;
  TSFM_RETURN_IF_ERROR(io::ReadU64(is, &in_channels));
  in_channels_ = static_cast<int64_t>(in_channels);
  TSFM_RETURN_IF_ERROR(io::ReadInt64Vector(is, &selected_));
  if (static_cast<int64_t>(selected_.size()) != out_channels_) {
    return Status::InvalidArgument("VAR adapter file/config mismatch");
  }
  for (int64_t ch : selected_) {
    if (ch < 0 || ch >= in_channels_) {
      return Status::InvalidArgument("VAR adapter has out-of-range channel");
    }
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace tsfm::core
