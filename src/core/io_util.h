#ifndef TSFM_CORE_IO_UTIL_H_
#define TSFM_CORE_IO_UTIL_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tsfm::core::io {

// Binary (de)serialization helpers shared by the adapter save/load code.
// Little-endian, fixed-width; not a public API. The streams these helpers
// read are CRC-verified artifact payloads (io::ReadArtifactPayload), but
// every length field is still bounded here so a crafted payload with a
// valid checksum cannot trigger an unbounded allocation either.

/// Upper bound on elements of a single serialized tensor (1 GiB of floats).
constexpr uint64_t kMaxTensorElements = uint64_t{1} << 28;
/// Upper bound on entries of a serialized int64 vector.
constexpr uint64_t kMaxVectorLength = uint64_t{1} << 24;

void WriteU64(std::ostream* os, uint64_t v);
Status ReadU64(std::istream* is, uint64_t* v);

void WriteF32(std::ostream* os, float v);
Status ReadF32(std::istream* is, float* v);

void WriteTensor(std::ostream* os, const Tensor& t);
Status ReadTensor(std::istream* is, Tensor* t);

void WriteInt64Vector(std::ostream* os, const std::vector<int64_t>& v);
Status ReadInt64Vector(std::istream* is, std::vector<int64_t>* v);

}  // namespace tsfm::core::io

#endif  // TSFM_CORE_IO_UTIL_H_
