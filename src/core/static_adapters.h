#ifndef TSFM_CORE_STATIC_ADAPTERS_H_
#define TSFM_CORE_STATIC_ADAPTERS_H_

#include <string>
#include <vector>

#include "core/adapter.h"

namespace tsfm::core {

/// Identity adapter: keeps all D channels ("no adapter" baseline).
class IdentityAdapter : public Adapter {
 public:
  std::string name() const override { return "no_adapter"; }
  int64_t output_channels() const override { return channels_; }
  bool fitted() const override { return fitted_; }
  Status Fit(const Tensor& x, const std::vector<int64_t>& y) override;
  Result<Tensor> Transform(const Tensor& x) const override;
  AdapterKind kind() const override;
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;

 private:
  int64_t channels_ = 0;
  bool fitted_ = false;
};

/// Truncated-SVD adapter: like PCA but operates on the *uncentered* design
/// matrix (N*T, D), keeping the top-D' right singular directions.
class SvdAdapter : public Adapter {
 public:
  explicit SvdAdapter(const AdapterOptions& options)
      : out_channels_(options.out_channels) {}

  std::string name() const override { return "SVD"; }
  int64_t output_channels() const override { return out_channels_; }
  bool fitted() const override { return fitted_; }
  Status Fit(const Tensor& x, const std::vector<int64_t>& y) override;
  Result<Tensor> Transform(const Tensor& x) const override;
  AdapterKind kind() const override;
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;

  /// Retained singular values (descending), shape (D').
  const Tensor& singular_values() const { return singular_values_; }

 private:
  int64_t out_channels_;
  bool fitted_ = false;
  int64_t in_channels_ = 0;
  Tensor components_;  // (D, D')
  Tensor singular_values_;
};

/// Gaussian random-projection adapter: channels are mixed through a fixed
/// random matrix with N(0, 1/D') entries — no variance is preserved by
/// design, only pairwise geometry in expectation (Johnson-Lindenstrauss).
class RandProjAdapter : public Adapter {
 public:
  explicit RandProjAdapter(const AdapterOptions& options)
      : out_channels_(options.out_channels), seed_(options.seed) {}

  std::string name() const override { return "Rand_Proj"; }
  int64_t output_channels() const override { return out_channels_; }
  bool fitted() const override { return fitted_; }
  Status Fit(const Tensor& x, const std::vector<int64_t>& y) override;
  Result<Tensor> Transform(const Tensor& x) const override;
  AdapterKind kind() const override;
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;

 private:
  int64_t out_channels_;
  uint64_t seed_;
  bool fitted_ = false;
  int64_t in_channels_ = 0;
  Tensor projection_;  // (D, D')
};

/// Variance-based feature selection: keeps the D' channels with the highest
/// variance over the training split (low-variance channels are assumed
/// uninformative).
class VarAdapter : public Adapter {
 public:
  explicit VarAdapter(const AdapterOptions& options)
      : out_channels_(options.out_channels) {}

  std::string name() const override { return "VAR"; }
  int64_t output_channels() const override { return out_channels_; }
  bool fitted() const override { return fitted_; }
  Status Fit(const Tensor& x, const std::vector<int64_t>& y) override;
  Result<Tensor> Transform(const Tensor& x) const override;
  AdapterKind kind() const override;
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;

  /// Indices of the selected channels (descending variance).
  const std::vector<int64_t>& selected_channels() const { return selected_; }

 private:
  int64_t out_channels_;
  bool fitted_ = false;
  int64_t in_channels_ = 0;
  std::vector<int64_t> selected_;
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_STATIC_ADAPTERS_H_
