#ifndef TSFM_CORE_LDA_ADAPTER_H_
#define TSFM_CORE_LDA_ADAPTER_H_

#include <string>
#include <vector>

#include "core/adapter.h"

namespace tsfm::core {

/// Supervised channel-reduction adapter based on Fisher's linear
/// discriminant (an *extension* beyond the paper's unsupervised adapters —
/// the conclusion calls for "more complex adapter configurations", and LDA
/// is the natural label-aware counterpart of PCA).
///
/// Per-time-step channel vectors are grouped by their sample's class; the
/// adapter maximizes between-class over within-class scatter by solving the
/// generalized eigenproblem Sw^-1 Sb via the regularized whitening route:
/// eigendecompose Sw + eps*I, whiten, then take the top-D' eigenvectors of
/// the whitened between-class scatter. Falls back cleanly when D' exceeds
/// C - 1 (the rank of Sb): remaining directions come from the whitened
/// total-scatter PCA, so the output always has exactly D' channels.
class LdaAdapter : public Adapter {
 public:
  explicit LdaAdapter(const AdapterOptions& options);

  std::string name() const override { return "LDA"; }
  int64_t output_channels() const override { return out_channels_; }
  bool fitted() const override { return fitted_; }
  Status Fit(const Tensor& x, const std::vector<int64_t>& y) override;
  Result<Tensor> Transform(const Tensor& x) const override;
  AdapterKind kind() const override;
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;

  /// The learned projection (D, D').
  const Tensor& components() const { return components_; }

 private:
  int64_t out_channels_;
  float regularization_;
  bool fitted_ = false;
  int64_t in_channels_ = 0;
  Tensor mean_;        // (D)
  Tensor components_;  // (D, D')
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_LDA_ADAPTER_H_
