#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"

namespace tsfm::runtime {

namespace {

// Scheduler counters, visible in obs::Registry snapshots as runtime.*:
// submitted/executed track queue traffic, queue_high_water the deepest the
// shared FIFO ever got (a proxy for how far task production outran the
// workers — this pool has one queue, so there is no steal counter to pair
// it with).
struct SchedulerMetrics {
  obs::Counter* submitted;
  obs::Counter* executed;
  obs::Gauge* queue_high_water;
};

SchedulerMetrics& Metrics() {
  static SchedulerMetrics m{
      obs::Registry::Instance().GetCounter("runtime.tasks_submitted"),
      obs::Registry::Instance().GetCounter("runtime.tasks_executed"),
      obs::Registry::Instance().GetGauge("runtime.queue_high_water")};
  return m;
}

// Set while a thread executes ParallelFor chunks — on pool workers for the
// whole worker lifetime, on the calling thread only while it participates.
thread_local bool g_in_parallel_region = false;

struct PoolState {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;  // nullptr => serial (1 thread)
  bool initialized = false;
};

PoolState& State() {
  static PoolState s;
  return s;
}

int ClampThreads(long n) {
  return static_cast<int>(std::clamp<long>(n, 1, 1024));
}

// Builds (or tears down) the pool for `n` threads. Caller holds State().mu.
void RebuildLocked(PoolState& s, int n) {
  s.pool.reset();  // join old workers before spawning new ones
  if (n > 1) s.pool = std::make_unique<ThreadPool>(n);
  s.initialized = true;
}

// Returns the global pool, creating it on first use; nullptr means serial.
ThreadPool* GetPool() {
  PoolState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.initialized) RebuildLocked(s, DefaultNumThreads());
  return s.pool.get();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SchedulerMetrics& m = Metrics();
  {
    std::lock_guard<std::mutex> lock(mu_);
    TSFM_CHECK(!stop_) << "Submit on a stopped ThreadPool";
    queue_.push_back(std::move(task));
    const double depth = static_cast<double>(queue_.size());
    if (depth > m.queue_high_water->value()) m.queue_high_water->Set(depth);
  }
  m.submitted->Add(1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  g_in_parallel_region = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    Metrics().executed->Add(1);
  }
}

int DefaultNumThreads() {
  if (const char* env = std::getenv("TSFM_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return ClampThreads(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int NumThreads() {
  ThreadPool* pool = GetPool();
  return pool == nullptr ? 1 : pool->num_threads();
}

void SetNumThreads(int n) {
  PoolState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  RebuildLocked(s, std::max(1, n));
}

bool InParallelRegion() { return g_in_parallel_region; }

namespace internal {

int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  const int64_t g = std::max<int64_t>(1, grain);
  return (end - begin + g - 1) / g;
}

namespace {

// Completion / error state shared between the caller and helper tasks. Held
// by shared_ptr so helpers that wake after the caller returned (having found
// no chunk left to claim) touch only valid memory.
struct ForState {
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int64_t chunks = 0;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  // `fn` is a borrowed pointer: valid until all chunks are done, and only
  // dereferenced after successfully claiming a chunk — which cannot happen
  // once the caller (who waits for done == chunks) has returned.
  const std::function<void(int64_t, int64_t, int64_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

void RunChunks(const std::shared_ptr<ForState>& st) {
  const bool prev = g_in_parallel_region;
  g_in_parallel_region = true;
  for (;;) {
    const int64_t c = st->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= st->chunks) break;
    const int64_t lo = st->begin + c * st->grain;
    const int64_t hi = std::min(st->end, lo + st->grain);
    try {
      (*st->fn)(c, lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st->mu);
      if (!st->error) st->error = std::current_exception();
    }
    if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->chunks) {
      std::lock_guard<std::mutex> lock(st->mu);
      st->cv.notify_all();
    }
  }
  g_in_parallel_region = prev;
}

}  // namespace

void ParallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return;
  const int64_t g = std::max<int64_t>(1, grain);

  // Dispatch counters: calls that stayed inline vs fanned out, and total
  // chunks produced. Chunk counts depend only on (begin, end, grain), so
  // the totals are identical across thread counts — obs_test relies on it.
  static obs::Counter* const calls =
      obs::Registry::Instance().GetCounter("runtime.parallel_for.calls");
  static obs::Counter* const inline_calls =
      obs::Registry::Instance().GetCounter("runtime.parallel_for.inline");
  static obs::Counter* const chunk_count =
      obs::Registry::Instance().GetCounter("runtime.parallel_for.chunks");
  calls->Add(1);
  chunk_count->Add(static_cast<uint64_t>(chunks));

  ThreadPool* pool = g_in_parallel_region ? nullptr : GetPool();
  if (pool == nullptr || chunks == 1) {
    inline_calls->Add(1);
    // Serial path: same chunk boundaries, ascending order. Used for 1-thread
    // pools, single-chunk ranges, and nested calls from inside a chunk.
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t lo = begin + c * g;
      fn(c, lo, std::min(end, lo + g));
    }
    return;
  }

  auto st = std::make_shared<ForState>();
  st->chunks = chunks;
  st->begin = begin;
  st->end = end;
  st->grain = g;
  st->fn = &fn;
  const int64_t helpers =
      std::min<int64_t>(pool->num_threads(), chunks) - 1;
  for (int64_t i = 0; i < helpers; ++i) {
    pool->Submit([st] { RunChunks(st); });
  }
  RunChunks(st);  // the caller works too
  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] {
      return st->done.load(std::memory_order_acquire) == st->chunks;
    });
  }
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace internal

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  internal::ParallelForChunks(
      begin, end, grain,
      [&fn](int64_t /*chunk*/, int64_t lo, int64_t hi) { fn(lo, hi); });
}

}  // namespace tsfm::runtime
