#ifndef TSFM_RUNTIME_THREAD_POOL_H_
#define TSFM_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsfm::runtime {

/// Fixed-size thread pool with a shared FIFO queue. No work stealing: tasks
/// are claimed from one queue under a mutex, which is plenty for the
/// coarse-grained chunks ParallelFor produces. The destructor drains the
/// queue and joins all workers (clean shutdown).
///
/// Most code should not touch this class directly — use the free functions
/// ParallelFor / ParallelReduce below, which run on a lazily constructed
/// global pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker. Tasks must not throw —
  /// ParallelFor wraps user functions and captures their exceptions; raw
  /// Submit callers get std::terminate on escape, as with std::thread.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Number of threads the global pool runs with (>= 1). Resolved on first use:
/// the TSFM_NUM_THREADS environment variable if set and valid, otherwise
/// std::thread::hardware_concurrency().
int NumThreads();

/// Thread count TSFM_NUM_THREADS / hardware concurrency would resolve to,
/// ignoring any SetNumThreads override.
int DefaultNumThreads();

/// Rebuilds the global pool with `n` workers (clamped to >= 1). Joins the old
/// pool first, so it must not be called concurrently with in-flight parallel
/// work. Intended for tests and benchmarks that sweep thread counts.
void SetNumThreads(int n);

/// True when called from inside a ParallelFor chunk (worker thread or the
/// calling thread while it participates). Nested ParallelFor calls detect
/// this and run inline, so kernels may parallelize unconditionally.
bool InParallelRegion();

namespace internal {

/// Number of fixed-size chunks ParallelFor splits [begin, end) into. Depends
/// only on (begin, end, grain) — never on the thread count. This is the
/// determinism contract: chunk boundaries (and therefore any per-chunk
/// partial results) are identical no matter how many workers execute them.
int64_t NumChunks(int64_t begin, int64_t end, int64_t grain);

/// Runs fn(chunk_index, chunk_begin, chunk_end) for every chunk. Chunks are
/// executed in parallel (any order); the call returns once all chunks have
/// finished. The first exception thrown by `fn` is rethrown on the calling
/// thread after completion of the remaining chunks.
void ParallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn);

}  // namespace internal

/// Parallel loop over [begin, end): splits the range into chunks of at most
/// `grain` iterations and runs fn(chunk_begin, chunk_end) for each, blocking
/// until all complete. Ranges with a single chunk (or any call from inside an
/// active parallel region) run inline on the calling thread, so `grain` is
/// also the serial cutover threshold. `fn` must write disjoint outputs per
/// chunk; under that condition results are bitwise independent of the thread
/// count.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Deterministic parallel reduction: `map_chunk(lo, hi)` produces one partial
/// per fixed chunk of [begin, end); partials are combined with
/// `reduce(acc, partial)` sequentially in chunk-index order. Because chunk
/// boundaries and the combine order depend only on (begin, end, grain), the
/// result is bit-identical for every thread count, including 1.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 MapFn map_chunk, ReduceFn reduce) {
  const int64_t chunks = internal::NumChunks(begin, end, grain);
  if (chunks == 0) return identity;
  std::vector<T> partials(static_cast<size_t>(chunks), identity);
  internal::ParallelForChunks(
      begin, end, grain, [&](int64_t c, int64_t lo, int64_t hi) {
        partials[static_cast<size_t>(c)] = map_chunk(lo, hi);
      });
  T acc = identity;
  for (const T& p : partials) acc = reduce(acc, p);
  return acc;
}

}  // namespace tsfm::runtime

#endif  // TSFM_RUNTIME_THREAD_POOL_H_
