#ifndef TSFM_BASELINES_ROCKET_H_
#define TSFM_BASELINES_ROCKET_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace tsfm::baselines {

/// Configuration of the ROCKET baseline.
struct RocketConfig {
  /// Number of random convolution kernels (each yields 2 features: PPV and
  /// max). The original paper uses 10,000; a few hundred suffice for the
  /// synthetic workloads here.
  int64_t num_kernels = 300;
  /// Training epochs for the linear classifier on ROCKET features.
  int64_t epochs = 60;
  int64_t batch_size = 64;
  float lr = 5e-2f;
  float weight_decay = 1e-4f;
  uint64_t seed = 1;
};

/// ROCKET (Dempster et al., 2020): time-series classification via random
/// 1-D convolution kernels. This is the classical non-foundation-model
/// comparator the paper's related-work section positions TSFMs against.
///
/// Each kernel has random length in {7, 9, 11}, N(0,1) mean-centered
/// weights, a uniform bias, a random dilation, optional padding, and (for
/// multivariate inputs) a random channel it convolves — so, like univariate
/// TSFMs, its per-kernel cost is independent of D but coverage of D needs
/// many kernels. Features are PPV (proportion of positive values) and max
/// per kernel; a linear softmax classifier is trained on the standardized
/// features.
class RocketClassifier {
 public:
  explicit RocketClassifier(const RocketConfig& config = RocketConfig());

  /// Samples kernels for the training channel count, extracts features and
  /// trains the linear classifier.
  Status Fit(const data::TimeSeriesDataset& train);

  /// Predicts labels for `ds` (must match training channels/length regime).
  Result<std::vector<int64_t>> Predict(const data::TimeSeriesDataset& ds) const;

  /// Accuracy on `ds`.
  Result<double> Evaluate(const data::TimeSeriesDataset& ds) const;

  /// The (N, 2 * num_kernels) ROCKET feature matrix for `x` (N, T, D).
  /// Requires Fit (kernels are sampled at fit time).
  Result<Tensor> ExtractFeatures(const Tensor& x) const;

  bool fitted() const { return fitted_; }

 private:
  struct Kernel {
    std::vector<float> weights;
    float bias;
    int64_t dilation;
    bool padding;
    int64_t channel;
  };

  RocketConfig config_;
  bool fitted_ = false;
  int64_t channels_ = 0;
  int64_t num_classes_ = 0;
  std::vector<Kernel> kernels_;
  Tensor feature_mean_;  // (2K)
  Tensor feature_std_;   // (2K)
  Tensor classifier_w_;  // (2K, C)
  Tensor classifier_b_;  // (C)
};

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_ROCKET_H_
