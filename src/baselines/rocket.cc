#include "baselines/rocket.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "autograd/ops.h"
#include "linalg/linalg.h"
#include "optim/optim.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm::baselines {

RocketClassifier::RocketClassifier(const RocketConfig& config)
    : config_(config) {}

Status RocketClassifier::Fit(const data::TimeSeriesDataset& train) {
  TSFM_RETURN_IF_ERROR(data::Validate(train));
  if (config_.num_kernels <= 0) {
    return Status::InvalidArgument("num_kernels must be positive");
  }
  const int64_t t_len = train.length();
  if (t_len < 7) {
    return Status::InvalidArgument("ROCKET needs series of length >= 7");
  }
  channels_ = train.channels();
  num_classes_ = train.num_classes;

  // Sample kernels.
  Rng rng(config_.seed);
  kernels_.clear();
  kernels_.reserve(static_cast<size_t>(config_.num_kernels));
  const int64_t kLengths[] = {7, 9, 11};
  for (int64_t k = 0; k < config_.num_kernels; ++k) {
    Kernel kernel;
    const int64_t len = kLengths[rng.UniformInt(3)];
    kernel.weights.resize(static_cast<size_t>(len));
    double mean = 0.0;
    for (auto& w : kernel.weights) {
      w = static_cast<float>(rng.Normal());
      mean += w;
    }
    mean /= static_cast<double>(len);
    for (auto& w : kernel.weights) w -= static_cast<float>(mean);
    kernel.bias = static_cast<float>(rng.Uniform(-1.0, 1.0));
    // Dilation: 2^U(0, log2((T-1)/(len-1))).
    const double max_exp =
        std::log2(static_cast<double>(t_len - 1) / static_cast<double>(len - 1));
    kernel.dilation = static_cast<int64_t>(
        std::pow(2.0, rng.Uniform(0.0, std::max(0.0, max_exp))));
    kernel.padding = rng.Uniform() < 0.5;
    kernel.channel = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(channels_)));
    kernels_.push_back(std::move(kernel));
  }
  fitted_ = true;  // features can be extracted from here on

  // Features + standardization.
  TSFM_ASSIGN_OR_RETURN(Tensor features, ExtractFeatures(train.x));
  feature_mean_ = Mean(features, 0);
  feature_std_ = ColumnStds(features.Reshape({features.dim(0), -1}));
  Tensor standardized = Div(Sub(features, feature_mean_), feature_std_);

  // Linear softmax classifier via AdamW.
  const int64_t feat = features.dim(1);
  Rng init_rng = rng.Fork();
  ag::Var w(Tensor::RandN(Shape{feat, num_classes_}, &init_rng,
                          1.0f / std::sqrt(static_cast<float>(feat))),
            /*requires_grad=*/true);
  ag::Var b(Tensor::Zeros(Shape{num_classes_}), /*requires_grad=*/true);
  optim::AdamW opt({w, b}, config_.lr, 0.9f, 0.999f, 1e-8f,
                   config_.weight_decay);
  Rng batch_rng = rng.Fork();
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = data::MakeBatches(standardized.dim(0), config_.batch_size,
                                     &batch_rng);
    for (const auto& idx : batches) {
      Tensor xb = TakeRows(standardized, idx);
      std::vector<int64_t> yb;
      yb.reserve(idx.size());
      for (int64_t i : idx) yb.push_back(train.y[static_cast<size_t>(i)]);
      ag::Var logits = ag::Add(ag::MatMul(ag::Constant(xb), w), b);
      ag::Var loss = ag::CrossEntropy(logits, yb);
      loss.Backward();
      opt.Step();
      opt.ZeroGrad();
    }
  }
  classifier_w_ = w.value().Clone();
  classifier_b_ = b.value().Clone();
  return Status::OK();
}

Result<Tensor> RocketClassifier::ExtractFeatures(const Tensor& x) const {
  if (!fitted_) return Status::FailedPrecondition("ROCKET not fitted");
  if (x.ndim() != 3) {
    return Status::InvalidArgument("ROCKET input must be (N, T, D)");
  }
  if (x.dim(2) != channels_) {
    return Status::InvalidArgument("channel count changed since Fit");
  }
  const int64_t n = x.dim(0);
  const int64_t t_len = x.dim(1);
  const int64_t d = x.dim(2);
  const int64_t k = static_cast<int64_t>(kernels_.size());
  Tensor features(Shape{n, 2 * k});
  const float* px = x.data();
  float* pf = features.mutable_data();
  // Kernel application is embarrassingly parallel over samples: each sample
  // writes its own feature row, and per-kernel results depend only on that
  // sample, so outputs are identical for any thread count.
  runtime::ParallelFor(0, n, /*grain=*/1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* sample = px + i * t_len * d;
      for (int64_t j = 0; j < k; ++j) {
        const Kernel& kernel = kernels_[static_cast<size_t>(j)];
        const int64_t len = static_cast<int64_t>(kernel.weights.size());
        const int64_t span = (len - 1) * kernel.dilation;
        const int64_t pad = kernel.padding ? span / 2 : 0;
        const int64_t out_len = t_len + 2 * pad - span;
        int64_t positives = 0;
        float max_val = -std::numeric_limits<float>::infinity();
        for (int64_t start = -pad; start < -pad + std::max<int64_t>(out_len, 0);
             ++start) {
          float acc = kernel.bias;
          for (int64_t w = 0; w < len; ++w) {
            const int64_t pos = start + w * kernel.dilation;
            if (pos < 0 || pos >= t_len) continue;  // zero padding
            acc += kernel.weights[static_cast<size_t>(w)] *
                   sample[pos * d + kernel.channel];
          }
          if (acc > 0.0f) ++positives;
          max_val = std::max(max_val, acc);
        }
        const float ppv =
            out_len > 0 ? static_cast<float>(positives) /
                              static_cast<float>(out_len)
                        : 0.0f;
        pf[i * 2 * k + 2 * j] = ppv;
        pf[i * 2 * k + 2 * j + 1] =
            std::isfinite(max_val) ? max_val : 0.0f;
      }
    }
  });
  return features;
}

Result<std::vector<int64_t>> RocketClassifier::Predict(
    const data::TimeSeriesDataset& ds) const {
  if (classifier_w_.numel() == 0) {
    return Status::FailedPrecondition("ROCKET classifier not trained");
  }
  TSFM_ASSIGN_OR_RETURN(Tensor features, ExtractFeatures(ds.x));
  Tensor standardized = Div(Sub(features, feature_mean_), feature_std_);
  Tensor logits = Add(MatMul(standardized, classifier_w_), classifier_b_);
  return ArgMaxLast(logits);
}

Result<double> RocketClassifier::Evaluate(
    const data::TimeSeriesDataset& ds) const {
  TSFM_ASSIGN_OR_RETURN(std::vector<int64_t> preds, Predict(ds));
  return data::Accuracy(preds, ds);
}

}  // namespace tsfm::baselines
