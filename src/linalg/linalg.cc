#include "linalg/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm {

Tensor ColumnMeans(const Tensor& x) {
  TSFM_CHECK_EQ(x.ndim(), 2);
  return Mean(x, 0);
}

Tensor ColumnStds(const Tensor& x, float epsilon) {
  TSFM_CHECK_EQ(x.ndim(), 2);
  Tensor var = Variance(x, 0);
  Tensor std = Sqrt(var);
  float* p = std.mutable_data();
  for (int64_t i = 0; i < std.numel(); ++i) p[i] = std::max(p[i], epsilon);
  return std;
}

Tensor Covariance(const Tensor& x, bool center) {
  TSFM_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0);
  TSFM_CHECK_GT(n, 0);
  Tensor xc = x;
  if (center) {
    xc = Sub(x, Mean(x, 0, /*keepdim=*/true));
  }
  Tensor cov = MatMul(TransposeLast2(xc), xc);
  return Scale(cov, 1.0f / static_cast<float>(n));
}

Result<EigenResult> SymmetricEigen(const Tensor& a, int max_sweeps,
                                   float symmetry_tol) {
  TSFM_TRACE_SPAN("linalg.symmetric_eigen");
  static obs::Counter* const counter =
      obs::Registry::Instance().GetCounter("linalg.eigen_calls");
  counter->Add(1);
  if (a.ndim() != 2 || a.dim(0) != a.dim(1)) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix, got " +
                                   ShapeToString(a.shape()));
  }
  const int64_t d = a.dim(0);
  const Tensor ad = a.Contiguous();
  // Verify symmetry relative to the matrix scale. Parallel over rows; each
  // chunk reports whether it saw a violation.
  const float scale = std::max(1.0f, MaxAll(Abs(ad)));
  const float* pa = ad.data();
  const bool asymmetric = runtime::ParallelReduce(
      0, d, /*grain=*/64, false,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          for (int64_t j = i + 1; j < d; ++j) {
            if (std::fabs(pa[i * d + j] - pa[j * d + i]) >
                symmetry_tol * scale) {
              return true;
            }
          }
        }
        return false;
      },
      [](bool acc, bool part) { return acc || part; });
  if (asymmetric) {
    return Status::InvalidArgument("SymmetricEigen: matrix not symmetric");
  }

  // Work in double for stability; symmetrize to kill small asymmetries.
  // Reads the float source, writes disjoint rows — safe to parallelize.
  std::vector<double> m(static_cast<size_t>(d * d));
  runtime::ParallelFor(0, d, /*grain=*/64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        m[static_cast<size_t>(i * d + j)] =
            0.5 * (static_cast<double>(pa[i * d + j]) + pa[j * d + i]);
      }
    }
  });
  std::vector<double> v(static_cast<size_t>(d * d), 0.0);
  for (int64_t i = 0; i < d; ++i) v[static_cast<size_t>(i * d + i)] = 1.0;

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (int64_t i = 0; i < d; ++i) {
      for (int64_t j = i + 1; j < d; ++j) {
        const double x = m[static_cast<size_t>(i * d + j)];
        s += 2.0 * x * x;
      }
    }
    return std::sqrt(s);
  };

  double frob = 0.0;
  for (double x : m) frob += x * x;
  frob = std::sqrt(frob);
  const double tol = 1e-11 * std::max(frob, 1.0);

  bool converged = d <= 1 || off_diag_norm() <= tol;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (int64_t p = 0; p < d - 1; ++p) {
      for (int64_t q = p + 1; q < d; ++q) {
        const double apq = m[static_cast<size_t>(p * d + q)];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m[static_cast<size_t>(p * d + p)];
        const double aqq = m[static_cast<size_t>(q * d + q)];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation to rows/cols p and q of m.
        for (int64_t i = 0; i < d; ++i) {
          const double mip = m[static_cast<size_t>(i * d + p)];
          const double miq = m[static_cast<size_t>(i * d + q)];
          m[static_cast<size_t>(i * d + p)] = c * mip - s * miq;
          m[static_cast<size_t>(i * d + q)] = s * mip + c * miq;
        }
        for (int64_t i = 0; i < d; ++i) {
          const double mpi = m[static_cast<size_t>(p * d + i)];
          const double mqi = m[static_cast<size_t>(q * d + i)];
          m[static_cast<size_t>(p * d + i)] = c * mpi - s * mqi;
          m[static_cast<size_t>(q * d + i)] = s * mpi + c * mqi;
        }
        // Accumulate eigenvectors.
        for (int64_t i = 0; i < d; ++i) {
          const double vip = v[static_cast<size_t>(i * d + p)];
          const double viq = v[static_cast<size_t>(i * d + q)];
          v[static_cast<size_t>(i * d + p)] = c * vip - s * viq;
          v[static_cast<size_t>(i * d + q)] = s * vip + c * viq;
        }
      }
    }
    converged = off_diag_norm() <= tol;
  }
  if (!converged) {
    return Status::NumericalError("Jacobi eigendecomposition did not converge");
  }

  // Sort by eigenvalue descending.
  std::vector<int64_t> order(static_cast<size_t>(d));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t i, int64_t j) {
    return m[static_cast<size_t>(i * d + i)] > m[static_cast<size_t>(j * d + j)];
  });

  EigenResult result{Tensor(Shape{d}), Tensor(Shape{d, d})};
  runtime::ParallelFor(0, d, /*grain=*/16, [&](int64_t lo, int64_t hi) {
    for (int64_t k = lo; k < hi; ++k) {
      const int64_t src = order[static_cast<size_t>(k)];
      result.eigenvalues.mutable_data()[k] =
          static_cast<float>(m[static_cast<size_t>(src * d + src)]);
      for (int64_t i = 0; i < d; ++i) {
        result.eigenvectors.mutable_data()[i * d + k] =
            static_cast<float>(v[static_cast<size_t>(i * d + src)]);
      }
    }
  });
  return result;
}

Result<EigenResult> TopKEigen(const Tensor& a, int64_t k, uint64_t seed,
                              int max_iters, double tol) {
  TSFM_TRACE_SPAN("linalg.topk_eigen");
  static obs::Counter* const counter =
      obs::Registry::Instance().GetCounter("linalg.eigen_calls");
  counter->Add(1);
  if (a.ndim() != 2 || a.dim(0) != a.dim(1)) {
    return Status::InvalidArgument("TopKEigen requires a square matrix");
  }
  const int64_t d = a.dim(0);
  if (k <= 0 || k > d) return Status::InvalidArgument("TopKEigen: k out of range");

  // Small problems: exact Jacobi, then truncate.
  if (d <= 128) {
    TSFM_ASSIGN_OR_RETURN(EigenResult full, SymmetricEigen(a));
    EigenResult out{Tensor(Shape{k}), Tensor(Shape{d, k})};
    for (int64_t j = 0; j < k; ++j) {
      out.eigenvalues.mutable_data()[j] = full.eigenvalues[j];
      for (int64_t i = 0; i < d; ++i) {
        out.eigenvectors.at({i, j}) = full.eigenvectors.at({i, j});
      }
    }
    return out;
  }

  // Subspace iteration with an oversampled block for faster separation.
  const int64_t block = std::min(d, k + 4);
  Rng rng(seed);
  Tensor q = Tensor::RandN(Shape{d, block}, &rng);
  TSFM_ASSIGN_OR_RETURN(QrResult qr0, QrDecomposition(q));
  q = qr0.q;
  Tensor prev_eigs = Tensor::Zeros(Shape{block});
  for (int iter = 0; iter < max_iters; ++iter) {
    Tensor z = MatMul(a, q);  // (d, block)
    auto qr = QrDecomposition(z);
    if (!qr.ok()) {
      // Rank-deficient block: re-randomize the null directions.
      z = Add(z, Tensor::RandN(Shape{d, block}, &rng, 1e-6f));
      TSFM_ASSIGN_OR_RETURN(QrResult qr2, QrDecomposition(z));
      q = qr2.q;
      continue;
    }
    q = qr->q;
    // Rayleigh quotients as convergence probe. Parallel over columns; each
    // column's dot product stays serial over i, so values are unchanged.
    Tensor aq = MatMul(a, q);
    Tensor eigs(Shape{block});
    runtime::ParallelFor(0, block, /*grain=*/2, [&](int64_t lo, int64_t hi) {
      for (int64_t j = lo; j < hi; ++j) {
        double num = 0.0;
        for (int64_t i = 0; i < d; ++i) {
          num += static_cast<double>(q.at({i, j})) * aq.at({i, j});
        }
        eigs.mutable_data()[j] = static_cast<float>(num);
      }
    });
    double delta = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      delta = std::max(delta, static_cast<double>(std::fabs(
                                  eigs[j] - prev_eigs[j])));
    }
    prev_eigs = eigs;
    const double scale = std::max(1.0, static_cast<double>(MaxAll(Abs(eigs))));
    if (iter > 2 && delta / scale < tol) break;
  }
  // Rayleigh-Ritz on the converged subspace for the final eigenpairs.
  Tensor small = MatMul(TransposeLast2(q), MatMul(a, q));  // (block, block)
  TSFM_ASSIGN_OR_RETURN(EigenResult ritz, SymmetricEigen(small));
  Tensor vecs = MatMul(q, ritz.eigenvectors);  // (d, block)
  EigenResult out{Tensor(Shape{k}), Tensor(Shape{d, k})};
  for (int64_t j = 0; j < k; ++j) {
    out.eigenvalues.mutable_data()[j] = ritz.eigenvalues[j];
    for (int64_t i = 0; i < d; ++i) {
      out.eigenvectors.at({i, j}) = vecs.at({i, j});
    }
  }
  return out;
}

Result<SvdResult> TruncatedSvd(const Tensor& x, int64_t k) {
  TSFM_TRACE_SPAN("linalg.truncated_svd");
  static obs::Counter* const counter =
      obs::Registry::Instance().GetCounter("linalg.svd_calls");
  counter->Add(1);
  if (x.ndim() != 2) {
    return Status::InvalidArgument("TruncatedSvd requires a 2-D matrix");
  }
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  if (k <= 0 || k > std::min(n, d)) {
    return Status::InvalidArgument("TruncatedSvd: k out of range");
  }
  // Gram-matrix route: top-k eigen of X^T X (d x d) — exact Jacobi for small
  // d, subspace iteration for large d (e.g. DuckDuckGeese's 1345 channels).
  Tensor gram = MatMul(TransposeLast2(x), x);
  TSFM_ASSIGN_OR_RETURN(EigenResult eig, TopKEigen(gram, k));

  SvdResult out{Tensor(Shape{n, k}), Tensor(Shape{k}), Tensor(Shape{k, d})};
  for (int64_t j = 0; j < k; ++j) {
    const float ev = std::max(eig.eigenvalues[j], 0.0f);
    const float sv = std::sqrt(ev);
    out.s.mutable_data()[j] = sv;
    for (int64_t i = 0; i < d; ++i) {
      out.vt.mutable_data()[j * d + i] = eig.eigenvectors.at({i, j});
    }
  }
  // u = x * v * diag(1/s); columns with ~zero singular value are zeroed.
  Tensor v_top(Shape{d, k});
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      v_top.at({i, j}) = out.vt.at({j, i});
    }
  }
  Tensor xu = MatMul(x, v_top);  // (n, k)
  const float* ps = out.s.data();
  const float* pxu = xu.data();
  float* pu = out.u.mutable_data();
  runtime::ParallelFor(0, n, /*grain=*/1024, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < k; ++j) {
        const float sv = ps[j];
        const float inv = sv > 1e-12f ? 1.0f / sv : 0.0f;
        pu[i * k + j] = pxu[i * k + j] * inv;
      }
    }
  });
  return out;
}

Result<QrResult> QrDecomposition(const Tensor& a) {
  TSFM_TRACE_SPAN("linalg.qr");
  static obs::Counter* const counter =
      obs::Registry::Instance().GetCounter("linalg.qr_calls");
  counter->Add(1);
  if (a.ndim() != 2 || a.dim(0) < a.dim(1)) {
    return Status::InvalidArgument(
        "QrDecomposition requires (m, n) with m >= n");
  }
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  // Modified Gram-Schmidt in double precision (numerically adequate for the
  // well-conditioned random matrices we orthonormalize).
  std::vector<std::vector<double>> q(static_cast<size_t>(n),
                                     std::vector<double>(static_cast<size_t>(m)));
  Tensor r = Tensor::Zeros(Shape{n, n});
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < m; ++i) {
      q[static_cast<size_t>(j)][static_cast<size_t>(i)] = a.at({i, j});
    }
    for (int64_t p = 0; p < j; ++p) {
      double dot = 0.0;
      for (int64_t i = 0; i < m; ++i) {
        dot += q[static_cast<size_t>(p)][static_cast<size_t>(i)] *
               q[static_cast<size_t>(j)][static_cast<size_t>(i)];
      }
      r.at({p, j}) = static_cast<float>(dot);
      for (int64_t i = 0; i < m; ++i) {
        q[static_cast<size_t>(j)][static_cast<size_t>(i)] -=
            dot * q[static_cast<size_t>(p)][static_cast<size_t>(i)];
      }
    }
    double norm = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      const double x = q[static_cast<size_t>(j)][static_cast<size_t>(i)];
      norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      return Status::NumericalError("QrDecomposition: rank-deficient input");
    }
    r.at({j, j}) = static_cast<float>(norm);
    for (int64_t i = 0; i < m; ++i) {
      q[static_cast<size_t>(j)][static_cast<size_t>(i)] /= norm;
    }
  }
  QrResult out{Tensor(Shape{m, n}), std::move(r)};
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out.q.at({i, j}) =
          static_cast<float>(q[static_cast<size_t>(j)][static_cast<size_t>(i)]);
    }
  }
  return out;
}

float RelativeError(const Tensor& a, const Tensor& b) {
  TSFM_CHECK(a.shape() == b.shape());
  const float denom = Norm(a);
  if (denom == 0.0f) return Norm(b) == 0.0f ? 0.0f : 1.0f;
  return Norm(Sub(a, b)) / denom;
}

}  // namespace tsfm
