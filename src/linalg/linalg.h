#ifndef TSFM_LINALG_LINALG_H_
#define TSFM_LINALG_LINALG_H_

#include <cstdint>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tsfm {

/// Column means of a 2-D matrix `x` of shape (n, d); returns shape (d).
Tensor ColumnMeans(const Tensor& x);

/// Column standard deviations (population) of shape (d); entries below
/// `epsilon` are clamped to `epsilon` so later divisions are safe.
Tensor ColumnStds(const Tensor& x, float epsilon = 1e-8f);

/// Sample covariance matrix of `x` (n, d) -> (d, d).
/// If `center` is false this is the (uncentered) second-moment matrix
/// X^T X / n, which is what truncated SVD diagonalizes.
Tensor Covariance(const Tensor& x, bool center = true);

/// Result of a symmetric eigendecomposition: `eigenvalues` (d) in descending
/// order and `eigenvectors` (d, d) with eigenvectors in columns, such that
/// A * V[:, i] = eigenvalues[i] * V[:, i].
struct EigenResult {
  Tensor eigenvalues;
  Tensor eigenvectors;
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix `a` (d, d).
///
/// Returns NumericalError if the sweep limit is exceeded before off-diagonal
/// mass falls below tolerance, and InvalidArgument for non-square or
/// non-symmetric (beyond `symmetry_tol`) input.
Result<EigenResult> SymmetricEigen(const Tensor& a, int max_sweeps = 100,
                                   float symmetry_tol = 1e-3f);

/// Top-`k` eigenpairs of a symmetric positive semi-definite matrix `a`
/// (d, d) via block subspace iteration with QR re-orthonormalization.
/// Deterministic given `seed`. Preferred over full Jacobi when d is large
/// and only a few leading components are needed (the adapter regime:
/// k = D' << d). `eigenvectors` has shape (d, k).
Result<EigenResult> TopKEigen(const Tensor& a, int64_t k, uint64_t seed = 42,
                              int max_iters = 300, double tol = 1e-7);

/// Truncated singular value decomposition of `x` (n, d):
/// x ~= u * diag(s) * vt with u (n, k), s (k), vt (k, d).
struct SvdResult {
  Tensor u;
  Tensor s;
  Tensor vt;
};

/// Computes the top-`k` singular triplets of `x` via eigendecomposition of
/// the d x d Gram matrix (suitable for d up to a few thousand, the regime of
/// channel-reduction adapters). `x` is used uncentered, matching
/// sklearn's TruncatedSVD.
Result<SvdResult> TruncatedSvd(const Tensor& x, int64_t k);

/// Householder QR of `a` (m, n), m >= n: returns Q (m, n) with orthonormal
/// columns and R (n, n) upper-triangular such that a = Q * R.
struct QrResult {
  Tensor q;
  Tensor r;
};
Result<QrResult> QrDecomposition(const Tensor& a);

/// Frobenius-norm relative reconstruction error ||a - b||_F / ||a||_F.
float RelativeError(const Tensor& a, const Tensor& b);

}  // namespace tsfm

#endif  // TSFM_LINALG_LINALG_H_
