#ifndef TSFM_DATA_CORPUS_H_
#define TSFM_DATA_CORPUS_H_

#include <cstdint>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tsfm::data {

/// Generates a heterogeneous univariate pretraining corpus of shape (N, T):
/// a mix of sinusoid mixtures, AR(1) processes, trend+seasonality, square and
/// sawtooth waves — the synthetic stand-in for the large multi-domain corpora
/// TSFMs are pretrained on. Each series is z-normalized.
Tensor GeneratePretrainCorpus(int64_t n, int64_t t, uint64_t seed);

/// Stochastic augmentation of a batch of univariate series (B, T) used to
/// form positive pairs for contrastive (InfoNCE) pretraining: amplitude
/// scaling, additive jitter and a random cyclic time shift.
Tensor AugmentView(const Tensor& batch, Rng* rng);

}  // namespace tsfm::data

#endif  // TSFM_DATA_CORPUS_H_
