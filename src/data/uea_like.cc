#include "data/uea_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tsfm::data {

const std::vector<UeaDatasetSpec>& UeaSpecs() {
  // Shapes from the paper's Table 3. latent_dim is our synthetic intrinsic
  // channel dimension (dataset-dependent, between 4 and 10).
  static const std::vector<UeaDatasetSpec>* kSpecs =
      new std::vector<UeaDatasetSpec>{
          {"DuckDuckGeese", "Duck", 60, 40, 1345, 270, 5, 6},
          {"FaceDetection", "Face", 5890, 3524, 144, 62, 2, 8},
          {"FingerMovements", "Finger", 316, 100, 28, 50, 2, 5},
          {"HandMovementDirection", "Hand", 320, 147, 10, 400, 4, 4},
          {"Heartbeat", "Heart", 204, 205, 61, 405, 2, 6},
          {"InsectWingbeat", "Insect", 1000, 1000, 200, 78, 10, 10},
          {"JapaneseVowels", "Vowels", 270, 370, 12, 29, 9, 6},
          {"MotorImagery", "Motor", 278, 100, 64, 3000, 2, 6},
          {"NATOPS", "NATOPS", 180, 180, 24, 51, 6, 6},
          {"PEMS-SF", "PEMS", 267, 173, 963, 144, 7, 8},
          {"PhonemeSpectra", "Phoneme", 3315, 3353, 11, 217, 39, 6},
          {"SpokenArabicDigits", "SpokeA", 6599, 2199, 13, 93, 10, 6},
      };
  return *kSpecs;
}

Result<UeaDatasetSpec> FindUeaSpec(const std::string& name) {
  for (const auto& spec : UeaSpecs()) {
    if (spec.name == name || spec.abbrev == name) return spec;
  }
  return Status::NotFound("no UEA dataset spec named '" + name + "'");
}

GeneratorCaps DefaultCaps() { return GeneratorCaps{120, 80, 64, 256}; }

GeneratorCaps FastCaps() { return GeneratorCaps{64, 40, 48, 96}; }

namespace {

int64_t ApplyCap(int64_t value, int64_t cap) {
  return cap > 0 ? std::min(value, cap) : value;
}

// Class-conditional latent signal parameters.
struct ClassProcess {
  std::vector<float> freq;       // cycles per series, per latent channel
  std::vector<float> amplitude;  // per latent channel
  std::vector<float> phase;      // per latent channel
  std::vector<float> offset;     // per latent channel (small DC shift)
};

TimeSeriesDataset GenerateSplit(const UeaDatasetSpec& spec, int64_t n,
                                int64_t t, int64_t d,
                                const std::vector<ClassProcess>& classes,
                                const Tensor& mixing, Rng* rng) {
  const int64_t latent = spec.latent_dim;
  TimeSeriesDataset ds;
  ds.name = spec.name;
  ds.num_classes = spec.classes;
  ds.x = Tensor(Shape{n, t, d});
  ds.y.resize(static_cast<size_t>(n));

  std::vector<float> z(static_cast<size_t>(latent));
  std::vector<float> ar(static_cast<size_t>(latent), 0.0f);
  float* px = ds.x.mutable_data();
  const float* pm = mixing.data();

  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = static_cast<int64_t>(rng->UniformInt(
        static_cast<uint64_t>(spec.classes)));
    ds.y[static_cast<size_t>(i)] = c;
    const ClassProcess& proc = classes[static_cast<size_t>(c)];
    // Per-sample jitter so samples within a class differ.
    std::vector<float> phase_jitter(static_cast<size_t>(latent));
    std::vector<float> amp_jitter(static_cast<size_t>(latent));
    for (int64_t l = 0; l < latent; ++l) {
      phase_jitter[static_cast<size_t>(l)] =
          static_cast<float>(rng->Normal(0.0, 0.35));
      amp_jitter[static_cast<size_t>(l)] =
          static_cast<float>(rng->Normal(1.0, 0.12));
    }
    std::fill(ar.begin(), ar.end(), 0.0f);
    for (int64_t step = 0; step < t; ++step) {
      const float tau = static_cast<float>(step) / static_cast<float>(t);
      for (int64_t l = 0; l < latent; ++l) {
        const size_t ls = static_cast<size_t>(l);
        // AR(1) latent noise, shared coefficient.
        ar[ls] = 0.8f * ar[ls] + static_cast<float>(rng->Normal(0.0, 0.25));
        z[ls] = proc.offset[ls] +
                proc.amplitude[ls] * amp_jitter[ls] *
                    std::sin(2.0f * static_cast<float>(M_PI) * proc.freq[ls] *
                                 tau +
                             proc.phase[ls] + phase_jitter[ls]) +
                ar[ls];
      }
      float* row = px + (i * t + step) * d;
      for (int64_t ch = 0; ch < d; ++ch) {
        float v = 0.0f;
        const float* mrow = pm + ch * latent;
        for (int64_t l = 0; l < latent; ++l) {
          v += mrow[l] * z[static_cast<size_t>(l)];
        }
        row[ch] = v + static_cast<float>(rng->Normal(0.0, 0.1));
      }
    }
  }
  return ds;
}

}  // namespace

DatasetPair GenerateUeaLike(const UeaDatasetSpec& spec, uint64_t seed,
                            const GeneratorCaps& caps) {
  TSFM_CHECK_GT(spec.classes, 0);
  TSFM_CHECK_GT(spec.latent_dim, 0);
  // The *process* (class parameters, mixing matrix) is derived only from the
  // dataset name so that different seeds give different samples of the same
  // underlying classification problem.
  uint64_t name_hash = 1469598103934665603ULL;
  for (char ch : spec.name) {
    name_hash = (name_hash ^ static_cast<uint64_t>(ch)) * 1099511628211ULL;
  }
  Rng process_rng(name_hash);

  const int64_t latent = spec.latent_dim;
  const int64_t d = ApplyCap(spec.channels, caps.max_channels);
  const int64_t t = ApplyCap(spec.length, caps.max_length);
  const int64_t n_train = ApplyCap(spec.train_size, caps.max_train);
  const int64_t n_test = ApplyCap(spec.test_size, caps.max_test);

  std::vector<ClassProcess> classes(static_cast<size_t>(spec.classes));
  for (int64_t c = 0; c < spec.classes; ++c) {
    ClassProcess& proc = classes[static_cast<size_t>(c)];
    proc.freq.resize(static_cast<size_t>(latent));
    proc.amplitude.resize(static_cast<size_t>(latent));
    proc.phase.resize(static_cast<size_t>(latent));
    proc.offset.resize(static_cast<size_t>(latent));
    for (int64_t l = 0; l < latent; ++l) {
      const size_t ls = static_cast<size_t>(l);
      proc.freq[ls] = static_cast<float>(process_rng.Uniform(1.0, 9.0));
      proc.amplitude[ls] = static_cast<float>(process_rng.Uniform(0.6, 1.6));
      proc.phase[ls] =
          static_cast<float>(process_rng.Uniform(0.0, 2.0 * M_PI));
      proc.offset[ls] = static_cast<float>(process_rng.Normal(0.0, 0.3));
    }
  }
  // Dataset-wide mixing matrix (channels x latent): dense, so every observed
  // channel is a combination of all latent signals (high channel redundancy).
  Tensor mixing = Tensor::RandN(Shape{d, latent}, &process_rng,
                                1.0f / std::sqrt(static_cast<float>(latent)));
  // Give channels very different variances so VARiance-based selection has
  // signal to work with.
  for (int64_t ch = 0; ch < d; ++ch) {
    const float gain = static_cast<float>(process_rng.Uniform(0.2, 1.8));
    float* row = mixing.mutable_data() + ch * latent;
    for (int64_t l = 0; l < latent; ++l) row[l] *= gain;
  }

  Rng sample_rng(seed ^ name_hash);
  DatasetPair pair;
  pair.train = GenerateSplit(spec, n_train, t, d, classes, mixing, &sample_rng);
  pair.test = GenerateSplit(spec, n_test, t, d, classes, mixing, &sample_rng);
  return pair;
}

}  // namespace tsfm::data
