#include "data/corpus.h"

#include <cmath>

#include "common/check.h"

namespace tsfm::data {

Tensor GeneratePretrainCorpus(int64_t n, int64_t t, uint64_t seed) {
  TSFM_CHECK_GT(n, 0);
  TSFM_CHECK_GT(t, 1);
  Rng rng(seed);
  Tensor out(Shape{n, t});
  float* p = out.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    float* row = p + i * t;
    const uint64_t family = rng.UniformInt(5);
    switch (family) {
      case 0: {  // mixture of 1-3 sinusoids
        const int64_t k = 1 + static_cast<int64_t>(rng.UniformInt(3));
        for (int64_t s = 0; s < t; ++s) row[s] = 0.0f;
        for (int64_t j = 0; j < k; ++j) {
          const float f = static_cast<float>(rng.Uniform(1.0, 12.0));
          const float a = static_cast<float>(rng.Uniform(0.3, 1.2));
          const float ph = static_cast<float>(rng.Uniform(0.0, 2.0 * M_PI));
          for (int64_t s = 0; s < t; ++s) {
            const float tau = static_cast<float>(s) / static_cast<float>(t);
            row[s] += a * std::sin(2.0f * static_cast<float>(M_PI) * f * tau + ph);
          }
        }
        break;
      }
      case 1: {  // AR(1)
        const float phi = static_cast<float>(rng.Uniform(0.5, 0.98));
        float prev = 0.0f;
        for (int64_t s = 0; s < t; ++s) {
          prev = phi * prev + static_cast<float>(rng.Normal(0.0, 1.0));
          row[s] = prev;
        }
        break;
      }
      case 2: {  // linear trend + seasonality + noise
        const float slope = static_cast<float>(rng.Normal(0.0, 2.0));
        const float f = static_cast<float>(rng.Uniform(2.0, 8.0));
        const float a = static_cast<float>(rng.Uniform(0.2, 1.0));
        for (int64_t s = 0; s < t; ++s) {
          const float tau = static_cast<float>(s) / static_cast<float>(t);
          row[s] = slope * tau +
                   a * std::sin(2.0f * static_cast<float>(M_PI) * f * tau) +
                   static_cast<float>(rng.Normal(0.0, 0.15));
        }
        break;
      }
      case 3: {  // square wave
        const float f = static_cast<float>(rng.Uniform(1.0, 6.0));
        const float ph = static_cast<float>(rng.Uniform(0.0, 1.0));
        for (int64_t s = 0; s < t; ++s) {
          const float tau = static_cast<float>(s) / static_cast<float>(t);
          const float cycle = f * tau + ph;
          row[s] = (cycle - std::floor(cycle)) < 0.5f ? 1.0f : -1.0f;
          row[s] += static_cast<float>(rng.Normal(0.0, 0.1));
        }
        break;
      }
      default: {  // sawtooth
        const float f = static_cast<float>(rng.Uniform(1.0, 6.0));
        const float ph = static_cast<float>(rng.Uniform(0.0, 1.0));
        for (int64_t s = 0; s < t; ++s) {
          const float tau = static_cast<float>(s) / static_cast<float>(t);
          const float cycle = f * tau + ph;
          row[s] = 2.0f * (cycle - std::floor(cycle)) - 1.0f;
          row[s] += static_cast<float>(rng.Normal(0.0, 0.1));
        }
        break;
      }
    }
    // z-normalize each series.
    double mean = 0.0;
    for (int64_t s = 0; s < t; ++s) mean += row[s];
    mean /= t;
    double var = 0.0;
    for (int64_t s = 0; s < t; ++s) {
      const double c = row[s] - mean;
      var += c * c;
    }
    const float inv_std =
        1.0f / std::max(1e-6f, static_cast<float>(std::sqrt(var / t)));
    for (int64_t s = 0; s < t; ++s) {
      row[s] = (row[s] - static_cast<float>(mean)) * inv_std;
    }
  }
  return out;
}

Tensor AugmentView(const Tensor& batch, Rng* rng) {
  TSFM_CHECK_EQ(batch.ndim(), 2);
  const int64_t n = batch.dim(0);
  const int64_t t = batch.dim(1);
  Tensor out(batch.shape());
  const float* pi = batch.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    const float scale = static_cast<float>(rng->Uniform(0.7, 1.3));
    const int64_t shift = static_cast<int64_t>(rng->UniformInt(
        static_cast<uint64_t>(std::max<int64_t>(1, t / 8))));
    const float jitter_std = static_cast<float>(rng->Uniform(0.02, 0.12));
    const float* src = pi + i * t;
    float* dst = po + i * t;
    for (int64_t s = 0; s < t; ++s) {
      const int64_t from = (s + shift) % t;
      dst[s] = scale * src[from] +
               static_cast<float>(rng->Normal(0.0, jitter_std));
    }
  }
  return out;
}

}  // namespace tsfm::data
