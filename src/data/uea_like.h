#ifndef TSFM_DATA_UEA_LIKE_H_
#define TSFM_DATA_UEA_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace tsfm::data {

/// Published characteristics of one UEA-archive dataset (the paper's
/// Table 3). The synthetic generator reproduces these shapes exactly.
struct UeaDatasetSpec {
  std::string name;
  std::string abbrev;
  int64_t train_size;
  int64_t test_size;
  int64_t channels;
  int64_t length;
  int64_t classes;
  /// Latent channel dimension of the generative process — the "intrinsic
  /// dimension" of the channel space. Dataset-dependent, always << channels,
  /// mirroring the cross-channel redundancy of real UEA data.
  int64_t latent_dim;
};

/// The 12 UEA datasets with >= 10 channels used by the paper (Table 3),
/// including InsectWingbeat's subsampling to 1000/1000.
const std::vector<UeaDatasetSpec>& UeaSpecs();

/// Looks up a spec by full name or abbreviation.
Result<UeaDatasetSpec> FindUeaSpec(const std::string& name);

/// Caps applied when *materializing* a synthetic dataset so experiments run
/// on CPU in reasonable time. The paper-scale shapes in `UeaDatasetSpec` are
/// still used by the V100 resource model for COM/TO verdicts; these caps only
/// bound what we physically train on. Zero / negative cap = uncapped.
struct GeneratorCaps {
  int64_t max_train = 0;
  int64_t max_test = 0;
  int64_t max_length = 0;
  int64_t max_channels = 0;
};

/// Default caps used by the benchmark harness.
GeneratorCaps DefaultCaps();
/// Aggressive caps for TSFM_BENCH_FAST / CI runs.
GeneratorCaps FastCaps();

/// A train/test pair drawn from the same generative process.
struct DatasetPair {
  TimeSeriesDataset train;
  TimeSeriesDataset test;
};

/// Generates a synthetic dataset matching `spec` (subject to `caps`).
///
/// Generative process: each class c owns `latent_dim` latent signals —
/// sinusoids with class-specific frequencies, amplitudes and phases plus an
/// AR(1) component — mixed into `channels` observed channels through a
/// dataset-wide random matrix (plus small per-channel noise). Class identity
/// therefore lives in the *latent* dynamics and survives linear recombination
/// of channels, while the observed channel space is highly redundant: exactly
/// the structure dimensionality-reduction adapters exploit on real UEA data.
DatasetPair GenerateUeaLike(const UeaDatasetSpec& spec, uint64_t seed,
                            const GeneratorCaps& caps = DefaultCaps());

}  // namespace tsfm::data

#endif  // TSFM_DATA_UEA_LIKE_H_
