#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace tsfm::data {

Status SaveCsv(const TimeSeriesDataset& ds, const std::string& path) {
  TSFM_RETURN_IF_ERROR(Validate(ds));
  std::ofstream os(path, std::ios::trunc);
  if (!os) return Status::IoError("cannot open for writing: " + path);
  os << "sample,label,t";
  for (int64_t d = 0; d < ds.channels(); ++d) os << ",ch" << d;
  os << "\n";
  const float* p = ds.x.data();
  const int64_t t_len = ds.length();
  const int64_t d_len = ds.channels();
  for (int64_t i = 0; i < ds.size(); ++i) {
    for (int64_t t = 0; t < t_len; ++t) {
      os << i << "," << ds.y[static_cast<size_t>(i)] << "," << t;
      const float* row = p + (i * t_len + t) * d_len;
      for (int64_t d = 0; d < d_len; ++d) os << "," << row[d];
      os << "\n";
    }
  }
  if (!os) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<TimeSeriesDataset> LoadCsv(const std::string& path,
                                  const std::string& name) {
  std::ifstream is(path);
  if (!is) return Status::IoError("cannot open for reading: " + path);
  std::string header;
  if (!std::getline(is, header)) {
    return Status::IoError("empty CSV: " + path);
  }
  // Count channel columns from the header.
  int64_t channels = 0;
  {
    std::stringstream ss(header);
    std::string col;
    while (std::getline(ss, col, ',')) {
      if (col.rfind("ch", 0) == 0) ++channels;
    }
  }
  if (channels == 0) {
    return Status::InvalidArgument("CSV header has no chN columns: " + header);
  }

  struct Row {
    int64_t t;
    std::vector<float> values;
  };
  std::map<int64_t, int64_t> labels;              // sample -> label
  std::map<int64_t, std::vector<Row>> samples;    // sample -> rows
  std::string line;
  int64_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    auto next_field = [&](int64_t* out) {
      if (!std::getline(ss, field, ',')) return false;
      *out = std::atoll(field.c_str());
      return true;
    };
    int64_t sample = 0, label = 0, t = 0;
    if (!next_field(&sample) || !next_field(&label) || !next_field(&t)) {
      return Status::InvalidArgument("malformed CSV line " +
                                     std::to_string(line_no));
    }
    if (label < 0) {
      return Status::InvalidArgument("negative label at line " +
                                     std::to_string(line_no));
    }
    Row row;
    row.t = t;
    row.values.reserve(static_cast<size_t>(channels));
    while (std::getline(ss, field, ',')) {
      row.values.push_back(std::strtof(field.c_str(), nullptr));
    }
    if (static_cast<int64_t>(row.values.size()) != channels) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + " has " +
          std::to_string(row.values.size()) + " channels, expected " +
          std::to_string(channels));
    }
    auto [it, inserted] = labels.emplace(sample, label);
    if (!inserted && it->second != label) {
      return Status::InvalidArgument("inconsistent label for sample " +
                                     std::to_string(sample));
    }
    samples[sample].push_back(std::move(row));
  }
  if (samples.empty()) return Status::InvalidArgument("CSV has no data rows");

  const int64_t t_len = static_cast<int64_t>(samples.begin()->second.size());
  const int64_t n = static_cast<int64_t>(samples.size());
  TimeSeriesDataset ds;
  ds.name = name;
  ds.x = Tensor(Shape{n, t_len, channels});
  ds.y.reserve(static_cast<size_t>(n));
  int64_t max_label = 0;
  int64_t i = 0;
  for (auto& [sample_id, rows] : samples) {
    if (static_cast<int64_t>(rows.size()) != t_len) {
      return Status::InvalidArgument(
          "sample " + std::to_string(sample_id) + " has " +
          std::to_string(rows.size()) + " time steps, expected " +
          std::to_string(t_len));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.t < b.t; });
    for (int64_t t = 0; t < t_len; ++t) {
      for (int64_t d = 0; d < channels; ++d) {
        ds.x.at({i, t, d}) = rows[static_cast<size_t>(t)]
                                 .values[static_cast<size_t>(d)];
      }
    }
    const int64_t label = labels.at(sample_id);
    max_label = std::max(max_label, label);
    ds.y.push_back(label);
    ++i;
  }
  ds.num_classes = max_label + 1;
  TSFM_RETURN_IF_ERROR(Validate(ds));
  return ds;
}

}  // namespace tsfm::data
