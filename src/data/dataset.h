#ifndef TSFM_DATA_DATASET_H_
#define TSFM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace tsfm::data {

/// A labeled multivariate time-series classification dataset.
/// `x` has shape (N, T, D): N samples, T time steps, D channels.
struct TimeSeriesDataset {
  std::string name;
  Tensor x;
  std::vector<int64_t> y;
  int64_t num_classes = 0;

  int64_t size() const { return x.ndim() == 3 ? x.dim(0) : 0; }
  int64_t length() const { return x.ndim() == 3 ? x.dim(1) : 0; }
  int64_t channels() const { return x.ndim() == 3 ? x.dim(2) : 0; }
};

/// Validates internal consistency (shapes, label range). Returns
/// InvalidArgument describing the first violation.
Status Validate(const TimeSeriesDataset& ds);

/// Per-channel z-score statistics computed over all samples and time steps.
struct ChannelStats {
  Tensor mean;  // (D)
  Tensor std;   // (D), clamped away from zero
};

/// Computes per-channel statistics of `ds` (over N and T jointly).
ChannelStats ComputeChannelStats(const TimeSeriesDataset& ds);

/// Returns a copy of `ds` normalized with `stats` (train-set statistics are
/// applied to both splits, as in the paper's preprocessing).
TimeSeriesDataset NormalizeWith(const TimeSeriesDataset& ds,
                                const ChannelStats& stats);

/// Extracts the samples at `indices` (with their labels).
TimeSeriesDataset Select(const TimeSeriesDataset& ds,
                         const std::vector<int64_t>& indices);

/// Random subsample of up to `max_n` items (stable if size() <= max_n).
TimeSeriesDataset Subsample(const TimeSeriesDataset& ds, int64_t max_n,
                            Rng* rng);

/// Truncates each series to the first `max_t` steps (no-op if shorter).
TimeSeriesDataset TruncateLength(const TimeSeriesDataset& ds, int64_t max_t);

/// Keeps only the first `max_d` channels (no-op if fewer).
TimeSeriesDataset TruncateChannels(const TimeSeriesDataset& ds, int64_t max_d);

/// Splits [0, n) into shuffled mini-batches of size `batch_size` (last batch
/// may be smaller). If `rng` is null, order is sequential.
std::vector<std::vector<int64_t>> MakeBatches(int64_t n, int64_t batch_size,
                                              Rng* rng);

/// Per-class sample counts (size num_classes).
std::vector<int64_t> ClassCounts(const TimeSeriesDataset& ds);

/// Classification accuracy of `predictions` against `ds.y`.
double Accuracy(const std::vector<int64_t>& predictions,
                const TimeSeriesDataset& ds);

}  // namespace tsfm::data

#endif  // TSFM_DATA_DATASET_H_
