#ifndef TSFM_DATA_CSV_H_
#define TSFM_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace tsfm::data {

/// Writes `ds` to a CSV file with one row per (sample, time step):
///
///   sample,label,t,ch0,ch1,...,ch{D-1}
///
/// The header row records the channel count; rows are emitted in
/// (sample, time) order. Intended for interoperability with external tooling
/// (pandas, sktime exports of the real UEA archive, ...).
Status SaveCsv(const TimeSeriesDataset& ds, const std::string& path);

/// Reads a dataset previously written by SaveCsv (or produced externally in
/// the same layout). All samples must have the same length and channel
/// count; labels must be non-negative integers. `num_classes` is inferred as
/// max(label) + 1.
Result<TimeSeriesDataset> LoadCsv(const std::string& path,
                                  const std::string& name = "csv");

}  // namespace tsfm::data

#endif  // TSFM_DATA_CSV_H_
