#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "tensor/ops.h"

namespace tsfm::data {

Status Validate(const TimeSeriesDataset& ds) {
  if (ds.x.ndim() != 3) {
    return Status::InvalidArgument("dataset x must be (N, T, D), got " +
                                   ShapeToString(ds.x.shape()));
  }
  if (static_cast<int64_t>(ds.y.size()) != ds.size()) {
    return Status::InvalidArgument("label count does not match sample count");
  }
  if (ds.num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  for (int64_t label : ds.y) {
    if (label < 0 || label >= ds.num_classes) {
      return Status::InvalidArgument("label out of range: " +
                                     std::to_string(label));
    }
  }
  return Status::OK();
}

ChannelStats ComputeChannelStats(const TimeSeriesDataset& ds) {
  TSFM_CHECK_EQ(ds.x.ndim(), 3);
  const int64_t d = ds.channels();
  Tensor flat = ds.x.Reshape(Shape{-1, d});  // (N*T, D)
  ChannelStats stats;
  stats.mean = Mean(flat, 0);
  Tensor var = Variance(flat, 0);
  stats.std = Sqrt(var);
  float* p = stats.std.mutable_data();
  for (int64_t i = 0; i < d; ++i) p[i] = std::max(p[i], 1e-6f);
  return stats;
}

TimeSeriesDataset NormalizeWith(const TimeSeriesDataset& ds,
                                const ChannelStats& stats) {
  TimeSeriesDataset out = ds;
  // (N, T, D) - (D) broadcasts over leading dims.
  out.x = Div(Sub(ds.x, stats.mean), stats.std);
  return out;
}

TimeSeriesDataset Select(const TimeSeriesDataset& ds,
                         const std::vector<int64_t>& indices) {
  TimeSeriesDataset out;
  out.name = ds.name;
  out.num_classes = ds.num_classes;
  out.x = TakeRows(ds.x, indices);
  out.y.reserve(indices.size());
  for (int64_t i : indices) {
    TSFM_CHECK_GE(i, 0);
    TSFM_CHECK_LT(i, ds.size());
    out.y.push_back(ds.y[static_cast<size_t>(i)]);
  }
  return out;
}

TimeSeriesDataset Subsample(const TimeSeriesDataset& ds, int64_t max_n,
                            Rng* rng) {
  if (ds.size() <= max_n) return ds;
  std::vector<int64_t> idx(static_cast<size_t>(ds.size()));
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  idx.resize(static_cast<size_t>(max_n));
  std::sort(idx.begin(), idx.end());
  return Select(ds, idx);
}

TimeSeriesDataset TruncateLength(const TimeSeriesDataset& ds, int64_t max_t) {
  if (ds.length() <= max_t) return ds;
  TimeSeriesDataset out = ds;
  // Datasets promise dense storage (baselines read x.data() row-major), so
  // the truncating view is packed before it escapes.
  out.x = Slice(ds.x, 1, 0, max_t).Contiguous();
  return out;
}

TimeSeriesDataset TruncateChannels(const TimeSeriesDataset& ds,
                                   int64_t max_d) {
  if (ds.channels() <= max_d) return ds;
  TimeSeriesDataset out = ds;
  out.x = Slice(ds.x, 2, 0, max_d).Contiguous();
  return out;
}

std::vector<std::vector<int64_t>> MakeBatches(int64_t n, int64_t batch_size,
                                              Rng* rng) {
  TSFM_CHECK_GT(batch_size, 0);
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  if (rng != nullptr) rng->Shuffle(&idx);
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min(n, start + batch_size);
    batches.emplace_back(idx.begin() + start, idx.begin() + end);
  }
  return batches;
}

std::vector<int64_t> ClassCounts(const TimeSeriesDataset& ds) {
  std::vector<int64_t> counts(static_cast<size_t>(ds.num_classes), 0);
  for (int64_t label : ds.y) ++counts[static_cast<size_t>(label)];
  return counts;
}

double Accuracy(const std::vector<int64_t>& predictions,
                const TimeSeriesDataset& ds) {
  TSFM_CHECK_EQ(predictions.size(), ds.y.size());
  if (predictions.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == ds.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

}  // namespace tsfm::data
