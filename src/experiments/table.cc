#include "experiments/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "stats/stats.h"

namespace tsfm::experiments {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  TSFM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return Status::IoError("cannot open " + path);
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << quote(row[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  if (!os) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string SummaryCell(const std::vector<std::string>& seed_cells) {
  std::vector<double> values;
  for (const auto& cell : seed_cells) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() || (end != nullptr && *end != '\0')) {
      return cell;  // verdict string (COM/TO) dominates the summary
    }
    values.push_back(v);
  }
  if (values.empty()) return "-";
  return FormatDouble(stats::Mean(values)) + "+-" +
         FormatDouble(stats::SampleStd(values));
}

}  // namespace tsfm::experiments
