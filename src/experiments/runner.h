#ifndef TSFM_EXPERIMENTS_RUNNER_H_
#define TSFM_EXPERIMENTS_RUNNER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/pretrained.h"
#include "resources/cost_model.h"

namespace tsfm::experiments {

/// Global experiment configuration, typically derived from the environment:
///   TSFM_BENCH_FAST=1  -> aggressive caps, fewer seeds (CI mode)
///   TSFM_SEEDS=n       -> number of seeds (default 3, as in the paper)
///   TSFM_DATASETS=a,b  -> restrict to named datasets
///   TSFM_CACHE_DIR=d   -> content-addressed embedding cache; sweep entries
///                         that revisit a (model, adapter, dataset) triple
///                         skip the embed pass entirely
struct ExperimentConfig {
  bool fast = false;
  int64_t num_seeds = 3;
  int64_t out_channels = 5;  // D' (the paper fixes 5 in Table 2)
  data::GeneratorCaps caps = data::DefaultCaps();
  std::vector<std::string> dataset_filter;  // empty = all 12
  std::string checkpoint_dir = "checkpoints";
  /// Embedding-cache directory (io::SetEmbedCacheDir); empty = leave the
  /// process-wide setting (TSFM_CACHE_DIR / --cache-dir) untouched.
  std::string cache_dir;
};

/// Reads the configuration from environment variables.
ExperimentConfig ConfigFromEnv();

/// One cell of a results table: either a real measured run on the scaled
/// models, or a paper-scale COM/TO verdict when the simulated V100 run
/// would not have completed (mirroring how the paper reports those cells).
struct RunRecord {
  std::string dataset;
  models::ModelKind model_kind;
  std::string method;  // adapter / strategy label
  uint64_t seed = 0;
  resources::ResourceEstimate estimate;  // paper-scale simulation
  /// Set when the simulated verdict was OK and the scaled run executed.
  std::optional<finetune::FineTuneResult> measured;

  bool completed() const { return measured.has_value(); }
  /// Accuracy if completed, NaN otherwise.
  double accuracy() const;
  /// "0.123" or "COM"/"TO".
  std::string CellString() const;
};

/// Specification of a single run in the experiment grid.
struct RunSpec {
  std::string dataset;        // UEA name or abbreviation
  models::ModelKind model_kind = models::ModelKind::kMoment;
  /// nullopt = no adapter in front of the encoder.
  std::optional<core::AdapterKind> adapter;
  finetune::Strategy strategy = finetune::Strategy::kAdapterPlusHead;
  uint64_t seed = 0;
  core::AdapterOptions adapter_options;
};

/// Shared driver: owns the pretrained scaled models (cached on disk) and
/// executes (dataset x model x adapter x strategy x seed) runs, attaching the
/// paper-scale V100 simulation to every record.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);

  const ExperimentConfig& config() const { return config_; }

  /// The datasets selected by the config (paper order).
  std::vector<data::UeaDatasetSpec> Datasets() const;

  /// Lazily pretrains (or loads) the scaled foundation model.
  Result<std::shared_ptr<models::FoundationModel>> GetModel(
      models::ModelKind kind);

  /// Executes one run (or returns its COM/TO verdict without running).
  Result<RunRecord> Run(const RunSpec& spec);

  /// Paper-scale resource estimate for a run, without executing anything.
  resources::ResourceEstimate Estimate(const RunSpec& spec) const;

 private:
  /// Training-regime + channel count the paper-scale simulation should use.
  resources::TrainRegime RegimeFor(const RunSpec& spec) const;

  ExperimentConfig config_;
  std::map<models::ModelKind, std::shared_ptr<models::FoundationModel>>
      models_;
  /// Dataset cache keyed by (name, seed).
  std::map<std::pair<std::string, uint64_t>, data::DatasetPair> datasets_;

  Result<const data::DatasetPair*> GetDataset(const std::string& name,
                                              uint64_t seed);
};

/// Method label used in tables ("no_adapter", "PCA", "lcomb_top_k", ...).
std::string MethodLabel(const std::optional<core::AdapterKind>& adapter,
                        const core::AdapterOptions& options);

}  // namespace tsfm::experiments

#endif  // TSFM_EXPERIMENTS_RUNNER_H_
