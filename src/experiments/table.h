#ifndef TSFM_EXPERIMENTS_TABLE_H_
#define TSFM_EXPERIMENTS_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tsfm::experiments {

/// Minimal column-aligned text table used by the benchmark binaries to print
/// paper-style result tables, with CSV export alongside.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with padded, aligned columns.
  std::string ToString() const;

  /// Writes RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string FormatDouble(double value, int digits = 3);

/// "mean+-std" cell from per-seed values, or a verdict string if any seed has
/// one (verdicts win over numbers, as in the paper's tables).
std::string SummaryCell(const std::vector<std::string>& seed_cells);

}  // namespace tsfm::experiments

#endif  // TSFM_EXPERIMENTS_TABLE_H_
