#include "experiments/runner.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "io/embed_cache.h"
#include "obs/budget.h"
#include "obs/run_report.h"
#include "resources/measured.h"

namespace tsfm::experiments {

namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

ExperimentConfig ConfigFromEnv() {
  ExperimentConfig config;
  if (const char* fast = std::getenv("TSFM_BENCH_FAST");
      fast != nullptr && std::string(fast) == "1") {
    config.fast = true;
    config.caps = data::FastCaps();
    config.num_seeds = 2;
  }
  if (const char* seeds = std::getenv("TSFM_SEEDS"); seeds != nullptr) {
    config.num_seeds = std::max<int64_t>(1, std::atoll(seeds));
  }
  if (const char* ds = std::getenv("TSFM_DATASETS"); ds != nullptr) {
    config.dataset_filter = SplitCsv(ds);
  }
  if (const char* dir = std::getenv("TSFM_CHECKPOINT_DIR"); dir != nullptr) {
    config.checkpoint_dir = dir;
  }
  if (const char* cache = std::getenv("TSFM_CACHE_DIR"); cache != nullptr) {
    config.cache_dir = cache;
  }
  return config;
}

double RunRecord::accuracy() const {
  if (!measured.has_value()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return measured->test_accuracy;
}

std::string RunRecord::CellString() const {
  if (!completed()) return resources::VerdictString(estimate.verdict);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", measured->test_accuracy);
  return buf;
}

std::string MethodLabel(const std::optional<core::AdapterKind>& adapter,
                        const core::AdapterOptions& options) {
  if (!adapter.has_value()) return "no_adapter";
  if (*adapter == core::AdapterKind::kPca) {
    if (options.pca_patch_window > 1) {
      return "PatchPCA_" + std::to_string(options.pca_patch_window);
    }
    return options.pca_scale ? "ScaledPCA" : "PCA";
  }
  return core::AdapterKindName(*adapter);
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {
  // Sweeps revisit the same frozen (model, adapter, dataset) triples across
  // strategies; routing them through the embedding cache makes every repeat
  // a disk read instead of an encoder pass.
  if (!config_.cache_dir.empty()) tsfm::io::SetEmbedCacheDir(config_.cache_dir);
}

std::vector<data::UeaDatasetSpec> ExperimentRunner::Datasets() const {
  std::vector<data::UeaDatasetSpec> out;
  for (const auto& spec : data::UeaSpecs()) {
    if (config_.dataset_filter.empty()) {
      out.push_back(spec);
      continue;
    }
    for (const auto& want : config_.dataset_filter) {
      if (spec.name == want || spec.abbrev == want) {
        out.push_back(spec);
        break;
      }
    }
  }
  return out;
}

Result<std::shared_ptr<models::FoundationModel>> ExperimentRunner::GetModel(
    models::ModelKind kind) {
  auto it = models_.find(kind);
  if (it != models_.end()) return it->second;

  models::FoundationModelConfig model_config =
      kind == models::ModelKind::kMoment ? models::MomentSmallConfig()
                                         : models::VitSmallConfig();
  models::PretrainOptions pretrain;
  if (config_.fast) {
    pretrain.corpus_size = 256;
    pretrain.epochs = 2;
  }
  std::string cache;
  if (!config_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    cache = config_.checkpoint_dir + "/" +
            std::string(models::ModelKindName(kind)) +
            (config_.fast ? "_fast" : "_small") + ".ckpt";
  }
  TSFM_ASSIGN_OR_RETURN(std::shared_ptr<models::FoundationModel> model,
                        models::LoadOrPretrain(kind, model_config, pretrain,
                                               cache));
  models_.emplace(kind, model);
  return model;
}

Result<const data::DatasetPair*> ExperimentRunner::GetDataset(
    const std::string& name, uint64_t seed) {
  const auto key = std::make_pair(name, seed);
  auto it = datasets_.find(key);
  if (it == datasets_.end()) {
    TSFM_ASSIGN_OR_RETURN(data::UeaDatasetSpec spec, data::FindUeaSpec(name));
    it = datasets_
             .emplace(key, data::GenerateUeaLike(spec, seed, config_.caps))
             .first;
  }
  return &it->second;
}

resources::TrainRegime ExperimentRunner::RegimeFor(const RunSpec& spec) const {
  const bool learnable =
      spec.adapter.has_value() &&
      (*spec.adapter == core::AdapterKind::kLcomb ||
       *spec.adapter == core::AdapterKind::kLcombTopK);
  if (spec.strategy == finetune::Strategy::kFullFineTune) {
    return resources::TrainRegime::kFullFineTune;
  }
  if (learnable) return resources::TrainRegime::kAdapterPlusHeadLearnable;
  return resources::TrainRegime::kEmbedOnceHeadOnly;
}

resources::ResourceEstimate ExperimentRunner::Estimate(
    const RunSpec& spec) const {
  auto spec_or = data::FindUeaSpec(spec.dataset);
  TSFM_CHECK(spec_or.ok()) << spec_or.status().ToString();
  const data::UeaDatasetSpec& ds = *spec_or;

  const resources::PaperModelSpec model =
      spec.model_kind == models::ModelKind::kMoment
          ? resources::MomentPaperSpec()
          : resources::VitPaperSpec();
  // Channels the paper-scale encoder sees: D' behind an adapter, D without.
  // Identity adapters keep all channels.
  int64_t channels = ds.channels;
  if (spec.adapter.has_value() &&
      *spec.adapter != core::AdapterKind::kNone) {
    channels = std::min(channels, spec.adapter_options.out_channels);
  }
  resources::Workload workload{ds.train_size, ds.test_size, channels};
  return resources::EstimateRun(model, resources::V100Spec(), workload,
                                RegimeFor(spec));
}

Result<RunRecord> ExperimentRunner::Run(const RunSpec& spec) {
  RunRecord record;
  record.dataset = spec.dataset;
  record.model_kind = spec.model_kind;
  record.method = MethodLabel(spec.adapter, spec.adapter_options);
  record.seed = spec.seed;
  record.estimate = Estimate(spec);
  if (record.estimate.verdict != resources::Verdict::kOk) {
    // The paper-scale run would have died with COM/TO: report the verdict
    // without burning compute, exactly as the paper's tables do.
    return record;
  }

  TSFM_ASSIGN_OR_RETURN(std::shared_ptr<models::FoundationModel> model,
                        GetModel(spec.model_kind));
  if (spec.strategy == finetune::Strategy::kFullFineTune) {
    // Full fine-tuning mutates the encoder: give the run its own copy of the
    // pretrained weights instead of polluting the shared cached model.
    models_.erase(spec.model_kind);
    TSFM_ASSIGN_OR_RETURN(model, GetModel(spec.model_kind));
    models_.erase(spec.model_kind);  // do not reuse the mutated instance
  }
  TSFM_ASSIGN_OR_RETURN(const data::DatasetPair* pair,
                        GetDataset(spec.dataset, spec.seed));

  std::unique_ptr<core::Adapter> adapter;
  if (spec.adapter.has_value()) {
    core::AdapterOptions options = spec.adapter_options;
    options.seed = spec.seed * 7919 + 17;
    // Clamp D' to the realized channel count (caps may shrink tiny datasets).
    options.out_channels =
        std::min(options.out_channels, pair->train.channels());
    adapter = core::CreateAdapter(*spec.adapter, options);
  }

  finetune::FineTuneOptions ft;
  ft.strategy = spec.strategy;
  ft.seed = spec.seed;
  if (config_.fast) {
    ft.head_epochs = 30;
    ft.joint_epochs = 14;
  }

  // When TSFM_RUN_REPORT names a directory, every measured run of a sweep
  // leaves a manifest there: per-epoch timeline, allocator footprint, the
  // paper-scale prediction already computed above, and the budget verdict.
  const std::string report_dir = obs::RunReportDirFromEnv();
  obs::RunReport report;
  if (!report_dir.empty()) {
    report.command = "experiment";
    report.model = models::ModelKindName(spec.model_kind);
    report.adapter = record.method;
    report.strategy = finetune::StrategyName(spec.strategy);
    report.dprime = adapter != nullptr
                        ? std::min(spec.adapter_options.out_channels,
                                   pair->train.channels())
                        : 0;
    report.options = {
        {"dataset", "\"" + spec.dataset + "\""},
        {"head_epochs", std::to_string(ft.head_epochs)},
        {"joint_epochs", std::to_string(ft.joint_epochs)},
        {"batch_size", std::to_string(ft.batch_size)},
        {"seed", std::to_string(static_cast<int64_t>(ft.seed))},
    };
    ft.on_epoch = [&report](const finetune::EpochProgress& p) {
      obs::RunReportEpoch e;
      e.epoch = p.epoch;
      e.phase = finetune::PhaseName(p.phase);
      e.loss = p.loss;
      e.accuracy = p.accuracy;
      e.seconds = p.seconds;
      e.pool_live_bytes = static_cast<double>(p.pool_live_bytes);
      report.epochs.push_back(std::move(e));
    };
  }

  Result<finetune::FineTuneResult> measured =
      Status::Internal("run did not start");
  const resources::MeasuredMemory mem = resources::MeasurePeak([&] {
    measured = finetune::FineTune(model.get(), adapter.get(), pair->train,
                                  pair->test, ft);
  });
  TSFM_RETURN_IF_ERROR(measured.status());
  record.measured = *measured;

  if (!report_dir.empty()) {
    report.mem_baseline_bytes = static_cast<double>(mem.baseline_bytes);
    report.mem_peak_bytes = static_cast<double>(mem.peak_bytes);
    report.mem_acquires = static_cast<double>(mem.acquires);
    report.mem_pool_hits = static_cast<double>(mem.pool_hits);
    report.mem_heap_allocs = static_cast<double>(mem.heap_allocs);
    report.graph_enabled = measured->graph_enabled;
    report.embed_mode = measured->embed_mode;
    for (const auto& t : measured->stage_timings) {
      report.stages.push_back(obs::RunReportStage{t.stage, t.seconds});
    }
    report.train_accuracy = measured->train_accuracy;
    report.test_accuracy = measured->test_accuracy;
    report.final_loss = measured->final_loss;
    report.adapter_fit_seconds = measured->adapter_fit_seconds;
    report.train_seconds = measured->train_seconds;
    report.total_seconds = measured->total_seconds;
    report.has_estimate = true;
    report.estimate_model =
        spec.model_kind == models::ModelKind::kMoment
            ? resources::MomentPaperSpec().name
            : resources::VitPaperSpec().name;
    report.estimate_regime = resources::TrainRegimeName(RegimeFor(spec));
    report.estimate_verdict =
        resources::VerdictString(record.estimate.verdict);
    report.estimate_channels = report.dprime > 0 ? report.dprime
                                                 : pair->train.channels();
    report.estimate_values = {
        {"param_bytes", record.estimate.param_bytes},
        {"optimizer_bytes", record.estimate.optimizer_bytes},
        {"activation_bytes", record.estimate.activation_bytes},
        {"attention_bytes", record.estimate.attention_bytes},
        {"peak_memory_bytes", record.estimate.peak_memory_bytes},
        {"total_flops", record.estimate.total_flops},
        {"total_seconds", record.estimate.total_seconds},
    };
    report.budget = obs::JudgeBudget(
        obs::CurrentBudget(),
        static_cast<double>(mem.baseline_bytes + mem.peak_bytes),
        measured->total_seconds);
    const Result<std::string> path = obs::WriteRunReport(report, report_dir);
    if (!path.ok()) {
      std::fprintf(stderr, "run report not written: %s\n",
                   path.status().ToString().c_str());
    }
  }
  return record;
}

}  // namespace tsfm::experiments
