#include "experiments/runner.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace tsfm::experiments {

namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

ExperimentConfig ConfigFromEnv() {
  ExperimentConfig config;
  if (const char* fast = std::getenv("TSFM_BENCH_FAST");
      fast != nullptr && std::string(fast) == "1") {
    config.fast = true;
    config.caps = data::FastCaps();
    config.num_seeds = 2;
  }
  if (const char* seeds = std::getenv("TSFM_SEEDS"); seeds != nullptr) {
    config.num_seeds = std::max<int64_t>(1, std::atoll(seeds));
  }
  if (const char* ds = std::getenv("TSFM_DATASETS"); ds != nullptr) {
    config.dataset_filter = SplitCsv(ds);
  }
  if (const char* dir = std::getenv("TSFM_CHECKPOINT_DIR"); dir != nullptr) {
    config.checkpoint_dir = dir;
  }
  return config;
}

double RunRecord::accuracy() const {
  if (!measured.has_value()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return measured->test_accuracy;
}

std::string RunRecord::CellString() const {
  if (!completed()) return resources::VerdictString(estimate.verdict);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", measured->test_accuracy);
  return buf;
}

std::string MethodLabel(const std::optional<core::AdapterKind>& adapter,
                        const core::AdapterOptions& options) {
  if (!adapter.has_value()) return "no_adapter";
  if (*adapter == core::AdapterKind::kPca) {
    if (options.pca_patch_window > 1) {
      return "PatchPCA_" + std::to_string(options.pca_patch_window);
    }
    return options.pca_scale ? "ScaledPCA" : "PCA";
  }
  return core::AdapterKindName(*adapter);
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {}

std::vector<data::UeaDatasetSpec> ExperimentRunner::Datasets() const {
  std::vector<data::UeaDatasetSpec> out;
  for (const auto& spec : data::UeaSpecs()) {
    if (config_.dataset_filter.empty()) {
      out.push_back(spec);
      continue;
    }
    for (const auto& want : config_.dataset_filter) {
      if (spec.name == want || spec.abbrev == want) {
        out.push_back(spec);
        break;
      }
    }
  }
  return out;
}

Result<std::shared_ptr<models::FoundationModel>> ExperimentRunner::GetModel(
    models::ModelKind kind) {
  auto it = models_.find(kind);
  if (it != models_.end()) return it->second;

  models::FoundationModelConfig model_config =
      kind == models::ModelKind::kMoment ? models::MomentSmallConfig()
                                         : models::VitSmallConfig();
  models::PretrainOptions pretrain;
  if (config_.fast) {
    pretrain.corpus_size = 256;
    pretrain.epochs = 2;
  }
  std::string cache;
  if (!config_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    cache = config_.checkpoint_dir + "/" +
            std::string(models::ModelKindName(kind)) +
            (config_.fast ? "_fast" : "_small") + ".ckpt";
  }
  TSFM_ASSIGN_OR_RETURN(std::shared_ptr<models::FoundationModel> model,
                        models::LoadOrPretrain(kind, model_config, pretrain,
                                               cache));
  models_.emplace(kind, model);
  return model;
}

Result<const data::DatasetPair*> ExperimentRunner::GetDataset(
    const std::string& name, uint64_t seed) {
  const auto key = std::make_pair(name, seed);
  auto it = datasets_.find(key);
  if (it == datasets_.end()) {
    TSFM_ASSIGN_OR_RETURN(data::UeaDatasetSpec spec, data::FindUeaSpec(name));
    it = datasets_
             .emplace(key, data::GenerateUeaLike(spec, seed, config_.caps))
             .first;
  }
  return &it->second;
}

resources::TrainRegime ExperimentRunner::RegimeFor(const RunSpec& spec) const {
  const bool learnable =
      spec.adapter.has_value() &&
      (*spec.adapter == core::AdapterKind::kLcomb ||
       *spec.adapter == core::AdapterKind::kLcombTopK);
  if (spec.strategy == finetune::Strategy::kFullFineTune) {
    return resources::TrainRegime::kFullFineTune;
  }
  if (learnable) return resources::TrainRegime::kAdapterPlusHeadLearnable;
  return resources::TrainRegime::kEmbedOnceHeadOnly;
}

resources::ResourceEstimate ExperimentRunner::Estimate(
    const RunSpec& spec) const {
  auto spec_or = data::FindUeaSpec(spec.dataset);
  TSFM_CHECK(spec_or.ok()) << spec_or.status().ToString();
  const data::UeaDatasetSpec& ds = *spec_or;

  const resources::PaperModelSpec model =
      spec.model_kind == models::ModelKind::kMoment
          ? resources::MomentPaperSpec()
          : resources::VitPaperSpec();
  // Channels the paper-scale encoder sees: D' behind an adapter, D without.
  // Identity adapters keep all channels.
  int64_t channels = ds.channels;
  if (spec.adapter.has_value() &&
      *spec.adapter != core::AdapterKind::kNone) {
    channels = std::min(channels, spec.adapter_options.out_channels);
  }
  resources::Workload workload{ds.train_size, ds.test_size, channels};
  return resources::EstimateRun(model, resources::V100Spec(), workload,
                                RegimeFor(spec));
}

Result<RunRecord> ExperimentRunner::Run(const RunSpec& spec) {
  RunRecord record;
  record.dataset = spec.dataset;
  record.model_kind = spec.model_kind;
  record.method = MethodLabel(spec.adapter, spec.adapter_options);
  record.seed = spec.seed;
  record.estimate = Estimate(spec);
  if (record.estimate.verdict != resources::Verdict::kOk) {
    // The paper-scale run would have died with COM/TO: report the verdict
    // without burning compute, exactly as the paper's tables do.
    return record;
  }

  TSFM_ASSIGN_OR_RETURN(std::shared_ptr<models::FoundationModel> model,
                        GetModel(spec.model_kind));
  if (spec.strategy == finetune::Strategy::kFullFineTune) {
    // Full fine-tuning mutates the encoder: give the run its own copy of the
    // pretrained weights instead of polluting the shared cached model.
    models_.erase(spec.model_kind);
    TSFM_ASSIGN_OR_RETURN(model, GetModel(spec.model_kind));
    models_.erase(spec.model_kind);  // do not reuse the mutated instance
  }
  TSFM_ASSIGN_OR_RETURN(const data::DatasetPair* pair,
                        GetDataset(spec.dataset, spec.seed));

  std::unique_ptr<core::Adapter> adapter;
  if (spec.adapter.has_value()) {
    core::AdapterOptions options = spec.adapter_options;
    options.seed = spec.seed * 7919 + 17;
    // Clamp D' to the realized channel count (caps may shrink tiny datasets).
    options.out_channels =
        std::min(options.out_channels, pair->train.channels());
    adapter = core::CreateAdapter(*spec.adapter, options);
  }

  finetune::FineTuneOptions ft;
  ft.strategy = spec.strategy;
  ft.seed = spec.seed;
  if (config_.fast) {
    ft.head_epochs = 30;
    ft.joint_epochs = 14;
  }
  TSFM_ASSIGN_OR_RETURN(
      finetune::FineTuneResult measured,
      finetune::FineTune(model.get(), adapter.get(), pair->train, pair->test,
                         ft));
  record.measured = measured;
  return record;
}

}  // namespace tsfm::experiments
