#include "pipeline/stages.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "graph/executor.h"
#include "io/embed_cache.h"
#include "io/hash.h"
#include "obs/budget.h"
#include "obs/trace.h"
#include "optim/optim.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "tensor/ops.h"

namespace tsfm::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Correct predictions in one training batch (for the per-epoch timeline;
// the argmax rides on logits that are already computed).
int64_t CountCorrect(const Tensor& logits, const std::vector<int64_t>& yb) {
  const std::vector<int64_t> pred = ArgMaxLast(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size() && i < yb.size(); ++i) {
    if (pred[i] == yb[i]) ++correct;
  }
  return correct;
}

std::string Int64Str(int64_t v) { return std::to_string(v); }

}  // namespace

// ---------------------------------------------------------------------------
// NormalizeStage

NormalizeStage::NormalizeStage(data::ChannelStats stats)
    : stats_(std::move(stats)), fitted_(true) {}

std::string NormalizeStage::ShapeSignature() const {
  return "(N,T,D)->(N,T,D)";
}

int64_t NormalizeStage::FittedStateBytes() const {
  if (!fitted_) return 0;
  return (stats_.mean.numel() + stats_.std.numel()) *
         static_cast<int64_t>(sizeof(float));
}

Status NormalizeStage::Fit(const Tensor& x, const std::vector<int64_t>& y,
                           const ExecutionContext& ctx) {
  (void)y;
  (void)ctx;
  if (x.ndim() != 3) {
    return Status::InvalidArgument("normalize stage expects (N, T, D)");
  }
  data::TimeSeriesDataset view;
  view.x = x;
  stats_ = data::ComputeChannelStats(view);
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> NormalizeStage::Apply(const Tensor& x,
                                     const ExecutionContext& ctx) const {
  (void)ctx;
  if (!fitted_) return Status::FailedPrecondition("normalize stage not fitted");
  if (x.ndim() != 3) {
    return Status::InvalidArgument("normalize stage expects (N, T, D)");
  }
  // (N, T, D) - (D) broadcasts over leading dims; identical math to
  // data::NormalizeWith.
  return Div(Sub(x, stats_.mean), stats_.std);
}

// ---------------------------------------------------------------------------
// AdaptStage

AdaptStage::AdaptStage(std::shared_ptr<core::Adapter> adapter)
    : adapter_(std::move(adapter)) {
  TSFM_CHECK(adapter_ != nullptr);
}

std::string AdaptStage::ShapeSignature() const {
  return "(N,T,D)->(N,T'," + Int64Str(adapter_->output_channels()) + ")";
}

bool AdaptStage::fitted() const { return adapter_->fitted(); }

int64_t AdaptStage::FittedStateBytes() const {
  return AdapterStateBytes(*adapter_);
}

Status AdaptStage::Fit(const Tensor& x, const std::vector<int64_t>& y,
                       const ExecutionContext& ctx) {
  (void)ctx;
  TSFM_TRACE_SPAN("finetune.adapter_fit");
  const auto t_fit = Clock::now();
  TSFM_RETURN_IF_ERROR(adapter_->Fit(x, y));
  last_fit_seconds_ = SecondsSince(t_fit);
  RecordAdapterFit(last_fit_seconds_);
  return Status::OK();
}

Result<Tensor> AdaptStage::Apply(const Tensor& x,
                                 const ExecutionContext& ctx) const {
  (void)ctx;
  return adapter_->Transform(x);
}

// ---------------------------------------------------------------------------
// EmbedStage

EmbedStage::EmbedStage(std::shared_ptr<const models::FoundationModel> model)
    : model_(std::move(model)) {
  TSFM_CHECK(model_ != nullptr);
}

std::string EmbedStage::ShapeSignature() const {
  return "(N,T,D')->(N," + Int64Str(model_->embedding_dim()) + ")";
}

int64_t EmbedStage::FittedStateBytes() const {
  return model_->NumParameters() * static_cast<int64_t>(sizeof(float));
}

Status EmbedStage::Fit(const Tensor& x, const std::vector<int64_t>& y,
                       const ExecutionContext& ctx) {
  // The encoder is pretrained and frozen on this path; nothing to fit.
  (void)x;
  (void)y;
  (void)ctx;
  return Status::OK();
}

Result<Tensor> EmbedStage::Apply(const Tensor& x,
                                 const ExecutionContext& ctx) const {
  if (x.ndim() != 3) {
    return Status::InvalidArgument("embed stage expects (N, T, D)");
  }
  std::string mode;
  Tensor emb;
  if (ctx.allow_embed_cache) {
    emb = EmbedDatasetCached(*model_, x, ctx.batch_size, ctx.seed,
                             ctx.cache_salt, ctx.cache_stats, &mode);
  } else {
    // Per-request path: never hash the model per call.
    mode = simd::QuantModeEnabled()
               ? "int8"
               : (graph::GraphModeEnabled() ? "graph" : "eager");
    emb = EmbedDataset(*model_, x, ctx.batch_size, ctx.seed);
  }
  if (ctx.embed_mode != nullptr) *ctx.embed_mode = mode;
  // A tripped budget leaves `emb` empty; surface the diagnosis instead of
  // handing a truncated tensor to the next stage.
  TSFM_RETURN_IF_ERROR(obs::CheckBudget("finetune.embed_dataset"));
  return emb;
}

// ---------------------------------------------------------------------------
// HeadStage

HeadStage::HeadStage(std::shared_ptr<models::ClassificationHead> head,
                     int64_t embedding_dim, int64_t num_classes,
                     HeadTrainOptions options)
    : head_(std::move(head)),
      options_(options),
      embedding_dim_(embedding_dim),
      num_classes_(num_classes) {
  TSFM_CHECK(head_ != nullptr);
}

std::string HeadStage::ShapeSignature() const {
  return "(N," + Int64Str(embedding_dim_) + ")->(N," +
         Int64Str(num_classes_) + ")";
}

int64_t HeadStage::FittedStateBytes() const {
  if (!fitted_) return 0;
  return head_->NumParameters() * static_cast<int64_t>(sizeof(float));
}

Status HeadStage::Fit(const Tensor& embeddings,
                      const std::vector<int64_t>& labels,
                      const ExecutionContext& ctx) {
  if (embeddings.ndim() != 2) {
    return Status::InvalidArgument("head stage trains on embeddings (N, E)");
  }
  optim::AdamW opt(head_->Parameters(), options_.lr, 0.9f, 0.999f, 1e-8f,
                   options_.weight_decay);
  Rng local_rng(ctx.seed);
  Rng* rng = ctx.rng != nullptr ? ctx.rng : &local_rng;
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    TSFM_TRACE_SPAN("finetune.head_epoch");
    const auto t_epoch = Clock::now();
    auto batches = data::MakeBatches(embeddings.dim(0), ctx.batch_size, rng);
    double loss_sum = 0.0;
    int64_t correct = 0;
    for (const auto& idx : batches) {
      Tensor xb = TakeRows(embeddings, idx);
      std::vector<int64_t> yb;
      yb.reserve(idx.size());
      for (int64_t i : idx) yb.push_back(labels[static_cast<size_t>(i)]);
      ag::Var logits = head_->Forward(ag::Constant(xb));
      ag::Var loss = ag::CrossEntropy(logits, yb);
      loss.Backward();
      opt.Step();
      opt.ZeroGrad();
      head_->ZeroGrad();
      loss_sum += loss.value()[0];
      if (ctx.on_epoch) correct += CountCorrect(logits.value(), yb);
    }
    RecordSteps(static_cast<int64_t>(batches.size()));
    last = loss_sum / static_cast<double>(batches.size());
    TSFM_RETURN_IF_ERROR(FinishEpoch(ctx.on_epoch, Phase::kHead, epoch,
                                     options_.epochs, SecondsSince(t_epoch),
                                     last, correct, embeddings.dim(0)));
  }
  final_loss_ = last;
  fitted_ = true;
  return Status::OK();
}

Result<Tensor> HeadStage::Apply(const Tensor& x,
                                const ExecutionContext& ctx) const {
  (void)ctx;
  if (x.ndim() != 2) {
    return Status::InvalidArgument("head stage expects embeddings (N, E)");
  }
  ag::NoGradGuard guard;
  return head_->Forward(ag::Constant(x)).value();
}

int64_t AdapterStateBytes(const core::Adapter& adapter) {
  if (!adapter.fitted()) return 0;
  // The serialized fitted state is the exact byte count a Save would write.
  std::ostringstream os;
  if (!adapter.SaveState(&os).ok()) return 0;
  return static_cast<int64_t>(os.str().size());
}

// ---------------------------------------------------------------------------
// Dataset embedding (moved here from finetune so the pipeline layer owns the
// encoder-facing execution path; finetune keeps thin compatibility shims).

Tensor EmbedDataset(const models::FoundationModel& model, const Tensor& x,
                    int64_t batch_size, uint64_t seed) {
  TSFM_TRACE_SPAN("finetune.embed_dataset");
  const int64_t n = x.dim(0);
  const int64_t bs = std::max<int64_t>(1, batch_size);
  const int64_t num_batches = (n + bs - 1) / bs;
  std::vector<Tensor> chunks(static_cast<size_t>(num_batches));
  // Batches are independent under the frozen encoder, so they embed in
  // parallel; results land in per-batch slots and concatenate in batch
  // order, so the output matches the serial loop exactly. The NoGradGuard
  // (thread-local) and the inference Rng are per task: evaluation forward
  // passes never consume randomness, so per-task re-seeding is equivalent
  // to the former shared stream.
  runtime::ParallelFor(0, num_batches, /*grain=*/1, [&](int64_t lo,
                                                        int64_t hi) {
    ag::NoGradGuard guard;
    Rng rng(seed);
    nn::ForwardContext ctx{/*training=*/false, &rng};
    for (int64_t b = lo; b < hi; ++b) {
      // Budget poll per batch: a long embed pass over a large dataset must
      // abort at the cap, not after it. A tripped budget abandons the
      // remaining batches; the caller sees it via CheckBudget and discards
      // the partial result.
      if (!obs::CheckBudget("finetune.embed_dataset").ok()) return;
      const int64_t start = b * bs;
      const int64_t end = std::min(n, start + bs);
      Tensor xb = Slice(x, 0, start, end);
      ag::Var emb = model.EncodeChannels(ag::Constant(xb), ctx);
      chunks[static_cast<size_t>(b)] = emb.value();
    }
  });
  if (obs::BudgetTripped()) return Tensor();
  return Concat(chunks, 0);
}

std::string EmbedCacheKey(const models::FoundationModel& model,
                          const Tensor& x, int64_t batch_size,
                          const std::string& salt,
                          const data::ChannelStats* stats) {
  // The encoder is frozen on this path, so the embedding is a pure function
  // of the weights, the (normalized, adapter-transformed) input, and the
  // batch split. Hash exactly those; the salt folds in strategy/adapter tags
  // so unrelated pipelines can never share an entry even on a hash fluke,
  // and the normalization statistics are keyed explicitly so a refit with
  // different train stats on the same raw tensor can never hit a stale
  // entry.
  io::HashBuilder key;
  key.AddString("tsfm.embed.v4");
  key.AddString(salt);
  // Numeric mode is part of the key: SIMD transcendentals and the int8
  // Linear path produce results that differ (within the accuracy epsilon)
  // from the scalar fp32 kernels, so their embeddings must never share a
  // cache entry with fp32 runs. Graph/eager stay unkeyed — see below.
  key.AddString(simd::QuantModeEnabled() ? "quant-int8" : "fp32");
  key.AddString(simd::SimdEnabled() ? "simd" : "scalar");
  key.AddU64(static_cast<uint64_t>(batch_size));
  if (stats != nullptr && stats->mean.numel() > 0) {
    key.AddString("stats");
    key.AddTensor(stats->mean);
    key.AddTensor(stats->std);
  } else {
    key.AddString("no_stats");
  }
  for (const auto& [name, p] : model.NamedParameters()) {
    key.AddString(name);
    key.AddTensor(p.value());
  }
  key.AddTensor(x);
  return key.HexDigest();
}

Tensor EmbedDatasetCached(const models::FoundationModel& model,
                          const Tensor& x, int64_t batch_size, uint64_t seed,
                          const std::string& salt,
                          const data::ChannelStats* stats, std::string* mode) {
  // The cache key is deliberately independent of graph-vs-eager: those runs
  // are bit-identical, so they share entries (asserted by the CI smoke test
  // that warms the cache eager and hits it with --graph). Quant/SIMD modes
  // ARE keyed (see EmbedCacheKey).
  const char* encoder_mode = simd::QuantModeEnabled()
                                 ? "int8"
                                 : (graph::GraphModeEnabled() ? "graph"
                                                              : "eager");
  if (mode != nullptr) *mode = encoder_mode;
  if (!io::EmbedCacheEnabled()) {
    return EmbedDataset(model, x, batch_size, seed);
  }
  const std::string digest = EmbedCacheKey(model, x, batch_size, salt, stats);
  if (Result<Tensor> hit = io::EmbedCacheLookup(digest); hit.ok()) {
    if (mode != nullptr) *mode = "cache";
    return std::move(hit).value();
  }
  Tensor emb = EmbedDataset(model, x, batch_size, seed);
  if (!obs::BudgetTripped() && emb.numel() > 0) {
    if (Status s = io::EmbedCacheStore(digest, emb); !s.ok()) {
      // A failed store never fails the run; the embedding is already here.
      std::fprintf(stderr, "embed cache store failed: %s\n",
                   s.ToString().c_str());
    }
  }
  return emb;
}

}  // namespace tsfm::pipeline
