#include "pipeline/progress.h"

#include "obs/budget.h"
#include "obs/metrics.h"
#include "resources/measured.h"

namespace tsfm::pipeline {

namespace {

// Training-loop telemetry: every epoch (head-only and joint alike) records
// its wall-clock and throughput and publishes the running loss, so a
// metrics snapshot taken mid-run answers "how fast and how converged".
struct LoopMetrics {
  obs::Counter* epochs;
  obs::Counter* steps;
  obs::Histogram* epoch_seconds;
  obs::Gauge* last_loss;
  obs::Gauge* samples_per_sec;
  obs::Histogram* adapter_fit_seconds;
};

LoopMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static LoopMetrics m{r.GetCounter("finetune.epochs"),
                       r.GetCounter("finetune.steps"),
                       r.GetHistogram("finetune.epoch_seconds"),
                       r.GetGauge("finetune.last_loss"),
                       r.GetGauge("finetune.samples_per_sec"),
                       r.GetHistogram("adapter.fit_seconds")};
  return m;
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kHead:
      return "head";
    case Phase::kJoint:
      return "joint";
  }
  return "unknown";
}

Status FinishEpoch(const EpochCallback& on_epoch, Phase phase, int64_t epoch,
                   int64_t total_epochs, double seconds, double mean_loss,
                   int64_t correct, int64_t samples) {
  LoopMetrics& m = Metrics();
  m.epochs->Add(1);
  m.epoch_seconds->Observe(seconds);
  m.last_loss->Set(mean_loss);
  if (seconds > 0.0) {
    m.samples_per_sec->Set(static_cast<double>(samples) / seconds);
  }
  if (on_epoch) {
    EpochProgress progress;
    progress.epoch = epoch;
    progress.total_epochs = total_epochs;
    progress.phase = phase;
    progress.loss = mean_loss;
    progress.accuracy =
        samples > 0 ? static_cast<double>(correct) / samples : 0.0;
    progress.seconds = seconds;
    progress.pool_live_bytes = resources::CurrentLiveBytes();
    progress.samples_per_sec =
        seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
    on_epoch(progress);
  }
  return obs::CheckBudget(phase == Phase::kHead ? "finetune.head_epoch"
                                                : "finetune.joint_epoch");
}

void RecordSteps(int64_t steps) { Metrics().steps->Add(steps); }

void RecordAdapterFit(double seconds) {
  Metrics().adapter_fit_seconds->Observe(seconds);
}

}  // namespace tsfm::pipeline
