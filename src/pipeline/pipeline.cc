#include "pipeline/pipeline.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace tsfm::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void AccumulateStageTiming(std::vector<StageTiming>* timings,
                           const char* stage, double seconds) {
  if (timings == nullptr) return;
  for (StageTiming& t : *timings) {
    if (t.stage == stage) {
      t.seconds += seconds;
      return;
    }
  }
  timings->push_back(StageTiming{stage, seconds});
}

Pipeline& Pipeline::Add(std::shared_ptr<Stage> stage) {
  TSFM_CHECK(stage != nullptr);
  stages_.push_back(std::move(stage));
  return *this;
}

bool Pipeline::fitted() const {
  for (const auto& stage : stages_) {
    if (!stage->fitted()) return false;
  }
  return true;
}

Result<Tensor> Pipeline::FitTransform(const Tensor& x,
                                      const std::vector<int64_t>& y,
                                      const ExecutionContext& ctx) {
  Tensor cur = x;
  for (const auto& stage : stages_) {
    // Stage names have static storage duration (Stage::name contract), so
    // handing them to the span tracker is safe.
    obs::TraceSpan span(stage->name());
    const auto t_stage = Clock::now();
    TSFM_RETURN_IF_ERROR(stage->Fit(cur, y, ctx));
    TSFM_ASSIGN_OR_RETURN(cur, stage->Apply(cur, ctx));
    AccumulateStageTiming(ctx.timings, stage->name(), SecondsSince(t_stage));
  }
  return cur;
}

Result<Tensor> Pipeline::Apply(const Tensor& x,
                               const ExecutionContext& ctx) const {
  return ApplyPrefix(stages_.size(), x, ctx);
}

Result<Tensor> Pipeline::ApplyPrefix(size_t count, const Tensor& x,
                                     const ExecutionContext& ctx) const {
  Tensor cur = x;
  const size_t n = count < stages_.size() ? count : stages_.size();
  for (size_t i = 0; i < n; ++i) {
    const Stage& stage = *stages_[i];
    if (!stage.fitted()) {
      return Status::FailedPrecondition(std::string("pipeline stage '") +
                                        stage.name() + "' is not fitted");
    }
    obs::TraceSpan span(stage.name());
    const auto t_stage = Clock::now();
    TSFM_ASSIGN_OR_RETURN(cur, stage.Apply(cur, ctx));
    AccumulateStageTiming(ctx.timings, stage.name(), SecondsSince(t_stage));
  }
  return cur;
}

std::vector<StageDescription> Pipeline::Describe() const {
  std::vector<StageDescription> out;
  out.reserve(stages_.size());
  for (const auto& stage : stages_) {
    StageDescription d;
    d.name = stage->name();
    d.signature = stage->ShapeSignature();
    d.fitted = stage->fitted();
    d.state_bytes = stage->FittedStateBytes();
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace tsfm::pipeline
