#ifndef TSFM_PIPELINE_SESSION_H_
#define TSFM_PIPELINE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "data/dataset.h"
#include "models/foundation_model.h"
#include "models/head.h"
#include "pipeline/pipeline.h"

namespace tsfm::pipeline {

/// Inference-time knobs of a session. `seed` and `batch_size` reproduce the
/// training-time evaluation exactly (same eval Rng stream, same batch
/// split), which is what makes session predictions bit-identical to
/// `TsfmClassifier::Predict`.
struct SessionOptions {
  bool normalize = true;
  int64_t batch_size = 32;
  uint64_t seed = 0;
};

/// An immutable fitted pipeline bundle for serving: frozen encoder, fitted
/// adapter (optional), trained head, and the training-set normalization
/// statistics, all held as shared_ptr<const>.
///
/// Thread-safety: `Predict` / `PredictBatch` / `Logits` / `Embed` are
/// re-entrant — safe to call from many threads at once on one session, and
/// bit-identical to the serial loop. Every call builds its own NoGradGuard
/// (thread-local) and eval Rng; the encoder's graph executor is internally
/// synchronized; nothing in the session mutates after construction. Sessions
/// are created fitted and never refit — swap in a new session (see
/// Registry) to change models.
class InferenceSession {
 public:
  /// Validates and bundles the parts. `adapter` may be null (no adapter
  /// configured); when `options.normalize` is set, `stats` must hold
  /// matching mean/std vectors. `num_classes` is the head's logit count
  /// (used for Describe and input checks).
  static Result<std::shared_ptr<const InferenceSession>> Create(
      std::shared_ptr<const models::FoundationModel> model,
      std::shared_ptr<const core::Adapter> adapter,
      std::shared_ptr<const models::ClassificationHead> head,
      data::ChannelStats stats, int64_t num_classes, SessionOptions options);

  /// Class labels for a raw (N, T, D) batch. Applies exactly the
  /// training-time preprocessing (normalize with train stats, adapter
  /// transform) before the encoder and head.
  Result<std::vector<int64_t>> PredictBatch(const Tensor& x) const;

  /// Label for one sample: (T, D), or (1, T, D).
  Result<int64_t> Predict(const Tensor& x) const;

  /// Head logits (N, C) for a raw (N, T, D) batch.
  Result<Tensor> Logits(const Tensor& x) const;

  /// Encoder embeddings (N, E) for a raw (N, T, D) batch (preprocessing
  /// included, head skipped).
  Result<Tensor> Embed(const Tensor& x) const;

  /// Per-stage summary of the composed pipeline (for `pipeline describe`
  /// and the registry surface).
  std::vector<StageDescription> Describe() const;

  const models::FoundationModel& model() const { return *model_; }
  /// Null when the pipeline has no adapter.
  const core::Adapter* adapter() const { return adapter_.get(); }
  const models::ClassificationHead& head() const { return *head_; }
  const data::ChannelStats& stats() const { return stats_; }
  const SessionOptions& options() const { return options_; }
  int64_t num_classes() const { return num_classes_; }

 private:
  InferenceSession(std::shared_ptr<const models::FoundationModel> model,
                   std::shared_ptr<const core::Adapter> adapter,
                   std::shared_ptr<const models::ClassificationHead> head,
                   data::ChannelStats stats, int64_t num_classes,
                   SessionOptions options);

  /// Shared forward: preprocess + encode + (optionally) head, batch by
  /// batch. `with_head` selects logits vs embeddings.
  Result<Tensor> Run(const Tensor& x, bool with_head) const;

  std::shared_ptr<const models::FoundationModel> model_;
  std::shared_ptr<const core::Adapter> adapter_;  // may be null
  std::shared_ptr<const models::ClassificationHead> head_;
  data::ChannelStats stats_;
  int64_t num_classes_ = 0;
  SessionOptions options_;
};

}  // namespace tsfm::pipeline

#endif  // TSFM_PIPELINE_SESSION_H_
