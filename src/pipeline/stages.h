#ifndef TSFM_PIPELINE_STAGES_H_
#define TSFM_PIPELINE_STAGES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "data/dataset.h"
#include "models/foundation_model.h"
#include "models/head.h"
#include "pipeline/stage.h"

namespace tsfm::pipeline {

/// Z-score normalization with training-set statistics (the paper's
/// preprocessing). Fit computes per-channel mean/std over (N, T) jointly;
/// Apply broadcasts them over any (N, T, D) batch.
class NormalizeStage : public Stage {
 public:
  NormalizeStage() = default;
  /// Restores a fitted stage from saved statistics.
  explicit NormalizeStage(data::ChannelStats stats);

  const char* name() const override { return "normalize"; }
  std::string ShapeSignature() const override;
  bool fitted() const override { return fitted_; }
  int64_t FittedStateBytes() const override;
  Status Fit(const Tensor& x, const std::vector<int64_t>& y,
             const ExecutionContext& ctx) override;
  Result<Tensor> Apply(const Tensor& x,
                       const ExecutionContext& ctx) const override;

  /// Fitted statistics; valid once fitted(). The reference stays valid for
  /// the stage's lifetime, so drivers can point ExecutionContext::cache_stats
  /// at it before Fit has run.
  const data::ChannelStats& stats() const { return stats_; }

 private:
  data::ChannelStats stats_;
  bool fitted_ = false;
};

/// Channel-dimensionality reduction behind a core::Adapter: (N, T, D) ->
/// (N, T', D'). Fit delegates to Adapter::Fit (and records the
/// adapter.fit_seconds histogram); Apply to the static Transform.
class AdaptStage : public Stage {
 public:
  explicit AdaptStage(std::shared_ptr<core::Adapter> adapter);

  const char* name() const override { return "adapt"; }
  std::string ShapeSignature() const override;
  bool fitted() const override;
  int64_t FittedStateBytes() const override;
  Status Fit(const Tensor& x, const std::vector<int64_t>& y,
             const ExecutionContext& ctx) override;
  Result<Tensor> Apply(const Tensor& x,
                       const ExecutionContext& ctx) const override;

  const core::Adapter* adapter() const { return adapter_.get(); }
  std::shared_ptr<core::Adapter> shared_adapter() const { return adapter_; }
  /// Wall-clock of the last Fit call (0 before any Fit). Drivers surface it
  /// as FineTuneResult::adapter_fit_seconds.
  double last_fit_seconds() const { return last_fit_seconds_; }

 private:
  std::shared_ptr<core::Adapter> adapter_;
  double last_fit_seconds_ = 0;
};

/// Frozen-encoder embedding: (N, T, D') -> (N, E) in batch_size chunks,
/// optionally through the content-addressed embedding cache. Born fitted —
/// the encoder weights are the (pretrained) fitted state.
class EmbedStage : public Stage {
 public:
  explicit EmbedStage(std::shared_ptr<const models::FoundationModel> model);

  const char* name() const override { return "embed"; }
  std::string ShapeSignature() const override;
  bool fitted() const override { return true; }
  int64_t FittedStateBytes() const override;
  Status Fit(const Tensor& x, const std::vector<int64_t>& y,
             const ExecutionContext& ctx) override;
  Result<Tensor> Apply(const Tensor& x,
                       const ExecutionContext& ctx) const override;

  const models::FoundationModel& model() const { return *model_; }
  std::shared_ptr<const models::FoundationModel> shared_model() const {
    return model_;
  }

 private:
  std::shared_ptr<const models::FoundationModel> model_;
};

/// Hyper-parameters of HeadStage::Fit (batching and shuffling come from the
/// ExecutionContext).
struct HeadTrainOptions {
  int64_t epochs = 60;
  float lr = 5e-2f;
  float weight_decay = 1e-4f;
};

/// Linear classification head: Fit trains it with AdamW on cached
/// embeddings (N, E); Apply maps embeddings to logits (N, C).
class HeadStage : public Stage {
 public:
  HeadStage(std::shared_ptr<models::ClassificationHead> head,
            int64_t embedding_dim, int64_t num_classes,
            HeadTrainOptions options);

  const char* name() const override { return "head"; }
  std::string ShapeSignature() const override;
  bool fitted() const override { return fitted_; }
  int64_t FittedStateBytes() const override;
  Status Fit(const Tensor& x, const std::vector<int64_t>& y,
             const ExecutionContext& ctx) override;
  Result<Tensor> Apply(const Tensor& x,
                       const ExecutionContext& ctx) const override;

  /// Mean training loss of the final Fit epoch. Requires fitted().
  double final_loss() const { return final_loss_; }
  const models::ClassificationHead& head() const { return *head_; }
  std::shared_ptr<models::ClassificationHead> shared_head() const {
    return head_;
  }

 private:
  std::shared_ptr<models::ClassificationHead> head_;
  HeadTrainOptions options_;
  int64_t embedding_dim_ = 0;
  int64_t num_classes_ = 0;
  bool fitted_ = false;
  double final_loss_ = 0;
};

/// Size in bytes of the adapter's serialized fitted state (exactly what a
/// Save would write); 0 when unfitted. Shared by AdaptStage and
/// InferenceSession::Describe.
int64_t AdapterStateBytes(const core::Adapter& adapter);

/// Embeds every sample of `x` (already adapter-transformed) with the frozen
/// encoder in `batch_size` chunks, without building a tape. Returns (N, E);
/// an empty tensor when the live resource budget tripped mid-pass.
Tensor EmbedDataset(const models::FoundationModel& model, const Tensor& x,
                    int64_t batch_size, uint64_t seed);

/// Content hash keying one dataset embedding in the cache: model parameters,
/// the (normalized, adapter-transformed) input tensor, the batch split, the
/// caller's strategy/adapter salt, and — when `stats` is non-null — the
/// normalization statistics the input was produced with, so a refit with
/// different train stats on the same raw tensor can never hit a stale entry.
/// Exposed for key-regression tests.
std::string EmbedCacheKey(const models::FoundationModel& model,
                          const Tensor& x, int64_t batch_size,
                          const std::string& salt,
                          const data::ChannelStats* stats);

/// `EmbedDataset` behind the content-addressed embedding cache. With the
/// cache disabled this is exactly `EmbedDataset`; a hit skips the encoder
/// entirely and is bit-identical to the miss path. Results of budget-aborted
/// passes are never stored. When `mode` is non-null it receives "cache" on a
/// hit, otherwise "graph"/"eager" per the current graph mode.
Tensor EmbedDatasetCached(const models::FoundationModel& model,
                          const Tensor& x, int64_t batch_size, uint64_t seed,
                          const std::string& salt,
                          const data::ChannelStats* stats,
                          std::string* mode);

}  // namespace tsfm::pipeline

#endif  // TSFM_PIPELINE_STAGES_H_
