#ifndef TSFM_PIPELINE_PROGRESS_H_
#define TSFM_PIPELINE_PROGRESS_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace tsfm::pipeline {

/// Training phase of an epoch. An enum (not a raw string pointer) so stored
/// progress records — run-report timelines outlive the training loop that
/// produced them — can never dangle.
enum class Phase { kHead, kJoint };

/// Stable human-readable name ("head" / "joint"); static storage duration.
const char* PhaseName(Phase phase);

/// Snapshot of one finished training epoch, delivered to the `on_epoch`
/// callback of a fine-tune run. Feeds the per-epoch timeline of run reports
/// (obs::RunReport) and any caller-side progress display.
struct EpochProgress {
  int64_t epoch = 0;             // index within its phase
  int64_t total_epochs = 0;      // epochs this phase will run
  Phase phase = Phase::kHead;    // which loop produced the epoch
  double loss = 0;               // mean training loss over the epoch
  double accuracy = 0;           // training accuracy over the epoch's batches
  double seconds = 0;            // wall-clock of the epoch
  int64_t pool_live_bytes = 0;   // allocator capacity live at epoch end
  double samples_per_sec = 0;
};

using EpochCallback = std::function<void(const EpochProgress&)>;

/// Shared per-epoch bookkeeping for every training loop (HeadStage::Fit and
/// the joint loop in finetune): publishes the finetune.* metrics, delivers
/// the progress callback when installed, and polls the live resource budget
/// — returns its ResourceExhausted when the run must stop.
Status FinishEpoch(const EpochCallback& on_epoch, Phase phase, int64_t epoch,
                   int64_t total_epochs, double seconds, double mean_loss,
                   int64_t correct, int64_t samples);

/// Bumps the finetune.steps counter by `steps` (one per optimizer step).
void RecordSteps(int64_t steps);

/// Observes one adapter fit into the adapter.fit_seconds histogram.
void RecordAdapterFit(double seconds);

}  // namespace tsfm::pipeline

#endif  // TSFM_PIPELINE_PROGRESS_H_
