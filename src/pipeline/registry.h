#ifndef TSFM_PIPELINE_REGISTRY_H_
#define TSFM_PIPELINE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "data/dataset.h"
#include "models/foundation_model.h"
#include "models/head.h"
#include "pipeline/session.h"

namespace tsfm::pipeline {

// ---------------------------------------------------------------------------
// Artifact naming. A fitted pipeline persists under a prefix as up to three
// files; every layer that touches fitted artifacts goes through these
// helpers instead of hand-concatenating suffixes.

/// `<prefix>.adapter` — fitted adapter state (absent when no adapter).
std::string AdapterArtifactPath(const std::string& prefix);
/// `<prefix>.head` — trained classification-head checkpoint.
std::string HeadArtifactPath(const std::string& prefix);
/// `<prefix>.stats` — training-set normalization statistics.
std::string StatsArtifactPath(const std::string& prefix);

// ---------------------------------------------------------------------------
// Fitted-bundle persistence (the state TsfmClassifier::Save/Load round-trip;
// the foundation-model weights are NOT duplicated — they live in the
// checkpoint referenced by the owning config).

/// Writes adapter (when non-null), head and stats under `prefix`.
Status SaveFittedBundle(const std::string& prefix, const core::Adapter* adapter,
                        const core::AdapterOptions& adapter_options,
                        const models::ClassificationHead& head,
                        const data::ChannelStats& stats);

/// A reloaded fitted bundle, ready to serve behind an InferenceSession or a
/// classifier facade.
struct FittedBundle {
  std::shared_ptr<core::Adapter> adapter;  // null when none was expected
  std::shared_ptr<models::ClassificationHead> head;
  data::ChannelStats stats;
};

/// Reads a bundle written by SaveFittedBundle. `expect_adapter` selects
/// whether `<prefix>.adapter` must exist; `embedding_dim`/`num_classes`
/// shape the head the checkpoint is loaded into.
Result<FittedBundle> LoadFittedBundle(const std::string& prefix,
                                      bool expect_adapter,
                                      int64_t embedding_dim,
                                      int64_t num_classes);

// ---------------------------------------------------------------------------
// Named-pipeline registry.

/// Maps names to live InferenceSessions with atomic hot-swap: Install
/// publishes a new session under a name in one mutex-protected pointer
/// store, so concurrent Get callers see either the old or the new session,
/// never a torn state. In-flight predictions on a replaced session finish
/// safely — the shared_ptr keeps the old bundle alive until the last caller
/// drops it.
class Registry {
 public:
  Registry() = default;

  /// The process-wide registry (what the CLI and serving surfaces use).
  static Registry& Instance();

  /// Publishes `session` under `name`, replacing any previous session
  /// atomically. Null sessions are rejected.
  Status Install(const std::string& name,
                 std::shared_ptr<const InferenceSession> session);

  /// The session under `name`, or null when absent.
  std::shared_ptr<const InferenceSession> Get(const std::string& name) const;

  /// Removes `name`; returns whether it existed. In-flight users of the
  /// removed session are unaffected.
  bool Remove(const std::string& name);

  /// Installed names, sorted.
  std::vector<std::string> Names() const;

  /// Loads the fitted bundle under `prefix` (see LoadFittedBundle), wraps it
  /// with `model` into an InferenceSession, and installs it under `name`.
  /// When `expected_adapter` is set, the reloaded adapter must match that
  /// kind. Returns the installed session.
  Result<std::shared_ptr<const InferenceSession>> LoadAndInstall(
      const std::string& name, const std::string& prefix,
      std::shared_ptr<const models::FoundationModel> model,
      std::optional<core::AdapterKind> expected_adapter, int64_t num_classes,
      SessionOptions options);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const InferenceSession>> sessions_;
};

}  // namespace tsfm::pipeline

#endif  // TSFM_PIPELINE_REGISTRY_H_
