#ifndef TSFM_PIPELINE_STAGE_H_
#define TSFM_PIPELINE_STAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "pipeline/progress.h"
#include "tensor/tensor.h"

namespace tsfm::pipeline {

/// Wall-clock of one stage's work inside a pipeline pass, keyed by the
/// stage's static name. Feeds the run report's per-stage timing section.
struct StageTiming {
  std::string stage;
  double seconds = 0;
};

/// Per-run context threading the shared infrastructure — embedding cache
/// gating, budget polling, trace/timing sinks, RNG — through every stage,
/// instead of each call site reaching for globals and environment variables
/// ad hoc. Plain value type: drivers copy it and tweak fields per pass.
struct ExecutionContext {
  /// Mini-batch size for stages that process samples in chunks (embed, head
  /// training).
  int64_t batch_size = 32;
  /// Seed for stages that consume randomness (embed forward contexts, head
  /// batching when `rng` is unset).
  uint64_t seed = 0;

  /// Allow EmbedStage to serve/store dataset embeddings through the
  /// content-addressed cache (io::EmbedCache*). Off for per-request
  /// inference, on for dataset-level fine-tune embeds.
  bool allow_embed_cache = false;
  /// Strategy/adapter tag folded into the embed cache key so unrelated
  /// pipelines can never share an entry even on a hash fluke.
  std::string cache_salt;
  /// Normalization statistics the input was produced with; folded into the
  /// embed cache key so a refit with different train stats on the same raw
  /// tensor can never hit a stale entry. Null when no normalization ran.
  const data::ChannelStats* cache_stats = nullptr;

  /// When non-null, receives how the embed stage actually ran: "cache" on a
  /// cache hit, otherwise "graph"/"eager" per the current graph mode.
  std::string* embed_mode = nullptr;
  /// When non-null, every stage pass accumulates its wall-clock here
  /// (entries aggregate by stage name across passes).
  std::vector<StageTiming>* timings = nullptr;

  /// Batching/shuffling stream for training stages; falls back to a local
  /// Rng(seed) when null. Drivers pass their own stream to preserve exact
  /// RNG sequences across refactors.
  Rng* rng = nullptr;
  /// Epoch-progress callback for training stages (HeadStage::Fit).
  EpochCallback on_epoch;
};

/// One step of the load→normalize→adapt→embed→head pipeline.
///
/// A stage owns its fitted state (statistics, adapter matrices, trained
/// weights) and exposes a uniform Fit/Apply surface so drivers — the
/// fine-tune loops, the classifier facade, `tsfm pipeline describe`, and
/// the serving runtime — can compose, time, inspect and persist pipelines
/// without knowing what is inside each step.
///
/// Thread-safety contract: `Apply` on a *fitted* stage is const and safe to
/// call concurrently from many threads; `Fit` is exclusive (no concurrent
/// Fit/Apply on the same stage).
class Stage {
 public:
  virtual ~Stage() = default;

  Stage() = default;
  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  /// Static identifier ("normalize", "adapt", "embed", "head"). Must have
  /// static storage duration — it is handed to trace spans, which keep the
  /// pointer.
  virtual const char* name() const = 0;

  /// Human-readable shape contract, e.g. "(N,T,D)->(N,T,5)". For the
  /// `pipeline describe` surface; not parsed.
  virtual std::string ShapeSignature() const = 0;

  /// True once Fit succeeded (stages without fitted state are born fitted).
  virtual bool fitted() const = 0;

  /// Bytes of fitted state this stage owns (0 when unfitted or stateless).
  virtual int64_t FittedStateBytes() const = 0;

  /// Fits the stage on `x` — the output of every stage before it — with
  /// labels `y` (ignored by unsupervised stages).
  virtual Status Fit(const Tensor& x, const std::vector<int64_t>& y,
                     const ExecutionContext& ctx) = 0;

  /// Applies the fitted stage to `x`. Requires fitted().
  virtual Result<Tensor> Apply(const Tensor& x,
                               const ExecutionContext& ctx) const = 0;
};

}  // namespace tsfm::pipeline

#endif  // TSFM_PIPELINE_STAGE_H_
