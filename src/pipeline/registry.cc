#include "pipeline/registry.h"

#include <sstream>
#include <utility>

#include "core/io_util.h"
#include "io/artifact.h"
#include "nn/serialize.h"

namespace tsfm::pipeline {

namespace {

// Normalization-statistics file: two tensors (mean, std) inside the
// integrity-checked artifact container.
constexpr uint64_t kStatsMagic = 0x3241545345465354ULL;  // "TSFESTA2"
constexpr uint32_t kStatsVersion = 2;

}  // namespace

std::string AdapterArtifactPath(const std::string& prefix) {
  return prefix + ".adapter";
}

std::string HeadArtifactPath(const std::string& prefix) {
  return prefix + ".head";
}

std::string StatsArtifactPath(const std::string& prefix) {
  return prefix + ".stats";
}

Status SaveFittedBundle(const std::string& prefix, const core::Adapter* adapter,
                        const core::AdapterOptions& adapter_options,
                        const models::ClassificationHead& head,
                        const data::ChannelStats& stats) {
  if (adapter != nullptr) {
    TSFM_RETURN_IF_ERROR(core::SaveAdapter(*adapter, adapter_options,
                                           AdapterArtifactPath(prefix)));
  }
  TSFM_RETURN_IF_ERROR(nn::SaveCheckpoint(head, HeadArtifactPath(prefix)));
  std::ostringstream os;
  core::io::WriteTensor(&os, stats.mean);
  core::io::WriteTensor(&os, stats.std);
  if (!os) return Status::IoError("stats serialization failed");
  return io::WriteArtifact(StatsArtifactPath(prefix), kStatsMagic,
                           kStatsVersion, os.str());
}

Result<FittedBundle> LoadFittedBundle(const std::string& prefix,
                                      bool expect_adapter,
                                      int64_t embedding_dim,
                                      int64_t num_classes) {
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  FittedBundle bundle;
  if (expect_adapter) {
    TSFM_ASSIGN_OR_RETURN(std::unique_ptr<core::Adapter> adapter,
                          core::LoadAdapter(AdapterArtifactPath(prefix)));
    bundle.adapter = std::move(adapter);
  }
  Rng head_rng(0);  // weights are overwritten by the checkpoint below
  bundle.head = std::make_shared<models::ClassificationHead>(
      embedding_dim, num_classes, &head_rng);
  TSFM_RETURN_IF_ERROR(
      nn::LoadCheckpoint(bundle.head.get(), HeadArtifactPath(prefix)));
  TSFM_ASSIGN_OR_RETURN(
      const std::string stats_payload,
      io::ReadArtifactPayload(StatsArtifactPath(prefix), kStatsMagic,
                              kStatsVersion));
  std::istringstream is(stats_payload);
  TSFM_RETURN_IF_ERROR(core::io::ReadTensor(&is, &bundle.stats.mean));
  TSFM_RETURN_IF_ERROR(core::io::ReadTensor(&is, &bundle.stats.std));
  return bundle;
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();
  return *instance;
}

Status Registry::Install(const std::string& name,
                         std::shared_ptr<const InferenceSession> session) {
  if (session == nullptr) {
    return Status::InvalidArgument("cannot install a null session");
  }
  if (name.empty()) {
    return Status::InvalidArgument("pipeline name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[name] = std::move(session);
  return Status::OK();
}

std::shared_ptr<const InferenceSession> Registry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  return it != sessions_.end() ? it->second : nullptr;
}

bool Registry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.erase(name) > 0;
}

std::vector<std::string> Registry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, _] : sessions_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<const InferenceSession>> Registry::LoadAndInstall(
    const std::string& name, const std::string& prefix,
    std::shared_ptr<const models::FoundationModel> model,
    std::optional<core::AdapterKind> expected_adapter, int64_t num_classes,
    SessionOptions options) {
  if (model == nullptr) {
    return Status::InvalidArgument("LoadAndInstall needs a model");
  }
  TSFM_ASSIGN_OR_RETURN(
      FittedBundle bundle,
      LoadFittedBundle(prefix, expected_adapter.has_value(),
                       model->embedding_dim(), num_classes));
  if (expected_adapter.has_value() &&
      bundle.adapter->kind() != *expected_adapter) {
    return Status::InvalidArgument(
        "saved adapter kind does not match the expected kind");
  }
  TSFM_ASSIGN_OR_RETURN(
      std::shared_ptr<const InferenceSession> session,
      InferenceSession::Create(std::move(model), bundle.adapter, bundle.head,
                               std::move(bundle.stats), num_classes, options));
  TSFM_RETURN_IF_ERROR(Install(name, session));
  return session;
}

}  // namespace tsfm::pipeline
