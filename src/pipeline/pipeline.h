#ifndef TSFM_PIPELINE_PIPELINE_H_
#define TSFM_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "pipeline/stage.h"

namespace tsfm::pipeline {

/// One row of `Pipeline::Describe` / `InferenceSession::Describe`: what the
/// `tsfm pipeline describe` surface prints per stage.
struct StageDescription {
  std::string name;
  std::string signature;
  bool fitted = false;
  int64_t state_bytes = 0;
};

/// An ordered composition of stages owning the pipeline's fitted state.
///
/// The pipeline is the *training-side* composition: `FitTransform` fits each
/// stage on the output of the stages before it, `Apply` runs the fitted
/// chain. Every stage pass runs under a trace span named after the stage and
/// accumulates wall-clock into `ExecutionContext::timings` (when set), so
/// drivers get per-stage timing for free.
///
/// Move-only: stages are held by shared_ptr, and silently sharing fitted
/// state between two pipelines is exactly the kind of aliasing this layer
/// exists to remove.
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Appends a stage; returns *this for chaining.
  Pipeline& Add(std::shared_ptr<Stage> stage);

  size_t size() const { return stages_.size(); }
  Stage& stage(size_t i) { return *stages_[i]; }
  const Stage& stage(size_t i) const { return *stages_[i]; }

  /// True when every stage is fitted (an empty pipeline is fitted).
  bool fitted() const;

  /// Fits each stage on the running tensor, then applies it: stage k sees
  /// the output of stages 0..k-1. Returns the output of the last stage.
  Result<Tensor> FitTransform(const Tensor& x, const std::vector<int64_t>& y,
                              const ExecutionContext& ctx);

  /// Applies the fitted chain to `x`. Requires fitted().
  Result<Tensor> Apply(const Tensor& x, const ExecutionContext& ctx) const;

  /// Applies only the first `count` stages (e.g. everything up to the head
  /// to obtain embeddings). `count` is clamped to size().
  Result<Tensor> ApplyPrefix(size_t count, const Tensor& x,
                             const ExecutionContext& ctx) const;

  /// Per-stage summary for the `pipeline describe` surface.
  std::vector<StageDescription> Describe() const;

 private:
  std::vector<std::shared_ptr<Stage>> stages_;
};

/// Adds `seconds` to the entry for `stage` in `timings` (appending one if the
/// stage has no entry yet). No-op when `timings` is null. Exposed so drivers
/// with hand-rolled loops (the joint fine-tune path) report timings through
/// the same sink as pipeline passes.
void AccumulateStageTiming(std::vector<StageTiming>* timings,
                           const char* stage, double seconds);

}  // namespace tsfm::pipeline

#endif  // TSFM_PIPELINE_PIPELINE_H_
