#include "pipeline/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/stages.h"
#include "tensor/ops.h"

namespace tsfm::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

// Per-request serving telemetry: how many samples were predicted and how
// long each request took, so a metrics snapshot answers "what latency is
// this session serving at".
struct SessionMetrics {
  obs::Counter* predictions;
  obs::Counter* requests;
  obs::Histogram* predict_seconds;
};

SessionMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static SessionMetrics m{r.GetCounter("session.predictions"),
                          r.GetCounter("session.requests"),
                          r.GetHistogram("session.predict_seconds")};
  return m;
}

std::string Int64Str(int64_t v) { return std::to_string(v); }

}  // namespace

InferenceSession::InferenceSession(
    std::shared_ptr<const models::FoundationModel> model,
    std::shared_ptr<const core::Adapter> adapter,
    std::shared_ptr<const models::ClassificationHead> head,
    data::ChannelStats stats, int64_t num_classes, SessionOptions options)
    : model_(std::move(model)),
      adapter_(std::move(adapter)),
      head_(std::move(head)),
      stats_(std::move(stats)),
      num_classes_(num_classes),
      options_(options) {}

Result<std::shared_ptr<const InferenceSession>> InferenceSession::Create(
    std::shared_ptr<const models::FoundationModel> model,
    std::shared_ptr<const core::Adapter> adapter,
    std::shared_ptr<const models::ClassificationHead> head,
    data::ChannelStats stats, int64_t num_classes, SessionOptions options) {
  if (model == nullptr) return Status::InvalidArgument("session needs a model");
  if (head == nullptr) return Status::InvalidArgument("session needs a head");
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (adapter != nullptr && !adapter->fitted()) {
    return Status::FailedPrecondition("session adapter is not fitted");
  }
  if (options.normalize &&
      (stats.mean.numel() == 0 || stats.mean.numel() != stats.std.numel())) {
    return Status::InvalidArgument(
        "normalize requested but stats mean/std are missing or mismatched");
  }
  return std::shared_ptr<const InferenceSession>(new InferenceSession(
      std::move(model), std::move(adapter), std::move(head), std::move(stats),
      num_classes, options));
}

Result<Tensor> InferenceSession::Run(const Tensor& x, bool with_head) const {
  if (x.ndim() != 3) {
    return Status::InvalidArgument("session expects (N, T, D)");
  }
  ag::NoGradGuard guard;
  Tensor input = x;
  if (options_.normalize) {
    input = Div(Sub(x, stats_.mean), stats_.std);
  }
  const int64_t batch = std::max<int64_t>(1, options_.batch_size);
  // Same eval stream as training-time evaluation (the forwards consume no
  // randomness, but dropout-style layers need a context).
  Rng eval_rng(options_.seed + 99);
  nn::ForwardContext ctx{/*training=*/false, &eval_rng};
  std::vector<Tensor> chunks;
  chunks.reserve(static_cast<size_t>((input.dim(0) + batch - 1) / batch));
  for (int64_t start = 0; start < input.dim(0); start += batch) {
    const int64_t end = std::min(input.dim(0), start + batch);
    Tensor xb = Slice(input, 0, start, end);
    ag::Var reduced = ag::Constant(xb);
    if (adapter_ != nullptr) reduced = adapter_->TransformVar(reduced);
    ag::Var emb = model_->EncodeChannels(reduced, ctx);
    chunks.push_back(with_head ? head_->Forward(emb).value() : emb.value());
  }
  return Concat(chunks, 0);
}

Result<std::vector<int64_t>> InferenceSession::PredictBatch(
    const Tensor& x) const {
  // This loop mirrors the training-side evaluation (and the classifier
  // facade) line for line — same preprocessing, same batch split, same eval
  // Rng — so session predictions are bit-identical to TsfmClassifier
  // predictions for the same fitted state.
  TSFM_TRACE_SPAN("session.predict");
  const auto t_start = Clock::now();
  if (x.ndim() != 3) {
    return Status::InvalidArgument("PredictBatch expects (N, T, D)");
  }
  ag::NoGradGuard guard;
  Tensor input = x;
  if (options_.normalize) {
    input = Div(Sub(x, stats_.mean), stats_.std);
  }
  std::vector<int64_t> predictions;
  predictions.reserve(static_cast<size_t>(x.dim(0)));
  const int64_t batch = std::max<int64_t>(1, options_.batch_size);
  Rng eval_rng(options_.seed + 99);
  nn::ForwardContext ctx{/*training=*/false, &eval_rng};
  for (int64_t start = 0; start < input.dim(0); start += batch) {
    const int64_t end = std::min(input.dim(0), start + batch);
    Tensor xb = Slice(input, 0, start, end);
    ag::Var reduced = ag::Constant(xb);
    if (adapter_ != nullptr) reduced = adapter_->TransformVar(reduced);
    ag::Var emb = model_->EncodeChannels(reduced, ctx);
    ag::Var logits = head_->Forward(emb);
    for (int64_t p : ArgMaxLast(logits.value())) predictions.push_back(p);
  }
  SessionMetrics& m = Metrics();
  m.requests->Add(1);
  m.predictions->Add(x.dim(0));
  m.predict_seconds->Observe(
      std::chrono::duration<double>(Clock::now() - t_start).count());
  return predictions;
}

Result<int64_t> InferenceSession::Predict(const Tensor& x) const {
  Tensor sample = x;
  if (x.ndim() == 2) {
    sample = x.Reshape({1, x.dim(0), x.dim(1)});
  }
  if (sample.ndim() != 3 || sample.dim(0) != 1) {
    return Status::InvalidArgument("Predict expects one sample (T, D)");
  }
  TSFM_ASSIGN_OR_RETURN(std::vector<int64_t> labels, PredictBatch(sample));
  return labels[0];
}

Result<Tensor> InferenceSession::Logits(const Tensor& x) const {
  TSFM_TRACE_SPAN("session.predict");
  return Run(x, /*with_head=*/true);
}

Result<Tensor> InferenceSession::Embed(const Tensor& x) const {
  TSFM_TRACE_SPAN("session.embed");
  return Run(x, /*with_head=*/false);
}

std::vector<StageDescription> InferenceSession::Describe() const {
  // Mirrors the Stage implementations' signatures without instantiating
  // mutable stages over the session's const parts.
  std::vector<StageDescription> out;
  if (options_.normalize) {
    out.push_back({"normalize", "(N,T,D)->(N,T,D)", true,
                   (stats_.mean.numel() + stats_.std.numel()) *
                       static_cast<int64_t>(sizeof(float))});
  }
  if (adapter_ != nullptr) {
    out.push_back({"adapt",
                   "(N,T,D)->(N,T'," + Int64Str(adapter_->output_channels()) +
                       ")",
                   adapter_->fitted(), AdapterStateBytes(*adapter_)});
  }
  out.push_back({"embed",
                 "(N,T,D')->(N," + Int64Str(model_->embedding_dim()) + ")",
                 true,
                 model_->NumParameters() * static_cast<int64_t>(sizeof(float))});
  out.push_back({"head",
                 "(N," + Int64Str(model_->embedding_dim()) + ")->(N," +
                     Int64Str(num_classes_) + ")",
                 true,
                 head_->NumParameters() * static_cast<int64_t>(sizeof(float))});
  return out;
}

}  // namespace tsfm::pipeline
