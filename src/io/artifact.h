#ifndef TSFM_IO_ARTIFACT_H_
#define TSFM_IO_ARTIFACT_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tsfm::io {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant). `crc` chains
/// incremental computation: pass the previous return value to continue a
/// running checksum; start from 0.
uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0);

/// Writes a file atomically: the contents land in `<path>.tmp.<pid>`, are
/// flushed to stable storage (fsync), and the temp file is renamed over
/// `path`. A crash, full disk, or writer error at any point leaves the
/// previous `path` (if any) untouched; the temp file is removed on failure.
///
/// `writer` streams the contents; returning a non-OK status aborts the write
/// (this is also how tests simulate a mid-write failure).
Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// Convenience overload for contents already in memory.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Durable artifact container (format v2) shared by checkpoints, adapter
/// files, classifier stats and embedding-cache entries:
///
///   u64 magic           type tag ("TSFMCKP2", "TSFMADP2", ...)
///   u32 version         format version of the payload
///   u32 reserved        zero
///   u64 payload_size    exact byte count of the payload
///   ...payload...
///   u32 crc32           CRC-32 of the payload bytes
///
/// Every field is checked on read: wrong magic (including pre-v2 files),
/// unsupported version, a payload_size that disagrees with the file length,
/// or a CRC mismatch all return IoError — a corrupt or truncated artifact
/// can never be parsed, and never triggers an allocation larger than the
/// file that actually exists on disk.

/// Wraps `payload` in the container and writes it atomically.
Status WriteArtifact(const std::string& path, uint64_t magic,
                     uint32_t version, std::string_view payload);

/// Reads and validates an artifact, returning the payload bytes.
/// NotFound when the file does not exist; IoError for every corruption.
Result<std::string> ReadArtifactPayload(const std::string& path,
                                        uint64_t magic,
                                        uint32_t expected_version);

/// Reads just the magic field (format sniffing for multi-format loaders,
/// e.g. fp32 vs quantized checkpoints). NotFound when the file does not
/// exist; IoError when it is too short to hold a header. No payload
/// validation — follow up with ReadArtifactPayload for that.
Result<uint64_t> ReadArtifactMagic(const std::string& path);

}  // namespace tsfm::io

#endif  // TSFM_IO_ARTIFACT_H_
