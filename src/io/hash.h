#ifndef TSFM_IO_HASH_H_
#define TSFM_IO_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "tensor/tensor.h"

namespace tsfm::io {

/// Streaming 128-bit content hash used to key the embedding cache.
///
/// Two independent 64-bit mixing lanes over the same byte stream; the digest
/// is their concatenation as 32 lowercase hex characters. Deterministic
/// across processes, platforms and thread counts (it hashes bytes, and every
/// tensor fed to it is packed first). Not cryptographic — collision
/// resistance is "content-addressed cache" grade, not adversarial.
class HashBuilder {
 public:
  /// Mixes `len` raw bytes into the digest.
  void AddBytes(const void* data, size_t len);

  /// Length-prefixed primitives, so adjacent fields cannot alias each other
  /// ("ab" + "c" hashes differently from "a" + "bc").
  void AddU64(uint64_t v) { AddBytes(&v, sizeof(v)); }
  void AddString(std::string_view s);

  /// Mixes shape and packed element bytes (views are contiguized first).
  void AddTensor(const Tensor& t);

  /// 32-hex-character digest of everything added so far.
  std::string HexDigest() const;

 private:
  uint64_t h1_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  uint64_t h2_ = 0x9e3779b97f4a7c15ULL;  // golden-ratio basis
};

}  // namespace tsfm::io

#endif  // TSFM_IO_HASH_H_
