#ifndef TSFM_IO_EMBED_CACHE_H_
#define TSFM_IO_EMBED_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tsfm::io {

/// Content-addressed, on-disk cache of frozen-encoder embeddings.
///
/// The linear-probe and adapter+head strategies never update the encoder, so
/// the embedding of a dataset is a pure function of (model parameters,
/// adapter output, batching) — the cache keys entries by a content hash of
/// exactly those inputs (io::HashBuilder) and stores one artifact-container
/// file (`<key>.emb`, CRC-protected, atomically written) per entry.
///
/// Configuration:
///  - directory: SetEmbedCacheDir() (the CLI's --cache-dir) overrides the
///    TSFM_CACHE_DIR environment variable; empty string = fall back to the
///    environment; neither set = cache disabled, zero overhead.
///  - size cap: SetEmbedCacheMaxBytes() overrides TSFM_CACHE_MAX_BYTES
///    (K/M/G suffixes not parsed — plain bytes); default 1 GiB. After every
///    store, the least-recently-used entries (by file mtime; lookups touch
///    their entry) are evicted until the directory fits the cap.
///
/// Observability: every lookup runs under an "io.cache.lookup" trace span
/// and bumps cache.hit / cache.miss; stores bump cache.store, evictions
/// cache.evictions, corrupt entries cache.corrupt; cache.bytes gauges the
/// directory size after the latest store/eviction pass.

/// Overrides the cache directory ("" = fall back to TSFM_CACHE_DIR).
void SetEmbedCacheDir(std::string dir);

/// Resolved cache directory; empty when the cache is disabled.
std::string EmbedCacheDir();

/// True when a cache directory is configured (flag or environment).
bool EmbedCacheEnabled();

/// Overrides the size cap in bytes (<= 0 = fall back to TSFM_CACHE_MAX_BYTES
/// / the 1 GiB default).
void SetEmbedCacheMaxBytes(int64_t bytes);
int64_t EmbedCacheMaxBytes();

/// Fetches the tensor stored under `key`. NotFound on a clean miss;
/// IoError when the entry exists but is corrupt (the entry is deleted so
/// the next run re-embeds instead of failing forever). A hit refreshes the
/// entry's LRU position.
Result<Tensor> EmbedCacheLookup(const std::string& key);

/// Stores `value` under `key` (atomic write + CRC), then evicts LRU entries
/// until the directory respects the size cap.
Status EmbedCacheStore(const std::string& key, const Tensor& value);

/// One entry as seen by the maintenance commands (`tsfm cache ...`).
struct EmbedCacheEntryInfo {
  std::string key;
  int64_t bytes = 0;
  /// True when the entry re-reads cleanly (magic/version/size/CRC).
  bool valid = false;
};

/// Lists the entries of `dir` (newest first). Pass EmbedCacheDir() for the
/// active cache. With `verify`, each entry's CRC is re-checked.
std::vector<EmbedCacheEntryInfo> EmbedCacheScan(const std::string& dir,
                                                bool verify);

/// Deletes every cache entry in `dir`; returns how many were removed.
Result<int64_t> EmbedCacheClear(const std::string& dir);

}  // namespace tsfm::io

#endif  // TSFM_IO_EMBED_CACHE_H_
