#include "io/artifact.h"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tsfm::io {

namespace {

// Table-driven CRC-32, generated once at first use (reflected 0xEDB88320).
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;
constexpr size_t kTrailerBytes = 4;

template <typename T>
void AppendRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T ReadRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t crc) {
  const auto& table = CrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  Status result = Status::OK();
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return Status::IoError("cannot open for writing: " + tmp);
    result = writer(&os);
    if (result.ok()) {
      os.flush();
      if (!os) result = Status::IoError("write failed: " + tmp);
    }
  }
  if (result.ok()) {
    // Push the temp file's bytes to stable storage before the rename makes
    // it visible: otherwise a crash can expose a renamed-but-empty file.
    std::FILE* f = std::fopen(tmp.c_str(), "rb");
    if (f == nullptr) {
      result = Status::IoError("cannot reopen for fsync: " + tmp);
    } else {
      if (::fsync(fileno(f)) != 0) {
        result = Status::IoError("fsync failed: " + tmp);
      }
      std::fclose(f);
    }
  }
  if (result.ok()) {
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      result = Status::IoError("rename " + tmp + " -> " + path + ": " +
                               ec.message());
    }
  }
  if (!result.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // best-effort cleanup; path untouched
  }
  return result;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  return WriteFileAtomic(path, [contents](std::ostream* os) {
    os->write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    return Status::OK();
  });
}

Status WriteArtifact(const std::string& path, uint64_t magic,
                     uint32_t version, std::string_view payload) {
  std::string header;
  header.reserve(kHeaderBytes);
  AppendRaw(&header, magic);
  AppendRaw(&header, version);
  AppendRaw(&header, uint32_t{0});
  AppendRaw(&header, static_cast<uint64_t>(payload.size()));
  const uint32_t crc = Crc32(payload.data(), payload.size());
  return WriteFileAtomic(path, [&](std::ostream* os) {
    os->write(header.data(), static_cast<std::streamsize>(header.size()));
    os->write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os->write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    return Status::OK();
  });
}

Result<std::string> ReadArtifactPayload(const std::string& path,
                                        uint64_t magic,
                                        uint32_t expected_version) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("no such artifact: " + path);
  }
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return Status::IoError("cannot open for reading: " + path);
  const int64_t file_size = static_cast<int64_t>(is.tellg());
  is.seekg(0);
  if (file_size < static_cast<int64_t>(kHeaderBytes + kTrailerBytes)) {
    return Status::IoError("truncated artifact (no header): " + path);
  }
  char header[kHeaderBytes];
  if (!is.read(header, kHeaderBytes)) {
    return Status::IoError("truncated artifact header: " + path);
  }
  if (ReadRaw<uint64_t>(header) != magic) {
    return Status::IoError("bad magic (not this artifact type, or a stale "
                           "pre-v2 file): " + path);
  }
  if (ReadRaw<uint32_t>(header + 8) != expected_version) {
    return Status::IoError("unsupported artifact version in " + path);
  }
  if (ReadRaw<uint32_t>(header + 12) != 0) {
    return Status::IoError("corrupt artifact header (reserved != 0): " +
                           path);
  }
  const uint64_t payload_size = ReadRaw<uint64_t>(header + 16);
  // The declared size must match the bytes actually on disk exactly; this
  // both detects truncation and bounds the allocation below by the real
  // file size — an oversized length field cannot demand gigabytes.
  if (payload_size !=
      static_cast<uint64_t>(file_size) - kHeaderBytes - kTrailerBytes) {
    return Status::IoError("artifact size mismatch (truncated or corrupt "
                           "header): " + path);
  }
  std::string payload(payload_size, '\0');
  if (payload_size > 0 &&
      !is.read(payload.data(), static_cast<std::streamsize>(payload_size))) {
    return Status::IoError("truncated artifact payload: " + path);
  }
  uint32_t stored_crc = 0;
  if (!is.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc))) {
    return Status::IoError("truncated artifact trailer: " + path);
  }
  if (Crc32(payload.data(), payload.size()) != stored_crc) {
    return Status::IoError("artifact checksum mismatch (corrupt file): " +
                           path);
  }
  return payload;
}

Result<uint64_t> ReadArtifactMagic(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("no such artifact: " + path);
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for reading: " + path);
  char buf[sizeof(uint64_t)];
  if (!is.read(buf, sizeof(buf))) {
    return Status::IoError("truncated artifact (no magic): " + path);
  }
  return ReadRaw<uint64_t>(buf);
}

}  // namespace tsfm::io
