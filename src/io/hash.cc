#include "io/hash.h"

#include <cstdio>
#include <cstring>

namespace tsfm::io {

namespace {

inline uint64_t Mix1(uint64_t h, uint64_t chunk) {
  // FNV-1a widened to 8-byte lanes, with an extra fold so high bytes of the
  // chunk influence low bits of the state.
  h = (h ^ chunk) * 0x100000001b3ULL;
  return h ^ (h >> 32);
}

inline uint64_t Mix2(uint64_t h, uint64_t chunk) {
  // splitmix64-style round on the second lane.
  h += chunk + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 27);
}

}  // namespace

void HashBuilder::AddBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p + i, 8);
    h1_ = Mix1(h1_, chunk);
    h2_ = Mix2(h2_, chunk);
  }
  if (i < len) {
    uint64_t tail = 0;
    std::memcpy(&tail, p + i, len - i);
    // Fold in the tail length so "abc" and "abc\0" differ.
    h1_ = Mix1(h1_, tail ^ (static_cast<uint64_t>(len - i) << 56));
    h2_ = Mix2(h2_, tail ^ (static_cast<uint64_t>(len - i) << 56));
  }
}

void HashBuilder::AddString(std::string_view s) {
  AddU64(s.size());
  AddBytes(s.data(), s.size());
}

void HashBuilder::AddTensor(const Tensor& t) {
  AddU64(static_cast<uint64_t>(t.ndim()));
  for (int64_t d : t.shape()) AddU64(static_cast<uint64_t>(d));
  const Tensor dense = t.Contiguous();
  AddBytes(dense.data(), static_cast<size_t>(dense.numel()) * sizeof(float));
}

std::string HashBuilder::HexDigest() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(h1_),
                static_cast<unsigned long long>(h2_));
  return buf;
}

}  // namespace tsfm::io
