#include "io/embed_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <utility>

#include "io/artifact.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsfm::io {

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kEmbedMagic = 0x32424D454D465354ULL;  // "TSFMEMB2"
constexpr uint32_t kEmbedVersion = 2;
constexpr const char* kEntrySuffix = ".emb";
constexpr int64_t kDefaultMaxBytes = int64_t{1} << 30;  // 1 GiB

struct CacheMetrics {
  obs::Counter* hit;
  obs::Counter* miss;
  obs::Counter* store;
  obs::Counter* evictions;
  obs::Counter* corrupt;
  obs::Gauge* bytes;
};

CacheMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static CacheMetrics m{r.GetCounter("cache.hit"), r.GetCounter("cache.miss"),
                        r.GetCounter("cache.store"),
                        r.GetCounter("cache.evictions"),
                        r.GetCounter("cache.corrupt"),
                        r.GetGauge("cache.bytes")};
  return m;
}

std::mutex& ConfigMutex() {
  static std::mutex mu;
  return mu;
}

std::string& DirOverride() {
  static std::string dir;
  return dir;
}

int64_t& MaxBytesOverride() {
  static int64_t v = 0;
  return v;
}

std::string EntryPath(const std::string& dir, const std::string& key) {
  return dir + "/" + key + kEntrySuffix;
}

bool IsEntry(const fs::directory_entry& e) {
  return e.is_regular_file() &&
         e.path().extension() == kEntrySuffix &&
         e.path().stem().string().find('.') == std::string::npos;
}

// Serializes a packed tensor as {ndim, dims..., float data}; the artifact
// container around it supplies integrity and versioning.
std::string EncodeTensor(const Tensor& t) {
  const Tensor dense = t.Contiguous();
  std::string payload;
  payload.reserve(8 * static_cast<size_t>(1 + dense.ndim()) +
                  static_cast<size_t>(dense.numel()) * sizeof(float));
  auto append_u64 = [&payload](uint64_t v) {
    payload.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u64(static_cast<uint64_t>(dense.ndim()));
  for (int64_t d : dense.shape()) append_u64(static_cast<uint64_t>(d));
  payload.append(reinterpret_cast<const char*>(dense.data()),
                 static_cast<size_t>(dense.numel()) * sizeof(float));
  return payload;
}

Result<Tensor> DecodeTensor(const std::string& payload) {
  const char* p = payload.data();
  size_t remaining = payload.size();
  auto read_u64 = [&](uint64_t* v) {
    if (remaining < sizeof(*v)) return false;
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
    remaining -= sizeof(*v);
    return true;
  };
  uint64_t ndim = 0;
  if (!read_u64(&ndim) || ndim > 8) {
    return Status::IoError("cache entry has implausible tensor rank");
  }
  Shape shape(ndim);
  int64_t numel = 1;
  for (uint64_t i = 0; i < ndim; ++i) {
    uint64_t d = 0;
    if (!read_u64(&d)) return Status::IoError("cache entry truncated");
    const auto dim = static_cast<int64_t>(d);
    if (dim <= 0) return Status::IoError("cache entry has non-positive dim");
    // The payload size is CRC-verified, so this exact-size check rejects any
    // dims field that does not match the data actually present.
    if (dim > static_cast<int64_t>(remaining)) {
      return Status::IoError("cache entry dims exceed payload");
    }
    shape[i] = dim;
    numel *= dim;
    if (numel > (int64_t{1} << 40)) {
      return Status::IoError("cache entry has implausible element count");
    }
  }
  if (static_cast<size_t>(numel) * sizeof(float) != remaining) {
    return Status::IoError("cache entry shape/data size mismatch");
  }
  Tensor t = Tensor::Empty(shape);
  std::memcpy(t.mutable_data(), p, remaining);
  return t;
}

// Evicts least-recently-used entries until `dir` fits under `max_bytes`;
// refreshes the cache.bytes gauge with the directory's final size.
void EvictToCap(const std::string& dir, int64_t max_bytes) {
  struct Entry {
    fs::path path;
    int64_t bytes;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  int64_t total = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (!IsEntry(e)) continue;
    std::error_code sec;
    const auto size = static_cast<int64_t>(e.file_size(sec));
    if (sec) continue;
    entries.push_back({e.path(), size, e.last_write_time(sec)});
    total += size;
  }
  if (total > max_bytes) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
    for (const auto& entry : entries) {
      if (total <= max_bytes) break;
      std::error_code rec;
      if (fs::remove(entry.path, rec)) {
        total -= entry.bytes;
        Metrics().evictions->Add(1);
      }
    }
  }
  Metrics().bytes->Set(static_cast<double>(total));
}

}  // namespace

void SetEmbedCacheDir(std::string dir) {
  std::lock_guard<std::mutex> lock(ConfigMutex());
  DirOverride() = std::move(dir);
}

std::string EmbedCacheDir() {
  {
    std::lock_guard<std::mutex> lock(ConfigMutex());
    if (!DirOverride().empty()) return DirOverride();
  }
  const char* env = std::getenv("TSFM_CACHE_DIR");
  return env != nullptr ? env : "";
}

bool EmbedCacheEnabled() { return !EmbedCacheDir().empty(); }

void SetEmbedCacheMaxBytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(ConfigMutex());
  MaxBytesOverride() = bytes;
}

int64_t EmbedCacheMaxBytes() {
  {
    std::lock_guard<std::mutex> lock(ConfigMutex());
    if (MaxBytesOverride() > 0) return MaxBytesOverride();
  }
  if (const char* env = std::getenv("TSFM_CACHE_MAX_BYTES"); env != nullptr) {
    const int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return kDefaultMaxBytes;
}

Result<Tensor> EmbedCacheLookup(const std::string& key) {
  TSFM_TRACE_SPAN("io.cache.lookup");
  const std::string dir = EmbedCacheDir();
  if (dir.empty()) {
    return Status::FailedPrecondition("embedding cache is disabled");
  }
  const std::string path = EntryPath(dir, key);
  Result<std::string> payload =
      ReadArtifactPayload(path, kEmbedMagic, kEmbedVersion);
  if (!payload.ok()) {
    Metrics().miss->Add(1);
    if (payload.status().code() != StatusCode::kNotFound) {
      // Corrupt entry: deleting it turns a permanent failure into one
      // re-embed; the CRC already proved the bytes are not trustworthy.
      Metrics().corrupt->Add(1);
      std::error_code ec;
      fs::remove(path, ec);
    }
    return payload.status();
  }
  Result<Tensor> tensor = DecodeTensor(*payload);
  if (!tensor.ok()) {
    Metrics().miss->Add(1);
    Metrics().corrupt->Add(1);
    std::error_code ec;
    fs::remove(path, ec);
    return tensor.status();
  }
  Metrics().hit->Add(1);
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);  // LRU touch
  return tensor;
}

Status EmbedCacheStore(const std::string& key, const Tensor& value) {
  TSFM_TRACE_SPAN("io.cache.store");
  const std::string dir = EmbedCacheDir();
  if (dir.empty()) {
    return Status::FailedPrecondition("embedding cache is disabled");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create cache dir " + dir + ": " +
                           ec.message());
  }
  TSFM_RETURN_IF_ERROR(WriteArtifact(EntryPath(dir, key), kEmbedMagic,
                                     kEmbedVersion, EncodeTensor(value)));
  Metrics().store->Add(1);
  EvictToCap(dir, EmbedCacheMaxBytes());
  return Status::OK();
}

std::vector<EmbedCacheEntryInfo> EmbedCacheScan(const std::string& dir,
                                                bool verify) {
  struct Raw {
    EmbedCacheEntryInfo info;
    fs::file_time_type mtime;
  };
  std::vector<Raw> raw;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (!IsEntry(e)) continue;
    Raw r;
    r.info.key = e.path().stem().string();
    std::error_code sec;
    r.info.bytes = static_cast<int64_t>(e.file_size(sec));
    r.mtime = e.last_write_time(sec);
    r.info.valid =
        !verify ||
        ReadArtifactPayload(e.path().string(), kEmbedMagic, kEmbedVersion)
            .ok();
    raw.push_back(std::move(r));
  }
  std::sort(raw.begin(), raw.end(),
            [](const Raw& a, const Raw& b) { return a.mtime > b.mtime; });
  std::vector<EmbedCacheEntryInfo> out;
  out.reserve(raw.size());
  for (auto& r : raw) out.push_back(std::move(r.info));
  return out;
}

Result<int64_t> EmbedCacheClear(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return int64_t{0};
  int64_t removed = 0;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (!IsEntry(e)) continue;
    std::error_code rec;
    if (fs::remove(e.path(), rec)) ++removed;
  }
  if (ec) return Status::IoError("cannot scan " + dir + ": " + ec.message());
  Metrics().bytes->Set(0.0);
  return removed;
}

}  // namespace tsfm::io
