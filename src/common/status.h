#ifndef TSFM_COMMON_STATUS_H_
#define TSFM_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace tsfm {

/// Error categories used across the library. Mirrors the RocksDB/Arrow idiom:
/// fallible public operations return a `Status` (or `Result<T>`) instead of
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kIoError,
  kNumericalError,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object carrying an error code and message.
///
/// A default-constructed `Status` is OK. Statuses are cheap to copy (the
/// message is empty in the OK case, which is the common path).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Inspired by
/// `arrow::Result`.
///
/// Callers must check `ok()` before dereferencing; accessing the value of an
/// errored result aborts the process (fail-fast, see TSFM_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: enables `return value;` from
  /// functions declared to return `Result<T>`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Returns the contained value. Requires `ok()`.
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates an error status out of the current function.
#define TSFM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::tsfm::Status _tsfm_status = (expr);           \
    if (!_tsfm_status.ok()) return _tsfm_status;    \
  } while (false)

#define TSFM_STATUS_CONCAT_IMPL(a, b) a##b
#define TSFM_STATUS_CONCAT(a, b) TSFM_STATUS_CONCAT_IMPL(a, b)
#define TSFM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

/// Assigns the value of a `Result<T>` expression to `lhs`, propagating errors.
#define TSFM_ASSIGN_OR_RETURN(lhs, rexpr)  \
  TSFM_ASSIGN_OR_RETURN_IMPL(              \
      TSFM_STATUS_CONCAT(_tsfm_result_, __LINE__), lhs, rexpr)

}  // namespace tsfm

#endif  // TSFM_COMMON_STATUS_H_
