#ifndef TSFM_COMMON_RNG_H_
#define TSFM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsfm {

/// Deterministic, seedable pseudo-random number generator (splitmix64 core,
/// xoshiro256++ stream). Every stochastic component in the library (weight
/// init, dropout, data generators, random projections) draws from an `Rng`
/// so experiments are exactly reproducible per seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Fills `out` with i.i.d. N(0, stddev^2) samples.
  void FillNormal(float* out, size_t n, float stddev = 1.0f);

  /// Fills `out` with i.i.d. U[lo, hi) samples.
  void FillUniform(float* out, size_t n, float lo, float hi);

  /// In-place Fisher-Yates shuffle of `indices`.
  void Shuffle(std::vector<int64_t>* indices);

  /// Derives an independent child stream (e.g. per-epoch, per-worker).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tsfm

#endif  // TSFM_COMMON_RNG_H_
