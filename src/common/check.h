#ifndef TSFM_COMMON_CHECK_H_
#define TSFM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tsfm::internal {

/// Prints a fatal-check failure message and aborts. Used by TSFM_CHECK; not
/// part of the public API.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream-collecting helper so `TSFM_CHECK(x) << "context"` works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace tsfm::internal

/// Fail-fast invariant check for internal logic errors (not for user input —
/// user-facing validation returns Status). Active in all build types.
#define TSFM_CHECK(cond)                                                 \
  if (cond) {                                                            \
  } else /* NOLINT */                                                    \
    ::tsfm::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define TSFM_CHECK_EQ(a, b) TSFM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_NE(a, b) TSFM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_LT(a, b) TSFM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_LE(a, b) TSFM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_GT(a, b) TSFM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_GE(a, b) TSFM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // TSFM_COMMON_CHECK_H_
