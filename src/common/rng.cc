#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace tsfm {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256++
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa => uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  TSFM_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return v % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

void Rng::FillNormal(float* out, size_t n, float stddev) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(Normal() * stddev);
  }
}

void Rng::FillUniform(float* out, size_t n, float lo, float hi) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(Uniform(lo, hi));
  }
}

void Rng::Shuffle(std::vector<int64_t>* indices) {
  auto& v = *indices;
  for (size_t i = v.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(i));
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace tsfm
