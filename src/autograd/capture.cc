#include "autograd/capture.h"

namespace tsfm::ag::capture {

namespace internal {
thread_local Sink* g_sink = nullptr;
}  // namespace internal

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kAdd: return "Add";
    case OpKind::kSub: return "Sub";
    case OpKind::kMul: return "Mul";
    case OpKind::kDiv: return "Div";
    case OpKind::kNeg: return "Neg";
    case OpKind::kScale: return "Scale";
    case OpKind::kAddScalar: return "AddScalar";
    case OpKind::kExp: return "Exp";
    case OpKind::kLog: return "Log";
    case OpKind::kSqrt: return "Sqrt";
    case OpKind::kSquare: return "Square";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kRelu: return "Relu";
    case OpKind::kGelu: return "Gelu";
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kTransposeLast2: return "TransposeLast2";
    case OpKind::kPermute: return "Permute";
    case OpKind::kReshape: return "Reshape";
    case OpKind::kSlice: return "Slice";
    case OpKind::kConcat: return "Concat";
    case OpKind::kSumAxis: return "SumAxis";
    case OpKind::kSoftmax: return "Softmax";
  }
  return "?";
}

void SetSink(Sink* sink) { internal::g_sink = sink; }

ScopedSink::ScopedSink(Sink* sink) : previous_(internal::g_sink) {
  internal::g_sink = sink;
}

ScopedSink::~ScopedSink() { internal::g_sink = previous_; }

}  // namespace tsfm::ag::capture
