#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "autograd/capture.h"
#include "common/check.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm::ag {

namespace {

using internal::MakeNode;
using internal::Node;
using Cap = capture::OpKind;

// Reports `r` to any active capture sink (see autograd/capture.h) and
// returns it; keeps each op's return statement a one-liner. Ops without a
// Recorded() wrapper are invisible to capture, which makes a graph capture
// that consumes their output fail cleanly into the eager fallback.
Var Recorded(Cap op, std::initializer_list<const Var*> inputs, Var r,
             const capture::Attrs& attrs = {}) {
  capture::MaybeRecord(op, inputs, r, attrs);
  return r;
}

int64_t NormalizeAxis(int64_t axis, int64_t ndim) {
  if (axis < 0) axis += ndim;
  TSFM_CHECK_GE(axis, 0);
  TSFM_CHECK_LT(axis, ndim);
  return axis;
}

// Broadcasts `g` (shape with 1 at reduced axes, right-aligned) up to `shape`.
Tensor BroadcastTo(const Tensor& g, const Shape& shape) {
  if (g.shape() == shape) return g;
  return tsfm::Add(g, Tensor::Zeros(shape));
}

// Scatters `g` (the gradient of a slice) back into a zero tensor of
// `orig_shape` at offset `start` along `axis`.
Tensor ScatterSlice(const Tensor& g, const Shape& orig_shape, int64_t axis,
                    int64_t start) {
  Tensor out = Tensor::Zeros(orig_shape);
  int64_t outer = 1, inner = 1;
  const int64_t len = orig_shape[static_cast<size_t>(axis)];
  for (int64_t i = 0; i < axis; ++i) outer *= orig_shape[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(axis) + 1; i < orig_shape.size(); ++i) {
    inner *= orig_shape[i];
  }
  const int64_t slice_len = g.dim(axis);
  // `g` is often a view (e.g. Concat backward slices the upstream grad).
  const Tensor gd = g.Contiguous();
  const float* pg = gd.data();
  float* po = out.mutable_data();
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(pg + o * slice_len * inner, pg + (o + 1) * slice_len * inner,
              po + (o * len + start) * inner);
  }
  return out;
}

void AccumulateIfNeeded(const std::shared_ptr<Node>& input, const Tensor& g) {
  if (input->requires_grad) input->AccumulateGrad(g);
}

}  // namespace

Var Constant(const Tensor& t) { return Var(t, /*requires_grad=*/false); }

Var Add(const Var& a, const Var& b) {
  Tensor out = tsfm::Add(a.value(), b.value());
  return Recorded(
      Cap::kAdd, {&a, &b},
      MakeNode(
          std::move(out), {a, b},
          [](Node* n) {
            AccumulateIfNeeded(
                n->inputs[0],
                ReduceToShape(n->grad, n->inputs[0]->value.shape()));
            AccumulateIfNeeded(
                n->inputs[1],
                ReduceToShape(n->grad, n->inputs[1]->value.shape()));
          },
          "Add"));
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = tsfm::Sub(a.value(), b.value());
  return Recorded(
      Cap::kSub, {&a, &b},
      MakeNode(
          std::move(out), {a, b},
          [](Node* n) {
            AccumulateIfNeeded(
                n->inputs[0],
                ReduceToShape(n->grad, n->inputs[0]->value.shape()));
            AccumulateIfNeeded(
                n->inputs[1],
                ReduceToShape(tsfm::Neg(n->grad), n->inputs[1]->value.shape()));
          },
          "Sub"));
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = tsfm::Mul(a.value(), b.value());
  return Recorded(Cap::kMul, {&a, &b}, MakeNode(
      std::move(out), {a, b},
      [](Node* n) {
        AccumulateIfNeeded(
            n->inputs[0],
            ReduceToShape(tsfm::Mul(n->grad, n->inputs[1]->value),
                          n->inputs[0]->value.shape()));
        AccumulateIfNeeded(
            n->inputs[1],
            ReduceToShape(tsfm::Mul(n->grad, n->inputs[0]->value),
                          n->inputs[1]->value.shape()));
      },
      "Mul"));
}

Var Div(const Var& a, const Var& b) {
  Tensor out = tsfm::Div(a.value(), b.value());
  return Recorded(Cap::kDiv, {&a, &b}, MakeNode(
      std::move(out), {a, b},
      [](Node* n) {
        const Tensor& av = n->inputs[0]->value;
        const Tensor& bv = n->inputs[1]->value;
        AccumulateIfNeeded(n->inputs[0],
                           ReduceToShape(tsfm::Div(n->grad, bv), av.shape()));
        if (n->inputs[1]->requires_grad) {
          // d/db (a/b) = -a / b^2
          Tensor gb = tsfm::Neg(
              tsfm::Div(tsfm::Mul(n->grad, av), tsfm::Mul(bv, bv)));
          n->inputs[1]->AccumulateGrad(ReduceToShape(gb, bv.shape()));
        }
      },
      "Div"));
}

Var Neg(const Var& a) {
  return Recorded(
      Cap::kNeg, {&a},
      MakeNode(
          tsfm::Neg(a.value()), {a},
          [](Node* n) { AccumulateIfNeeded(n->inputs[0], tsfm::Neg(n->grad)); },
          "Neg"));
}

Var Scale(const Var& a, float s) {
  capture::Attrs attrs;
  attrs.f = s;
  return Recorded(
      Cap::kScale, {&a},
      MakeNode(
          tsfm::Scale(a.value(), s), {a},
          [s](Node* n) {
            AccumulateIfNeeded(n->inputs[0], tsfm::Scale(n->grad, s));
          },
          "Scale"),
      attrs);
}

Var AddScalar(const Var& a, float s) {
  capture::Attrs attrs;
  attrs.f = s;
  return Recorded(
      Cap::kAddScalar, {&a},
      MakeNode(
          tsfm::AddScalar(a.value(), s), {a},
          [](Node* n) { AccumulateIfNeeded(n->inputs[0], n->grad); },
          "AddScalar"),
      attrs);
}

Var Exp(const Var& a) {
  Tensor y = tsfm::Exp(a.value());
  Tensor y_copy = y;
  return Recorded(
      Cap::kExp, {&a},
      MakeNode(
          std::move(y), {a},
          [y_copy](Node* n) {
            AccumulateIfNeeded(n->inputs[0], tsfm::Mul(n->grad, y_copy));
          },
          "Exp"));
}

Var Log(const Var& a) {
  return Recorded(
      Cap::kLog, {&a},
      MakeNode(
          tsfm::Log(a.value()), {a},
          [](Node* n) {
            AccumulateIfNeeded(n->inputs[0],
                               tsfm::Div(n->grad, n->inputs[0]->value));
          },
          "Log"));
}

Var Sqrt(const Var& a) {
  Tensor y = tsfm::Sqrt(a.value());
  Tensor y_copy = y;
  return Recorded(
      Cap::kSqrt, {&a},
      MakeNode(
          std::move(y), {a},
          [y_copy](Node* n) {
            // d sqrt(x)/dx = 1 / (2 sqrt(x))
            Tensor g = tsfm::Div(tsfm::Scale(n->grad, 0.5f),
                                 tsfm::AddScalar(y_copy, 1e-12f));
            AccumulateIfNeeded(n->inputs[0], g);
          },
          "Sqrt"));
}

Var Square(const Var& a) {
  return Recorded(
      Cap::kSquare, {&a},
      MakeNode(
          tsfm::Square(a.value()), {a},
          [](Node* n) {
            AccumulateIfNeeded(
                n->inputs[0],
                tsfm::Mul(tsfm::Scale(n->grad, 2.0f), n->inputs[0]->value));
          },
          "Square"));
}

Var Tanh(const Var& a) {
  Tensor y = tsfm::Tanh(a.value());
  Tensor y_copy = y;
  return Recorded(
      Cap::kTanh, {&a},
      MakeNode(
          std::move(y), {a},
          [y_copy](Node* n) {
            Tensor one_minus_y2 =
                tsfm::Sub(Tensor::Ones(y_copy.shape()), tsfm::Square(y_copy));
            AccumulateIfNeeded(n->inputs[0], tsfm::Mul(n->grad, one_minus_y2));
          },
          "Tanh"));
}

Var Sigmoid(const Var& a) {
  Tensor y = tsfm::Sigmoid(a.value());
  Tensor y_copy = y;
  return Recorded(
      Cap::kSigmoid, {&a},
      MakeNode(
          std::move(y), {a},
          [y_copy](Node* n) {
            Tensor d = tsfm::Mul(
                y_copy, tsfm::Sub(Tensor::Ones(y_copy.shape()), y_copy));
            AccumulateIfNeeded(n->inputs[0], tsfm::Mul(n->grad, d));
          },
          "Sigmoid"));
}

Var Relu(const Var& a) {
  return Recorded(Cap::kRelu, {&a}, MakeNode(
      tsfm::Relu(a.value()), {a},
      [](Node* n) {
        const Tensor x = n->inputs[0]->value.Contiguous();
        Tensor g = Tensor::Empty(x.shape());
        const float* px = x.data();
        const float* pg = n->grad.data();
        float* po = g.mutable_data();
        runtime::ParallelFor(0, x.numel(), int64_t{1} << 14,
                             [&](int64_t lo, int64_t hi) {
                               for (int64_t i = lo; i < hi; ++i) {
                                 po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
                               }
                             });
        AccumulateIfNeeded(n->inputs[0], g);
      },
      "Relu"));
}

Var Gelu(const Var& a) {
  return Recorded(Cap::kGelu, {&a}, MakeNode(
      tsfm::Gelu(a.value()), {a},
      [](Node* n) {
        constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
        constexpr float kA = 0.044715f;
        const Tensor x = n->inputs[0]->value.Contiguous();
        Tensor g = Tensor::Empty(x.shape());
        const float* px = x.data();
        const float* pg = n->grad.data();
        float* po = g.mutable_data();
        runtime::ParallelFor(
            0, x.numel(), int64_t{1} << 14, [&](int64_t lo, int64_t hi) {
              for (int64_t i = lo; i < hi; ++i) {
                const float xi = px[i];
                const float u = kC * (xi + kA * xi * xi * xi);
                const float t = std::tanh(u);
                const float du = kC * (1.0f + 3.0f * kA * xi * xi);
                const float d =
                    0.5f * (1.0f + t) + 0.5f * xi * (1.0f - t * t) * du;
                po[i] = pg[i] * d;
              }
            });
        AccumulateIfNeeded(n->inputs[0], g);
      },
      "Gelu"));
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = tsfm::MatMul(a.value(), b.value());
  return Recorded(Cap::kMatMul, {&a, &b}, MakeNode(
      std::move(out), {a, b},
      [](Node* n) {
        const Tensor& av = n->inputs[0]->value;
        const Tensor& bv = n->inputs[1]->value;
        if (n->inputs[0]->requires_grad) {
          Tensor ga = tsfm::MatMul(n->grad, tsfm::TransposeLast2(bv));
          n->inputs[0]->AccumulateGrad(ReduceToShape(ga, av.shape()));
        }
        if (n->inputs[1]->requires_grad) {
          Tensor gb = tsfm::MatMul(tsfm::TransposeLast2(av), n->grad);
          n->inputs[1]->AccumulateGrad(ReduceToShape(gb, bv.shape()));
        }
      },
      "MatMul"));
}

Var TransposeLast2(const Var& a) {
  return Recorded(
      Cap::kTransposeLast2, {&a},
      MakeNode(
          tsfm::TransposeLast2(a.value()), {a},
          [](Node* n) {
            AccumulateIfNeeded(n->inputs[0], tsfm::TransposeLast2(n->grad));
          },
          "TransposeLast2"));
}

Var Permute(const Var& a, const std::vector<int64_t>& perm) {
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  capture::Attrs attrs;
  attrs.ints = perm.data();
  attrs.num_ints = perm.size();
  return Recorded(
      Cap::kPermute, {&a},
      MakeNode(
          tsfm::Permute(a.value(), perm), {a},
          [inverse](Node* n) {
            AccumulateIfNeeded(n->inputs[0], tsfm::Permute(n->grad, inverse));
          },
          "Permute"),
      attrs);
}

Var Reshape(const Var& a, Shape new_shape) {
  Shape orig = a.shape();
  Var r = MakeNode(
      a.value().Reshape(std::move(new_shape)), {a},
      [orig](Node* n) {
        AccumulateIfNeeded(n->inputs[0], n->grad.Reshape(orig));
      },
      "Reshape");
  capture::Attrs attrs;
  // Reshape of a contiguous value is a view; of a strided view it copies.
  // The planner needs to know which, so record it from the actual result.
  attrs.alias = r.value().SharesStorageWith(a.value());
  return Recorded(Cap::kReshape, {&a}, std::move(r), attrs);
}

Var SliceOp(const Var& a, int64_t axis, int64_t start, int64_t end) {
  axis = NormalizeAxis(axis, a.ndim());
  Shape orig = a.shape();
  const int64_t slice_attrs[3] = {axis, start, end};
  capture::Attrs attrs;
  attrs.ints = slice_attrs;
  attrs.num_ints = 3;
  return Recorded(
      Cap::kSlice, {&a},
      MakeNode(
          tsfm::Slice(a.value(), axis, start, end), {a},
          [orig, axis, start](Node* n) {
            AccumulateIfNeeded(n->inputs[0],
                               ScatterSlice(n->grad, orig, axis, start));
          },
          "Slice"),
      attrs);
}

Var ConcatOp(const std::vector<Var>& parts, int64_t axis) {
  TSFM_CHECK(!parts.empty());
  axis = NormalizeAxis(axis, parts[0].ndim());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<int64_t> lens;
  for (const Var& p : parts) {
    values.push_back(p.value());
    lens.push_back(p.dim(axis));
  }
  Var r = MakeNode(
      tsfm::Concat(values, axis), parts,
      [axis, lens](Node* n) {
        int64_t offset = 0;
        for (size_t i = 0; i < lens.size(); ++i) {
          if (n->inputs[i]->requires_grad) {
            n->inputs[i]->AccumulateGrad(
                tsfm::Slice(n->grad, axis, offset, offset + lens[i]));
          }
          offset += lens[i];
        }
      },
      "Concat");
  if (capture::Sink* sink = capture::ActiveSink()) {
    std::vector<const Var*> input_ptrs;
    input_ptrs.reserve(parts.size());
    for (const Var& p : parts) input_ptrs.push_back(&p);
    capture::Attrs attrs;
    attrs.ints = &axis;
    attrs.num_ints = 1;
    sink->Record(Cap::kConcat, input_ptrs.data(), input_ptrs.size(), r, attrs);
  }
  return r;
}

Var SumAll(const Var& a) {
  Tensor out = Tensor::Scalar(tsfm::SumAll(a.value()));
  return MakeNode(
      std::move(out), {a},
      [](Node* n) {
        const float g = n->grad[0];
        AccumulateIfNeeded(n->inputs[0],
                           Tensor::Full(n->inputs[0]->value.shape(), g));
      },
      "SumAll");
}

Var MeanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().numel());
  return Scale(SumAll(a), inv);
}

Var SumAxis(const Var& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  Shape orig = a.shape();
  const int64_t sum_attrs[2] = {axis, keepdim ? 1 : 0};
  capture::Attrs attrs;
  attrs.ints = sum_attrs;
  attrs.num_ints = 2;
  return Recorded(
      Cap::kSumAxis, {&a},
      MakeNode(
          tsfm::Sum(a.value(), axis, keepdim), {a},
          [orig, axis, keepdim](Node* n) {
            Tensor g = n->grad;
            if (!keepdim) {
              Shape kd = orig;
              kd[static_cast<size_t>(axis)] = 1;
              g = g.Reshape(kd);
            }
            AccumulateIfNeeded(n->inputs[0], BroadcastTo(g, orig));
          },
          "SumAxis"),
      attrs);
}

Var MeanAxis(const Var& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  const float inv = 1.0f / static_cast<float>(a.dim(axis));
  return Scale(SumAxis(a, axis, keepdim), inv);
}

Var Softmax(const Var& a) {
  Tensor y = tsfm::Softmax(a.value());
  Tensor y_copy = y;
  return Recorded(
      Cap::kSoftmax, {&a},
      MakeNode(
          std::move(y), {a},
          [y_copy](Node* n) {
            // dx = y * (g - sum(g * y, last, keepdim))
            Tensor gy = tsfm::Mul(n->grad, y_copy);
            Tensor s = tsfm::Sum(gy, -1, /*keepdim=*/true);
            Tensor dx = tsfm::Mul(y_copy, tsfm::Sub(n->grad, s));
            AccumulateIfNeeded(n->inputs[0], dx);
          },
          "Softmax"));
}

Var LogSoftmax(const Var& a) {
  Tensor y = tsfm::LogSoftmax(a.value());
  Tensor y_copy = y;
  return MakeNode(
      std::move(y), {a},
      [y_copy](Node* n) {
        // dx = g - softmax(x) * sum(g, last, keepdim)
        Tensor p = tsfm::Exp(y_copy);
        Tensor s = tsfm::Sum(n->grad, -1, /*keepdim=*/true);
        Tensor dx = tsfm::Sub(n->grad, tsfm::Mul(p, s));
        AccumulateIfNeeded(n->inputs[0], dx);
      },
      "LogSoftmax");
}

Var LayerNorm(const Var& x, const Var& gamma, const Var& beta, float epsilon) {
  Var mu = MeanAxis(x, -1, /*keepdim=*/true);
  Var xc = Sub(x, mu);
  Var var = MeanAxis(Square(xc), -1, /*keepdim=*/true);
  Var inv_std = Div(Constant(Tensor::Ones(var.shape())),
                    Sqrt(AddScalar(var, epsilon)));
  Var xhat = Mul(xc, inv_std);
  return Add(Mul(xhat, gamma), beta);
}

Var Dropout(const Var& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  TSFM_CHECK_LT(p, 1.0f);
  TSFM_CHECK(rng != nullptr);
  Tensor mask = Tensor::Empty(a.shape());
  float* pm = mask.mutable_data();
  const float keep_scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = rng->Uniform() < p ? 0.0f : keep_scale;
  }
  return Mul(a, Constant(mask));
}

Var CrossEntropy(const Var& logits, const std::vector<int64_t>& labels) {
  TSFM_CHECK_EQ(logits.ndim(), 2);
  const int64_t n = logits.dim(0);
  const int64_t c = logits.dim(1);
  TSFM_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  Tensor log_probs = tsfm::LogSoftmax(logits.value());
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    TSFM_CHECK_GE(y, 0);
    TSFM_CHECK_LT(y, c);
    loss -= log_probs.at({i, y});
  }
  Tensor out = Tensor::Scalar(static_cast<float>(loss / n));
  Tensor probs = tsfm::Exp(log_probs);
  return MakeNode(
      std::move(out), {logits},
      [labels, probs, n, c](Node* node) {
        // d loss / d logits = (softmax - onehot) / N, scaled by upstream g.
        const float g = node->grad[0] / static_cast<float>(n);
        Tensor dx = probs.Clone();
        float* p = dx.mutable_data();
        for (int64_t i = 0; i < n; ++i) {
          p[i * c + labels[static_cast<size_t>(i)]] -= 1.0f;
        }
        AccumulateIfNeeded(node->inputs[0], tsfm::Scale(dx, g));
      },
      "CrossEntropy");
}

Var MseLoss(const Var& pred, const Tensor& target) {
  TSFM_CHECK(pred.shape() == target.shape());
  Tensor diff = tsfm::Sub(pred.value(), target);
  const float loss = tsfm::MeanAll(tsfm::Square(diff));
  const float inv_n = 1.0f / static_cast<float>(diff.numel());
  return MakeNode(
      Tensor::Scalar(loss), {pred},
      [diff, inv_n](Node* n) {
        const float g = n->grad[0];
        AccumulateIfNeeded(n->inputs[0],
                           tsfm::Scale(diff, 2.0f * inv_n * g));
      },
      "MseLoss");
}

Var MaskedMseLoss(const Var& pred, const Tensor& target, const Tensor& mask) {
  TSFM_CHECK(pred.shape() == target.shape());
  TSFM_CHECK(pred.shape() == mask.shape());
  Tensor diff = tsfm::Mul(tsfm::Sub(pred.value(), target), mask);
  float num_masked = tsfm::SumAll(tsfm::Abs(mask));
  if (num_masked < 1.0f) num_masked = 1.0f;
  const float loss = tsfm::SumAll(tsfm::Square(diff)) / num_masked;
  const float inv = 1.0f / num_masked;
  return MakeNode(
      Tensor::Scalar(loss), {pred},
      [diff, inv](Node* n) {
        const float g = n->grad[0];
        AccumulateIfNeeded(n->inputs[0], tsfm::Scale(diff, 2.0f * inv * g));
      },
      "MaskedMseLoss");
}

Var L2NormalizeRows(const Var& a, float epsilon) {
  Var sq = SumAxis(Square(a), -1, /*keepdim=*/true);
  Var norm = Sqrt(AddScalar(sq, epsilon));
  return Div(a, norm);
}

Var InfoNceLoss(const Var& anchors, const Var& positives, float temperature) {
  TSFM_CHECK_EQ(anchors.ndim(), 2);
  TSFM_CHECK(anchors.shape() == positives.shape());
  TSFM_CHECK_GT(temperature, 0.0f);
  const int64_t n = anchors.dim(0);
  Var na = L2NormalizeRows(anchors);
  Var np = L2NormalizeRows(positives);
  Var logits = Scale(MatMul(na, TransposeLast2(np)), 1.0f / temperature);
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) labels[static_cast<size_t>(i)] = i;
  return CrossEntropy(logits, labels);
}

}  // namespace tsfm::ag
