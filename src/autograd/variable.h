#ifndef TSFM_AUTOGRAD_VARIABLE_H_
#define TSFM_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tsfm::ag {

class Var;

namespace internal {

/// A node in the reverse-mode autodiff tape. Owns the forward value, the
/// accumulated gradient, and a closure that pushes this node's gradient into
/// its inputs. Users interact only through `Var`.
struct Node {
  Tensor value;
  Tensor grad;          // allocated lazily; same shape as `value`
  bool has_grad = false;
  bool requires_grad = false;
  std::string op_name;  // for diagnostics
  std::vector<std::shared_ptr<Node>> inputs;
  /// Accumulates `grad` into the inputs' `grad` buffers.
  std::function<void(Node*)> backward_fn;

  /// Adds `g` into this node's gradient accumulator.
  void AccumulateGrad(const Tensor& g);
};

}  // namespace internal

/// Differentiable variable: a shared handle to a tape node. Copying a `Var`
/// aliases the same node. Building expressions from `Var`s records the tape;
/// `Backward()` on a scalar result fills `grad()` on every reachable leaf
/// with `requires_grad() == true`.
class Var {
 public:
  /// Empty (null) variable; most operations on it are invalid.
  Var() = default;

  /// Leaf variable wrapping `value`.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Internal: wraps an existing node.
  explicit Var(std::shared_ptr<internal::Node> node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Gradient accumulated by the last `Backward()`; zeros if none.
  Tensor grad() const;
  bool requires_grad() const;
  const Shape& shape() const { return value().shape(); }
  int64_t dim(int64_t d) const { return value().dim(d); }
  int64_t ndim() const { return value().ndim(); }

  /// Clears the accumulated gradient (used between optimizer steps).
  void ZeroGrad();

  /// Replaces the stored value in-place (optimizer update); the tape history
  /// of this node is irrelevant for leaves. The lvalue overload clones; the
  /// rvalue overload adopts the buffer without a copy, so the caller must
  /// hand over exclusively-owned storage (e.g. a fresh Clone it mutated).
  void SetValue(const Tensor& v);
  void SetValue(Tensor&& v);

  /// Returns a non-differentiable leaf with the same value.
  Var Detach() const;

  /// Runs reverse-mode accumulation from this variable, which must hold a
  /// scalar (numel() == 1). Seeds with d(self)/d(self) = 1.
  void Backward();

  std::shared_ptr<internal::Node> node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

namespace internal {

/// Creates an interior tape node. `backward_fn` must route `node->grad` into
/// `inputs`. If no input requires grad (or grad mode is disabled), the node
/// is constant-folded (no tape edge retained).
Var MakeNode(Tensor value, std::vector<Var> inputs,
             std::function<void(Node*)> backward_fn, std::string op_name);

}  // namespace internal

/// True unless a NoGradGuard is active on this thread.
bool GradEnabled();

/// RAII guard disabling tape recording — inference inside the guard builds
/// no graph (PyTorch's torch.no_grad()). Used by the embed-once fast path.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace tsfm::ag

#endif  // TSFM_AUTOGRAD_VARIABLE_H_
