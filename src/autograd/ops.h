#ifndef TSFM_AUTOGRAD_OPS_H_
#define TSFM_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace tsfm::ag {

/// Non-differentiable constant wrapping `t`.
Var Constant(const Tensor& t);

// ---------------------------------------------------------------------------
// Arithmetic (NumPy broadcasting; gradients are reduced back to input shapes).
// ---------------------------------------------------------------------------

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);
Var Neg(const Var& a);
Var Scale(const Var& a, float s);
Var AddScalar(const Var& a, float s);

// ---------------------------------------------------------------------------
// Elementwise nonlinearities.
// ---------------------------------------------------------------------------

Var Exp(const Var& a);
Var Log(const Var& a);
Var Sqrt(const Var& a);
Var Square(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
Var Gelu(const Var& a);

// ---------------------------------------------------------------------------
// Linear algebra / layout.
// ---------------------------------------------------------------------------

/// Batched matmul with batch-dimension broadcasting, like tsfm::MatMul.
Var MatMul(const Var& a, const Var& b);
Var TransposeLast2(const Var& a);
Var Permute(const Var& a, const std::vector<int64_t>& perm);
Var Reshape(const Var& a, Shape new_shape);
Var SliceOp(const Var& a, int64_t axis, int64_t start, int64_t end);
Var ConcatOp(const std::vector<Var>& parts, int64_t axis);

// ---------------------------------------------------------------------------
// Reductions & normalization.
// ---------------------------------------------------------------------------

Var SumAll(const Var& a);
Var MeanAll(const Var& a);
Var SumAxis(const Var& a, int64_t axis, bool keepdim);
Var MeanAxis(const Var& a, int64_t axis, bool keepdim);
/// Softmax over the last axis.
Var Softmax(const Var& a);
/// Log-softmax over the last axis.
Var LogSoftmax(const Var& a);
/// Layer normalization over the last axis with affine parameters
/// `gamma`, `beta` of shape (last_dim). Composed from differentiable
/// primitives.
Var LayerNorm(const Var& x, const Var& gamma, const Var& beta,
              float epsilon = 1e-5f);

/// Inverted dropout: scales kept activations by 1/(1-p). Identity when
/// `training` is false or p == 0.
Var Dropout(const Var& a, float p, bool training, Rng* rng);

// ---------------------------------------------------------------------------
// Losses (fused forward+backward for numerical stability).
// ---------------------------------------------------------------------------

/// Mean cross-entropy of logits (N, C) against integer labels (size N).
Var CrossEntropy(const Var& logits, const std::vector<int64_t>& labels);

/// Mean squared error between `pred` and constant `target` (same shape).
Var MseLoss(const Var& pred, const Tensor& target);

/// MSE restricted to positions where `mask` != 0 (same shape as pred);
/// normalized by the number of masked positions. Used by MOMENT's
/// masked-patch-reconstruction pretraining objective.
Var MaskedMseLoss(const Var& pred, const Tensor& target, const Tensor& mask);

/// InfoNCE contrastive loss: `anchors` and `positives` are (N, E) batches of
/// embeddings; positives[i] is the positive for anchors[i], all other rows are
/// negatives. Embeddings are L2-normalized internally; `temperature` scales
/// the logits. Used by the ViT model's MoCo-style pretraining.
Var InfoNceLoss(const Var& anchors, const Var& positives, float temperature);

/// L2-normalizes rows (last axis).
Var L2NormalizeRows(const Var& a, float epsilon = 1e-12f);

}  // namespace tsfm::ag

#endif  // TSFM_AUTOGRAD_OPS_H_
