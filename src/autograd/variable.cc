#include "autograd/variable.h"

#include <unordered_set>

#include "common/check.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm::ag {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

namespace internal {

void Node::AccumulateGrad(const Tensor& g) {
  TSFM_CHECK(g.shape() == value.shape())
      << "gradient shape " << ShapeToString(g.shape()) << " vs value "
      << ShapeToString(value.shape()) << " in op " << op_name;
  if (!has_grad) {
    // Clone (not alias): `g` is typically an op output another node may also
    // accumulate, and it packs view gradients so `grad` is always dense.
    grad = g.Clone();
    has_grad = true;
  } else {
    // In-place accumulation into the pooled grad buffer — no `grad + g`
    // reallocation. Each index is written by exactly one chunk, so the
    // parallel loop is bit-deterministic.
    const Tensor gd = g.Contiguous();
    float* pg = grad.mutable_data();
    const float* ps = gd.data();
    runtime::ParallelFor(0, grad.numel(), int64_t{1} << 14,
                         [pg, ps](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) pg[i] += ps[i];
                         });
  }
}

Var MakeNode(Tensor value, std::vector<Var> inputs,
             std::function<void(Node*)> backward_fn, std::string op_name) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op_name = std::move(op_name);
  bool any_grad = false;
  for (const Var& v : inputs) {
    TSFM_CHECK(v.defined()) << "undefined input to " << node->op_name;
    if (v.requires_grad()) any_grad = true;
  }
  if (!GradEnabled()) any_grad = false;
  if (any_grad) {
    node->requires_grad = true;
    node->backward_fn = std::move(backward_fn);
    node->inputs.reserve(inputs.size());
    for (const Var& v : inputs) node->inputs.push_back(v.node());
  }
  return Var(std::move(node));
}

}  // namespace internal

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->op_name = "leaf";
}

const Tensor& Var::value() const {
  TSFM_CHECK(defined());
  return node_->value;
}

Tensor Var::grad() const {
  TSFM_CHECK(defined());
  if (!node_->has_grad) return Tensor::Zeros(node_->value.shape());
  return node_->grad;
}

bool Var::requires_grad() const {
  TSFM_CHECK(defined());
  return node_->requires_grad;
}

void Var::ZeroGrad() {
  TSFM_CHECK(defined());
  node_->has_grad = false;
  node_->grad = Tensor();
}

void Var::SetValue(const Tensor& v) {
  TSFM_CHECK(defined());
  TSFM_CHECK(v.shape() == node_->value.shape());
  node_->value = v.Clone();
}

void Var::SetValue(Tensor&& v) {
  TSFM_CHECK(defined());
  TSFM_CHECK(v.shape() == node_->value.shape());
  node_->value = std::move(v).Contiguous();
}

Var Var::Detach() const {
  TSFM_CHECK(defined());
  return Var(node_->value, /*requires_grad=*/false);
}

void Var::Backward() {
  TSFM_CHECK(defined());
  TSFM_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar output";
  // Topological order via iterative post-order DFS.
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->inputs.size()) {
      internal::Node* child = n->inputs[idx].get();
      ++idx;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  node_->AccumulateGrad(Tensor::Full(node_->value.shape(), 1.0f));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* n = *it;
    if (n->backward_fn && n->has_grad) n->backward_fn(n);
  }
}

}  // namespace tsfm::ag
