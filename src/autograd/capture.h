#ifndef TSFM_AUTOGRAD_CAPTURE_H_
#define TSFM_AUTOGRAD_CAPTURE_H_

#include <cstddef>
#include <cstdint>

#include "autograd/variable.h"

// Trace-capture hooks for the graph IR (src/graph/).
//
// Every ag:: op on the encoder path reports itself to the thread-local
// `Sink` after computing its eager result: (op kind, input Vars, output Var,
// attributes). The sink — implemented by graph::GraphBuilder — maps the
// `internal::Node*` identity of each Var to an IR value id; `MakeNode`
// creates a fresh node per op call even under NoGradGuard, so node pointers
// uniquely name intermediate values for the duration of a capture.
//
// The interface lives in autograd (not graph) so autograd does not depend on
// the graph library; the cost when no sink is installed is one thread-local
// load and branch per op call.
namespace tsfm::ag::capture {

/// Primitive op kinds an ag:: op can report. Ops not listed here (losses,
/// LogSoftmax, TakeRows, ...) are never recorded; a capture that consumes
/// one of their outputs fails cleanly and the caller falls back to eager.
enum class OpKind : uint8_t {
  // Elementwise binary (NumPy broadcast).
  kAdd,
  kSub,
  kMul,
  kDiv,
  // Elementwise unary; kScale/kAddScalar carry a float immediate.
  kNeg,
  kScale,
  kAddScalar,
  kExp,
  kLog,
  kSqrt,
  kSquare,
  kTanh,
  kSigmoid,
  kRelu,
  kGelu,
  // Linear algebra / layout.
  kMatMul,
  kTransposeLast2,
  kPermute,
  kReshape,
  kSlice,
  kConcat,
  // Reductions / rows.
  kSumAxis,
  kSoftmax,
};

const char* OpKindName(OpKind op);

/// Attributes attached to a recorded op. `ints` borrows the caller's stack
/// storage for the duration of the Record call only.
struct Attrs {
  const int64_t* ints = nullptr;  // Permute: perm; Slice: axis,start,end;
  size_t num_ints = 0;            // SumAxis: axis,keepdim; Concat: axis
  float f = 0.0f;                 // Scale / AddScalar immediate
  bool alias = false;             // Reshape: output aliases input storage
};

/// Receives one callback per recorded op, in execution order.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Record(OpKind op, const Var* const* inputs, size_t num_inputs,
                      const Var& out, const Attrs& attrs) = 0;
};

namespace internal {
extern thread_local Sink* g_sink;
}  // namespace internal

/// The sink capturing on this thread, or nullptr.
inline Sink* ActiveSink() { return internal::g_sink; }

/// Installs `sink` as this thread's capture sink (nullptr to stop capturing).
/// Prefer ScopedSink; a sink left installed past its lifetime is a
/// use-after-free in every subsequent ag:: op on the thread.
void SetSink(Sink* sink);

/// RAII: installs `sink` for the current scope, restores the previous sink
/// (usually nullptr) on exit.
class ScopedSink {
 public:
  explicit ScopedSink(Sink* sink);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* previous_;
};

/// Called by ag:: ops after computing their eager result.
inline void MaybeRecord(OpKind op, std::initializer_list<const Var*> inputs,
                        const Var& out, const Attrs& attrs = {}) {
  if (Sink* s = ActiveSink()) {
    s->Record(op, inputs.begin(), inputs.size(), out, attrs);
  }
}

}  // namespace tsfm::ag::capture

#endif  // TSFM_AUTOGRAD_CAPTURE_H_
