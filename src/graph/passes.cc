#include "graph/passes.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace tsfm::graph {

namespace {

// Register pressure bound for fused loops: a stage program longer than this
// stops accumulating stages.
constexpr size_t kMaxStages = 16;

struct PassMetrics {
  obs::Counter* fused_ops;
  obs::Counter* fused_bias_gelu;
  obs::Counter* folded_matmuls;
};

PassMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static PassMetrics m{r.GetCounter("graph.fused_ops"),
                       r.GetCounter("graph.fused_bias_gelu"),
                       r.GetCounter("graph.folded_matmuls")};
  return m;
}

bool IsEltwise(const NodeDef& node) { return node.kind == OpKind::kEltwise; }

// Merges eltwise producer `p` into consumer node `c` (whose primary operand
// is `p`): the merged node runs p's stages then c's stages in one loop.
// Caller guarantees p has a single use and p.shape == c.shape, so the chain
// value walks the same elements throughout.
void MergeChain(const NodeDef& p, NodeDef* c) {
  std::vector<int32_t> inputs = p.inputs;
  const int32_t shift =
      static_cast<int32_t>(p.inputs.size()) - 1;  // c's operands append here
  for (size_t i = 1; i < c->inputs.size(); ++i) inputs.push_back(c->inputs[i]);
  std::vector<EltStage> stages = p.stages;
  for (EltStage stage : c->stages) {
    if (stage.operand >= 0) stage.operand += shift;
    stages.push_back(stage);
  }
  c->inputs = std::move(inputs);
  c->stages = std::move(stages);
}

void FoldTransposeMatMul(Graph* graph) {
  const std::vector<int32_t> uses = graph->UseCounts();
  for (NodeDef& node : graph->nodes) {
    if (node.kind != OpKind::kMatMul) continue;
    const int32_t b = node.inputs[1];
    const NodeDef& bn = graph->nodes[static_cast<size_t>(b)];
    if (bn.kind != OpKind::kTransposeLast2) continue;
    if (uses[static_cast<size_t>(b)] != 1) continue;
    node.kind = OpKind::kMatMulTransB;
    node.inputs[1] = bn.inputs[0];
    node.label = "matmul_transb";
    Metrics().folded_matmuls->Add(1);
  }
  EliminateDeadNodes(graph);
}

void FuseBiasGelu(Graph* graph) {
  const std::vector<int32_t> uses = graph->UseCounts();
  for (NodeDef& node : graph->nodes) {
    if (!IsEltwise(node) || node.stages.size() != 1 ||
        node.stages[0].op != ag::capture::OpKind::kGelu) {
      continue;
    }
    const int32_t p = node.inputs[0];
    const NodeDef& pn = graph->nodes[static_cast<size_t>(p)];
    if (!IsEltwise(pn) || pn.stages.size() != 1 ||
        pn.stages[0].op != ag::capture::OpKind::kAdd) {
      continue;
    }
    if (uses[static_cast<size_t>(p)] != 1 || pn.shape != node.shape) continue;
    MergeChain(pn, &node);
    node.label = "bias_gelu";
    Metrics().fused_bias_gelu->Add(1);
    Metrics().fused_ops->Add(1);
  }
  EliminateDeadNodes(graph);
}

void FuseEltwise(Graph* graph) {
  // Fixpoint: each round merges single-use eltwise producers into their
  // consumer's primary slot. Merging node p into c leaves p dead; use
  // counts are recomputed per round rather than patched in place.
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<int32_t> uses = graph->UseCounts();
    for (NodeDef& node : graph->nodes) {
      if (!IsEltwise(node) || node.inputs.empty()) continue;
      const int32_t p = node.inputs[0];
      const NodeDef& pn = graph->nodes[static_cast<size_t>(p)];
      if (!IsEltwise(pn)) continue;
      if (uses[static_cast<size_t>(p)] != 1) continue;
      if (pn.shape != node.shape) continue;
      if (pn.stages.size() + node.stages.size() > kMaxStages) continue;
      MergeChain(pn, &node);
      node.label = "eltwise_" + std::to_string(node.stages.size());
      Metrics().fused_ops->Add(1);
      changed = true;
      break;  // uses are stale after a merge; restart the scan
    }
  }
  EliminateDeadNodes(graph);
}

}  // namespace

void EliminateDeadNodes(Graph* graph) {
  const size_t n = graph->nodes.size();
  std::vector<bool> live(n, false);
  if (graph->input >= 0) live[static_cast<size_t>(graph->input)] = true;
  // Nodes are topologically ordered, so one reverse sweep reaches the full
  // transitive fan-in of the output.
  if (graph->output >= 0) live[static_cast<size_t>(graph->output)] = true;
  for (size_t i = n; i-- > 0;) {
    if (!live[i]) continue;
    for (int32_t in : graph->nodes[i].inputs) {
      live[static_cast<size_t>(in)] = true;
    }
  }
  std::vector<int32_t> remap(n, -1);
  std::vector<NodeDef> kept;
  kept.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!live[i]) continue;
    remap[i] = static_cast<int32_t>(kept.size());
    kept.push_back(std::move(graph->nodes[i]));
  }
  for (NodeDef& node : kept) {
    for (int32_t& in : node.inputs) {
      in = remap[static_cast<size_t>(in)];
      TSFM_CHECK_GE(in, 0);
    }
  }
  graph->nodes = std::move(kept);
  graph->input = remap[static_cast<size_t>(graph->input)];
  graph->output = remap[static_cast<size_t>(graph->output)];
}

const std::vector<PassInfo>& StandardPasses() {
  static const std::vector<PassInfo> kPasses = {
      {"fold_transpose_matmul", FoldTransposeMatMul},
      {"fuse_bias_gelu", FuseBiasGelu},
      {"fuse_eltwise", FuseEltwise},
  };
  return kPasses;
}

void RunPassesUpTo(Graph* graph, size_t upto) {
  const auto& passes = StandardPasses();
  upto = std::min(upto, passes.size());
  for (size_t i = 0; i < upto; ++i) passes[i].run(graph);
}

void RunStandardPasses(Graph* graph) {
  RunPassesUpTo(graph, StandardPasses().size());
}

}  // namespace tsfm::graph
