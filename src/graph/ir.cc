#include "graph/ir.h"

#include <sstream>
#include <utility>

#include "autograd/ops.h"
#include "common/check.h"

namespace tsfm::graph {

namespace {

using CapOp = ag::capture::OpKind;

bool IsBinary(CapOp op) {
  return op == CapOp::kAdd || op == CapOp::kSub || op == CapOp::kMul ||
         op == CapOp::kDiv;
}

bool IsUnaryEltwise(CapOp op) {
  switch (op) {
    case CapOp::kNeg:
    case CapOp::kScale:
    case CapOp::kAddScalar:
    case CapOp::kExp:
    case CapOp::kLog:
    case CapOp::kSqrt:
    case CapOp::kSquare:
    case CapOp::kTanh:
    case CapOp::kSigmoid:
    case CapOp::kRelu:
    case CapOp::kGelu:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kParam: return "param";
    case OpKind::kEltwise: return "eltwise";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kMatMulTransB: return "matmul_transb";
    case OpKind::kTransposeLast2: return "transpose_last2";
    case OpKind::kPermute: return "permute";
    case OpKind::kSlice: return "slice";
    case OpKind::kReshape: return "reshape";
    case OpKind::kConcat: return "concat";
    case OpKind::kSumAxis: return "sum_axis";
    case OpKind::kSoftmax: return "softmax";
  }
  return "?";
}

std::vector<int32_t> Graph::UseCounts() const {
  std::vector<int32_t> uses(nodes.size(), 0);
  for (const NodeDef& node : nodes) {
    for (int32_t in : node.inputs) uses[static_cast<size_t>(in)]++;
  }
  if (output >= 0) uses[static_cast<size_t>(output)]++;
  return uses;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "graph(input=%" << input << ", output=%" << output << ", "
     << nodes.size() << " nodes, " << captured_ops << " captured ops)\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeDef& n = nodes[i];
    os << "  %" << i << " = " << OpKindName(n.kind);
    if (!n.label.empty()) os << "[" << n.label << "]";
    os << "(";
    for (size_t j = 0; j < n.inputs.size(); ++j) {
      os << (j ? ", " : "") << "%" << n.inputs[j];
    }
    os << ") : " << ShapeToString(n.shape);
    if (n.kind == OpKind::kEltwise && n.stages.size() > 1) {
      os << " stages=" << n.stages.size();
    }
    if (n.alias) os << " alias";
    os << "\n";
  }
  return os.str();
}

void GraphBuilder::MarkInput(const ag::Var& v) {
  TSFM_CHECK(graph_->nodes.empty()) << "MarkInput must precede the forward";
  NodeDef def;
  def.kind = OpKind::kInput;
  def.shape = v.shape();
  def.label = "input";
  graph_->nodes.push_back(std::move(def));
  graph_->input = 0;
  ids_[v.node().get()] = 0;
  retained_.push_back(v.node());
}

int32_t GraphBuilder::Lookup(const ag::Var& v) {
  auto it = ids_.find(v.node().get());
  if (it != ids_.end()) return it->second;
  const std::string& op = v.node()->op_name;
  if (op != "leaf") {
    // Produced by an op with no capture hook (LogSoftmax, a loss, ...):
    // this graph cannot express the forward. Latch and let the executor
    // fall back to eager.
    status_ = Status::Unimplemented(
        "graph capture: value produced by unsupported op '" + op + "'");
    return -1;
  }
  NodeDef def;
  def.kind = OpKind::kParam;
  def.shape = v.shape();
  def.param = v.node();
  def.label = "param";
  graph_->nodes.push_back(std::move(def));
  const int32_t id = static_cast<int32_t>(graph_->nodes.size()) - 1;
  ids_[v.node().get()] = id;
  retained_.push_back(v.node());
  return id;
}

int32_t GraphBuilder::Append(NodeDef def, const ag::Var& out) {
  def.shape = out.shape();
  graph_->nodes.push_back(std::move(def));
  const int32_t id = static_cast<int32_t>(graph_->nodes.size()) - 1;
  ids_[out.node().get()] = id;
  retained_.push_back(out.node());
  graph_->captured_ops++;
  return id;
}

void GraphBuilder::Record(CapOp op, const ag::Var* const* inputs,
                          size_t num_inputs, const ag::Var& out,
                          const ag::capture::Attrs& attrs) {
  if (!status_.ok()) return;

  if (IsBinary(op)) {
    TSFM_CHECK_EQ(num_inputs, size_t{2});
    const ag::Var& a = *inputs[0];
    const ag::Var& b = *inputs[1];
    // Normalize to a stage program: the primary operand must already have
    // the output shape so the chain value walks output elements 1:1. Prefer
    // the left input (matches eager evaluation order for same-shape pairs).
    NodeDef def;
    def.kind = OpKind::kEltwise;
    def.label = ag::capture::OpKindName(op);
    EltStage stage;
    stage.op = op;
    stage.operand = 1;
    int32_t primary, operand;
    if (a.shape() == out.shape()) {
      primary = Lookup(a);
      operand = Lookup(b);
      stage.value_on_left = true;
    } else if (b.shape() == out.shape()) {
      primary = Lookup(b);
      operand = Lookup(a);
      stage.value_on_left = false;
    } else {
      // Two-sided broadcast (neither input has the output shape) — rare and
      // not on the encoder path; the stage evaluator cannot express it.
      status_ = Status::Unimplemented(
          "graph capture: two-sided broadcast in " + def.label);
      return;
    }
    if (primary < 0 || operand < 0) return;
    def.inputs = {primary, operand};
    def.stages.push_back(stage);
    Append(std::move(def), out);
    return;
  }

  if (IsUnaryEltwise(op)) {
    TSFM_CHECK_EQ(num_inputs, size_t{1});
    const int32_t in = Lookup(*inputs[0]);
    if (in < 0) return;
    NodeDef def;
    def.kind = OpKind::kEltwise;
    def.label = ag::capture::OpKindName(op);
    def.inputs = {in};
    EltStage stage;
    stage.op = op;
    stage.immediate = attrs.f;
    def.stages.push_back(stage);
    Append(std::move(def), out);
    return;
  }

  NodeDef def;
  def.label = ag::capture::OpKindName(op);
  def.iattrs.assign(attrs.ints, attrs.ints + attrs.num_ints);
  def.alias = attrs.alias;
  switch (op) {
    case CapOp::kMatMul: def.kind = OpKind::kMatMul; break;
    case CapOp::kTransposeLast2: def.kind = OpKind::kTransposeLast2; break;
    case CapOp::kPermute: def.kind = OpKind::kPermute; break;
    case CapOp::kReshape: def.kind = OpKind::kReshape; break;
    case CapOp::kSlice: def.kind = OpKind::kSlice; break;
    case CapOp::kConcat: def.kind = OpKind::kConcat; break;
    case CapOp::kSumAxis: def.kind = OpKind::kSumAxis; break;
    case CapOp::kSoftmax: def.kind = OpKind::kSoftmax; break;
    default:
      status_ = Status::Unimplemented(
          std::string("graph capture: unhandled op ") +
          ag::capture::OpKindName(op));
      return;
  }
  def.inputs.reserve(num_inputs);
  for (size_t i = 0; i < num_inputs; ++i) {
    const int32_t id = Lookup(*inputs[i]);
    if (id < 0) return;
    def.inputs.push_back(id);
  }
  Append(std::move(def), out);
}

Status GraphBuilder::Finish(const ag::Var& out) {
  if (!status_.ok()) return status_;
  auto it = ids_.find(out.node().get());
  if (it == ids_.end()) {
    return Status::Unimplemented(
        "graph capture: forward output was not produced by captured ops "
        "(op '" + out.node()->op_name + "')");
  }
  graph_->output = it->second;
  if (graph_->captured_ops == 0) {
    return Status::Unimplemented("graph capture: forward recorded no ops");
  }
  return Status::OK();
}

Result<Graph> Capture(const Tensor& x,
                      const std::function<ag::Var(const ag::Var&)>& forward) {
  Graph graph;
  GraphBuilder builder(&graph);
  ag::Var in = ag::Constant(x);
  builder.MarkInput(in);
  ag::Var out;
  {
    ag::capture::ScopedSink scoped(&builder);
    out = forward(in);
  }
  Status status = builder.Finish(out);
  if (!status.ok()) return status;
  return graph;
}

}  // namespace tsfm::graph
