#ifndef TSFM_GRAPH_PASSES_H_
#define TSFM_GRAPH_PASSES_H_

#include <cstddef>
#include <vector>

#include "graph/ir.h"

// Graph rewrite passes. Every pass preserves the determinism contract:
// interpreting the graph after the pass is bit-identical to before it (and
// to eager), because each rewrite keeps the per-element scalar operation
// sequence intact:
//
//   * fold_transpose_matmul — MatMul(a, TransposeLast2(b)) where the
//     transpose has a single use becomes MatMulTransB(a, b). The TransB
//     kernel accumulates each output element's k products in the same
//     ascending order as the packed-B kernel, and skips the transpose pack.
//   * fuse_bias_gelu — the MIGraphX rewrite_fastgelu pattern: a
//     single-use Add feeding a Gelu collapses into one two-stage loop, so
//     the bias-add intermediate is never materialized.
//   * fuse_eltwise — generalizes the same merge to any single-use eltwise
//     node feeding another's primary operand with an equal shape, to a
//     bounded stage count (covers LayerNorm's sub/mul/mul/add tail).
//
// Each pass ends with dead-node elimination, so fused-away producers stop
// occupying planner slots. Passes are individually invocable by index —
// the bit-identity property test runs them one at a time.
namespace tsfm::graph {

struct PassInfo {
  const char* name;
  void (*run)(Graph* graph);
};

/// The standard pipeline, in execution order.
const std::vector<PassInfo>& StandardPasses();

/// Runs passes [0, upto) of the standard pipeline; upto beyond the pipeline
/// length is clamped. RunStandardPasses runs all of them.
void RunPassesUpTo(Graph* graph, size_t upto);
void RunStandardPasses(Graph* graph);

/// Removes nodes unreachable from the output (the input node is always
/// kept), remapping value ids. Exposed for tests.
void EliminateDeadNodes(Graph* graph);

}  // namespace tsfm::graph

#endif  // TSFM_GRAPH_PASSES_H_
