#include "graph/executor.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "autograd/ops.h"
#include "common/check.h"
#include "graph/passes.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/simd_math.h"
#include "tensor/op_math.h"
#include "tensor/ops.h"

namespace tsfm::graph {

namespace {

using CapOp = ag::capture::OpKind;

std::atomic<bool> g_graph_mode{[] {
  const char* env = std::getenv("TSFM_GRAPH");
  return env != nullptr && env[0] == '1';
}()};

struct ExecMetrics {
  obs::Counter* captures;
  obs::Counter* capture_failures;
  obs::Counter* executions;
  obs::Counter* eager_fallbacks;
  obs::Gauge* peak_bytes;
  obs::Gauge* unplanned_bytes;
};

ExecMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static ExecMetrics m{r.GetCounter("graph.captures"),
                       r.GetCounter("graph.capture_failures"),
                       r.GetCounter("graph.executions"),
                       r.GetCounter("graph.eager_fallbacks"),
                       r.GetGauge("graph.peak_bytes"),
                       r.GetGauge("graph.unplanned_bytes")};
  return m;
}

/// One scalar step of a stage program. Mirrors the eager kernels in
/// tensor/ops.cc expression for expression — any divergence breaks the
/// bit-identity contract. In SIMD mode the transcendentals dispatch to the
/// simd scalar references, which are bit-identical to the vectorized row
/// kernels the eager path uses (simd/simd_math.h), so the contract holds in
/// both modes. `simd_on` is sampled once per fused loop, not per element.
inline float ApplyStage(const EltStage& s, float v, float o, bool simd_on) {
  switch (s.op) {
    case CapOp::kAdd: return v + o;
    case CapOp::kSub: return s.value_on_left ? v - o : o - v;
    case CapOp::kMul: return v * o;
    case CapOp::kDiv: return s.value_on_left ? v / o : o / v;
    case CapOp::kNeg: return -v;
    case CapOp::kScale: return v * s.immediate;
    case CapOp::kAddScalar: return v + s.immediate;
    case CapOp::kExp: return simd_on ? simd::ExpS(v) : std::exp(v);
    case CapOp::kLog: return std::log(v);
    case CapOp::kSqrt: return std::sqrt(v);
    case CapOp::kSquare: return v * v;
    case CapOp::kTanh: return simd_on ? simd::TanhS(v) : std::tanh(v);
    case CapOp::kSigmoid:
      return simd_on ? simd::SigmoidS(v) : ops::detail::SigmoidScalar(v);
    case CapOp::kRelu: return ops::detail::ReluScalar(v);
    case CapOp::kGelu:
      return simd_on ? simd::GeluS(v) : ops::detail::GeluScalar(v);
    default:
      TSFM_CHECK(false) << "non-eltwise op in stage program";
      return v;
  }
}

constexpr int64_t kEltwiseGrain = 1 << 14;

/// Runs a stage program over one strided loop: the chain value starts at the
/// primary operand (inputs[0], output-shaped) and each stage folds in at
/// most one extra operand. Operands are read through broadcast-view strides,
/// advanced odometer-style so the generic path stays O(1) per element.
void RunEltwise(const NodeDef& node, const std::vector<Tensor>& operands,
                Tensor* out) {
  const int64_t numel = out->numel();
  if (numel == 0) return;
  const Shape& shape = node.shape;
  const size_t ndim = shape.size();
  const size_t nops = operands.size();

  struct OperandView {
    const float* base;
    std::vector<int64_t> strides;
  };
  std::vector<OperandView> views(nops);
  bool all_dense = true;
  for (size_t j = 0; j < nops; ++j) {
    const Tensor& t = operands[j];
    views[j].base = t.base();
    views[j].strides = ops::detail::BroadcastViewStrides(t, shape);
    all_dense &= (t.is_contiguous() && t.shape() == shape) || t.numel() == 1;
  }
  float* po = out->mutable_data();
  const std::vector<EltStage>& stages = node.stages;
  const bool simd_on = simd::SimdEnabled();

  if (all_dense) {
    // Every operand is either element-aligned with the output or a scalar.
    std::vector<const float*> bases(nops);
    std::vector<int64_t> steps(nops);
    for (size_t j = 0; j < nops; ++j) {
      bases[j] = views[j].base;
      steps[j] = operands[j].numel() == 1 ? 0 : 1;
    }
    runtime::ParallelFor(0, numel, kEltwiseGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        float v = bases[0][i * steps[0]];
        for (const EltStage& s : stages) {
          const float o = s.operand >= 0
                              ? bases[static_cast<size_t>(s.operand)]
                                     [i * steps[static_cast<size_t>(s.operand)]]
                              : 0.0f;
          v = ApplyStage(s, v, o, simd_on);
        }
        po[i] = v;
      }
    });
    return;
  }

  runtime::ParallelFor(0, numel, kEltwiseGrain, [&](int64_t lo, int64_t hi) {
    // Odometer over the output's row-major coordinates; each operand keeps a
    // running strided offset so no per-element index decode is needed.
    std::vector<int64_t> coords(ndim, 0);
    std::vector<int64_t> offsets(nops, 0);
    int64_t rem = lo;
    for (size_t d = ndim; d-- > 0;) {
      coords[d] = rem % shape[d];
      rem /= shape[d];
      for (size_t j = 0; j < nops; ++j) {
        offsets[j] += coords[d] * views[j].strides[d];
      }
    }
    for (int64_t i = lo; i < hi; ++i) {
      float v = views[0].base[offsets[0]];
      for (const EltStage& s : stages) {
        const float o =
            s.operand >= 0
                ? views[static_cast<size_t>(s.operand)]
                      .base[offsets[static_cast<size_t>(s.operand)]]
                : 0.0f;
        v = ApplyStage(s, v, o, simd_on);
      }
      po[i] = v;
      for (size_t d = ndim; d-- > 0;) {
        ++coords[d];
        for (size_t j = 0; j < nops; ++j) offsets[j] += views[j].strides[d];
        if (coords[d] < shape[d]) break;
        coords[d] = 0;
        for (size_t j = 0; j < nops; ++j) {
          offsets[j] -= shape[d] * views[j].strides[d];
        }
      }
    }
  });
}

/// Packs a (possibly strided) tensor into a dense row-major destination —
/// the materializing-reshape path. Same element order as Contiguous().
void PackInto(const Tensor& src, Tensor* out) {
  const int64_t numel = out->numel();
  float* po = out->mutable_data();
  if (src.is_contiguous()) {
    const float* ps = src.data();
    runtime::ParallelFor(0, numel, kEltwiseGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = ps[i];
    });
    return;
  }
  const Shape& shape = src.shape();
  const size_t ndim = shape.size();
  const float* base = src.base();
  runtime::ParallelFor(0, numel, kEltwiseGrain, [&](int64_t lo, int64_t hi) {
    std::vector<int64_t> coords(ndim, 0);
    int64_t off = 0;
    int64_t rem = lo;
    for (size_t d = ndim; d-- > 0;) {
      coords[d] = rem % shape[d];
      rem /= shape[d];
      off += coords[d] * src.strides()[d];
    }
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = base[off];
      for (size_t d = ndim; d-- > 0;) {
        ++coords[d];
        off += src.strides()[d];
        if (coords[d] < shape[d]) break;
        coords[d] = 0;
        off -= shape[d] * src.strides()[d];
      }
    }
  });
}

}  // namespace

bool GraphModeEnabled() {
  return g_graph_mode.load(std::memory_order_relaxed);
}

void SetGraphMode(bool enabled) {
  g_graph_mode.store(enabled, std::memory_order_relaxed);
}

ScopedGraphMode::ScopedGraphMode(bool enabled)
    : previous_(GraphModeEnabled()) {
  SetGraphMode(enabled);
}

ScopedGraphMode::~ScopedGraphMode() { SetGraphMode(previous_); }

Tensor Execute(const Graph& graph, const MemoryPlan& plan, const Tensor& x) {
  const size_t n = graph.nodes.size();
  TSFM_CHECK_EQ(plan.node_slot.size(), n);
  std::vector<Tensor> vals(n);
  // Slabs are allocated lazily per execution (from the BufferPool, so the
  // floats are recycled across calls) and shaped views of them receive every
  // materialized intermediate.
  std::vector<Tensor> slabs(plan.slot_floats.size());
  auto dest = [&](size_t i) {
    const int32_t slot = plan.node_slot[i];
    TSFM_CHECK_GE(slot, 0) << "materializing node %" << i << " has no slot";
    Tensor& slab = slabs[static_cast<size_t>(slot)];
    if (slab.numel() == 0) {
      slab = Tensor::Empty({plan.slot_floats[static_cast<size_t>(slot)]});
    }
    const Shape& shape = graph.nodes[i].shape;
    return slab.Narrow(0, 0, NumElements(shape)).Reshape(shape);
  };

  for (size_t i = 0; i < n; ++i) {
    const NodeDef& node = graph.nodes[i];
    const auto in = [&](size_t j) -> const Tensor& {
      return vals[static_cast<size_t>(node.inputs[j])];
    };
    switch (node.kind) {
      case OpKind::kInput:
        vals[i] = x;
        break;
      case OpKind::kParam:
        vals[i] = node.param->value;
        break;
      case OpKind::kEltwise: {
        Tensor out = dest(i);
        std::vector<Tensor> operands;
        operands.reserve(node.inputs.size());
        for (size_t j = 0; j < node.inputs.size(); ++j) {
          operands.push_back(in(j));
        }
        RunEltwise(node, operands, &out);
        vals[i] = std::move(out);
        break;
      }
      case OpKind::kMatMul: {
        Tensor out = dest(i);
        MatMulInto(in(0), in(1), &out);
        vals[i] = std::move(out);
        break;
      }
      case OpKind::kMatMulTransB: {
        Tensor out = dest(i);
        MatMulTransBInto(in(0), in(1), &out);
        vals[i] = std::move(out);
        break;
      }
      case OpKind::kTransposeLast2:
        vals[i] = TransposeLast2(in(0));
        break;
      case OpKind::kPermute:
        vals[i] = in(0).PermuteAxes(
            std::vector<int64_t>(node.iattrs.begin(), node.iattrs.end()));
        break;
      case OpKind::kSlice:
        vals[i] = in(0).Narrow(node.iattrs[0], node.iattrs[1],
                               node.iattrs[2] - node.iattrs[1]);
        break;
      case OpKind::kReshape:
        if (node.alias) {
          vals[i] = in(0).Reshape(node.shape);
        } else {
          Tensor out = dest(i);
          PackInto(in(0), &out);
          vals[i] = std::move(out);
        }
        break;
      case OpKind::kConcat: {
        Tensor out = dest(i);
        std::vector<Tensor> parts;
        parts.reserve(node.inputs.size());
        for (size_t j = 0; j < node.inputs.size(); ++j) parts.push_back(in(j));
        ConcatInto(parts, node.iattrs[0], &out);
        vals[i] = std::move(out);
        break;
      }
      case OpKind::kSumAxis: {
        Tensor out = dest(i);
        SumInto(in(0), node.iattrs[0], node.iattrs[1] != 0, &out);
        vals[i] = std::move(out);
        break;
      }
      case OpKind::kSoftmax: {
        Tensor out = dest(i);
        SoftmaxInto(in(0), &out);
        vals[i] = std::move(out);
        break;
      }
    }
  }
  TSFM_CHECK_GE(graph.output, 0);
  return vals[static_cast<size_t>(graph.output)];
}

Tensor Executor::Run(const Tensor& x, const EagerFn& eager) {
  std::shared_ptr<const CompiledGraph> compiled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_shape_.find(x.shape());
    if (it != by_shape_.end()) compiled = it->second;
  }
  if (compiled == nullptr) {
    // First sight of this shape: capture outside the lock (Run is reached
    // from ParallelFor workers during batched embedding, and the eager
    // forward itself parallelizes). Concurrent captures of the same shape
    // are wasted work, not corruption — the first insert wins.
    TSFM_TRACE_SPAN("graph.capture");
    auto entry = std::make_shared<CompiledGraph>();
    Graph captured;
    GraphBuilder builder(&captured);
    ag::Var in = ag::Constant(x);
    builder.MarkInput(in);
    ag::Var out;
    {
      ag::capture::ScopedSink scoped(&builder);
      out = eager(in);
    }
    entry->capture_status = builder.Finish(out);
    if (entry->capture_status.ok()) {
      entry->graph = std::move(captured);
      RunStandardPasses(&entry->graph);
      entry->plan = PlanMemory(entry->graph);
      Metrics().captures->Add(1);
      Metrics().peak_bytes->Set(
          static_cast<double>(entry->plan.planned_peak_bytes));
      Metrics().unplanned_bytes->Set(
          static_cast<double>(entry->plan.unplanned_bytes));
    } else {
      Metrics().capture_failures->Add(1);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      by_shape_.emplace(x.shape(), std::move(entry));
    }
    // The capture forward already computed the result; return it so the
    // first call costs one eager forward and nothing more.
    return out.value();
  }
  if (!compiled->capture_status.ok()) {
    Metrics().eager_fallbacks->Add(1);
    return eager(ag::Constant(x)).value();
  }
  TSFM_TRACE_SPAN("graph.execute");
  Metrics().executions->Add(1);
  return Execute(compiled->graph, compiled->plan, x);
}

std::shared_ptr<const CompiledGraph> Executor::Lookup(
    const Shape& shape) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_shape_.find(shape);
  return it != by_shape_.end() ? it->second : nullptr;
}

}  // namespace tsfm::graph
