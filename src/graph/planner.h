#ifndef TSFM_GRAPH_PLANNER_H_
#define TSFM_GRAPH_PLANNER_H_

#include <cstdint>
#include <vector>

#include "graph/ir.h"

// Liveness-based activation memory planner.
//
// Materializing nodes (everything except the input, params, and zero-copy
// views) are assigned to a small set of reusable slots sized in BufferPool
// bucket capacities. A slot is free for reuse once the storage it holds is
// past its last use — where "storage" is the view-closure root: a view node
// aliases its base, so all uses of any view extend the base's lifetime.
//
// Invariants (exercised by graph_test):
//   * a node's output slot is never one of its inputs' live slots (the
//     planner only frees storage whose last use is strictly before the
//     current node, so in-place aliasing cannot occur);
//   * the graph output's storage is pinned live to the end and its slot is
//     excluded from the reported peak-slot reuse;
//   * planned_peak_bytes = sum of slot capacities, the exact footprint the
//     interpreter allocates per execution.
namespace tsfm::graph {

struct MemoryPlan {
  /// Slot id per node; -1 for nodes that allocate nothing (input, params,
  /// views) — their storage is the root's.
  std::vector<int32_t> node_slot;
  /// Capacity of each slot in floats (BufferPool bucket capacities).
  std::vector<int64_t> slot_floats;
  /// Total bytes of all slots: the interpreter's per-execution activation
  /// footprint (graph.peak_bytes gauge).
  int64_t planned_peak_bytes = 0;
  /// What the same graph would allocate with no reuse (one buffer per
  /// materializing node) — the baseline the plan is saving against.
  int64_t unplanned_bytes = 0;
};

MemoryPlan PlanMemory(const Graph& graph);

}  // namespace tsfm::graph

#endif  // TSFM_GRAPH_PLANNER_H_
