#ifndef TSFM_GRAPH_EXECUTOR_H_
#define TSFM_GRAPH_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/ir.h"
#include "graph/planner.h"

// Graph-mode execution: per-shape plan cache + topo-order interpreter.
//
// Opt-in via TSFM_GRAPH=1 (or --graph in the CLI, which calls
// SetGraphMode). The model's EncodeChannels routes through Executor::Run
// only when graph mode is on AND gradients are off — training always runs
// eager. The first Run for a given input shape captures the eager forward
// (returning its result, so capture costs one forward and nothing else),
// runs the standard passes, and plans activation memory; subsequent Runs
// interpret the compiled plan. A capture failure (unsupported op) is cached
// per shape and every later Run for that shape goes eager — graph mode can
// degrade performance-wise but never abort.
namespace tsfm::graph {

/// True when graph mode is enabled for this process: TSFM_GRAPH=1 in the
/// environment (read once) unless overridden by SetGraphMode.
bool GraphModeEnabled();
void SetGraphMode(bool enabled);

/// RAII override for tests/benchmarks.
class ScopedGraphMode {
 public:
  explicit ScopedGraphMode(bool enabled);
  ~ScopedGraphMode();
  ScopedGraphMode(const ScopedGraphMode&) = delete;
  ScopedGraphMode& operator=(const ScopedGraphMode&) = delete;

 private:
  bool previous_;
};

/// Interprets `graph` on input `x`, writing intermediates into the plan's
/// slots. Bit-identical to the captured eager forward at every thread
/// count. Thread-safe: slots are allocated per call.
Tensor Execute(const Graph& graph, const MemoryPlan& plan, const Tensor& x);

/// One compiled forward: captured graph + memory plan. Immutable after
/// construction, safe to share across threads.
struct CompiledGraph {
  Status capture_status;  // !ok(): this shape permanently falls back
  Graph graph;
  MemoryPlan plan;
};

class Executor {
 public:
  using EagerFn = std::function<ag::Var(const ag::Var&)>;

  /// Runs the forward for `x`. First call per input shape: runs `eager`
  /// once under capture and returns its result. Later calls: interprets the
  /// compiled plan (or re-runs `eager` if that shape's capture failed).
  Tensor Run(const Tensor& x, const EagerFn& eager);

  /// Compiled entry for `shape`, or nullptr if that shape has not been
  /// captured yet. Test/introspection hook.
  std::shared_ptr<const CompiledGraph> Lookup(const Shape& shape) const;

 private:
  mutable std::mutex mu_;
  std::map<Shape, std::shared_ptr<const CompiledGraph>> by_shape_;
};

}  // namespace tsfm::graph

#endif  // TSFM_GRAPH_EXECUTOR_H_
