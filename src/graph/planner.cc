#include "graph/planner.h"

#include <limits>

#include "common/check.h"
#include "memory/buffer_pool.h"

namespace tsfm::graph {

namespace {

bool IsView(const NodeDef& node) {
  switch (node.kind) {
    case OpKind::kTransposeLast2:
    case OpKind::kPermute:
    case OpKind::kSlice:
      return true;
    case OpKind::kReshape:
      return node.alias;
    default:
      return false;
  }
}

bool Materializes(const NodeDef& node) {
  return node.kind != OpKind::kInput && node.kind != OpKind::kParam &&
         !IsView(node);
}

}  // namespace

MemoryPlan PlanMemory(const Graph& graph) {
  const size_t n = graph.nodes.size();
  MemoryPlan plan;
  plan.node_slot.assign(n, -1);
  if (n == 0) return plan;

  // View-closure storage root per value.
  std::vector<int32_t> root(n);
  for (size_t i = 0; i < n; ++i) {
    const NodeDef& node = graph.nodes[i];
    root[i] = IsView(node) ? root[static_cast<size_t>(node.inputs[0])]
                           : static_cast<int32_t>(i);
  }

  // Last use per storage root. The output's root is pinned to the end so
  // its storage is never recycled into a later node.
  constexpr int64_t kLiveToEnd = std::numeric_limits<int64_t>::max();
  std::vector<int64_t> last_use(n, -1);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t in : graph.nodes[i].inputs) {
      const size_t r = static_cast<size_t>(root[static_cast<size_t>(in)]);
      last_use[r] = static_cast<int64_t>(i);
    }
  }
  TSFM_CHECK_GE(graph.output, 0);
  last_use[static_cast<size_t>(root[static_cast<size_t>(graph.output)])] =
      kLiveToEnd;

  // Greedy best-fit over a free list. Slots are released only when their
  // root's last use is strictly before the current node, so a node can
  // never be assigned a slot one of its own inputs still occupies.
  struct SlotState {
    int64_t floats;
    bool free;
  };
  std::vector<SlotState> slots;
  std::vector<int32_t> root_slot(n, -1);

  for (size_t i = 0; i < n; ++i) {
    const NodeDef& node = graph.nodes[i];
    for (size_t r = 0; r < n; ++r) {
      if (root_slot[r] >= 0 && last_use[r] >= 0 &&
          last_use[r] < static_cast<int64_t>(i)) {
        slots[static_cast<size_t>(root_slot[r])].free = true;
        root_slot[r] = -2;  // released; never reconsidered
      }
    }
    if (!Materializes(node)) continue;
    const int64_t need =
        memory::BufferPool::BucketCapacity(NumElements(node.shape));
    plan.unplanned_bytes += need * static_cast<int64_t>(sizeof(float));
    if (last_use[i] < 0) continue;  // dead value: nothing reads it
    // Best fit: the smallest free slot that holds `need`; otherwise grow
    // the largest free slot; otherwise open a new one.
    int32_t best = -1, largest = -1;
    for (size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].free) continue;
      if (slots[s].floats >= need &&
          (best < 0 || slots[s].floats < slots[static_cast<size_t>(best)].floats)) {
        best = static_cast<int32_t>(s);
      }
      if (largest < 0 ||
          slots[s].floats > slots[static_cast<size_t>(largest)].floats) {
        largest = static_cast<int32_t>(s);
      }
    }
    int32_t slot = best >= 0 ? best : largest;
    if (slot < 0) {
      slots.push_back({need, false});
      slot = static_cast<int32_t>(slots.size()) - 1;
    } else {
      SlotState& st = slots[static_cast<size_t>(slot)];
      st.floats = std::max(st.floats, need);
      st.free = false;
    }
    plan.node_slot[i] = slot;
    root_slot[i] = slot;
  }

  plan.slot_floats.reserve(slots.size());
  for (const SlotState& s : slots) {
    plan.slot_floats.push_back(s.floats);
    plan.planned_peak_bytes += s.floats * static_cast<int64_t>(sizeof(float));
  }
  return plan;
}

}  // namespace tsfm::graph
