#ifndef TSFM_GRAPH_IR_H_
#define TSFM_GRAPH_IR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "autograd/capture.h"
#include "autograd/variable.h"
#include "common/status.h"
#include "tensor/tensor.h"

// Dataflow IR over the encoder forward.
//
// A `Graph` is a topologically ordered list of `NodeDef`s produced by
// trace-capture: the eager forward runs once with a GraphBuilder installed
// as the thread's ag::capture::Sink, and every recorded primitive appends a
// node. Elementwise primitives are normalized at capture time into
// single-stage kEltwise nodes (a "stage program" of scalar ops over one
// strided loop), which is what makes chain fusion a pure list concatenation
// later (see passes.h).
//
// Determinism contract: interpreting a Graph — before or after any pass —
// produces output bit-identical to the eager forward at every thread count.
// Passes may only rewrite a node when the rewritten form performs the same
// scalar float operations in the same per-element order.
namespace tsfm::graph {

enum class OpKind : uint8_t {
  kInput,          // the single graph argument
  kParam,          // captured leaf (weight / constant); value read at exec
  kEltwise,        // stage program over one strided loop
  kMatMul,         // tsfm::MatMulInto
  kMatMulTransB,   // tsfm::MatMulTransBInto (fold_transpose_matmul output)
  kTransposeLast2, // zero-copy view
  kPermute,        // zero-copy view; iattrs = perm
  kSlice,          // zero-copy view; iattrs = axis, start, end
  kReshape,        // view when alias, else materializing copy
  kConcat,         // tsfm::ConcatInto; iattrs = axis
  kSumAxis,        // tsfm::SumInto; iattrs = axis, keepdim
  kSoftmax,        // tsfm::SoftmaxInto
};

const char* OpKindName(OpKind kind);

/// One scalar operation in a kEltwise stage program. Binary ops read their
/// second operand from NodeDef::inputs[operand]; kScale/kAddScalar carry a
/// float immediate; the rest are unary.
struct EltStage {
  ag::capture::OpKind op;
  float immediate = 0.0f;
  int32_t operand = -1;
  // For non-commutative binaries: true = running value is the left operand.
  bool value_on_left = true;
};

struct NodeDef {
  OpKind kind = OpKind::kEltwise;
  /// Value ids (indices into Graph::nodes) this node reads. For kEltwise,
  /// inputs[0] is the primary (loop-carried) operand — its shape equals the
  /// node shape up to broadcast — and the rest are stage operands.
  std::vector<int32_t> inputs;
  Shape shape;
  /// Layout/reduction attributes; see OpKind comments for the layout.
  std::vector<int64_t> iattrs;
  /// kReshape: true when the output aliases inputs[0]'s storage (recorded
  /// from the actual eager result; the planner must not assign a slot).
  bool alias = false;
  std::vector<EltStage> stages;
  /// Diagnostics: primitive name or fusion label ("bias_gelu", "eltwise_3").
  std::string label;
  /// kParam: the captured leaf node. The value is re-read at every
  /// execution, so optimizer updates (full fine-tune) flow into cached
  /// plans; holding the shared_ptr keeps per-capture constants (positional
  /// slices, zero padding) alive for the plan's lifetime.
  std::shared_ptr<ag::internal::Node> param;
};

struct Graph {
  std::vector<NodeDef> nodes;  // topological order
  int32_t input = -1;
  int32_t output = -1;
  int64_t captured_ops = 0;  // primitives recorded at capture time

  /// Uses per value id; the output counts as one use. Recomputed on demand
  /// by passes after every rewrite.
  std::vector<int32_t> UseCounts() const;

  /// Multi-line human-readable dump (tests / debugging).
  std::string ToString() const;
};

/// ag::capture::Sink that appends recorded primitives to a Graph. Usage:
///   GraphBuilder builder(&graph);
///   builder.MarkInput(in_var);
///   { ag::capture::ScopedSink scoped(&builder);  out_var = forward(in_var); }
///   Status s = builder.Finish(out_var);
/// The first unsupported construct (an op with no capture hook feeding the
/// traced region, or a broadcast shape the stage evaluator cannot express)
/// latches an error status; recording continues as a no-op and Finish
/// returns the error.
class GraphBuilder : public ag::capture::Sink {
 public:
  explicit GraphBuilder(Graph* graph) : graph_(graph) {}

  /// Registers `v` as the graph argument. Must be called before the forward.
  void MarkInput(const ag::Var& v);

  void Record(ag::capture::OpKind op, const ag::Var* const* inputs,
              size_t num_inputs, const ag::Var& out,
              const ag::capture::Attrs& attrs) override;

  /// Resolves the output value and returns the capture status.
  Status Finish(const ag::Var& out);

 private:
  /// Value id for `v`, registering unseen leaves as kParam. Returns -1 and
  /// latches `status_` when `v` was produced by an op capture cannot see.
  int32_t Lookup(const ag::Var& v);
  int32_t Append(NodeDef def, const ag::Var& out);

  Graph* graph_;
  Status status_;
  std::unordered_map<const ag::internal::Node*, int32_t> ids_;
  /// Keeps every recorded value's Node alive for the capture's duration.
  /// Without this, no-grad intermediates die mid-forward and the allocator
  /// recycles their addresses — and `ids_` (keyed by Node*) would silently
  /// identify two different values.
  std::vector<std::shared_ptr<ag::internal::Node>> retained_;
};

/// Runs `forward` once eagerly under a GraphBuilder and returns the captured
/// graph. On failure (unsupported op) returns the error status; the eager
/// result is discarded either way — use Executor::Run when the result
/// matters.
Result<Graph> Capture(const Tensor& x,
                      const std::function<ag::Var(const ag::Var&)>& forward);

}  // namespace tsfm::graph

#endif  // TSFM_GRAPH_IR_H_
