#include "memory/buffer_pool.h"

#include <cstdlib>

#include "common/check.h"
#include "obs/metrics.h"

namespace tsfm::memory {
namespace {

// Bucket index for a request, or -1 for oversize. Bucket i holds buffers of
// exactly 2^(kMinBucketLog2 + i) floats.
int BucketIndex(int64_t numel) {
  int log2 = BufferPool::kMinBucketLog2;
  int64_t cap = int64_t{1} << log2;
  while (cap < numel) {
    ++log2;
    cap <<= 1;
    if (log2 > BufferPool::kMaxBucketLog2) return -1;
  }
  return log2 - BufferPool::kMinBucketLog2;
}

uint64_t Bytes(int64_t floats) {
  return static_cast<uint64_t>(floats) * sizeof(float);
}

}  // namespace

BufferPool::BufferPool()
    : freelists_(static_cast<size_t>(kMaxBucketLog2 - kMinBucketLog2 + 1)) {
  const char* env = std::getenv("TSFM_DISABLE_POOL");
  enabled_ = !(env != nullptr && env[0] != '\0' && env[0] != '0');
}

BufferPool& BufferPool::Instance() {
  // Intentionally leaked: tensors with static storage duration may release
  // buffers after main() returns, so the pool must outlive every tensor.
  static BufferPool* pool = new BufferPool();
  static bool metrics_registered = (RegisterPoolMetrics(), true);
  (void)metrics_registered;
  return *pool;
}

void RegisterPoolMetrics() {
  // The provider pulls a PoolStats snapshot at registry-snapshot time, so
  // the pool keeps its one internal struct (updated under its own mutex)
  // and pays nothing per Acquire/Release for being observable.
  obs::Registry::Instance().RegisterProvider(
      "memory.pool",
      [](obs::Snapshot* snap) {
        const PoolStats s = BufferPool::Instance().Snapshot();
        (*snap)["pool.acquires"] = static_cast<double>(s.acquires);
        (*snap)["pool.releases"] = static_cast<double>(s.releases);
        (*snap)["pool.pool_hits"] = static_cast<double>(s.pool_hits);
        (*snap)["pool.heap_allocs"] = static_cast<double>(s.heap_allocs);
        (*snap)["pool.heap_frees"] = static_cast<double>(s.heap_frees);
        (*snap)["pool.live_bytes"] = static_cast<double>(s.live_bytes);
        (*snap)["pool.peak_live_bytes"] =
            static_cast<double>(s.peak_live_bytes);
        (*snap)["pool.cached_bytes"] = static_cast<double>(s.cached_bytes);
        (*snap)["pool.enabled"] =
            BufferPool::Instance().enabled() ? 1.0 : 0.0;
      },
      [] { BufferPool::Instance().ResetPeak(); });
}

int64_t BufferPool::BucketCapacity(int64_t numel) {
  const int bucket = BucketIndex(numel);
  if (bucket < 0) return numel;
  return int64_t{1} << (kMinBucketLog2 + bucket);
}

float* BufferPool::Acquire(int64_t numel, int* bucket) {
  TSFM_CHECK_GE(numel, 0);
  if (numel == 0) {
    *bucket = -1;
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // While disabled the pool is a stats-tracking pass-through: exact-size
  // heap allocations, bucket -1, so Release frees rather than caching.
  const int idx = enabled_ ? BucketIndex(numel) : -1;
  const int64_t cap = (idx < 0) ? numel : int64_t{1} << (kMinBucketLog2 + idx);
  ++stats_.acquires;
  stats_.live_bytes += Bytes(cap);
  if (stats_.live_bytes > stats_.peak_live_bytes) {
    stats_.peak_live_bytes = stats_.live_bytes;
  }
  if (idx >= 0) {
    auto& list = freelists_[static_cast<size_t>(idx)];
    if (!list.empty()) {
      float* p = list.back();
      list.pop_back();
      stats_.cached_bytes -= Bytes(cap);
      ++stats_.pool_hits;
      *bucket = idx;
      return p;
    }
  }
  ++stats_.heap_allocs;
  *bucket = idx;
  return new float[static_cast<size_t>(cap)];
}

void BufferPool::Release(float* ptr, int bucket, int64_t numel) {
  if (ptr == nullptr) return;
  const int64_t cap =
      (bucket < 0) ? numel : int64_t{1} << (kMinBucketLog2 + bucket);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  stats_.live_bytes -= Bytes(cap);
  if (enabled_ && bucket >= 0) {
    freelists_[static_cast<size_t>(bucket)].push_back(ptr);
    stats_.cached_bytes += Bytes(cap);
    return;
  }
  ++stats_.heap_frees;
  delete[] ptr;
}

PoolStats BufferPool::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetPeak() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.peak_live_bytes = stats_.live_bytes;
}

void BufferPool::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& list : freelists_) {
    for (float* p : list) {
      ++stats_.heap_frees;
      delete[] p;
    }
    list.clear();
  }
  stats_.cached_bytes = 0;
}

bool BufferPool::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void BufferPool::SetEnabledForTesting(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

TensorBuffer::TensorBuffer(int64_t numel) : numel_(numel) {
  ptr_ = BufferPool::Instance().Acquire(numel, &bucket_);
}

TensorBuffer::~TensorBuffer() {
  BufferPool::Instance().Release(ptr_, bucket_, numel_);
}

}  // namespace tsfm::memory
