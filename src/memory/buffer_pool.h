#ifndef TSFM_MEMORY_BUFFER_POOL_H_
#define TSFM_MEMORY_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace tsfm::memory {

/// Allocator counters. Byte fields count the *capacity* handed out (bucket
/// size for pooled buffers, exact size for oversize direct allocations), so
/// `peak_live_bytes` is the allocator's real footprint, not the sum of
/// requested tensor sizes.
struct PoolStats {
  uint64_t acquires = 0;      // buffer requests served (zero-size skipped)
  uint64_t releases = 0;      // buffers returned (to a freelist or freed)
  uint64_t pool_hits = 0;     // served from a freelist without heap traffic
  uint64_t heap_allocs = 0;   // operator new[] calls (misses/oversize/off)
  uint64_t heap_frees = 0;    // operator delete[] calls
  uint64_t live_bytes = 0;    // capacity currently held by tensors
  uint64_t peak_live_bytes = 0;  // high-water mark of live_bytes
  uint64_t cached_bytes = 0;  // capacity parked in freelists, ready to reuse
};

/// Process-wide, thread-safe, size-bucketed free-list allocator for tensor
/// storage. Requests are rounded up to the next power-of-two float count
/// (minimum 64 floats); a released buffer parks in its bucket's freelist and
/// the next `Acquire` of that bucket reuses it with zero heap traffic.
/// Requests above `kMaxBucket` floats bypass the freelists (rare, and pooling
/// them would pin large memory).
///
/// The pool hands out raw capacity only — it never reads or writes buffer
/// contents, so reused buffers are *dirty* and callers must fully initialize
/// them (`Tensor(Shape)` zeroes; `Tensor::Empty` passes the dirt through to
/// code that overwrites every element). Numerics therefore never depend on
/// pool state, which keeps the runtime's bit-determinism contract intact.
///
/// Setting `TSFM_DISABLE_POOL=1` in the environment turns the pool into a
/// plain pass-through to new[]/delete[] (stats still tracked) — used by the
/// allocation-pressure benchmarks to measure what pooling saves.
class BufferPool {
 public:
  /// Smallest pooled bucket: 2^6 floats = 256 bytes.
  static constexpr int kMinBucketLog2 = 6;
  /// Largest pooled bucket: 2^26 floats = 256 MiB. Above this, direct heap.
  static constexpr int kMaxBucketLog2 = 26;

  static BufferPool& Instance();

  /// Returns storage for at least `numel` floats and writes the bucket id to
  /// `*bucket` (-1 for oversize direct allocations). `numel == 0` returns
  /// nullptr and touches no counters. Contents are unspecified.
  float* Acquire(int64_t numel, int* bucket);

  /// Returns a Acquire'd buffer. `bucket` and `numel` must be the values the
  /// matching Acquire produced. Pooled buckets park in the freelist; direct
  /// allocations (and all buffers while the pool is disabled) are freed.
  void Release(float* ptr, int bucket, int64_t numel);

  /// Capacity in floats that `Acquire(numel, ...)` would actually reserve.
  static int64_t BucketCapacity(int64_t numel);

  PoolStats Snapshot() const;

  /// Resets `peak_live_bytes` to the current `live_bytes` (scoped peak
  /// measurements around a workload).
  void ResetPeak();

  /// Frees every cached buffer. Live buffers are unaffected.
  void Trim();

  bool enabled() const;

  /// Overrides the TSFM_DISABLE_POOL setting for this process. Test/bench
  /// only: lets one binary compare pooled vs unpooled behaviour in-process.
  /// Disabling does not flush existing freelists (call Trim for that), but
  /// buffers released while disabled go straight back to the heap.
  void SetEnabledForTesting(bool enabled);

 private:
  BufferPool();
  ~BufferPool() = delete;  // process-lifetime singleton

  mutable std::mutex mu_;
  bool enabled_;
  PoolStats stats_;
  // freelists_[i] holds buffers of exactly 2^(kMinBucketLog2 + i) floats.
  std::vector<std::vector<float*>> freelists_;
};

/// RAII storage handle used by `Tensor`: capacity comes from the BufferPool
/// on construction and returns to it on destruction. Shared between all
/// tensors viewing the same storage via std::shared_ptr<TensorBuffer>.
class TensorBuffer {
 public:
  /// Allocates capacity for `numel` floats (contents unspecified).
  explicit TensorBuffer(int64_t numel);
  ~TensorBuffer();

  TensorBuffer(const TensorBuffer&) = delete;
  TensorBuffer& operator=(const TensorBuffer&) = delete;

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  int64_t numel() const { return numel_; }

 private:
  float* ptr_;
  int64_t numel_;
  int bucket_;
};

/// Registers the pool's counters with obs::Registry as a snapshot provider
/// (names "pool.acquires", "pool.live_bytes", ... matching PoolStats fields)
/// plus a reset-peak hook wired to BufferPool::ResetPeak. Idempotent; called
/// automatically when the pool is first constructed, and explicitly by code
/// (resources::MeasurePeak) that reads pool.* from the registry and must not
/// depend on a tensor having been allocated first.
void RegisterPoolMetrics();

}  // namespace tsfm::memory

#endif  // TSFM_MEMORY_BUFFER_POOL_H_
