#ifndef TSFM_OPTIM_OPTIM_H_
#define TSFM_OPTIM_OPTIM_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace tsfm::optim {

/// Base class for gradient-descent optimizers over a fixed parameter list.
/// Usage per step: forward, `loss.Backward()`, `Step()`, `ZeroGrad()`.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently on the parameters.
  virtual void Step() = 0;

  /// Clears gradient accumulators on all parameters.
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t step_count() const { return step_count_; }

 protected:
  std::vector<ag::Var> params_;
  float lr_;
  int64_t step_count_ = 0;
};

/// Stochastic gradient descent with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015); `weight_decay` is the classic L2 form added to
/// the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 protected:
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  bool decoupled_ = false;  // AdamW-style decay when true
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter, 2019).
class AdamW : public Adam {
 public:
  AdamW(std::vector<ag::Var> params, float lr, float beta1 = 0.9f,
        float beta2 = 0.999f, float epsilon = 1e-8f,
        float weight_decay = 0.01f);
};

/// Clips the global L2 norm of all parameter gradients to `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm);

/// Cosine learning-rate schedule with linear warmup. Returns the multiplier
/// in (0, 1] for training step `step` of `total_steps`.
float CosineSchedule(int64_t step, int64_t total_steps, int64_t warmup_steps);

}  // namespace tsfm::optim

#endif  // TSFM_OPTIM_OPTIM_H_
