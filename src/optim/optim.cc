#include "optim/optim.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "tensor/ops.h"

namespace tsfm::optim {

Optimizer::Optimizer(std::vector<ag::Var> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) {
    TSFM_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameters must require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Var> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Sgd::Step() {
  ++step_count_;
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    Tensor g = p.grad();
    Tensor value = p.value().Clone();
    float* pv = value.mutable_data();
    float* pvel = velocity_[i].mutable_data();
    const float* pg = g.data();
    const int64_t n = value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = pg[j] + weight_decay_ * pv[j];
      if (momentum_ > 0.0f) {
        pvel[j] = momentum_ * pvel[j] + grad;
        grad = pvel[j];
      }
      pv[j] -= lr_ * grad;
    }
    p.SetValue(std::move(value));
  }
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float epsilon, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float t = static_cast<float>(step_count_);
  const float bias1 = 1.0f - std::pow(beta1_, t);
  const float bias2 = 1.0f - std::pow(beta2_, t);
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    Tensor g = p.grad();
    Tensor value = p.value().Clone();
    float* pv = value.mutable_data();
    float* pm = m_[i].mutable_data();
    float* pvv = v_[i].mutable_data();
    const float* pg = g.data();
    const int64_t n = value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = pg[j];
      if (!decoupled_) grad += weight_decay_ * pv[j];
      pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * grad;
      pvv[j] = beta2_ * pvv[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = pm[j] / bias1;
      const float vhat = pvv[j] / bias2;
      float update = mhat / (std::sqrt(vhat) + epsilon_);
      if (decoupled_) update += weight_decay_ * pv[j];
      pv[j] -= lr_ * update;
    }
    p.SetValue(std::move(value));
  }
}

AdamW::AdamW(std::vector<ag::Var> params, float lr, float beta1, float beta2,
             float epsilon, float weight_decay)
    : Adam(std::move(params), lr, beta1, beta2, epsilon, weight_decay) {
  decoupled_ = true;
}

float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm) {
  TSFM_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const auto& p : params) {
    const Tensor g = p.grad();
    const float n = Norm(g);
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (const auto& p : params) {
      if (!p.node()->has_grad) continue;
      Tensor& g = p.node()->grad;
      float* pg = g.mutable_data();
      for (int64_t i = 0; i < g.numel(); ++i) pg[i] *= scale;
    }
  }
  return norm;
}

float CosineSchedule(int64_t step, int64_t total_steps, int64_t warmup_steps) {
  TSFM_CHECK_GT(total_steps, 0);
  if (warmup_steps > 0 && step < warmup_steps) {
    return static_cast<float>(step + 1) / static_cast<float>(warmup_steps);
  }
  const double progress =
      static_cast<double>(step - warmup_steps) /
      std::max<double>(1.0, static_cast<double>(total_steps - warmup_steps));
  return static_cast<float>(0.5 * (1.0 + std::cos(M_PI * std::min(1.0, progress))));
}

}  // namespace tsfm::optim
