#ifndef TSFM_OBS_BUDGET_H_
#define TSFM_OBS_BUDGET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace tsfm::obs {

/// A resource envelope for one run, mirroring the paper's testbed cap
/// (V100: 32 GB, 2 hours). A limit of 0 means unbounded on that axis.
struct BudgetLimits {
  double mem_bytes = 0;
  double time_seconds = 0;
  /// Fraction of either limit at which the monitor warns once on stderr
  /// before the hard cap aborts the run.
  double soft_fraction = 0.8;
};

/// Outcome of comparing a run's usage against a budget. Memory is judged
/// before time, matching the cost model's COM-before-TO convention.
struct BudgetVerdict {
  enum class Kind { kFits, kExceedsMemory, kExceedsTime };
  Kind kind = Kind::kFits;
  double mem_used_bytes = 0;
  double time_used_seconds = 0;
  double mem_budget_bytes = 0;     // 0 = unbounded
  double time_budget_seconds = 0;  // 0 = unbounded
  /// Remaining budget as a percentage of the limit (negative when over);
  /// 100 when the axis is unbounded.
  double mem_headroom_pct = 100.0;
  double time_headroom_pct = 100.0;

  bool fits() const { return kind == Kind::kFits; }
};

/// "fits", "exceeds_memory" or "exceeds_time" (the run-report vocabulary).
const char* BudgetVerdictName(BudgetVerdict::Kind kind);

/// Pure judgment of `mem_used_bytes` / `time_used_seconds` against `limits`.
/// Used by run reports and `tsfm estimate`; involves no monitor state.
BudgetVerdict JudgeBudget(const BudgetLimits& limits, double mem_used_bytes,
                          double time_used_seconds);

/// Installs `limits` as the process-wide live budget and arms the monitor
/// (clock restarted, warn/trip latches cleared, allocator peak reset to the
/// current live bytes). Limits of {0, 0} are accepted but never trip.
void SetBudget(const BudgetLimits& limits);

/// Removes the budget; CheckBudget becomes a single relaxed atomic load.
void ClearBudget();

/// True when SetBudget installed a budget with at least one non-zero limit.
bool BudgetConfigured();

BudgetLimits CurrentBudget();

/// Restarts the monitored window (clock, latches, allocator peak) without
/// changing the limits. Called at the start of each fine-tune run so the
/// budget covers that run, not the process.
void BeginBudgetRun();

/// Seconds since the monitored window started.
double BudgetElapsedSeconds();

/// Polls the budget: reads the allocator's peak live bytes through the
/// metrics registry and the elapsed wall-clock, warns once on stderr past
/// the soft threshold, and past a hard cap latches and returns
/// ResourceExhausted with a diagnosis (usage vs budget plus the top spans
/// from the current trace, when one is being recorded). With no budget
/// configured this is one relaxed atomic load. Once tripped, every
/// subsequent call returns the same error — callers at any loop level can
/// poll and propagate. `where` names the calling loop in the diagnosis.
Status CheckBudget(const char* where);

/// True once CheckBudget has latched a hard-cap violation in this window.
bool BudgetTripped();

}  // namespace tsfm::obs

#endif  // TSFM_OBS_BUDGET_H_
