#ifndef TSFM_OBS_RUN_REPORT_H_
#define TSFM_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/budget.h"

namespace tsfm::obs {

/// One finished training epoch in a run report's timeline.
struct RunReportEpoch {
  int64_t epoch = 0;
  std::string phase;  // "head" or "joint"
  double loss = 0;
  double accuracy = 0;         // training accuracy over the epoch's batches
  double seconds = 0;
  double pool_live_bytes = 0;  // allocator capacity live at epoch end
};

/// Wall-clock of one pipeline stage (normalize/adapt/embed/head) aggregated
/// over a run's passes, for the report's per-stage timing section.
struct RunReportStage {
  std::string stage;
  double seconds = 0;
};

/// Structured manifest of one fine-tune run: configuration, per-epoch
/// timeline, measured allocator footprint, final result, the paper-scale
/// resource prediction for the same (model, adapter, regime), and the budget
/// verdict. Deliberately made of plain strings/doubles so the obs layer
/// stays a leaf — the finetune/experiments layers fill it in.
struct RunReport {
  std::string command = "classify";  // producing surface ("classify", ...)
  std::string model;                 // scaled model family ("moment", "vit")
  std::string adapter;               // adapter label ("PCA", "none", ...)
  std::string strategy;              // fine-tune strategy name
  int64_t dprime = 0;                // adapter output channels (0 = none)

  /// Hyper-parameters, values pre-rendered as JSON literals ("60", "0.05",
  /// "true") so the writer can emit them typed without a JSON library.
  std::vector<std::pair<std::string, std::string>> options;

  std::vector<RunReportEpoch> epochs;

  /// Per-stage wall-clock of the run's pipeline passes; empty when the run
  /// predates the pipeline layer or no timings were collected.
  std::vector<RunReportStage> stages;

  // measured_memory: resources::MeasuredMemory of the run.
  double mem_baseline_bytes = 0;
  double mem_peak_bytes = 0;
  double mem_acquires = 0;
  double mem_pool_hits = 0;
  double mem_heap_allocs = 0;

  // execution: how the encoder forwards ran (graph mode vs eager, plus the
  // graph subsystem's counters at report time).
  bool graph_enabled = false;
  std::string embed_mode = "eager";  // "graph" | "eager" | "cache"
  double graph_captures = 0;
  double graph_executions = 0;
  double graph_eager_fallbacks = 0;
  double graph_fused_ops = 0;
  double graph_peak_bytes = 0;

  // result: finetune::FineTuneResult of the run.
  double train_accuracy = 0;
  double test_accuracy = 0;
  double final_loss = 0;
  double adapter_fit_seconds = 0;
  double train_seconds = 0;
  double total_seconds = 0;

  // estimate: paper-scale resources::EstimateRun for the same configuration.
  bool has_estimate = false;
  std::string estimate_model;    // paper model name ("MOMENT", "ViT")
  std::string estimate_regime;   // TrainRegimeName
  std::string estimate_verdict;  // VerdictString ("OK", "COM", "TO")
  int64_t estimate_channels = 0;
  std::vector<std::pair<std::string, double>> estimate_values;

  /// Verdict of the measured run against the user's live budget (trivially
  /// "fits" with 100% headroom when no budget was configured).
  BudgetVerdict budget;
};

/// The report as a JSON document (schema_version 1; validated by
/// tools/check_report.py).
std::string RenderRunReportJson(const RunReport& report);

/// Creates `dir` if needed and writes the report to a fresh
/// `run_report_<n>.json` inside it. Returns the written path.
Result<std::string> WriteRunReport(const RunReport& report,
                                   const std::string& dir);

/// Value of TSFM_RUN_REPORT (the report directory), or "" when unset.
std::string RunReportDirFromEnv();

/// Starts a sampler thread that appends one flat JSON line
/// {"t_ms":..., "<metric>":..., ...} of the full metrics snapshot to `path`
/// every `interval_ms`. One sampler per process; returns FailedPrecondition
/// if one is already running.
Status StartMetricsTimeline(const std::string& path, int interval_ms);

/// Stops and joins the sampler thread after a final sample. No-op when no
/// sampler is running.
void StopMetricsTimeline();

/// TSFM_METRICS_TIMELINE=path[,interval_ms] (default interval 200 ms):
/// starts the sampler and registers an atexit StopMetricsTimeline.
/// Idempotent.
void InstallMetricsTimelineFromEnv();

}  // namespace tsfm::obs

#endif  // TSFM_OBS_RUN_REPORT_H_
