#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/run_report.h"

namespace tsfm::obs {

namespace {

// Bucket index for value `v` (clamped to the table edges).
int BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the lowest bucket
  int exp = 0;
  std::frexp(v, &exp);
  // frexp returns v = m * 2^exp with m in [0.5, 1), so the lower bound of
  // the containing power-of-two interval is 2^(exp-1).
  const int i = (exp - 1) - Histogram::kMinExp;
  if (i < 0) return 0;
  if (i >= Histogram::kNumBuckets) return Histogram::kNumBuckets - 1;
  return i;
}

void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  // Extrema take a mutex, but only when the current observation actually
  // extends the range — steady-state observations skip it entirely.
  if (!has_extrema_.load(std::memory_order_acquire) ||
      v < min_.load(std::memory_order_relaxed) ||
      v > max_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(extrema_mu_);
    if (!has_extrema_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
      max_.store(v, std::memory_order_relaxed);
      has_extrema_.store(true, std::memory_order_release);
    } else {
      if (v < min_.load(std::memory_order_relaxed)) {
        min_.store(v, std::memory_order_relaxed);
      }
      if (v > max_.load(std::memory_order_relaxed)) {
        max_.store(v, std::memory_order_relaxed);
      }
    }
  }
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::BucketLowerBound(int i) {
  return std::ldexp(1.0, kMinExp + i);
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 1.0) return max();
  const double target = p * static_cast<double>(n);
  double cum = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (cum + static_cast<double>(c) >= target) {
      // Linear interpolation inside the bucket, clamped to observed extrema
      // so single-bucket histograms report exact-ish values.
      const double lo = std::max(BucketLowerBound(i), min());
      const double hi = std::min(BucketLowerBound(i + 1), max());
      const double frac = (target - cum) / static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    cum += static_cast<double>(c);
  }
  return max();
}

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  static bool exit_dump_installed = (InstallExitDumpFromEnv(), true);
  (void)exit_dump_installed;
  static bool timeline_installed = (InstallMetricsTimelineFromEnv(), true);
  (void)timeline_installed;
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TSFM_CHECK(gauges_.find(name) == gauges_.end() &&
             histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another type";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TSFM_CHECK(counters_.find(name) == counters_.end() &&
             histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another type";
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TSFM_CHECK(counters_.find(name) == counters_.end() &&
             gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered with another type";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return it->second.get();
}

void Registry::RegisterProvider(const std::string& name,
                                std::function<void(Snapshot*)> fn,
                                std::function<void()> reset_peak) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = Provider{std::move(fn), std::move(reset_peak)};
}

Snapshot Registry::TakeSnapshot() const {
  // Copy the callbacks out so provider bodies run unlocked (a provider may
  // itself take a subsystem lock, e.g. the BufferPool's).
  std::vector<std::function<void(Snapshot*)>> provider_fns;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      snap[name] = static_cast<double>(c->value());
    }
    for (const auto& [name, g] : gauges_) {
      snap[name] = g->value();
    }
    for (const auto& [name, h] : histograms_) {
      snap[name + ".count"] = static_cast<double>(h->count());
      snap[name + ".sum"] = h->sum();
      if (h->count() > 0) {
        snap[name + ".p50"] = h->Percentile(0.5);
        snap[name + ".p99"] = h->Percentile(0.99);
        snap[name + ".max"] = h->max();
      }
    }
    provider_fns.reserve(providers_.size());
    for (const auto& [name, p] : providers_) provider_fns.push_back(p.fn);
  }
  for (const auto& fn : provider_fns) {
    if (fn) fn(&snap);
  }
  return snap;
}

void Registry::ResetPeaks() const {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, p] : providers_) {
      if (p.reset_peak) hooks.push_back(p.reset_peak);
    }
  }
  for (const auto& hook : hooks) hook();
}

std::string Registry::RenderText() const {
  const Snapshot snap = TakeSnapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snap) {
    // Integral values print without a fraction so counter dumps stay clean.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
      os << name << " " << static_cast<int64_t>(value) << "\n";
    } else {
      os << name << " " << value << "\n";
    }
  }
  return os.str();
}

namespace {

void DumpMetricsAtExit() {
  const char* env = std::getenv("TSFM_METRICS");
  if (env == nullptr || env[0] == '\0') return;
  const std::string dest(env);
  const std::string text = Registry::Instance().RenderText();
  if (dest == "stdout") {
    std::fputs(text.c_str(), stdout);
  } else if (dest == "stderr" || dest == "1") {
    std::fputs(text.c_str(), stderr);
  } else {
    std::ofstream os(dest, std::ios::trunc);
    if (os) os << text;
  }
}

}  // namespace

void InstallExitDumpFromEnv() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  const char* env = std::getenv("TSFM_METRICS");
  if (env != nullptr && env[0] != '\0') std::atexit(DumpMetricsAtExit);
}

}  // namespace tsfm::obs
