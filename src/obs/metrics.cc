#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/rolling.h"
#include "obs/run_report.h"

namespace tsfm::obs {

namespace {

void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// Integral values print without a fraction so counter dumps stay clean.
std::string FormatMetricValue(double value) {
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the lowest bucket
  int exp = 0;
  std::frexp(v, &exp);
  // frexp returns v = m * 2^exp with m in [0.5, 1), so the lower bound of
  // the containing power-of-two interval is 2^(exp-1).
  const int i = (exp - 1) - kMinExp;
  if (i < 0) return 0;
  if (i >= kNumBuckets) return kNumBuckets - 1;
  return i;
}

std::string LabeledName(
    const std::string& base,
    std::initializer_list<std::pair<const char*, std::string>> labels) {
  if (labels.size() == 0) return base;
  std::string out = base;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::string SuffixedMetricName(const std::string& name,
                               const std::string& suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  // Extrema take a mutex, but only when the current observation actually
  // extends the range — steady-state observations skip it entirely.
  if (!has_extrema_.load(std::memory_order_acquire) ||
      v < min_.load(std::memory_order_relaxed) ||
      v > max_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(extrema_mu_);
    if (!has_extrema_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
      max_.store(v, std::memory_order_relaxed);
      has_extrema_.store(true, std::memory_order_release);
    } else {
      if (v < min_.load(std::memory_order_relaxed)) {
        min_.store(v, std::memory_order_relaxed);
      }
      if (v > max_.load(std::memory_order_relaxed)) {
        max_.store(v, std::memory_order_relaxed);
      }
    }
  }
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::BucketLowerBound(int i) {
  return std::ldexp(1.0, kMinExp + i);
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 1.0) return max();
  const double target = p * static_cast<double>(n);
  double cum = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (cum + static_cast<double>(c) >= target) {
      // Linear interpolation inside the bucket, clamped to observed extrema
      // so single-bucket histograms report exact-ish values.
      const double lo = std::max(BucketLowerBound(i), min());
      const double hi = std::min(BucketLowerBound(i + 1), max());
      const double frac = (target - cum) / static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    cum += static_cast<double>(c);
  }
  return max();
}

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  static bool exit_dump_installed = (InstallExitDumpFromEnv(), true);
  (void)exit_dump_installed;
  static bool timeline_installed = (InstallMetricsTimelineFromEnv(), true);
  (void)timeline_installed;
  return *registry;
}

Registry::~Registry() = default;

void Registry::CheckTypeUniqueLocked(const std::string& name,
                                     const void* self) const {
  const bool clash =
      (self != &counters_ && counters_.count(name) > 0) ||
      (self != &gauges_ && gauges_.count(name) > 0) ||
      (self != &histograms_ && histograms_.count(name) > 0) ||
      (self != &rolling_counters_ && rolling_counters_.count(name) > 0) ||
      (self != &rolling_histograms_ && rolling_histograms_.count(name) > 0);
  TSFM_CHECK(!clash) << "metric '" << name
                     << "' already registered with another type";
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckTypeUniqueLocked(name, &counters_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckTypeUniqueLocked(name, &gauges_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckTypeUniqueLocked(name, &histograms_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return it->second.get();
}

RollingCounter* Registry::GetRollingCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckTypeUniqueLocked(name, &rolling_counters_);
  auto it = rolling_counters_.find(name);
  if (it == rolling_counters_.end()) {
    it = rolling_counters_
             .emplace(name,
                      std::unique_ptr<RollingCounter>(new RollingCounter()))
             .first;
  }
  return it->second.get();
}

RollingHistogram* Registry::GetRollingHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckTypeUniqueLocked(name, &rolling_histograms_);
  auto it = rolling_histograms_.find(name);
  if (it == rolling_histograms_.end()) {
    it = rolling_histograms_
             .emplace(name, std::unique_ptr<RollingHistogram>(
                                new RollingHistogram()))
             .first;
  }
  return it->second.get();
}

void Registry::RegisterProvider(const std::string& name,
                                std::function<void(Snapshot*)> fn,
                                std::function<void()> reset_peak) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = Provider{std::move(fn), std::move(reset_peak)};
}

Snapshot Registry::TakeSnapshot() const {
  // Copy the callbacks out so provider bodies run unlocked (a provider may
  // itself take a subsystem lock, e.g. the BufferPool's).
  std::vector<std::function<void(Snapshot*)>> provider_fns;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      snap[name] = static_cast<double>(c->value());
    }
    for (const auto& [name, g] : gauges_) {
      snap[name] = g->value();
    }
    for (const auto& [name, h] : histograms_) {
      snap[SuffixedMetricName(name, ".count")] =
          static_cast<double>(h->count());
      snap[SuffixedMetricName(name, ".sum")] = h->sum();
      if (h->count() > 0) {
        snap[SuffixedMetricName(name, ".p50")] = h->Percentile(0.5);
        snap[SuffixedMetricName(name, ".p99")] = h->Percentile(0.99);
        snap[SuffixedMetricName(name, ".max")] = h->max();
      }
    }
    for (const auto& [name, c] : rolling_counters_) {
      snap[name] = static_cast<double>(c->value());
      snap[SuffixedMetricName(name, ".window.count")] =
          static_cast<double>(c->WindowCount());
      snap[SuffixedMetricName(name, ".window.rate")] = c->WindowRatePerSec();
    }
    for (const auto& [name, h] : rolling_histograms_) {
      snap[SuffixedMetricName(name, ".count")] =
          static_cast<double>(h->count());
      snap[SuffixedMetricName(name, ".sum")] = h->sum();
      if (h->count() > 0) {
        snap[SuffixedMetricName(name, ".p50")] = h->Percentile(0.5);
        snap[SuffixedMetricName(name, ".p99")] = h->Percentile(0.99);
        snap[SuffixedMetricName(name, ".max")] = h->max();
      }
      snap[SuffixedMetricName(name, ".window.count")] =
          static_cast<double>(h->WindowCount());
      if (h->WindowCount() > 0) {
        snap[SuffixedMetricName(name, ".window.p50")] =
            h->WindowPercentile(0.5);
        snap[SuffixedMetricName(name, ".window.p95")] =
            h->WindowPercentile(0.95);
        snap[SuffixedMetricName(name, ".window.p99")] =
            h->WindowPercentile(0.99);
      }
    }
    provider_fns.reserve(providers_.size());
    for (const auto& [name, p] : providers_) provider_fns.push_back(p.fn);
  }
  for (const auto& fn : provider_fns) {
    if (fn) fn(&snap);
  }
  return snap;
}

void Registry::ResetPeaks() const {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, p] : providers_) {
      if (p.reset_peak) hooks.push_back(p.reset_peak);
    }
  }
  for (const auto& hook : hooks) hook();
}

std::string Registry::RenderText() const {
  const Snapshot snap = TakeSnapshot();
  std::ostringstream os;
  // The snapshot is a std::map, so this dump is inherently sorted by metric
  // name — stable output for diffs and CI greps.
  for (const auto& [name, value] : snap) {
    os << name << " " << FormatMetricValue(value) << "\n";
  }
  return os.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (our dots)
// becomes an underscore, under a `tsfm_` namespace prefix.
std::string MangleFamily(const std::string& base) {
  std::string out = "tsfm_";
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Splits "name{k=\"v\"}" into the base name and the label list (without
// braces; empty when the name carries no labels).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

// Joins a label list with one extra label into a rendered label block.
std::string LabelBlock(const std::string& labels, const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  if (labels.empty()) return "{" + extra + "}";
  if (extra.empty()) return "{" + labels + "}";
  return "{" + labels + "," + extra + "}";
}

struct PromFamily {
  std::string type;
  std::vector<std::string> lines;
};

void AddSample(std::map<std::string, PromFamily>* families,
               const std::string& family, const std::string& type,
               const std::string& label_block, double value) {
  PromFamily& f = (*families)[family];
  if (f.type.empty()) f.type = type;
  f.lines.push_back(family + label_block + " " + FormatMetricValue(value));
}

// Emits one histogram family from a bucket-count reader: cumulative
// `_bucket{le=...}` series (ascending, +Inf last), `_sum`, `_count`. The
// +Inf bucket and _count both use the sum of the bucket loads so the
// exposition invariant (bucket counts monotone, +Inf == _count) holds even
// while writers race the render.
template <typename BucketFn>
void AddHistogramFamily(std::map<std::string, PromFamily>* families,
                        const std::string& name, BucketFn bucket_count,
                        double sum) {
  std::string base, labels;
  SplitLabels(name, &base, &labels);
  const std::string family = MangleFamily(base);
  PromFamily& f = (*families)[family];
  f.type = "histogram";
  uint64_t cum = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t c = bucket_count(i);
    if (c == 0) continue;
    cum += c;
    char le[64];
    std::snprintf(le, sizeof(le), "le=\"%.9g\"",
                  Histogram::BucketLowerBound(i + 1));
    f.lines.push_back(family + "_bucket" + LabelBlock(labels, le) + " " +
                      std::to_string(cum));
  }
  f.lines.push_back(family + "_bucket" + LabelBlock(labels, "le=\"+Inf\"") +
                    " " + std::to_string(cum));
  f.lines.push_back(family + "_sum" + LabelBlock(labels, "") + " " +
                    FormatMetricValue(sum));
  f.lines.push_back(family + "_count" + LabelBlock(labels, "") + " " +
                    std::to_string(cum));
}

void AddGaugeSample(std::map<std::string, PromFamily>* families,
                    const std::string& name, const std::string& suffix,
                    double value) {
  std::string base, labels;
  SplitLabels(name, &base, &labels);
  AddSample(families, MangleFamily(base) + suffix, "gauge",
            LabelBlock(labels, ""), value);
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  std::map<std::string, PromFamily> families;
  std::vector<std::function<void(Snapshot*)>> provider_fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      std::string base, labels;
      SplitLabels(name, &base, &labels);
      AddSample(&families, MangleFamily(base) + "_total", "counter",
                LabelBlock(labels, ""),
                static_cast<double>(c->value()));
    }
    for (const auto& [name, c] : rolling_counters_) {
      std::string base, labels;
      SplitLabels(name, &base, &labels);
      AddSample(&families, MangleFamily(base) + "_total", "counter",
                LabelBlock(labels, ""),
                static_cast<double>(c->value()));
      AddGaugeSample(&families, name, "_window_count",
                     static_cast<double>(c->WindowCount()));
      AddGaugeSample(&families, name, "_window_rate", c->WindowRatePerSec());
    }
    for (const auto& [name, g] : gauges_) {
      AddGaugeSample(&families, name, "", g->value());
    }
    for (const auto& [name, h] : histograms_) {
      AddHistogramFamily(
          &families, name, [&](int i) { return h->BucketCount(i); },
          h->sum());
    }
    for (const auto& [name, h] : rolling_histograms_) {
      AddHistogramFamily(
          &families, name,
          [&](int i) { return h->CumulativeBucketCount(i); }, h->sum());
      AddGaugeSample(&families, name, "_window_count",
                     static_cast<double>(h->WindowCount()));
      AddGaugeSample(&families, name, "_window_p50",
                     h->WindowPercentile(0.5));
      AddGaugeSample(&families, name, "_window_p95",
                     h->WindowPercentile(0.95));
      AddGaugeSample(&families, name, "_window_p99",
                     h->WindowPercentile(0.99));
    }
    provider_fns.reserve(providers_.size());
    for (const auto& [name, p] : providers_) provider_fns.push_back(p.fn);
  }
  // Providers contribute flat snapshot values; each renders as one gauge.
  Snapshot provided;
  for (const auto& fn : provider_fns) {
    if (fn) fn(&provided);
  }
  for (const auto& [name, value] : provided) {
    AddGaugeSample(&families, name, "", value);
  }

  std::ostringstream os;
  for (const auto& [family, f] : families) {
    os << "# TYPE " << family << " "
       << (f.type.empty() ? "untyped" : f.type) << "\n";
    for (const std::string& line : f.lines) os << line << "\n";
  }
  return os.str();
}

namespace {

void DumpMetricsAtExit() {
  const char* env = std::getenv("TSFM_METRICS");
  if (env == nullptr || env[0] == '\0') return;
  const std::string dest(env);
  const std::string text = Registry::Instance().RenderText();
  if (dest == "stdout") {
    std::fputs(text.c_str(), stdout);
  } else if (dest == "stderr" || dest == "1") {
    std::fputs(text.c_str(), stderr);
  } else {
    std::ofstream os(dest, std::ios::trunc);
    if (os) os << text;
  }
}

}  // namespace

void InstallExitDumpFromEnv() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  const char* env = std::getenv("TSFM_METRICS");
  if (env != nullptr && env[0] != '\0') std::atexit(DumpMetricsAtExit);
}

}  // namespace tsfm::obs
