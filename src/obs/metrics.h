#ifndef TSFM_OBS_METRICS_H_
#define TSFM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tsfm::obs {

/// Monotonic counter. `Add` is a single relaxed atomic fetch-add, safe to
/// call from any thread (including inside ParallelFor chunks); because each
/// increment is an atomic RMW, the total over a parallel region is exact and
/// independent of the thread count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (doubles, e.g. a loss or a rate).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Lock-free histogram over positive doubles with base-2 exponential
/// buckets: bucket i holds observations whose binary exponent is
/// kMinExp + i, i.e. values in [2^(kMinExp+i), 2^(kMinExp+i+1)). The range
/// [2^-32, 2^32) covers nanoseconds-as-seconds through years; out-of-range
/// and non-positive observations clamp to the edge buckets. `Observe` is a
/// handful of relaxed atomics — cheap enough for per-batch timings, not
/// meant for per-element use.
class Histogram {
 public:
  static constexpr int kMinExp = -32;
  static constexpr int kNumBuckets = 64;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;

  /// Estimated value at quantile `p` in [0, 1]: finds the bucket where the
  /// cumulative count crosses p * count and interpolates linearly inside it.
  /// Exact min/max are returned for p == 0 / p == 1; mid-quantiles are
  /// accurate to within one bucket (a factor of 2 in value).
  double Percentile(double p) const;

  /// Lower bound of bucket `i` (exposed for tests of the percentile math).
  static double BucketLowerBound(int i);

  /// Bucket index for value `v`, clamped to the table edges (shared with the
  /// rolling-window histograms so both sides bucket identically).
  static int BucketIndex(double v);

  /// Observation count in bucket `i` (Prometheus exposition reads these).
  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Histogram() = default;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_extrema_{false};
  mutable std::mutex extrema_mu_;  // min/max update path only
};

class RollingCounter;
class RollingHistogram;

/// One flattened metric value in a snapshot. Histograms expand to several
/// entries (count / sum / p50 / p99 / max) so the snapshot stays a flat map.
/// Because the snapshot is a std::map, every rendering derived from it
/// (RenderText, RenderPrometheus) is sorted by name — stable for diffs and
/// CI greps.
using Snapshot = std::map<std::string, double>;

// ---------------------------------------------------------------------------
// Metric names and labels. A metric name may carry a Prometheus-style label
// block as a suffix: `serve.request.latency{model="default",op="classify"}`.
// The registry treats the whole string as the key (two label sets are two
// metrics); RenderPrometheus splits the block back out so scrapers see real
// labels, and RenderText keeps the full string.

/// Appends `{k="v",...}` to `base`. Label values are escaped for the
/// Prometheus text format (backslash, quote, newline).
std::string LabeledName(
    const std::string& base,
    std::initializer_list<std::pair<const char*, std::string>> labels);

/// Inserts `suffix` before the label block (if any): ("a.b{x=\"1\"}", ".p99")
/// -> "a.b.p99{x=\"1\"}". Snapshot keys derived from labeled metrics use
/// this so the suffix stays part of the family name, not the labels.
std::string SuffixedMetricName(const std::string& name,
                               const std::string& suffix);

/// Process-wide metric registry. Metric objects are created on first lookup
/// and live for the process lifetime, so callers cache the returned pointer
/// (typically in a function-local static) and pay only the atomic op per
/// update — no map lookup, no lock — on the hot path.
///
/// Subsystems that keep their own internal counters (the BufferPool predates
/// this registry) register a *provider*: a callback that contributes named
/// values at snapshot time. Providers with peak-style values may also
/// register a reset-peak hook so scoped measurements (resources::MeasurePeak)
/// can restart the high-water mark through the registry.
class Registry {
 public:
  static Registry& Instance();

  /// Returns the counter registered under `name`, creating it on first use.
  /// Fatal if `name` is already registered as a different metric type.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Sliding-window variants (obs/rolling.h). A RollingCounter snapshots the
  /// same `name` key as a plain Counter plus `name.window.{count,rate}`; a
  /// RollingHistogram emits a plain Histogram's keys plus
  /// `name.window.{count,p50,p95,p99}` — so migrating a metric to its
  /// rolling variant never breaks an existing consumer of the old keys.
  RollingCounter* GetRollingCounter(const std::string& name);
  RollingHistogram* GetRollingHistogram(const std::string& name);

  /// Registers `fn` to contribute values to every snapshot. `reset_peak`
  /// (optional) is invoked by ResetPeaks. Re-registering the same provider
  /// name replaces the callbacks (idempotent registration).
  void RegisterProvider(const std::string& name,
                        std::function<void(Snapshot*)> fn,
                        std::function<void()> reset_peak = nullptr);

  /// Flat name -> value view of every registered metric and provider.
  Snapshot TakeSnapshot() const;

  /// Invokes every provider's reset-peak hook (e.g. the BufferPool's
  /// peak_live_bytes restart). Counters and histograms are unaffected.
  void ResetPeaks() const;

  /// Human-readable dump of TakeSnapshot(), one "name value" line per
  /// metric, sorted by name. Used by the CLI's --metrics flag and the
  /// TSFM_METRICS exit dump.
  std::string RenderText() const;

  /// Prometheus text exposition (version 0.0.4) of the whole registry:
  /// families are prefixed `tsfm_`, dots become underscores, label blocks in
  /// metric names become real labels, each family gets one `# TYPE` line,
  /// histograms emit cumulative `_bucket{le=...}` / `_sum` / `_count`
  /// series, rolling windows surface as `_window_*` gauges, and provider
  /// values render as gauges. Output is sorted by family then series. This
  /// is what the kMetricsRequest serve verb returns to scrapers.
  std::string RenderPrometheus() const;

 private:
  Registry() = default;
  ~Registry();  // defined out of line: rolling types are incomplete here

  struct Provider {
    std::function<void(Snapshot*)> fn;
    std::function<void()> reset_peak;
  };

  /// Fatal unless `name` is absent from every metric map except `self`.
  void CheckTypeUniqueLocked(const std::string& name, const void* self) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<RollingCounter>> rolling_counters_;
  std::map<std::string, std::unique_ptr<RollingHistogram>>
      rolling_histograms_;
  std::map<std::string, Provider> providers_;
};

/// If the TSFM_METRICS environment variable is set, installs an atexit hook
/// that dumps RenderText() to the named destination ("stderr", "stdout", or
/// a file path; "1" means stderr). Idempotent; called from the CLI and from
/// Registry::Instance() so any instrumented binary honours the variable.
void InstallExitDumpFromEnv();

}  // namespace tsfm::obs

#endif  // TSFM_OBS_METRICS_H_
