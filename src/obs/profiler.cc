#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace tsfm::obs {

namespace {

// Mutable aggregation state per stack path, finalized into ProfileNode.
struct NodeBuild {
  std::string name;
  std::string path;
  int depth = 0;
  int64_t calls = 0;
  int64_t total_ns = 0;
  int64_t child_ns = 0;
  std::vector<int64_t> durations;
};

int64_t PercentileOf(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(pos + 0.5)];
}

std::string FormatMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatUs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1e3);
  return buf;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

Profile Profile::FromEvents(const std::vector<TraceEvent>& events) {
  // Group event indices per tid; nesting only exists within one thread.
  std::map<int, std::vector<size_t>> by_tid;
  for (size_t i = 0; i < events.size(); ++i) {
    by_tid[events[i].tid].push_back(i);
  }

  std::map<std::string, NodeBuild> builds;
  for (auto& [tid, idx] : by_tid) {
    (void)tid;
    // Parents sort before their children: earlier start first, and on equal
    // starts the longer (enclosing) span first.
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      if (events[a].start_ns != events[b].start_ns) {
        return events[a].start_ns < events[b].start_ns;
      }
      return events[a].dur_ns > events[b].dur_ns;
    });

    struct Open {
      int64_t end_ns;
      std::string path;
    };
    std::vector<Open> stack;
    for (size_t i : idx) {
      const TraceEvent& e = events[i];
      const int64_t end_ns = e.start_ns + e.dur_ns;
      // Pop spans that closed before this one opened; what remains encloses
      // it. A span starting exactly when the previous one ends is a sibling.
      while (!stack.empty() && e.start_ns >= stack.back().end_ns) {
        stack.pop_back();
      }
      const std::string* parent = stack.empty() ? nullptr : &stack.back().path;
      std::string path =
          parent == nullptr ? std::string(e.name) : *parent + ";" + e.name;

      NodeBuild& node = builds[path];
      if (node.calls == 0) {
        node.name = e.name;
        node.path = path;
        node.depth = static_cast<int>(stack.size());
      }
      ++node.calls;
      node.total_ns += e.dur_ns;
      node.durations.push_back(e.dur_ns);
      if (parent != nullptr) builds[*parent].child_ns += e.dur_ns;
      stack.push_back(Open{end_ns, std::move(path)});
    }
  }

  // Finalize. `builds` is keyed by path, and ';' sorts before every
  // printable character used in span names, so map order is already
  // depth-first (parents precede children). Reorder siblings by total time
  // with an explicit DFS for readable output.
  std::map<std::string, std::vector<const NodeBuild*>> children;
  std::vector<const NodeBuild*> roots;
  for (auto& [path, b] : builds) {
    const size_t cut = path.rfind(';');
    if (cut == std::string::npos) {
      roots.push_back(&b);
    } else {
      children[path.substr(0, cut)].push_back(&b);
    }
  }
  auto by_total = [](const NodeBuild* a, const NodeBuild* b) {
    return a->total_ns > b->total_ns;
  };
  std::sort(roots.begin(), roots.end(), by_total);
  for (auto& [path, kids] : children) {
    (void)path;
    std::sort(kids.begin(), kids.end(), by_total);
  }

  Profile profile;
  profile.nodes_.reserve(builds.size());
  std::vector<const NodeBuild*> dfs(roots.rbegin(), roots.rend());
  while (!dfs.empty()) {
    const NodeBuild* b = dfs.back();
    dfs.pop_back();
    ProfileNode n;
    n.name = b->name;
    n.path = b->path;
    n.depth = b->depth;
    n.calls = b->calls;
    n.total_ns = b->total_ns;
    n.self_ns = std::max<int64_t>(0, b->total_ns - b->child_ns);
    std::vector<int64_t> sorted = b->durations;
    std::sort(sorted.begin(), sorted.end());
    n.min_ns = sorted.front();
    n.max_ns = sorted.back();
    n.p50_ns = PercentileOf(sorted, 0.5);
    n.p99_ns = PercentileOf(sorted, 0.99);
    profile.nodes_.push_back(std::move(n));
    auto it = children.find(b->path);
    if (it != children.end()) {
      for (auto kid = it->second.rbegin(); kid != it->second.rend(); ++kid) {
        dfs.push_back(*kid);
      }
    }
  }
  return profile;
}

Profile Profile::FromCurrentTrace() { return FromEvents(TraceSnapshot()); }

std::vector<ProfileNode> Profile::TopByTotal(int n) const {
  // Roll up by span name: the same op reached through different stacks (or
  // threads) is one line. Only root-relative totals are meaningful per node,
  // so sum total/self/calls and take the widest extrema.
  std::map<std::string, ProfileNode> by_name;
  for (const ProfileNode& node : nodes_) {
    ProfileNode& agg = by_name[node.name];
    if (agg.calls == 0) {
      agg = node;
      agg.path = node.name;
      agg.depth = 0;
    } else {
      agg.calls += node.calls;
      agg.total_ns += node.total_ns;
      agg.self_ns += node.self_ns;
      agg.min_ns = std::min(agg.min_ns, node.min_ns);
      agg.max_ns = std::max(agg.max_ns, node.max_ns);
    }
  }
  std::vector<ProfileNode> out;
  out.reserve(by_name.size());
  for (auto& [name, node] : by_name) {
    (void)name;
    out.push_back(std::move(node));
  }
  std::sort(out.begin(), out.end(), [](const ProfileNode& a,
                                       const ProfileNode& b) {
    return a.total_ns > b.total_ns;
  });
  if (n >= 0 && out.size() > static_cast<size_t>(n)) out.resize(n);
  return out;
}

std::string Profile::RenderText() const {
  std::ostringstream os;
  os << "  calls    total_ms     self_ms      min_us      p50_us      p99_us"
        "      max_us  span\n";
  for (const ProfileNode& n : nodes_) {
    char row[160];
    std::snprintf(row, sizeof(row),
                  "%7lld %11s %11s %11s %11s %11s %11s  ",
                  static_cast<long long>(n.calls), FormatMs(n.total_ns).c_str(),
                  FormatMs(n.self_ns).c_str(), FormatUs(n.min_ns).c_str(),
                  FormatUs(n.p50_ns).c_str(), FormatUs(n.p99_ns).c_str(),
                  FormatUs(n.max_ns).c_str());
    os << row;
    for (int i = 0; i < n.depth; ++i) os << "  ";
    os << n.name << "\n";
  }
  return os.str();
}

std::string Profile::RenderJson() const {
  std::string out = "{\"profile\":[";
  bool first = true;
  for (const ProfileNode& n : nodes_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"path\":\"";
    AppendJsonEscaped(&out, n.path);
    out += "\",\"name\":\"";
    AppendJsonEscaped(&out, n.name);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\",\"depth\":%d,\"calls\":%lld,\"total_ns\":%lld,"
                  "\"self_ns\":%lld,\"min_ns\":%lld,\"p50_ns\":%lld,"
                  "\"p99_ns\":%lld,\"max_ns\":%lld}",
                  n.depth, static_cast<long long>(n.calls),
                  static_cast<long long>(n.total_ns),
                  static_cast<long long>(n.self_ns),
                  static_cast<long long>(n.min_ns),
                  static_cast<long long>(n.p50_ns),
                  static_cast<long long>(n.p99_ns),
                  static_cast<long long>(n.max_ns));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

std::string Profile::RenderCollapsed() const {
  std::ostringstream os;
  for (const ProfileNode& n : nodes_) {
    const int64_t self_us = n.self_ns / 1000;
    if (self_us <= 0) continue;
    os << n.path << " " << self_us << "\n";
  }
  return os.str();
}

bool WriteProfile(const Profile& profile, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  auto ends_with = [&](const char* suffix) {
    const size_t len = std::string(suffix).size();
    return path.size() >= len && path.compare(path.size() - len, len,
                                              suffix) == 0;
  };
  if (ends_with(".json")) {
    os << profile.RenderJson();
  } else if (ends_with(".folded")) {
    os << profile.RenderCollapsed();
  } else {
    os << profile.RenderText();
  }
  return static_cast<bool>(os);
}

namespace {

std::string& ProfileExitPath() {
  static std::string* path = new std::string();  // leaked: used at exit
  return *path;
}

void WriteProfileAtExit() {
  const std::string& path = ProfileExitPath();
  if (path.empty()) return;
  if (!WriteProfile(Profile::FromCurrentTrace(), path)) {
    std::fprintf(stderr, "profile: cannot write %s\n", path.c_str());
  }
}

}  // namespace

namespace internal {

void ArmProfileAtExit(const std::string& path) {
  static bool armed = false;
  if (armed || path.empty()) return;
  armed = true;
  ProfileExitPath() = path;
  std::atexit(WriteProfileAtExit);
}

}  // namespace internal

void InstallProfileFromEnv() {
  const char* env = std::getenv("TSFM_PROFILE");
  if (env == nullptr || env[0] == '\0') return;
  internal::ArmProfileAtExit(env);
  EnableTracing();
}

}  // namespace tsfm::obs
