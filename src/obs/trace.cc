#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace tsfm::obs {

namespace {

using Clock = std::chrono::steady_clock;

// Fixed-capacity event ring. 1<<18 events (~8 MiB) holds several seconds of
// op-level spans; older events are overwritten once full so a long run keeps
// its most recent window rather than growing without bound.
constexpr int64_t kRingCapacity = int64_t{1} << 18;

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::vector<TraceEvent> ring;
  int64_t next = 0;        // ring slot for the next event
  int64_t size = 0;        // number of valid events (<= kRingCapacity)
  int64_t dropped = 0;     // events that overwrote an older one
  Clock::time_point epoch = Clock::now();
  std::string exit_path;   // non-empty => atexit writer installed
};

TraceState& State() {
  static TraceState* s = new TraceState();  // leaked: spans may outlive main
  return *s;
}

std::atomic<int> g_next_tid{0};

int ThreadId() {
  thread_local int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local RequestContext g_request_context{};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              State().epoch)
      .count();
}

void WriteTraceAtExit() {
  TraceState& s = State();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    path = s.exit_path;
  }
  if (!path.empty()) WriteTrace(path);
}

// Publishes the trace buffer's own health to the metrics registry, so a
// snapshot (or the timeline sampler) shows whether the span window is
// complete: trace.events buffered, trace.dropped overwritten.
void RegisterTraceMetrics() {
  Registry::Instance().RegisterProvider("trace", [](Snapshot* snap) {
    (*snap)["trace.events"] = static_cast<double>(TraceEventCount());
    (*snap)["trace.dropped"] = static_cast<double>(TraceDroppedCount());
  });
}

// Resolves TSFM_TRACE / TSFM_PROFILE once: either variable enables recording
// and registers its exit-time writer. Returns the initial enabled state.
bool InitFromEnv() {
  RegisterTraceMetrics();
  bool enabled = false;
  if (const char* env = std::getenv("TSFM_PROFILE");
      env != nullptr && env[0] != '\0') {
    internal::ArmProfileAtExit(env);
    enabled = true;
  }
  if (const char* env = std::getenv("TSFM_TRACE");
      env != nullptr && env[0] != '\0') {
    TraceState& s = State();
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.exit_path = env;
    }
    std::atexit(WriteTraceAtExit);
    enabled = true;
  }
  if (enabled) State().enabled.store(true, std::memory_order_relaxed);
  return enabled;
}

std::atomic<bool>& EnabledFlag() {
  TraceState& s = State();
  static bool env_checked = (InitFromEnv(), true);
  (void)env_checked;
  return s.enabled;
}

void Record(const char* name, int64_t start_ns, int64_t dur_ns,
            RequestContext ctx) {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.ring.empty()) s.ring.resize(static_cast<size_t>(kRingCapacity));
  TraceEvent& e = s.ring[static_cast<size_t>(s.next)];
  e.name = name;
  e.tid = ThreadId();
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.trace_id = ctx.trace_id;
  e.batch_id = ctx.batch_id;
  s.next = (s.next + 1) % kRingCapacity;
  if (s.size < kRingCapacity) {
    ++s.size;
  } else {
    ++s.dropped;
  }
}

// The trace provider must exist even in processes that never touch the
// trace API before their first scrape: a server whose operator polls
// kMetricsRequest should see trace.events / trace.dropped (both 0) rather
// than a missing key. Static-init registration covers that; InitFromEnv
// re-registers idempotently.
const bool g_trace_metrics_registered = (RegisterTraceMetrics(), true);

}  // namespace

bool TraceEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

RequestContext CurrentContext() { return g_request_context; }

ContextScope::ContextScope(RequestContext ctx) : prev_(g_request_context) {
  g_request_context = ctx;
}

ContextScope::~ContextScope() { g_request_context = prev_; }

uint64_t NewTraceId() {
  // Seeded off the wall clock so ids from successive processes (e.g. a
  // client and a restarted server) almost never collide; uniqueness only
  // matters within one trace file.
  static std::atomic<uint64_t> next{[] {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now).count();
    return (static_cast<uint64_t>(us) << 16) | 1u;
  }()};
  uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  if (id == 0) id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int64_t TraceNowNs() { return NowNs(); }

void RecordSpan(const char* name, int64_t start_ns, int64_t dur_ns,
                RequestContext ctx) {
  if (!TraceEnabled()) return;
  Record(name, start_ns, dur_ns, ctx);
}

void EnableTracing() { EnabledFlag().store(true, std::memory_order_relaxed); }

void DisableTracing() { EnabledFlag().store(false, std::memory_order_relaxed); }

int64_t TraceEventCount() {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.size;
}

int64_t TraceDroppedCount() {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.dropped;
}

std::vector<TraceEvent> TraceSnapshot() {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(s.size));
  // Oldest event first: when the ring has wrapped, `next` points at it.
  const int64_t start = (s.size == kRingCapacity) ? s.next : 0;
  for (int64_t i = 0; i < s.size; ++i) {
    out.push_back(s.ring[static_cast<size_t>((start + i) % kRingCapacity)]);
  }
  return out;
}

void ClearTrace() {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.next = 0;
  s.size = 0;
  s.dropped = 0;
}

bool WriteTrace(const std::string& path) {
  // A full ring silently windows the trace; say so once per write so a
  // truncated file is never mistaken for the whole run.
  if (const int64_t dropped = TraceDroppedCount(); dropped > 0) {
    std::fprintf(stderr,
                 "trace: ring full, %lld oldest spans dropped — %s holds "
                 "only the most recent %lld events\n",
                 static_cast<long long>(dropped), path.c_str(),
                 static_cast<long long>(TraceEventCount()));
  }
  const std::vector<TraceEvent> events = TraceSnapshot();
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    // Chrome's Trace Event Format: complete events ("ph":"X") with ts/dur
    // in fractional microseconds. Request-scoped spans carry their ids in
    // "args" so one request's tree can be filtered out of a serving trace.
    char buf[384];
    if (e.trace_id != 0 || e.batch_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                    "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":%llu,"
                    "\"batch_id\":%llu}}",
                    e.name, e.tid, static_cast<double>(e.start_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0,
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<unsigned long long>(e.batch_id));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                    "\"ts\":%.3f,\"dur\":%.3f}",
                    e.name, e.tid, static_cast<double>(e.start_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0);
    }
    os << buf;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return static_cast<bool>(os);
}

TraceSpan::TraceSpan(const char* name)
    : name_(TraceEnabled() ? name : nullptr),
      start_ns_(name_ != nullptr ? NowNs() : 0) {}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  Record(name_, start_ns_, NowNs() - start_ns_, g_request_context);
}

}  // namespace tsfm::obs
