#include "obs/run_report.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/metrics.h"

namespace tsfm::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

void AppendKeyString(std::string* out, const char* key,
                     const std::string& value) {
  *out += "\"";
  *out += key;
  *out += "\":\"";
  AppendEscaped(out, value);
  *out += "\"";
}

void AppendKeyNumber(std::string* out, const char* key, double value) {
  char buf[64];
  // %.17g round-trips doubles; integral values render without a fraction.
  if (value == static_cast<int64_t>(value) &&
      std::abs(value) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, value);
  }
  *out += buf;
}

}  // namespace

std::string RenderRunReportJson(const RunReport& r) {
  std::string out = "{\n";
  out += "\"schema_version\":1,\n\"run\":{";
  AppendKeyString(&out, "command", r.command);
  out += ",";
  AppendKeyString(&out, "model", r.model);
  out += ",";
  AppendKeyString(&out, "adapter", r.adapter);
  out += ",";
  AppendKeyString(&out, "strategy", r.strategy);
  out += ",";
  AppendKeyNumber(&out, "dprime", static_cast<double>(r.dprime));
  out += "},\n";

  out += "\"options\":{";
  bool first = true;
  for (const auto& [key, literal] : r.options) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(&out, key);
    out += "\":";
    out += literal;  // pre-rendered JSON literal, emitted verbatim
  }
  out += "},\n";

  out += "\"epochs\":[";
  first = true;
  for (const RunReportEpoch& e : r.epochs) {
    if (!first) out += ",";
    first = false;
    out += "\n{";
    AppendKeyNumber(&out, "epoch", static_cast<double>(e.epoch));
    out += ",";
    AppendKeyString(&out, "phase", e.phase);
    out += ",";
    AppendKeyNumber(&out, "loss", e.loss);
    out += ",";
    AppendKeyNumber(&out, "accuracy", e.accuracy);
    out += ",";
    AppendKeyNumber(&out, "seconds", e.seconds);
    out += ",";
    AppendKeyNumber(&out, "pool_live_bytes", e.pool_live_bytes);
    out += "}";
  }
  out += "\n],\n";

  out += "\"stages\":[";
  first = true;
  for (const RunReportStage& s : r.stages) {
    if (!first) out += ",";
    first = false;
    out += "\n{";
    AppendKeyString(&out, "stage", s.stage);
    out += ",";
    AppendKeyNumber(&out, "seconds", s.seconds);
    out += "}";
  }
  out += "\n],\n";

  out += "\"measured_memory\":{";
  AppendKeyNumber(&out, "baseline_bytes", r.mem_baseline_bytes);
  out += ",";
  AppendKeyNumber(&out, "peak_bytes", r.mem_peak_bytes);
  out += ",";
  AppendKeyNumber(&out, "acquires", r.mem_acquires);
  out += ",";
  AppendKeyNumber(&out, "pool_hits", r.mem_pool_hits);
  out += ",";
  AppendKeyNumber(&out, "heap_allocs", r.mem_heap_allocs);
  out += "},\n";

  out += "\"execution\":{";
  out += "\"graph_enabled\":";
  out += r.graph_enabled ? "true" : "false";
  out += ",";
  AppendKeyString(&out, "embed_mode", r.embed_mode);
  out += ",";
  AppendKeyNumber(&out, "graph_captures", r.graph_captures);
  out += ",";
  AppendKeyNumber(&out, "graph_executions", r.graph_executions);
  out += ",";
  AppendKeyNumber(&out, "graph_eager_fallbacks", r.graph_eager_fallbacks);
  out += ",";
  AppendKeyNumber(&out, "graph_fused_ops", r.graph_fused_ops);
  out += ",";
  AppendKeyNumber(&out, "graph_peak_bytes", r.graph_peak_bytes);
  out += "},\n";

  out += "\"result\":{";
  AppendKeyNumber(&out, "train_accuracy", r.train_accuracy);
  out += ",";
  AppendKeyNumber(&out, "test_accuracy", r.test_accuracy);
  out += ",";
  AppendKeyNumber(&out, "final_loss", r.final_loss);
  out += ",";
  AppendKeyNumber(&out, "adapter_fit_seconds", r.adapter_fit_seconds);
  out += ",";
  AppendKeyNumber(&out, "train_seconds", r.train_seconds);
  out += ",";
  AppendKeyNumber(&out, "total_seconds", r.total_seconds);
  out += "},\n";

  out += "\"estimate\":";
  if (!r.has_estimate) {
    out += "null,\n";
  } else {
    out += "{";
    AppendKeyString(&out, "model", r.estimate_model);
    out += ",";
    AppendKeyString(&out, "regime", r.estimate_regime);
    out += ",";
    AppendKeyNumber(&out, "channels", static_cast<double>(r.estimate_channels));
    for (const auto& [key, value] : r.estimate_values) {
      out += ",";
      AppendKeyNumber(&out, key.c_str(), value);
    }
    out += ",";
    AppendKeyString(&out, "verdict", r.estimate_verdict);
    out += "},\n";
  }

  out += "\"budget\":{";
  AppendKeyString(&out, "verdict", BudgetVerdictName(r.budget.kind));
  out += ",";
  AppendKeyNumber(&out, "mem_budget_bytes", r.budget.mem_budget_bytes);
  out += ",";
  AppendKeyNumber(&out, "time_budget_seconds", r.budget.time_budget_seconds);
  out += ",";
  AppendKeyNumber(&out, "mem_used_bytes", r.budget.mem_used_bytes);
  out += ",";
  AppendKeyNumber(&out, "time_used_seconds", r.budget.time_used_seconds);
  out += ",";
  AppendKeyNumber(&out, "mem_headroom_pct", r.budget.mem_headroom_pct);
  out += ",";
  AppendKeyNumber(&out, "time_headroom_pct", r.budget.time_headroom_pct);
  out += "}\n}\n";
  return out;
}

Result<std::string> WriteRunReport(const RunReport& report,
                                   const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("run-report directory is empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create report directory " + dir + ": " +
                           ec.message());
  }
  // Reports from one process number sequentially; across processes the first
  // free slot wins, so parallel experiment runs in one directory coexist.
  static std::atomic<int> next_index{0};
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const int index = next_index.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream name;
    name << dir << "/run_report_" << index << ".json";
    const std::string path = name.str();
    if (std::filesystem::exists(path, ec)) continue;
    std::ofstream os(path, std::ios::trunc);
    if (!os) return Status::IoError("cannot write " + path);
    os << RenderRunReportJson(report);
    if (!os) return Status::IoError("write failed: " + path);
    return path;
  }
  return Status::IoError("no free run_report_<n>.json slot in " + dir);
}

std::string RunReportDirFromEnv() {
  const char* env = std::getenv("TSFM_RUN_REPORT");
  return env == nullptr ? std::string() : std::string(env);
}

namespace {

// The metrics-timeline sampler. Leaked (like the registry) so late atexit
// dumps never race its destructor.
struct TimelineState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool running = false;
  bool stop_requested = false;
};

TimelineState& Timeline() {
  static TimelineState* s = new TimelineState();
  return *s;
}

void WriteTimelineSample(std::ofstream* os,
                         std::chrono::steady_clock::time_point start) {
  const double t_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  std::string line = "{";
  AppendKeyNumber(&line, "t_ms", t_ms);
  for (const auto& [name, value] : Registry::Instance().TakeSnapshot()) {
    line += ",";
    AppendKeyNumber(&line, name.c_str(), value);
  }
  line += "}\n";
  *os << line;
  os->flush();
}

}  // namespace

Status StartMetricsTimeline(const std::string& path, int interval_ms) {
  if (interval_ms <= 0) {
    return Status::InvalidArgument("timeline interval must be positive");
  }
  TimelineState& s = Timeline();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.running) {
    return Status::FailedPrecondition("metrics timeline already running");
  }
  auto os = std::make_shared<std::ofstream>(path, std::ios::trunc);
  if (!*os) return Status::IoError("cannot write metrics timeline " + path);
  s.stop_requested = false;
  s.running = true;
  s.worker = std::thread([os, interval_ms] {
    TimelineState& st = Timeline();
    const auto start = std::chrono::steady_clock::now();
    WriteTimelineSample(os.get(), start);  // t=0 baseline sample
    std::unique_lock<std::mutex> lock(st.mu);
    while (!st.cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [&] { return st.stop_requested; })) {
      lock.unlock();
      WriteTimelineSample(os.get(), start);
      lock.lock();
    }
    lock.unlock();
    WriteTimelineSample(os.get(), start);  // final sample on shutdown
  });
  return Status::OK();
}

void StopMetricsTimeline() {
  TimelineState& s = Timeline();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.running) return;
    s.stop_requested = true;
    s.running = false;
    worker = std::move(s.worker);
  }
  s.cv.notify_all();
  if (worker.joinable()) worker.join();
}

void InstallMetricsTimelineFromEnv() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  const char* env = std::getenv("TSFM_METRICS_TIMELINE");
  if (env == nullptr || env[0] == '\0') return;
  std::string spec(env);
  int interval_ms = 200;
  const size_t comma = spec.rfind(',');
  if (comma != std::string::npos) {
    const int parsed = std::atoi(spec.c_str() + comma + 1);
    if (parsed > 0) {
      interval_ms = parsed;
      spec = spec.substr(0, comma);
    }
  }
  const Status status = StartMetricsTimeline(spec, interval_ms);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics timeline: %s\n", status.ToString().c_str());
    return;
  }
  std::atexit(StopMetricsTimeline);
}

}  // namespace tsfm::obs
