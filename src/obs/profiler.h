#ifndef TSFM_OBS_PROFILER_H_
#define TSFM_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace tsfm::obs {

/// One aggregated call-tree node: every span occurrence with the same stack
/// path (enclosing span names joined by ';') collapses into one node, across
/// all threads. Times are steady-clock nanoseconds.
struct ProfileNode {
  std::string name;   // span name of this node
  std::string path;   // "outer;inner;leaf" stack path (';'-separated)
  int depth = 0;      // number of enclosing spans
  int64_t calls = 0;
  int64_t total_ns = 0;  // sum of span durations
  int64_t self_ns = 0;   // total minus time spent in child spans
  int64_t min_ns = 0;
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  int64_t max_ns = 0;
};

/// Aggregated profile built from completed trace spans. Nesting is
/// reconstructed per thread id from the [start_ns, start_ns + dur_ns)
/// intervals: a span is a child of the innermost span on the same tid whose
/// interval contains it. Spans on worker threads whose parent ran on another
/// thread (ParallelFor chunks) therefore root their own subtree, exactly as
/// chrome://tracing renders them.
class Profile {
 public:
  /// Builds the call tree from `events` (any order; TraceSnapshot order is
  /// fine). Events whose parents fell out of the trace ring become roots.
  static Profile FromEvents(const std::vector<TraceEvent>& events);

  /// FromEvents(TraceSnapshot()).
  static Profile FromCurrentTrace();

  bool empty() const { return nodes_.empty(); }

  /// Nodes in depth-first order (parents before children, siblings by
  /// descending total time).
  const std::vector<ProfileNode>& nodes() const { return nodes_; }

  /// Per-name rollup (stack-path-independent), sorted by descending total
  /// time, truncated to `n` entries. Used by the budget monitor's diagnosis.
  std::vector<ProfileNode> TopByTotal(int n) const;

  /// Sorted, indented text table: calls, total/self ms, min/p50/p99/max.
  std::string RenderText() const;

  /// {"profile":[{"path":...,"calls":...,...}, ...]} — one object per node.
  std::string RenderJson() const;

  /// Collapsed-stack (flamegraph) format: one "a;b;c <self_us>" line per
  /// node with non-zero self time. Feed to flamegraph.pl / speedscope.
  std::string RenderCollapsed() const;

 private:
  std::vector<ProfileNode> nodes_;
};

/// Writes `profile` to `path`; the format follows the extension:
/// ".json" -> RenderJson, ".folded" -> RenderCollapsed, else RenderText.
/// Returns false if the file cannot be written.
bool WriteProfile(const Profile& profile, const std::string& path);

/// If the TSFM_PROFILE environment variable names an output file, enables
/// tracing now and registers an atexit hook that writes the profile of the
/// whole run there. Idempotent. Safe to call from the CLI's flag handling.
void InstallProfileFromEnv();

namespace internal {

/// Registers the atexit profile writer for `path` without touching the
/// tracing flag (the trace layer's own env resolution calls this while it is
/// mid-initialization, when EnableTracing would recurse). Idempotent; the
/// first non-empty path wins.
void ArmProfileAtExit(const std::string& path);

}  // namespace internal

}  // namespace tsfm::obs

#endif  // TSFM_OBS_PROFILER_H_
