#ifndef TSFM_OBS_ROLLING_H_
#define TSFM_OBS_ROLLING_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "obs/metrics.h"

namespace tsfm::obs {

// ---------------------------------------------------------------------------
// Sliding-window instruments for long-lived servers. A cumulative histogram
// can never answer "what is p99 *right now*" on a process that has been up
// for a week, so these keep a ring of kRollingSlots epoch buckets (5 s each,
// 60 s window total) next to the since-start totals. Writes rotate the slot
// for the current epoch in place (a CAS on the slot's epoch tag; the winner
// clears it); reads merge every slot still inside the window. Everything is
// relaxed/acq-rel atomics — no locks — so Observe stays a handful of atomic
// ops and is safe from any number of threads. A slot racing its own rotation
// can shed a few observations at the 5 s boundary; window stats are
// estimates, the cumulative totals are exact.

/// Number of epoch buckets in the window ring.
inline constexpr int kRollingSlots = 12;
/// Width of one epoch bucket in nanoseconds (5 s; 12 * 5 s = 60 s window).
inline constexpr int64_t kRollingSlotNs = 5'000'000'000;
/// Total window covered by the ring, in seconds.
inline constexpr double kRollingWindowSeconds =
    static_cast<double>(kRollingSlots) * static_cast<double>(kRollingSlotNs) /
    1e9;

namespace internal {
/// Freezes the rolling clock for tests (nanoseconds since an arbitrary
/// origin); pass a negative value to restore the real steady clock. Tests
/// that freeze the clock see exact window counts because no rotation can
/// race their writes.
void SetRollingClockForTest(int64_t now_ns);
/// Current rolling-clock time in nanoseconds.
int64_t RollingNowNs();
}  // namespace internal

/// Monotonic counter with a 60 s sliding-window view. `Add` is 3-4 relaxed
/// atomics; `value()` is the exact cumulative total, `WindowCount()` merges
/// the ring on read.
class RollingCounter {
 public:
  void Add(uint64_t n = 1);
  /// Cumulative total since construction (exact).
  uint64_t value() const { return total_.load(std::memory_order_relaxed); }
  /// Events observed inside the last kRollingWindowSeconds.
  uint64_t WindowCount() const;
  /// WindowCount() / window span — events per second over the window.
  double WindowRatePerSec() const;

 private:
  friend class Registry;
  RollingCounter() = default;

  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> count{0};
  };
  Slot slots_[kRollingSlots];
  std::atomic<uint64_t> total_{0};
};

/// Histogram with the same base-2 bucket layout as obs::Histogram plus a
/// 60 s sliding window. The cumulative side (count/sum/min/max/Percentile)
/// matches Histogram's snapshot keys exactly, so swapping a Histogram for a
/// RollingHistogram under the same registry name is invisible to existing
/// consumers; the window side adds WindowPercentile & friends on top.
class RollingHistogram {
 public:
  void Observe(double v);

  // Cumulative (since construction; exact).
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  /// Cumulative quantile, interpolated inside the bucket and clamped to the
  /// observed min/max like Histogram::Percentile.
  double Percentile(double p) const;
  /// Cumulative count in base-2 bucket `i` (Prometheus exposition reads the
  /// since-start buckets; scrapers compute window rates themselves).
  uint64_t CumulativeBucketCount(int i) const;

  // Sliding window (merge-on-read over the ring).
  uint64_t WindowCount() const;
  double WindowSum() const;
  /// Quantile over only the last kRollingWindowSeconds of observations,
  /// clamped to the window's own min/max. Returns 0 when the window is
  /// empty.
  double WindowPercentile(double p) const;

 private:
  friend class Registry;
  RollingHistogram() = default;

  // Extrema are tracked with CAS min/max loops against ±inf sentinels, so a
  // slot (or the cumulative side) is "empty" exactly when min > max — no
  // separate has-data flag, no mutex, no write-write race on first use.
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<uint64_t> buckets[Histogram::kNumBuckets] = {};
  };
  Slot slots_[kRollingSlots];

  std::atomic<uint64_t> buckets_[Histogram::kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace tsfm::obs

#endif  // TSFM_OBS_ROLLING_H_
