#include "obs/budget.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace tsfm::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct MonitorState {
  std::mutex mu;
  BudgetLimits limits;              // guarded by mu
  Clock::time_point start;          // guarded by mu
  std::string trip_message;         // guarded by mu
  std::atomic<bool> soft_warned{false};
  std::atomic<bool> tripped{false};
};

MonitorState& State() {
  static MonitorState* s = new MonitorState();  // leaked: checked at exit
  return *s;
}

// Fast-path flag: CheckBudget with no budget must cost one relaxed load.
std::atomic<bool>& ConfiguredFlag() {
  static std::atomic<bool> configured{false};
  return configured;
}

double PeakPoolBytes() {
  const Snapshot snap = Registry::Instance().TakeSnapshot();
  auto it = snap.find("pool.peak_live_bytes");
  return it == snap.end() ? 0.0 : it->second;
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

// "hottest spans: a 120.0ms x3, b 40.2ms x17, c 1.1ms x2" from the current
// trace, or a hint when no spans were recorded.
std::string HottestSpans() {
  const Profile profile = Profile::FromCurrentTrace();
  if (profile.empty()) {
    return "no span data (set --trace/--profile or TSFM_TRACE to record a "
           "breakdown)";
  }
  std::ostringstream os;
  os << "hottest spans:";
  bool first = true;
  for (const ProfileNode& n : profile.TopByTotal(3)) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s %s %.1fms x%lld", first ? "" : ",",
                  n.name.c_str(), static_cast<double>(n.total_ns) / 1e6,
                  static_cast<long long>(n.calls));
    os << buf;
    first = false;
  }
  return os.str();
}

void Rearm(MonitorState& s) {
  s.start = Clock::now();
  s.soft_warned.store(false, std::memory_order_relaxed);
  s.tripped.store(false, std::memory_order_relaxed);
  s.trip_message.clear();
  // The memory axis judges the allocator's high-water mark, so each window
  // restarts it from the current live footprint (weights etc. still count).
  Registry::Instance().ResetPeaks();
}

}  // namespace

const char* BudgetVerdictName(BudgetVerdict::Kind kind) {
  switch (kind) {
    case BudgetVerdict::Kind::kFits:
      return "fits";
    case BudgetVerdict::Kind::kExceedsMemory:
      return "exceeds_memory";
    case BudgetVerdict::Kind::kExceedsTime:
      return "exceeds_time";
  }
  return "unknown";
}

BudgetVerdict JudgeBudget(const BudgetLimits& limits, double mem_used_bytes,
                          double time_used_seconds) {
  BudgetVerdict v;
  v.mem_used_bytes = mem_used_bytes;
  v.time_used_seconds = time_used_seconds;
  v.mem_budget_bytes = limits.mem_bytes;
  v.time_budget_seconds = limits.time_seconds;
  if (limits.mem_bytes > 0) {
    v.mem_headroom_pct =
        (limits.mem_bytes - mem_used_bytes) / limits.mem_bytes * 100.0;
  }
  if (limits.time_seconds > 0) {
    v.time_headroom_pct =
        (limits.time_seconds - time_used_seconds) / limits.time_seconds *
        100.0;
  }
  if (limits.mem_bytes > 0 && mem_used_bytes > limits.mem_bytes) {
    v.kind = BudgetVerdict::Kind::kExceedsMemory;
  } else if (limits.time_seconds > 0 &&
             time_used_seconds > limits.time_seconds) {
    v.kind = BudgetVerdict::Kind::kExceedsTime;
  }
  return v;
}

void SetBudget(const BudgetLimits& limits) {
  MonitorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.limits = limits;
  Rearm(s);
  ConfiguredFlag().store(limits.mem_bytes > 0 || limits.time_seconds > 0,
                         std::memory_order_relaxed);
}

void ClearBudget() {
  MonitorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.limits = BudgetLimits{};
  Rearm(s);
  ConfiguredFlag().store(false, std::memory_order_relaxed);
}

bool BudgetConfigured() {
  return ConfiguredFlag().load(std::memory_order_relaxed);
}

BudgetLimits CurrentBudget() {
  MonitorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.limits;
}

void BeginBudgetRun() {
  if (!BudgetConfigured()) return;
  MonitorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  Rearm(s);
}

double BudgetElapsedSeconds() {
  MonitorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return std::chrono::duration<double>(Clock::now() - s.start).count();
}

bool BudgetTripped() {
  return State().tripped.load(std::memory_order_relaxed);
}

Status CheckBudget(const char* where) {
  if (!ConfiguredFlag().load(std::memory_order_relaxed)) return Status::OK();
  MonitorState& s = State();
  if (s.tripped.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(s.mu);
    return Status::ResourceExhausted(s.trip_message);
  }

  BudgetLimits limits;
  double elapsed;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    limits = s.limits;
    elapsed = std::chrono::duration<double>(Clock::now() - s.start).count();
  }
  const double peak = PeakPoolBytes();
  const BudgetVerdict v = JudgeBudget(limits, peak, elapsed);

  if (!v.fits()) {
    std::ostringstream os;
    const bool mem = v.kind == BudgetVerdict::Kind::kExceedsMemory;
    os << (mem ? "memory" : "time") << " budget exceeded at " << where << ": ";
    if (mem) {
      os << "peak allocator bytes " << FormatBytes(peak) << " > budget "
         << FormatBytes(limits.mem_bytes);
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "elapsed %.1fs > budget %.1fs", elapsed,
                    limits.time_seconds);
      os << buf;
    }
    os << "; " << HottestSpans();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.tripped.load(std::memory_order_relaxed)) {
      s.trip_message = os.str();
      s.tripped.store(true, std::memory_order_release);
      std::fprintf(stderr, "budget: %s\n", s.trip_message.c_str());
    }
    return Status::ResourceExhausted(s.trip_message);
  }

  // Soft threshold: one warning per window, from whichever axis crosses
  // first, so the user hears about a tight fit before the abort.
  const double soft = limits.soft_fraction;
  const bool mem_soft = limits.mem_bytes > 0 && peak > soft * limits.mem_bytes;
  const bool time_soft =
      limits.time_seconds > 0 && elapsed > soft * limits.time_seconds;
  if ((mem_soft || time_soft) &&
      !s.soft_warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "budget: warning at %s: %s %.0f%% of its budget "
                 "(memory %s / %s, elapsed %.1fs / %.1fs)\n",
                 where, mem_soft ? "memory passed" : "time passed",
                 soft * 100.0, FormatBytes(peak).c_str(),
                 FormatBytes(limits.mem_bytes).c_str(), elapsed,
                 limits.time_seconds);
  }
  return Status::OK();
}

}  // namespace tsfm::obs
