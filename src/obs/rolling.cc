#include "obs/rolling.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace tsfm::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<int64_t> g_test_now_ns{-1};

void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// True when epoch `e` still falls inside the window ending at `now_epoch`.
bool InWindow(int64_t e, int64_t now_epoch) {
  return e >= 0 && e <= now_epoch && now_epoch - e < kRollingSlots;
}

/// Same interpolation-with-clamping as Histogram::Percentile, over an
/// already-merged bucket array: clamping to the observed extrema keeps the
/// extremes exact instead of snapping to power-of-two bucket edges.
double PercentileFromBuckets(const uint64_t* buckets, uint64_t n, double mn,
                             double mx, double p) {
  if (n == 0) return 0.0;
  if (p <= 0.0) return mn;
  if (p >= 1.0) return mx;
  const double target = p * static_cast<double>(n);
  double cum = 0.0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t c = buckets[i];
    if (c == 0) continue;
    if (cum + static_cast<double>(c) >= target) {
      const double lo = std::max(Histogram::BucketLowerBound(i), mn);
      const double hi = std::min(Histogram::BucketLowerBound(i + 1), mx);
      const double frac = (target - cum) / static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    cum += static_cast<double>(c);
  }
  return mx;
}

}  // namespace

namespace internal {

void SetRollingClockForTest(int64_t now_ns) {
  g_test_now_ns.store(now_ns, std::memory_order_relaxed);
}

int64_t RollingNowNs() {
  const int64_t t = g_test_now_ns.load(std::memory_order_relaxed);
  if (t >= 0) return t;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

}  // namespace internal

void RollingCounter::Add(uint64_t n) {
  const int64_t epoch = internal::RollingNowNs() / kRollingSlotNs;
  Slot& s = slots_[static_cast<size_t>(epoch % kRollingSlots)];
  int64_t seen = s.epoch.load(std::memory_order_acquire);
  if (seen != epoch &&
      s.epoch.compare_exchange_strong(seen, epoch,
                                      std::memory_order_acq_rel)) {
    // Rotation winner clears the expired slot. An Add racing the clear can
    // lose a couple of counts at the 5 s boundary; the window is an
    // estimate, the cumulative total_ below stays exact.
    s.count.store(0, std::memory_order_relaxed);
  }
  s.count.fetch_add(n, std::memory_order_relaxed);
  total_.fetch_add(n, std::memory_order_relaxed);
}

uint64_t RollingCounter::WindowCount() const {
  const int64_t now_epoch = internal::RollingNowNs() / kRollingSlotNs;
  uint64_t total = 0;
  for (const Slot& s : slots_) {
    if (InWindow(s.epoch.load(std::memory_order_acquire), now_epoch)) {
      total += s.count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double RollingCounter::WindowRatePerSec() const {
  return static_cast<double>(WindowCount()) / kRollingWindowSeconds;
}

void RollingHistogram::Observe(double v) {
  const int64_t epoch = internal::RollingNowNs() / kRollingSlotNs;
  Slot& s = slots_[static_cast<size_t>(epoch % kRollingSlots)];
  int64_t seen = s.epoch.load(std::memory_order_acquire);
  if (seen != epoch &&
      s.epoch.compare_exchange_strong(seen, epoch,
                                      std::memory_order_acq_rel)) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
  const int bi = Histogram::BucketIndex(v);
  s.buckets[bi].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&s.sum, v);
  AtomicMinDouble(&s.min, v);
  AtomicMaxDouble(&s.max, v);

  buckets_[bi].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  AtomicMinDouble(&min_, v);
  AtomicMaxDouble(&max_, v);
}

double RollingHistogram::min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0.0 : m;
}

double RollingHistogram::max() const {
  const double m = max_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0.0 : m;
}

double RollingHistogram::Percentile(double p) const {
  uint64_t buckets[Histogram::kNumBuckets];
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return PercentileFromBuckets(buckets, count(), min(), max(), p);
}

uint64_t RollingHistogram::CumulativeBucketCount(int i) const {
  return buckets_[i].load(std::memory_order_relaxed);
}

uint64_t RollingHistogram::WindowCount() const {
  const int64_t now_epoch = internal::RollingNowNs() / kRollingSlotNs;
  uint64_t total = 0;
  for (const Slot& s : slots_) {
    if (InWindow(s.epoch.load(std::memory_order_acquire), now_epoch)) {
      total += s.count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double RollingHistogram::WindowSum() const {
  const int64_t now_epoch = internal::RollingNowNs() / kRollingSlotNs;
  double total = 0.0;
  for (const Slot& s : slots_) {
    if (InWindow(s.epoch.load(std::memory_order_acquire), now_epoch)) {
      total += s.sum.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double RollingHistogram::WindowPercentile(double p) const {
  const int64_t now_epoch = internal::RollingNowNs() / kRollingSlotNs;
  uint64_t buckets[Histogram::kNumBuckets] = {};
  uint64_t n = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const Slot& s : slots_) {
    if (!InWindow(s.epoch.load(std::memory_order_acquire), now_epoch)) {
      continue;
    }
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    n += s.count.load(std::memory_order_relaxed);
    mn = std::min(mn, s.min.load(std::memory_order_relaxed));
    mx = std::max(mx, s.max.load(std::memory_order_relaxed));
  }
  if (n == 0) return 0.0;
  return PercentileFromBuckets(buckets, n, mn, mx, p);
}

}  // namespace tsfm::obs
