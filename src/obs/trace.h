#ifndef TSFM_OBS_TRACE_H_
#define TSFM_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tsfm::obs {

/// One completed span. `name` must be a string literal (or otherwise outlive
/// the process) — spans store the pointer, never copy the text, so recording
/// is a clock read plus one ring-buffer slot.
struct TraceEvent {
  const char* name;
  int tid;            // small dense id, not the OS thread id
  int64_t start_ns;   // steady-clock nanoseconds since the trace epoch
  int64_t dur_ns;
};

/// True when span recording is active. Reading it is one relaxed atomic
/// load; with tracing off a TSFM_TRACE_SPAN costs that load and nothing
/// else (no clock reads, no allocation), which is the "near-zero when
/// unset" contract the kernels rely on.
bool TraceEnabled();

/// Turns recording on/off explicitly (tests, the CLI's --trace flag).
/// Tracing also auto-enables on first query when the TSFM_TRACE environment
/// variable names an output file; that file is written at process exit.
void EnableTracing();
void DisableTracing();

/// Number of events currently buffered (and dropped, once the fixed-size
/// ring fills — the trace is a window, not an unbounded log).
int64_t TraceEventCount();
int64_t TraceDroppedCount();

/// Copy of the buffered events, oldest first.
std::vector<TraceEvent> TraceSnapshot();

/// Discards all buffered events (dropped counter included).
void ClearTrace();

/// Writes the buffered events to `path` in chrome://tracing "Trace Event
/// Format" JSON ({"traceEvents":[...]} with complete "X" events, timestamps
/// in microseconds). Load via chrome://tracing or https://ui.perfetto.dev.
/// Returns false if the file cannot be written.
bool WriteTrace(const std::string& path);

/// RAII span: records [construction, destruction) under `name` when tracing
/// is enabled at construction time. Use via TSFM_TRACE_SPAN below.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // nullptr when tracing was off at construction
  int64_t start_ns_;
};

#define TSFM_TRACE_CONCAT_INNER(a, b) a##b
#define TSFM_TRACE_CONCAT(a, b) TSFM_TRACE_CONCAT_INNER(a, b)

/// Scoped trace span covering the rest of the enclosing block:
///   TSFM_TRACE_SPAN("tensor.matmul");
/// `name` must be a string literal.
#define TSFM_TRACE_SPAN(name) \
  ::tsfm::obs::TraceSpan TSFM_TRACE_CONCAT(tsfm_trace_span_, __LINE__)(name)

}  // namespace tsfm::obs

#endif  // TSFM_OBS_TRACE_H_
