#ifndef TSFM_OBS_TRACE_H_
#define TSFM_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tsfm::obs {

/// One completed span. `name` must be a string literal (or otherwise outlive
/// the process) — spans store the pointer, never copy the text, so recording
/// is a clock read plus one ring-buffer slot.
///
/// `trace_id` / `batch_id` stitch request-scoped serving spans into one
/// tree: a request's spans share its trace_id even across threads, and
/// spans recorded inside a shared micro-batch carry the batch_id the
/// request rode in (the queue-wait span carries *both*, which is the join
/// key between a request's tree and the per-batch execute/stage spans).
/// Zero means "not part of a request/batch" — offline spans stay unchanged.
struct TraceEvent {
  const char* name;
  int tid;            // small dense id, not the OS thread id
  int64_t start_ns;   // steady-clock nanoseconds since the trace epoch
  int64_t dur_ns;
  uint64_t trace_id = 0;
  uint64_t batch_id = 0;
};

/// Request-scoped context propagated through a thread: every span recorded
/// while a ContextScope is live inherits these ids. The serving path sets
/// {trace_id, 0} in the connection handler and {_, batch_id} around the
/// batched forward, so per-stage spans (session.predict, pipeline stages)
/// stitch into the right request/batch tree without being serving-aware.
struct RequestContext {
  uint64_t trace_id = 0;
  uint64_t batch_id = 0;
};

/// The calling thread's current context ({0, 0} when none is set).
RequestContext CurrentContext();

/// RAII: installs `ctx` as the calling thread's context, restoring the
/// previous one on destruction (scopes nest).
class ContextScope {
 public:
  explicit ContextScope(RequestContext ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  RequestContext prev_;
};

/// Process-unique nonzero trace id (cheap: one relaxed fetch-add). Clients
/// mint one per request and send it over the wire.
uint64_t NewTraceId();

/// Nanoseconds since the trace epoch — the timebase of TraceEvent.start_ns.
/// Works whether or not tracing is enabled, so callers can capture
/// timestamps cheaply and only turn them into spans (RecordSpan) later.
int64_t TraceNowNs();

/// Records a completed span retroactively under an explicit context. This is
/// how the micro-batcher emits each rider's queue-wait span after the batch
/// executes: start/duration were captured with TraceNowNs() at enqueue time,
/// and `ctx` carries that request's trace_id plus the batch_id it rode in.
/// No-op when tracing is disabled.
void RecordSpan(const char* name, int64_t start_ns, int64_t dur_ns,
                RequestContext ctx);

/// True when span recording is active. Reading it is one relaxed atomic
/// load; with tracing off a TSFM_TRACE_SPAN costs that load and nothing
/// else (no clock reads, no allocation), which is the "near-zero when
/// unset" contract the kernels rely on.
bool TraceEnabled();

/// Turns recording on/off explicitly (tests, the CLI's --trace flag).
/// Tracing also auto-enables on first query when the TSFM_TRACE environment
/// variable names an output file; that file is written at process exit.
void EnableTracing();
void DisableTracing();

/// Number of events currently buffered (and dropped, once the fixed-size
/// ring fills — the trace is a window, not an unbounded log).
int64_t TraceEventCount();
int64_t TraceDroppedCount();

/// Copy of the buffered events, oldest first.
std::vector<TraceEvent> TraceSnapshot();

/// Discards all buffered events (dropped counter included).
void ClearTrace();

/// Writes the buffered events to `path` in chrome://tracing "Trace Event
/// Format" JSON ({"traceEvents":[...]} with complete "X" events, timestamps
/// in microseconds). Events carrying a request context additionally emit
/// "args":{"trace_id":...,"batch_id":...} so a viewer (or a script) can
/// filter one request's stitched tree out of a busy serving trace. Load via
/// chrome://tracing or https://ui.perfetto.dev. Returns false if the file
/// cannot be written.
bool WriteTrace(const std::string& path);

/// RAII span: records [construction, destruction) under `name` when tracing
/// is enabled at construction time. Use via TSFM_TRACE_SPAN below.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // nullptr when tracing was off at construction
  int64_t start_ns_;
};

#define TSFM_TRACE_CONCAT_INNER(a, b) a##b
#define TSFM_TRACE_CONCAT(a, b) TSFM_TRACE_CONCAT_INNER(a, b)

/// Scoped trace span covering the rest of the enclosing block:
///   TSFM_TRACE_SPAN("tensor.matmul");
/// `name` must be a string literal.
#define TSFM_TRACE_SPAN(name) \
  ::tsfm::obs::TraceSpan TSFM_TRACE_CONCAT(tsfm_trace_span_, __LINE__)(name)

}  // namespace tsfm::obs

#endif  // TSFM_OBS_TRACE_H_
