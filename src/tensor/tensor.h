#ifndef TSFM_TENSOR_TENSOR_H_
#define TSFM_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tsfm {

/// Shape of a tensor; an empty shape denotes a scalar.
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by `shape` (1 for a scalar).
int64_t NumElements(const Shape& shape);

/// Returns a human-readable form such as "[2, 3, 5]".
std::string ShapeToString(const Shape& shape);

/// Dense float32 tensor with row-major contiguous storage.
///
/// `Tensor` has shared-buffer value semantics: copying a `Tensor` is cheap and
/// aliases the same storage (like `torch.Tensor`). Operations in
/// `tensor/ops.h` allocate fresh outputs; in-place mutation is restricted to
/// explicit accessors (`mutable_data`, `at`). All shapes are static; there is
/// no stride support — `Reshape` is free, other layout changes copy.
class Tensor {
 public:
  /// Creates an empty (0-element, shape `[0]`) tensor.
  Tensor();

  /// Creates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Creates a tensor wrapping a copy of `values`; requires
  /// `values.size() == NumElements(shape)`.
  Tensor(Shape shape, std::vector<float> values);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Scalar (0-dim) tensor holding `value`.
  static Tensor Scalar(float value);
  /// Tensor of the given shape filled with `value`.
  static Tensor Full(Shape shape, float value);
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  /// I.i.d. N(0, stddev^2) entries drawn from `rng`.
  static Tensor RandN(Shape shape, Rng* rng, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor RandUniform(Shape shape, Rng* rng, float lo, float hi);
  /// Identity matrix of size n x n.
  static Tensor Eye(int64_t n);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return numel_; }
  /// Size of dimension `d`; negative `d` counts from the end.
  int64_t dim(int64_t d) const;

  const float* data() const { return data_->data(); }
  float* mutable_data() { return data_->data(); }

  /// Element access by flat row-major index.
  float operator[](int64_t i) const {
    TSFM_CHECK_GE(i, 0);
    TSFM_CHECK_LT(i, numel_);
    return (*data_)[static_cast<size_t>(i)];
  }

  /// Mutable element access by multi-dimensional index.
  float& at(std::initializer_list<int64_t> idx);
  /// Const element access by multi-dimensional index.
  float at(std::initializer_list<int64_t> idx) const;

  /// Returns a tensor sharing this storage but viewed with `new_shape`
  /// (element count must match). A dimension of -1 is inferred.
  Tensor Reshape(Shape new_shape) const;

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// True if this and `other` alias the same storage.
  bool SharesStorageWith(const Tensor& other) const {
    return data_ == other.data_;
  }

  /// Fills all elements with `value`.
  void Fill(float value);

  /// Compact preview for debugging (first few elements).
  std::string ToString(int64_t max_elements = 16) const;

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  Shape shape_;
  int64_t numel_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace tsfm

#endif  // TSFM_TENSOR_TENSOR_H_
