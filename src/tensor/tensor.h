#ifndef TSFM_TENSOR_TENSOR_H_
#define TSFM_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "memory/buffer_pool.h"

namespace tsfm {

/// Shape of a tensor; an empty shape denotes a scalar.
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by `shape` (1 for a scalar).
int64_t NumElements(const Shape& shape);

/// Returns a human-readable form such as "[2, 3, 5]".
std::string ShapeToString(const Shape& shape);

/// Returns the row-major (dense, innermost-last) strides for `shape`.
Shape DenseStrides(const Shape& shape);

/// Float32 tensor: a (shape, strides, offset) view over pooled storage.
///
/// `Tensor` has shared-buffer value semantics: copying a `Tensor` is cheap and
/// aliases the same storage (like `torch.Tensor`). Storage comes from
/// `memory::BufferPool` and returns to it when the last alias dies.
///
/// Layout ops are zero-copy where the layout permits: `Reshape` on a
/// contiguous tensor, `Narrow` (and `Slice`/batch selection built on it), and
/// `PermuteAxes` (incl. transpose) all return views that alias this storage
/// with adjusted shape/strides/offset. Non-contiguous views satisfy reads via
/// `at()`/`operator[]`/`base()`; kernels that need dense memory call
/// `Contiguous()`, which materializes a packed copy only when required.
///
/// In-place mutation is restricted to explicit accessors (`mutable_data`,
/// `at`). Mutating through an alias changes every view of the storage; scope a
/// `ScopedAliasCheck` to turn such writes into fatal errors while debugging.
class Tensor {
 public:
  /// Creates an empty (0-element, shape `[0]`) tensor.
  Tensor();

  /// Creates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Creates a tensor wrapping a copy of `values`; requires
  /// `values.size() == NumElements(shape)`.
  Tensor(Shape shape, const std::vector<float>& values);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Uninitialized tensor of the given shape. The fastest constructor (a
  /// pooled buffer is handed over as-is, typically dirty) — callers MUST
  /// overwrite every element before reading.
  static Tensor Empty(Shape shape);
  /// Scalar (0-dim) tensor holding `value`.
  static Tensor Scalar(float value);
  /// Tensor of the given shape filled with `value`.
  static Tensor Full(Shape shape, float value);
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  /// I.i.d. N(0, stddev^2) entries drawn from `rng`.
  static Tensor RandN(Shape shape, Rng* rng, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor RandUniform(Shape shape, Rng* rng, float lo, float hi);
  /// Identity matrix of size n x n.
  static Tensor Eye(int64_t n);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return numel_; }
  /// Size of dimension `d`; negative `d` counts from the end.
  int64_t dim(int64_t d) const;

  /// Stride (in elements) of dimension `d`; negative `d` counts from the end.
  int64_t stride(int64_t d) const;
  const Shape& strides() const { return strides_; }
  int64_t offset() const { return offset_; }
  /// True if elements are laid out densely in row-major order (so `data()`
  /// spans exactly `numel()` floats).
  bool is_contiguous() const { return contiguous_; }

  /// Pointer to the first element of a *contiguous* tensor. Fatal on
  /// non-contiguous views — those must go through `base()` + strides or
  /// `Contiguous()` first.
  const float* data() const {
    TSFM_CHECK(contiguous_) << "data() on non-contiguous view "
                            << ShapeToString(shape_) << "; call Contiguous()";
    return base();
  }
  float* mutable_data() {
    TSFM_CHECK(contiguous_) << "mutable_data() on non-contiguous view "
                            << ShapeToString(shape_)
                            << "; call Contiguous()";
    CheckMutationAllowed();
    return mutable_base();
  }

  /// Pointer to the element at this view's offset, with NO contiguity check:
  /// element (i0, i1, ...) lives at `base()[i0*stride(0) + i1*stride(1)+...]`.
  /// For stride-aware kernels only.
  const float* base() const {
    return buf_ ? buf_->data() + offset_ : nullptr;
  }
  float* mutable_base() {
    CheckMutationAllowed();
    return buf_ ? buf_->data() + offset_ : nullptr;
  }

  /// Element access by flat row-major index (stride-aware on views).
  float operator[](int64_t i) const;

  /// Mutable element access by multi-dimensional index.
  float& at(std::initializer_list<int64_t> idx);
  /// Const element access by multi-dimensional index.
  float at(std::initializer_list<int64_t> idx) const;

  /// Returns a tensor viewing these elements with `new_shape` (element count
  /// must match; a dimension of -1 is inferred). Zero-copy when this tensor
  /// is contiguous; otherwise materializes a packed copy first.
  Tensor Reshape(Shape new_shape) const;

  /// Zero-copy view of `len` indices of `axis` starting at `start`.
  Tensor Narrow(int64_t axis, int64_t start, int64_t len) const;

  /// Zero-copy view with axes reordered by `perm` (a permutation of
  /// 0..ndim-1). The transpose/permute workhorse.
  Tensor PermuteAxes(const std::vector<int64_t>& perm) const;

  /// Returns `*this` if already contiguous (no copy, aliases storage);
  /// otherwise a packed row-major copy with fresh storage.
  Tensor Contiguous() const;

  /// Deep copy with fresh storage (always packs, never aliases).
  Tensor Clone() const;

  /// True if this and `other` alias the same storage.
  bool SharesStorageWith(const Tensor& other) const {
    return buf_ != nullptr && buf_ == other.buf_;
  }

  /// Fills all elements with `value` (stride-aware).
  void Fill(float value);

  /// Compact preview for debugging (first few elements).
  std::string ToString(int64_t max_elements = 16) const;

 private:
  struct UninitTag {};
  Tensor(Shape shape, UninitTag);

  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;
  void CheckMutationAllowed() const;

  Shape shape_;
  Shape strides_;  // element strides, same rank as shape_
  int64_t offset_ = 0;
  int64_t numel_ = 0;
  bool contiguous_ = true;
  std::shared_ptr<memory::TensorBuffer> buf_;
};

/// While any instance is alive on this thread, mutating a tensor whose
/// storage is shared (views, copies) aborts with a fatal check. Opt-in guard
/// for the classic footgun: `mutable_data()` on a `Reshape`d or copied tensor
/// silently writes through every alias. Shared-buffer semantics are
/// intentional (autograd and the ops layer rely on them), so the guard is
/// scoped rather than always-on.
class ScopedAliasCheck {
 public:
  ScopedAliasCheck();
  ~ScopedAliasCheck();
  ScopedAliasCheck(const ScopedAliasCheck&) = delete;
  ScopedAliasCheck& operator=(const ScopedAliasCheck&) = delete;

  /// True if a guard is active on the calling thread.
  static bool Active();
};

}  // namespace tsfm

#endif  // TSFM_TENSOR_TENSOR_H_
