#ifndef TSFM_TENSOR_OPS_H_
#define TSFM_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tsfm {

/// NumPy-style broadcast of two shapes. Aborts (TSFM_CHECK) on incompatible
/// shapes; use `ShapesBroadcastable` to test first when handling user input.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// True if `a` and `b` are broadcast-compatible.
bool ShapesBroadcastable(const Shape& a, const Shape& b);

// ---------------------------------------------------------------------------
// Elementwise binary ops (NumPy broadcasting).
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// max(a, b) elementwise with broadcasting.
Tensor Maximum(const Tensor& a, const Tensor& b);

/// Sums `t` down to `target` shape by reducing over broadcast dimensions.
/// This is the adjoint of broadcasting and is used by autograd.
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// ---------------------------------------------------------------------------
// Elementwise unary ops.
// ---------------------------------------------------------------------------

Tensor Neg(const Tensor& t);
Tensor Exp(const Tensor& t);
Tensor Log(const Tensor& t);
Tensor Sqrt(const Tensor& t);
Tensor Tanh(const Tensor& t);
Tensor Sigmoid(const Tensor& t);
Tensor Relu(const Tensor& t);
/// Gaussian Error Linear Unit (tanh approximation, as used by transformers).
Tensor Gelu(const Tensor& t);
Tensor Abs(const Tensor& t);
Tensor Square(const Tensor& t);
/// t * s.
Tensor Scale(const Tensor& t, float s);
/// t + s.
Tensor AddScalar(const Tensor& t, float s);
/// Raises each element to the power `p`.
Tensor Pow(const Tensor& t, float p);

// ---------------------------------------------------------------------------
// Linear algebra / layout.
// ---------------------------------------------------------------------------

/// Batched matrix multiplication. Both inputs must have ndim >= 2; batch
/// dimensions are broadcast. (..., m, k) x (..., k, n) -> (..., m, n).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// a x b^T without materializing the transpose: (..., m, k) x (..., n, k) ->
/// (..., m, n). Bit-identical to MatMul(a, TransposeLast2(b)) — every output
/// element accumulates its k products in the same ascending order — which is
/// what lets the graph fold pass substitute it for a transpose+matmul pair.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// Swaps the last two dimensions. Zero-copy: returns a strided view that
/// aliases the input's storage.
Tensor TransposeLast2(const Tensor& t);

/// General permutation of dimensions; `perm` must be a permutation of
/// [0, ndim). Zero-copy view (aliases the input's storage).
Tensor Permute(const Tensor& t, const std::vector<int64_t>& perm);

/// Extracts `[start, end)` along `axis`. Zero-copy view (aliases the input's
/// storage); call `.Contiguous()` on the result if dense memory is needed.
Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t end);

/// Concatenates tensors along `axis`; all other dimensions must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Gathers rows of a 2-D (or higher; first axis) tensor by index.
Tensor TakeRows(const Tensor& t, const std::vector<int64_t>& rows);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

float SumAll(const Tensor& t);
float MeanAll(const Tensor& t);
float MaxAll(const Tensor& t);
float MinAll(const Tensor& t);

/// Sum over `axis`; `keepdim` retains the reduced dimension with size 1.
Tensor Sum(const Tensor& t, int64_t axis, bool keepdim = false);
Tensor Mean(const Tensor& t, int64_t axis, bool keepdim = false);
/// Population variance (divide by n) over `axis`.
Tensor Variance(const Tensor& t, int64_t axis, bool keepdim = false);
Tensor MaxAlong(const Tensor& t, int64_t axis, bool keepdim = false);

/// Index of the max element along the last axis; output drops that axis.
std::vector<int64_t> ArgMaxLast(const Tensor& t);

// ---------------------------------------------------------------------------
// Neural-net primitives (used by autograd backward passes too).
// ---------------------------------------------------------------------------

/// Softmax over the last axis (numerically stabilized).
Tensor Softmax(const Tensor& t);
/// Log-softmax over the last axis.
Tensor LogSoftmax(const Tensor& t);

// ---------------------------------------------------------------------------
// Destination-passing variants, used by the graph interpreter (src/graph/) to
// write results into memory-planner slots instead of fresh pool buffers.
// `out` must be contiguous with the exact output shape; contents are
// overwritten. Each is bit-identical to its allocating counterpart (same
// kernel, same accumulation order).
// ---------------------------------------------------------------------------

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out);
void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out);
void SumInto(const Tensor& t, int64_t axis, bool keepdim, Tensor* out);
void SoftmaxInto(const Tensor& t, Tensor* out);
void ConcatInto(const std::vector<Tensor>& parts, int64_t axis, Tensor* out);

/// Frobenius / L2 norm of all elements.
float Norm(const Tensor& t);

/// Max absolute elementwise difference; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

/// True if all elements of `a` and `b` are within `atol`.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace tsfm

#endif  // TSFM_TENSOR_OPS_H_
