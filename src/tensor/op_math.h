#ifndef TSFM_TENSOR_OP_MATH_H_
#define TSFM_TENSOR_OP_MATH_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/tensor.h"

// Shared scalar math for elementwise kernels.
//
// Every transcendental the encoder touches (GELU, sigmoid, softmax rows) is
// defined exactly once and used by BOTH the eager kernels (tensor/ops.cc)
// and the graph interpreter's fused loops (src/graph/). This is part of the
// determinism contract: a fused loop applies the same scalar operations, in
// the same order, as the chain of eager ops it replaces, so graph mode can
// never drift numerically from eager mode.
//
// GeluScalar and SigmoidScalar are deliberately OUT-OF-LINE (op_math.cc,
// compiled into tsfm_tensor): their bodies contain mul+add chains, and under
// -ffp-contract=fast two inlined copies in TUs with different codegen flags
// contract differently, producing 1-ulp divergence between eager and graph
// mode. A single machine-code instance makes bit-identity structural rather
// than a codegen accident. Single-operation helpers (ReluScalar) have
// nothing to contract and stay inline.
namespace tsfm::ops::detail {

/// GELU, tanh approximation as used by transformers.
float GeluScalar(float x);

float SigmoidScalar(float x);

inline float ReluScalar(float x) { return x > 0.0f ? x : 0.0f; }

/// Scans a row once, returning the max over non-NaN entries (-inf when every
/// entry is NaN or `len` is 0) and whether any entry was NaN. Shared by the
/// softmax kernels' non-finite handling.
inline float RowMaxSkipNan(const float* row, int64_t len, bool* has_nan) {
  float mx = -std::numeric_limits<float>::infinity();
  bool nan = false;
  for (int64_t i = 0; i < len; ++i) {
    const float v = row[i];
    if (v != v) {
      nan = true;
    } else {
      mx = std::max(mx, v);
    }
  }
  *has_nan = nan;
  return mx;
}

/// Numerically stabilized softmax of one dense row; `out` may alias `row`.
/// The accumulation order (ascending index, float accumulator) is the
/// contract both the eager Softmax kernel and graph replay rely on.
///
/// Non-finite contract (the max-subtraction alone cannot rescue these rows —
/// exp(-inf - -inf) and exp(nan) both poison the denominator):
///   * any NaN entry          -> the whole row is NaN (poison propagates);
///   * all entries -inf       -> uniform 1/len (no information = uniform);
///   * any +inf entry         -> mass split equally over the +inf entries,
///                               exactly 0 elsewhere;
///   * finite rows (including +/-FLT_MAX) -> bit-identical to the classic
///     max-subtracted kernel below.
inline void SoftmaxRow(const float* row, float* out, int64_t len) {
  bool has_nan = false;
  const float mx = RowMaxSkipNan(row, len, &has_nan);
  if (has_nan) {
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    for (int64_t i = 0; i < len; ++i) out[i] = qnan;
    return;
  }
  if (mx == std::numeric_limits<float>::infinity()) {
    int64_t count = 0;
    for (int64_t i = 0; i < len; ++i) count += (row[i] == mx) ? 1 : 0;
    const float share = 1.0f / static_cast<float>(count);
    for (int64_t i = 0; i < len; ++i) out[i] = (row[i] == mx) ? share : 0.0f;
    return;
  }
  if (mx == -std::numeric_limits<float>::infinity()) {
    const float share = 1.0f / static_cast<float>(len);
    for (int64_t i = 0; i < len; ++i) out[i] = share;
    return;
  }
  float denom = 0.0f;
  for (int64_t i = 0; i < len; ++i) {
    out[i] = std::exp(row[i] - mx);
    denom += out[i];
  }
  const float inv = 1.0f / denom;
  for (int64_t i = 0; i < len; ++i) out[i] *= inv;
}

/// Log-softmax of one dense row; `out` may alias `row`. Same non-finite
/// contract as SoftmaxRow, expressed in log space: NaN rows poison, all--inf
/// rows are uniform (-log(len)), +inf entries take -log(count) with -inf
/// everywhere else.
inline void LogSoftmaxRow(const float* row, float* out, int64_t len) {
  bool has_nan = false;
  const float mx = RowMaxSkipNan(row, len, &has_nan);
  if (has_nan) {
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    for (int64_t i = 0; i < len; ++i) out[i] = qnan;
    return;
  }
  if (mx == std::numeric_limits<float>::infinity()) {
    int64_t count = 0;
    for (int64_t i = 0; i < len; ++i) count += (row[i] == mx) ? 1 : 0;
    const float log_share = -std::log(static_cast<float>(count));
    for (int64_t i = 0; i < len; ++i) {
      out[i] = (row[i] == mx) ? log_share
                              : -std::numeric_limits<float>::infinity();
    }
    return;
  }
  if (mx == -std::numeric_limits<float>::infinity()) {
    const float log_share = -std::log(static_cast<float>(len));
    for (int64_t i = 0; i < len; ++i) out[i] = log_share;
    return;
  }
  float denom = 0.0f;
  for (int64_t i = 0; i < len; ++i) denom += std::exp(row[i] - mx);
  const float log_denom = std::log(denom) + mx;
  for (int64_t i = 0; i < len; ++i) out[i] = row[i] - log_denom;
}

/// Row-major strides for `shape`.
inline std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> s(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] = s[static_cast<size_t>(i + 1)] *
                                shape[static_cast<size_t>(i + 1)];
  }
  return s;
}

/// Strides for reading tensor `t` (which may itself be a strided view) as if
/// broadcast to `out_shape`: the view's actual strides on matching dims, 0 on
/// broadcast dims. `t.shape()` is right-aligned against `out_shape`. Lets
/// strided kernels consume views without materializing them.
inline std::vector<int64_t> BroadcastViewStrides(const Tensor& t,
                                                 const Shape& out_shape) {
  const Shape& shape = t.shape();
  std::vector<int64_t> out(out_shape.size(), 0);
  const int64_t offset = static_cast<int64_t>(out_shape.size()) -
                         static_cast<int64_t>(shape.size());
  for (size_t i = 0; i < shape.size(); ++i) {
    const size_t oi = static_cast<size_t>(offset) + i;
    if (shape[i] == out_shape[oi]) {
      out[oi] = t.strides()[i];
    } else {
      TSFM_CHECK_EQ(shape[i], 1)
          << "broadcast mismatch " << ShapeToString(shape) << " vs "
          << ShapeToString(out_shape);
      out[oi] = 0;
    }
  }
  return out;
}

}  // namespace tsfm::ops::detail

#endif  // TSFM_TENSOR_OP_MATH_H_
