#ifndef TSFM_TENSOR_OP_MATH_H_
#define TSFM_TENSOR_OP_MATH_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

// Shared scalar math for elementwise kernels.
//
// Every transcendental the encoder touches (GELU, sigmoid, softmax rows) is
// defined exactly once and used by BOTH the eager kernels (tensor/ops.cc)
// and the graph interpreter's fused loops (src/graph/). This is part of the
// determinism contract: a fused loop applies the same scalar operations, in
// the same order, as the chain of eager ops it replaces, so graph mode can
// never drift numerically from eager mode.
//
// GeluScalar and SigmoidScalar are deliberately OUT-OF-LINE (op_math.cc,
// compiled into tsfm_tensor): their bodies contain mul+add chains, and under
// -ffp-contract=fast two inlined copies in TUs with different codegen flags
// contract differently, producing 1-ulp divergence between eager and graph
// mode. A single machine-code instance makes bit-identity structural rather
// than a codegen accident. Single-operation helpers (ReluScalar) have
// nothing to contract and stay inline.
namespace tsfm::ops::detail {

/// GELU, tanh approximation as used by transformers.
float GeluScalar(float x);

float SigmoidScalar(float x);

inline float ReluScalar(float x) { return x > 0.0f ? x : 0.0f; }

/// Numerically stabilized softmax of one dense row; `out` may alias `row`.
/// The accumulation order (ascending index, float accumulator) is the
/// contract both the eager Softmax kernel and graph replay rely on.
inline void SoftmaxRow(const float* row, float* out, int64_t len) {
  float mx = row[0];
  for (int64_t i = 1; i < len; ++i) mx = std::max(mx, row[i]);
  float denom = 0.0f;
  for (int64_t i = 0; i < len; ++i) {
    out[i] = std::exp(row[i] - mx);
    denom += out[i];
  }
  const float inv = 1.0f / denom;
  for (int64_t i = 0; i < len; ++i) out[i] *= inv;
}

/// Log-softmax of one dense row; `out` may alias `row`.
inline void LogSoftmaxRow(const float* row, float* out, int64_t len) {
  float mx = row[0];
  for (int64_t i = 1; i < len; ++i) mx = std::max(mx, row[i]);
  float denom = 0.0f;
  for (int64_t i = 0; i < len; ++i) denom += std::exp(row[i] - mx);
  const float log_denom = std::log(denom) + mx;
  for (int64_t i = 0; i < len; ++i) out[i] = row[i] - log_denom;
}

/// Row-major strides for `shape`.
inline std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> s(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] = s[static_cast<size_t>(i + 1)] *
                                shape[static_cast<size_t>(i + 1)];
  }
  return s;
}

/// Strides for reading tensor `t` (which may itself be a strided view) as if
/// broadcast to `out_shape`: the view's actual strides on matching dims, 0 on
/// broadcast dims. `t.shape()` is right-aligned against `out_shape`. Lets
/// strided kernels consume views without materializing them.
inline std::vector<int64_t> BroadcastViewStrides(const Tensor& t,
                                                 const Shape& out_shape) {
  const Shape& shape = t.shape();
  std::vector<int64_t> out(out_shape.size(), 0);
  const int64_t offset = static_cast<int64_t>(out_shape.size()) -
                         static_cast<int64_t>(shape.size());
  for (size_t i = 0; i < shape.size(); ++i) {
    const size_t oi = static_cast<size_t>(offset) + i;
    if (shape[i] == out_shape[oi]) {
      out[oi] = t.strides()[i];
    } else {
      TSFM_CHECK_EQ(shape[i], 1)
          << "broadcast mismatch " << ShapeToString(shape) << " vs "
          << ShapeToString(out_shape);
      out[oi] = 0;
    }
  }
  return out;
}

}  // namespace tsfm::ops::detail

#endif  // TSFM_TENSOR_OP_MATH_H_
