#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/simd_math.h"
#include "tensor/op_math.h"

namespace tsfm {

namespace {

// Scalar math shared with the graph interpreter's fused loops; see
// tensor/op_math.h for why these must be the single definition.
using ops::detail::BroadcastViewStrides;
using ops::detail::RowMajorStrides;

// Work counters, one atomic add per *op call* (never per element): FLOPs
// through the matmul kernel and bytes moved by elementwise/unary kernels.
// Together they turn a trace or metrics snapshot into a roofline estimate —
// spans give the seconds, these give the work done in them.
struct OpMetrics {
  obs::Counter* matmul_calls;
  obs::Counter* matmul_flops;
  obs::Counter* elementwise_calls;
  obs::Counter* elementwise_bytes;
  obs::Counter* reduce_calls;
};

OpMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static OpMetrics m{r.GetCounter("tensor.matmul_calls"),
                     r.GetCounter("tensor.matmul_flops"),
                     r.GetCounter("tensor.elementwise_calls"),
                     r.GetCounter("tensor.elementwise_bytes"),
                     r.GetCounter("tensor.reduce_calls")};
  return m;
}

// Elementwise kernels dispatch through ParallelFor with this grain, so
// tensors smaller than one chunk run inline with zero scheduling cost.
constexpr int64_t kElementwiseGrain = 1 << 14;
// Reductions use a larger grain: chunk boundaries are part of the
// determinism contract, so the value must not depend on the thread count.
constexpr int64_t kReduceGrain = 1 << 16;

// Strides for reading `shape` as if broadcast to `out_shape` (0 stride on
// broadcast dims). `shape` is right-aligned against `out_shape`. Used by
// MatMul for its synthetic batch shapes, which are always dense.
std::vector<int64_t> BroadcastStrides(const Shape& shape,
                                      const Shape& out_shape) {
  const std::vector<int64_t> in_strides = RowMajorStrides(shape);
  std::vector<int64_t> out(out_shape.size(), 0);
  const int64_t offset =
      static_cast<int64_t>(out_shape.size()) - static_cast<int64_t>(shape.size());
  for (size_t i = 0; i < shape.size(); ++i) {
    const size_t oi = static_cast<size_t>(offset) + i;
    if (shape[i] == out_shape[oi]) {
      out[oi] = in_strides[i];
    } else {
      TSFM_CHECK_EQ(shape[i], 1)
          << "broadcast mismatch " << ShapeToString(shape) << " vs "
          << ShapeToString(out_shape);
      out[oi] = 0;
    }
  }
  return out;
}

template <typename F>
Tensor BinaryOp(const Tensor& a, const Tensor& b, F f) {
  OpMetrics& m = Metrics();
  m.elementwise_calls->Add(1);
  if (a.shape() == b.shape() && a.is_contiguous() && b.is_contiguous()) {
    m.elementwise_bytes->Add(
        static_cast<uint64_t>(3 * a.numel() * sizeof(float)));
    Tensor out = Tensor::Empty(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.mutable_data();
    runtime::ParallelFor(0, a.numel(), kElementwiseGrain,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) {
                             po[i] = f(pa[i], pb[i]);
                           }
                         });
    return out;
  }
  // Strided/broadcast path: reads go through each input's actual strides, so
  // views (slices, transposes) are consumed in place with no materialize.
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  m.elementwise_bytes->Add(static_cast<uint64_t>(
      (a.numel() + b.numel() + NumElements(out_shape)) * sizeof(float)));
  Tensor out = Tensor::Empty(out_shape);
  const auto sa = BroadcastViewStrides(a, out_shape);
  const auto sb = BroadcastViewStrides(b, out_shape);
  const auto so = RowMajorStrides(out_shape);
  const int64_t nd = static_cast<int64_t>(out_shape.size());
  const float* pa = a.base();
  const float* pb = b.base();
  float* po = out.mutable_data();

  // Row fast path: when the last axis is dense (unit or broadcast stride) on
  // both inputs — bias adds, per-row statistics, affine gains all land here —
  // the odometer runs once per ROW instead of once per element, and the
  // dense inner loops vectorize. Results are pointwise identical to the
  // generic path; only the index arithmetic changes.
  const int64_t row_len = out_shape.empty() ? 0 : out_shape[nd - 1];
  const bool a_dense = nd > 0 && (sa[nd - 1] == 1 || sa[nd - 1] == 0);
  const bool b_dense = nd > 0 && (sb[nd - 1] == 1 || sb[nd - 1] == 0);
  if (row_len >= 8 && a_dense && b_dense) {
    const int64_t rows = out.numel() / row_len;
    const bool a_unit = sa[nd - 1] == 1;
    const bool b_unit = sb[nd - 1] == 1;
    const int64_t grain =
        std::max<int64_t>(1, kElementwiseGrain / row_len);
    runtime::ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        int64_t ia = 0, ib = 0, rem = r;
        for (int64_t d = 0; d + 1 < nd; ++d) {
          const int64_t outer = so[d] / row_len;
          const int64_t idx = rem / outer;
          rem -= idx * outer;
          ia += idx * sa[d];
          ib += idx * sb[d];
        }
        const float* ra = pa + ia;
        const float* rb = pb + ib;
        float* ro = po + r * row_len;
        if (a_unit && b_unit) {
          for (int64_t i = 0; i < row_len; ++i) ro[i] = f(ra[i], rb[i]);
        } else if (a_unit) {
          const float y = rb[0];
          for (int64_t i = 0; i < row_len; ++i) ro[i] = f(ra[i], y);
        } else if (b_unit) {
          const float x = ra[0];
          for (int64_t i = 0; i < row_len; ++i) ro[i] = f(x, rb[i]);
        } else {
          const float v = f(ra[0], rb[0]);
          for (int64_t i = 0; i < row_len; ++i) ro[i] = v;
        }
      }
    });
    return out;
  }

  runtime::ParallelFor(
      0, out.numel(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          int64_t ia = 0, ib = 0, rem = i;
          for (int64_t d = 0; d < nd; ++d) {
            const int64_t idx = rem / so[d];
            rem -= idx * so[d];
            ia += idx * sa[d];
            ib += idx * sb[d];
          }
          po[i] = f(pa[ia], pb[ib]);
        }
      });
  return out;
}

template <typename F>
Tensor UnaryOp(const Tensor& t, F f) {
  OpMetrics& m = Metrics();
  m.elementwise_calls->Add(1);
  m.elementwise_bytes->Add(
      static_cast<uint64_t>(2 * t.numel() * sizeof(float)));
  Tensor out = Tensor::Empty(t.shape());
  float* po = out.mutable_data();
  if (t.is_contiguous()) {
    const float* p = t.data();
    runtime::ParallelFor(0, t.numel(), kElementwiseGrain,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) po[i] = f(p[i]);
                         });
    return out;
  }
  // Strided view input: gather through the view's strides.
  const float* p = t.base();
  const auto& st = t.strides();
  const auto so = RowMajorStrides(t.shape());
  const int64_t nd = t.ndim();
  runtime::ParallelFor(
      0, t.numel(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          int64_t src = 0, rem = i;
          for (int64_t d = 0; d < nd; ++d) {
            const int64_t idx = rem / so[static_cast<size_t>(d)];
            rem -= idx * so[static_cast<size_t>(d)];
            src += idx * st[static_cast<size_t>(d)];
          }
          po[i] = f(p[src]);
        }
      });
  return out;
}

// SIMD-mode unary: vectorized row kernel on the contiguous fast path, the
// kernel's scalar reference on the strided gather path. Each row kernel is
// bit-identical to its scalar reference applied element-wise, at any split
// point (simd/simd_math.h), so contiguity, chunk boundaries, and thread
// count cannot change output bits.
using RowKernel = void (*)(const float*, float*, int64_t);
using ScalarKernel = float (*)(float);
Tensor UnaryRowOp(const Tensor& t, RowKernel row, ScalarKernel scal) {
  if (!t.is_contiguous()) return UnaryOp(t, scal);
  OpMetrics& m = Metrics();
  m.elementwise_calls->Add(1);
  m.elementwise_bytes->Add(
      static_cast<uint64_t>(2 * t.numel() * sizeof(float)));
  Tensor out = Tensor::Empty(t.shape());
  float* po = out.mutable_data();
  const float* p = t.data();
  runtime::ParallelFor(0, t.numel(), kElementwiseGrain,
                       [&](int64_t lo, int64_t hi) {
                         row(p + lo, po + lo, hi - lo);
                       });
  return out;
}

// Collapses a shape into (outer, axis_len, inner) around `axis`.
void SplitAroundAxis(const Shape& shape, int64_t axis, int64_t* outer,
                     int64_t* len, int64_t* inner) {
  const int64_t nd = static_cast<int64_t>(shape.size());
  TSFM_CHECK_GE(axis, 0);
  TSFM_CHECK_LT(axis, nd);
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape[i];
  *len = shape[axis];
  for (int64_t i = axis + 1; i < nd; ++i) *inner *= shape[i];
}

int64_t NormalizeAxis(int64_t axis, int64_t ndim) {
  if (axis < 0) axis += ndim;
  TSFM_CHECK_GE(axis, 0);
  TSFM_CHECK_LT(axis, ndim);
  return axis;
}

Shape ReducedShape(const Shape& shape, int64_t axis, bool keepdim) {
  Shape out = shape;
  if (keepdim) {
    out[static_cast<size_t>(axis)] = 1;
  } else {
    out.erase(out.begin() + axis);
  }
  return out;
}

}  // namespace

bool ShapesBroadcastable(const Shape& a, const Shape& b) {
  const size_t n = std::max(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  TSFM_CHECK(ShapesBroadcastable(a, b))
      << ShapeToString(a) << " vs " << ShapeToString(b);
  const size_t n = std::max(a.size(), b.size());
  Shape out(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    out[n - 1 - i] = std::max(da, db);
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  TSFM_CHECK(ShapesBroadcastable(t.shape(), target));
  // Sum along all axes where target (right-aligned) is 1 or missing.
  Tensor cur = t;
  // First, sum away leading extra dims.
  while (cur.ndim() > static_cast<int64_t>(target.size())) {
    cur = Sum(cur, 0, /*keepdim=*/false);
  }
  for (int64_t d = 0; d < cur.ndim(); ++d) {
    if (target[static_cast<size_t>(d)] == 1 && cur.dim(d) != 1) {
      cur = Sum(cur, d, /*keepdim=*/true);
    }
  }
  TSFM_CHECK(cur.shape() == target)
      << "cannot reduce " << ShapeToString(t.shape()) << " to "
      << ShapeToString(target);
  return cur;
}

Tensor Neg(const Tensor& t) {
  return UnaryOp(t, [](float x) { return -x; });
}
Tensor Exp(const Tensor& t) {
  if (simd::SimdEnabled()) return UnaryRowOp(t, simd::ExpRow, simd::ExpS);
  return UnaryOp(t, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& t) {
  return UnaryOp(t, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& t) {
  return UnaryOp(t, [](float x) { return std::sqrt(x); });
}
Tensor Tanh(const Tensor& t) {
  if (simd::SimdEnabled()) return UnaryRowOp(t, simd::TanhRow, simd::TanhS);
  return UnaryOp(t, [](float x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& t) {
  if (simd::SimdEnabled()) {
    return UnaryRowOp(t, simd::SigmoidRow, simd::SigmoidS);
  }
  return UnaryOp(t, [](float x) { return ops::detail::SigmoidScalar(x); });
}
Tensor Relu(const Tensor& t) {
  return UnaryOp(t, [](float x) { return ops::detail::ReluScalar(x); });
}
Tensor Gelu(const Tensor& t) {
  if (simd::SimdEnabled()) return UnaryRowOp(t, simd::GeluRow, simd::GeluS);
  return UnaryOp(t, [](float x) { return ops::detail::GeluScalar(x); });
}
Tensor Abs(const Tensor& t) {
  return UnaryOp(t, [](float x) { return std::fabs(x); });
}
Tensor Square(const Tensor& t) {
  return UnaryOp(t, [](float x) { return x * x; });
}
Tensor Scale(const Tensor& t, float s) {
  return UnaryOp(t, [s](float x) { return x * s; });
}
Tensor AddScalar(const Tensor& t, float s) {
  return UnaryOp(t, [s](float x) { return x + s; });
}
Tensor Pow(const Tensor& t, float p) {
  return UnaryOp(t, [p](float x) { return std::pow(x, p); });
}

namespace {

// Register-blocked GEMM tile: kMr C rows are accumulated against kNr C
// columns in a local array small enough to live in vector registers, so a
// B row segment is loaded once per kMr rows instead of once per row, and
// kMr independent accumulation chains hide FMA latency. The column width
// tracks the widest vector unit the build targets (2 vector registers per
// row). Every output element still accumulates its k products in
// ascending-k order, so the result is independent of the tiling and of the
// thread count.
#if defined(__AVX512F__)
constexpr int kNr = 32;
#elif defined(__AVX__)
constexpr int kNr = 16;
#else
constexpr int kNr = 8;
#endif
constexpr int kMr = 6;
// Rows per parallel task (a multiple of kMr so parallel splits and the
// serial path tile rows identically).
constexpr int64_t kRowsPerBlock = 60;

// C[r0:r1, :] = A[r0:r1, :] * B for one (m, k) x (k, n) problem. Tiling is
// anchored at r0, so callers must pass r0 aligned to the same row-block
// grid regardless of how the row range is split.
void MatMulRowRange(const float* pa, const float* pb, float* po, int64_t r0,
                    int64_t r1, int64_t k, int64_t n) {
  for (int64_t i0 = r0; i0 < r1; i0 += kMr) {
    const int64_t mr = std::min<int64_t>(kMr, r1 - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNr) {
      const int64_t nr = std::min<int64_t>(kNr, n - j0);
      float acc[kMr * kNr] = {0.0f};
      if (mr == kMr && nr == kNr) {
        // Full tile: fixed trip counts, fully unrolled and vectorized.
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* brow = pb + kk * n + j0;
          for (int ii = 0; ii < kMr; ++ii) {
            const float av = pa[(i0 + ii) * k + kk];
            for (int jj = 0; jj < kNr; ++jj) {
              acc[ii * kNr + jj] += av * brow[jj];
            }
          }
        }
      } else {
        // Edge tile (m % kMr, n % kNr remainders).
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* brow = pb + kk * n + j0;
          for (int64_t ii = 0; ii < mr; ++ii) {
            const float av = pa[(i0 + ii) * k + kk];
            for (int64_t jj = 0; jj < nr; ++jj) {
              acc[ii * kNr + jj] += av * brow[jj];
            }
          }
        }
      }
      for (int64_t ii = 0; ii < mr; ++ii) {
        float* crow = po + (i0 + ii) * n + j0;
        for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = acc[ii * kNr + jj];
      }
    }
  }
}

// C[r0:r1, :] = A[r0:r1, :] x B^T for one (m, k) x (n, k) problem: `pb`
// holds the *untransposed* B, read strided along its rows. The loop nest is
// a line-for-line mirror of MatMulRowRange — same tile shape, same nesting,
// same accumulator layout — with only the B addressing changed. That is a
// determinism requirement, not a style choice: under -ffp-contract=fast the
// compiler fuses mul+add per accumulation step, and only a structurally
// identical nest is guaranteed to contract identically, which is what makes
// folding a TransposeLast2 into the matmul bit-exact against the eager
// MatMul-on-packed-B^T path (guarded by the graph pass property test).
void MatMulTransBRowRange(const float* pa, const float* pb, float* po,
                          int64_t r0, int64_t r1, int64_t k, int64_t n) {
  for (int64_t i0 = r0; i0 < r1; i0 += kMr) {
    const int64_t mr = std::min<int64_t>(kMr, r1 - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNr) {
      const int64_t nr = std::min<int64_t>(kNr, n - j0);
      float acc[kMr * kNr] = {0.0f};
      if (mr == kMr && nr == kNr) {
        // Full tile: fixed trip counts, fully unrolled and vectorized.
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* bcol = pb + kk;  // element jj of this k-slice: bcol[(j0+jj)*k]
          for (int ii = 0; ii < kMr; ++ii) {
            const float av = pa[(i0 + ii) * k + kk];
            for (int jj = 0; jj < kNr; ++jj) {
              acc[ii * kNr + jj] += av * bcol[(j0 + jj) * k];
            }
          }
        }
      } else {
        // Edge tile (m % kMr, n % kNr remainders).
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* bcol = pb + kk;
          for (int64_t ii = 0; ii < mr; ++ii) {
            const float av = pa[(i0 + ii) * k + kk];
            for (int64_t jj = 0; jj < nr; ++jj) {
              acc[ii * kNr + jj] += av * bcol[(j0 + jj) * k];
            }
          }
        }
      }
      for (int64_t ii = 0; ii < mr; ++ii) {
        float* crow = po + (i0 + ii) * n + j0;
        for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = acc[ii * kNr + jj];
      }
    }
  }
}

// Shared batched-GEMM driver for MatMulInto / MatMulTransBInto. `bn` and
// `bk` are B's row count and row length as laid out in memory; `kernel`
// computes one (m, k) x B problem for a row range of C.
template <typename Kernel>
void BatchedMatMul(const Tensor& a, const Tensor& b, Tensor* out, int64_t m,
                   int64_t k, int64_t n, Kernel kernel) {
  // The register-blocked kernels need dense row-major operands; strided
  // views (e.g. TransposeLast2 results) are packed once into pooled scratch
  // that is released as soon as the product is computed.
  const Tensor a_dense = a.Contiguous();
  const Tensor b_dense = b.Contiguous();

  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = BroadcastShapes(a_batch, b_batch);
  const int64_t nbatch = NumElements(batch);

  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  TSFM_CHECK(out->shape() == out_shape)
      << "matmul out " << ShapeToString(out->shape()) << " vs "
      << ShapeToString(out_shape);

  OpMetrics& om = Metrics();
  om.matmul_calls->Add(1);
  om.matmul_flops->Add(static_cast<uint64_t>(2 * nbatch * m * k * n));

  const auto sa = BroadcastStrides(a_batch, batch);
  const auto sb = BroadcastStrides(b_batch, batch);
  const auto sbatch = RowMajorStrides(batch);
  const int64_t nd = static_cast<int64_t>(batch.size());
  const int64_t b_numel = b_dense.dim(-2) * b_dense.dim(-1);

  const float* pa0 = a_dense.data();
  const float* pb0 = b_dense.data();
  float* po0 = out->mutable_data();

  // One task per (batch, row-block); the grain keeps chunks above ~1 MFLOP
  // so small matmuls stay inline. Tasks write disjoint C row ranges, and the
  // kernel's per-element accumulation order is fixed, so the result is
  // bit-identical for every thread count.
  const int64_t row_blocks = (m + kRowsPerBlock - 1) / kRowsPerBlock;
  const int64_t total_blocks = nbatch * row_blocks;
  const int64_t block_flops =
      2 * std::min(m, kRowsPerBlock) * std::max<int64_t>(k, 1) *
      std::max<int64_t>(n, 1);
  const int64_t grain =
      std::max<int64_t>(1, (1 << 20) / std::max<int64_t>(block_flops, 1));
  runtime::ParallelFor(
      0, total_blocks, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t task = lo; task < hi; ++task) {
          const int64_t batch_idx = task / row_blocks;
          const int64_t block = task % row_blocks;
          int64_t ia = 0, ib = 0, rem = batch_idx;
          for (int64_t d = 0; d < nd; ++d) {
            const int64_t idx = rem / sbatch[d];
            rem -= idx * sbatch[d];
            ia += idx * sa[d];
            ib += idx * sb[d];
          }
          const float* pa = pa0 + ia * m * k;
          const float* pb = pb0 + ib * b_numel;
          float* po = po0 + batch_idx * m * n;
          const int64_t r0 = block * kRowsPerBlock;
          const int64_t r1 = std::min(m, r0 + kRowsPerBlock);
          kernel(pa, pb, po, r0, r1, k, n);
        }
      });
}

}  // namespace

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  TSFM_TRACE_SPAN("tensor.matmul");
  TSFM_CHECK_GE(a.ndim(), 2);
  TSFM_CHECK_GE(b.ndim(), 2);
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t k2 = b.dim(-2);
  const int64_t n = b.dim(-1);
  TSFM_CHECK_EQ(k, k2) << "matmul inner dims " << ShapeToString(a.shape())
                       << " x " << ShapeToString(b.shape());
  BatchedMatMul(a, b, out, m, k, n, MatMulRowRange);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TSFM_CHECK_GE(a.ndim(), 2);
  TSFM_CHECK_GE(b.ndim(), 2);
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  Shape out_shape = BroadcastShapes(a_batch, b_batch);
  out_shape.push_back(a.dim(-2));
  out_shape.push_back(b.dim(-1));
  Tensor out = Tensor::Empty(out_shape);
  MatMulInto(a, b, &out);
  return out;
}

void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out) {
  TSFM_TRACE_SPAN("tensor.matmul");
  TSFM_CHECK_GE(a.ndim(), 2);
  TSFM_CHECK_GE(b.ndim(), 2);
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t n = b.dim(-2);
  const int64_t k2 = b.dim(-1);
  TSFM_CHECK_EQ(k, k2) << "matmul_transb inner dims "
                       << ShapeToString(a.shape()) << " x "
                       << ShapeToString(b.shape()) << "^T";
  BatchedMatMul(a, b, out, m, k, n, MatMulTransBRowRange);
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  TSFM_CHECK_GE(a.ndim(), 2);
  TSFM_CHECK_GE(b.ndim(), 2);
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  Shape out_shape = BroadcastShapes(a_batch, b_batch);
  out_shape.push_back(a.dim(-2));
  out_shape.push_back(b.dim(-2));
  Tensor out = Tensor::Empty(out_shape);
  MatMulTransBInto(a, b, &out);
  return out;
}

Tensor TransposeLast2(const Tensor& t) {
  std::vector<int64_t> perm(t.ndim());
  for (int64_t i = 0; i < t.ndim(); ++i) perm[static_cast<size_t>(i)] = i;
  TSFM_CHECK_GE(t.ndim(), 2);
  std::swap(perm[perm.size() - 1], perm[perm.size() - 2]);
  return t.PermuteAxes(perm);
}

Tensor Permute(const Tensor& t, const std::vector<int64_t>& perm) {
  return t.PermuteAxes(perm);
}

Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t end) {
  axis = NormalizeAxis(axis, t.ndim());
  TSFM_CHECK_LE(start, end);
  return t.Narrow(axis, start, end - start);
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  TSFM_CHECK(!parts.empty());
  const int64_t nd = parts[0].ndim();
  axis = NormalizeAxis(axis, nd);
  int64_t total = 0;
  for (const Tensor& p : parts) {
    TSFM_CHECK_EQ(p.ndim(), nd);
    for (int64_t d = 0; d < nd; ++d) {
      if (d != axis) {
        TSFM_CHECK_EQ(p.dim(d), parts[0].dim(d));
      }
    }
    total += p.dim(axis);
  }
  Shape out_shape = parts[0].shape();
  out_shape[static_cast<size_t>(axis)] = total;
  Tensor out = Tensor::Empty(out_shape);
  ConcatInto(parts, axis, &out);
  return out;
}

void ConcatInto(const std::vector<Tensor>& parts, int64_t axis, Tensor* out) {
  TSFM_CHECK(!parts.empty());
  axis = NormalizeAxis(axis, parts[0].ndim());
  int64_t outer, alen, inner;
  SplitAroundAxis(out->shape(), axis, &outer, &alen, &inner);
  float* po = out->mutable_data();
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const Tensor pd = p.Contiguous();
    const int64_t plen = pd.dim(axis);
    const float* pi = pd.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(pi + o * plen * inner, pi + (o + 1) * plen * inner,
                po + (o * alen + offset) * inner);
    }
    offset += plen;
  }
  TSFM_CHECK_EQ(offset, alen);
}

Tensor TakeRows(const Tensor& t, const std::vector<int64_t>& rows) {
  TSFM_CHECK_GE(t.ndim(), 1);
  const Tensor td = t.Contiguous();
  const int64_t n0 = td.dim(0);
  const int64_t inner = td.numel() / std::max<int64_t>(n0, 1);
  Shape out_shape = td.shape();
  out_shape[0] = static_cast<int64_t>(rows.size());
  Tensor out = Tensor::Empty(out_shape);
  const float* pi = td.data();
  float* po = out.mutable_data();
  for (size_t r = 0; r < rows.size(); ++r) {
    const int64_t src = rows[r];
    TSFM_CHECK_GE(src, 0);
    TSFM_CHECK_LT(src, n0);
    std::copy(pi + src * inner, pi + (src + 1) * inner,
              po + static_cast<int64_t>(r) * inner);
  }
  return out;
}

float SumAll(const Tensor& t) {
  // Double accumulation: the reductions feed statistics (mean/variance)
  // where float32 accumulation loses precision for large tensors. Chunked
  // partials combine in index order, so the value is thread-count
  // independent (chunk boundaries depend only on numel).
  TSFM_TRACE_SPAN("tensor.sum_all");
  Metrics().reduce_calls->Add(1);
  const Tensor td = t.Contiguous();
  const float* p = td.data();
  const double sum = runtime::ParallelReduce(
      0, t.numel(), kReduceGrain, 0.0,
      [p](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i) s += p[i];
        return s;
      },
      [](double acc, double part) { return acc + part; });
  return static_cast<float>(sum);
}

float MeanAll(const Tensor& t) {
  TSFM_CHECK_GT(t.numel(), 0);
  return SumAll(t) / static_cast<float>(t.numel());
}

float MaxAll(const Tensor& t) {
  TSFM_CHECK_GT(t.numel(), 0);
  const Tensor td = t.Contiguous();
  const float* p = td.data();
  return *std::max_element(p, p + td.numel());
}

float MinAll(const Tensor& t) {
  TSFM_CHECK_GT(t.numel(), 0);
  const Tensor td = t.Contiguous();
  const float* p = td.data();
  return *std::min_element(p, p + td.numel());
}

void SumInto(const Tensor& t, int64_t axis, bool keepdim, Tensor* out) {
  TSFM_TRACE_SPAN("tensor.sum");
  Metrics().reduce_calls->Add(1);
  axis = NormalizeAxis(axis, t.ndim());
  const Tensor td = t.Contiguous();
  int64_t outer, len, inner;
  SplitAroundAxis(td.shape(), axis, &outer, &len, &inner);
  TSFM_CHECK(out->shape() == ReducedShape(td.shape(), axis, keepdim));
  const float* pi = td.data();
  float* po = out->mutable_data();
  std::fill(po, po + out->numel(), 0.0f);
  // Parallel over `outer` only: each output element keeps its serial
  // ascending-l accumulation order, so results are bit-identical to the
  // single-threaded loop.
  const int64_t grain =
      std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, len * inner));
  if (inner == 1) {
    // Last-axis reduction (layer-norm statistics): keep the accumulator in
    // a register instead of re-loading po[o] every step. Same ascending-l
    // addition order as the generic loop, so the float result is
    // bit-identical.
    runtime::ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t o = lo; o < hi; ++o) {
        const float* src = pi + o * len;
        float acc = 0.0f;
        for (int64_t l = 0; l < len; ++l) acc += src[l];
        po[o] = acc;
      }
    });
    return;
  }
  runtime::ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t l = 0; l < len; ++l) {
        const float* src = pi + (o * len + l) * inner;
        float* dst = po + o * inner;
        for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
      }
    }
  });
}

Tensor Sum(const Tensor& t, int64_t axis, bool keepdim) {
  Tensor out = Tensor::Empty(
      ReducedShape(t.shape(), NormalizeAxis(axis, t.ndim()), keepdim));
  SumInto(t, axis, keepdim, &out);
  return out;
}

Tensor Mean(const Tensor& t, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, t.ndim());
  const float inv = 1.0f / static_cast<float>(t.dim(axis));
  return Scale(Sum(t, axis, keepdim), inv);
}

Tensor Variance(const Tensor& t, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, t.ndim());
  Tensor mu = Mean(t, axis, /*keepdim=*/true);
  Tensor centered = Sub(t, mu);
  Tensor var = Mean(Square(centered), axis, keepdim);
  return var;
}

Tensor MaxAlong(const Tensor& t, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, t.ndim());
  const Tensor td = t.Contiguous();
  int64_t outer, len, inner;
  SplitAroundAxis(td.shape(), axis, &outer, &len, &inner);
  TSFM_CHECK_GT(len, 0);
  Tensor out = Tensor::Empty(ReducedShape(td.shape(), axis, keepdim));
  const float* pi = td.data();
  float* po = out.mutable_data();
  const int64_t grain =
      std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, len * inner));
  runtime::ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        float best = pi[(o * len) * inner + i];
        for (int64_t l = 1; l < len; ++l) {
          best = std::max(best, pi[(o * len + l) * inner + i]);
        }
        po[o * inner + i] = best;
      }
    }
  });
  return out;
}

std::vector<int64_t> ArgMaxLast(const Tensor& t) {
  TSFM_CHECK_GE(t.ndim(), 1);
  const Tensor td = t.Contiguous();
  const int64_t len = td.dim(-1);
  const int64_t outer = td.numel() / len;
  std::vector<int64_t> out(static_cast<size_t>(outer));
  const float* p = td.data();
  for (int64_t o = 0; o < outer; ++o) {
    const float* row = p + o * len;
    out[static_cast<size_t>(o)] =
        std::max_element(row, row + len) - row;
  }
  return out;
}

void SoftmaxInto(const Tensor& t, Tensor* out) {
  TSFM_TRACE_SPAN("tensor.softmax");
  TSFM_CHECK_GE(t.ndim(), 1);
  const Tensor td = t.Contiguous();
  const int64_t len = td.dim(-1);
  const int64_t outer = td.numel() / len;
  TSFM_CHECK(out->shape() == td.shape());
  const float* pi = td.data();
  float* po = out->mutable_data();
  const int64_t grain =
      std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, len));
  // Row choice is mode-global, never per-row: every row of a tensor (and of
  // a whole run) goes through the same kernel. Both kernels share the same
  // non-finite contract (op_math.h); the SIMD kernel's denominator reduction
  // order differs, bounded by the CI accuracy-epsilon gate.
  const bool use_simd = simd::SimdEnabled();
  runtime::ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      if (use_simd) {
        simd::SoftmaxRow(pi + o * len, po + o * len, len);
      } else {
        ops::detail::SoftmaxRow(pi + o * len, po + o * len, len);
      }
    }
  });
}

Tensor Softmax(const Tensor& t) {
  Tensor out = Tensor::Empty(t.shape());
  SoftmaxInto(t, &out);
  return out;
}

Tensor LogSoftmax(const Tensor& t) {
  TSFM_TRACE_SPAN("tensor.log_softmax");
  TSFM_CHECK_GE(t.ndim(), 1);
  const Tensor td = t.Contiguous();
  const int64_t len = td.dim(-1);
  const int64_t outer = td.numel() / len;
  Tensor out = Tensor::Empty(td.shape());
  const float* pi = td.data();
  float* po = out.mutable_data();
  const int64_t grain =
      std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, len));
  const bool use_simd = simd::SimdEnabled();
  runtime::ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      if (use_simd) {
        simd::LogSoftmaxRow(pi + o * len, po + o * len, len);
      } else {
        ops::detail::LogSoftmaxRow(pi + o * len, po + o * len, len);
      }
    }
  });
  return out;
}

float Norm(const Tensor& t) {
  TSFM_TRACE_SPAN("tensor.norm");
  Metrics().reduce_calls->Add(1);
  const Tensor td = t.Contiguous();
  const float* p = td.data();
  const double s = runtime::ParallelReduce(
      0, t.numel(), kReduceGrain, 0.0,
      [p](int64_t lo, int64_t hi) {
        double part = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          part += static_cast<double>(p[i]) * p[i];
        }
        return part;
      },
      [](double acc, double part) { return acc + part; });
  return static_cast<float>(std::sqrt(s));
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  TSFM_CHECK(a.shape() == b.shape());
  const Tensor ad = a.Contiguous();
  const Tensor bd = b.Contiguous();
  const float* pa = ad.data();
  const float* pb = bd.data();
  return runtime::ParallelReduce(
      0, a.numel(), kReduceGrain, 0.0f,
      [pa, pb](int64_t lo, int64_t hi) {
        float m = 0.0f;
        for (int64_t i = lo; i < hi; ++i) {
          m = std::max(m, std::fabs(pa[i] - pb[i]));
        }
        return m;
      },
      [](float acc, float part) { return std::max(acc, part); });
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  return MaxAbsDiff(a, b) <= atol;
}

}  // namespace tsfm
