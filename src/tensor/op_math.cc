#include "tensor/op_math.h"

#include <cmath>

// Out-of-line homes for the multi-operation scalar transcendentals shared by
// the eager elementwise kernels and the graph interpreter. See op_math.h for
// why these must have exactly one machine-code instance; noinline keeps a
// future LTO build from re-inlining them into differently-contracted copies.
namespace tsfm::ops::detail {

__attribute__((noinline)) float GeluScalar(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  // Saturation guard. At |x| = 8 the tanh argument is ~24.7, far past where
  // tanhf returns exactly +/-1.0f, so the unguarded expression already
  // evaluates to exactly x (or -0.0f) there — the guard changes no finite
  // result, it only keeps the x^3 term from running through inf (which turns
  // GELU(-inf) into inf*0 = NaN) and skips the pointless tanh call.
  constexpr float kSat = 8.0f;
  if (x >= kSat) return x;
  if (x <= -kSat) return -0.0f;
  const float inner = kSqrt2OverPi * (x + kA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

__attribute__((noinline)) float SigmoidScalar(float x) {
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace tsfm::ops::detail
