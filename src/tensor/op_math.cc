#include "tensor/op_math.h"

#include <cmath>

// Out-of-line homes for the multi-operation scalar transcendentals shared by
// the eager elementwise kernels and the graph interpreter. See op_math.h for
// why these must have exactly one machine-code instance; noinline keeps a
// future LTO build from re-inlining them into differently-contracted copies.
namespace tsfm::ops::detail {

__attribute__((noinline)) float GeluScalar(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  const float inner = kSqrt2OverPi * (x + kA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

__attribute__((noinline)) float SigmoidScalar(float x) {
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace tsfm::ops::detail
