#include "tensor/tensor.h"

#include <numeric>
#include <sstream>

namespace tsfm {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TSFM_CHECK_GE(d, 0) << "negative dimension in shape";
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(NumElements(shape_)),
      data_(std::make_shared<std::vector<float>>(numel_, 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)),
      numel_(NumElements(shape_)),
      data_(std::make_shared<std::vector<float>>(std::move(values))) {
  TSFM_CHECK_EQ(numel_, static_cast<int64_t>(data_->size()))
      << "value count does not match shape " << ShapeToString(shape_);
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape{}};
  (*t.data_)[0] = value;
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::RandN(Shape shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  rng->FillNormal(t.mutable_data(), static_cast<size_t>(t.numel()), stddev);
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  rng->FillUniform(t.mutable_data(), static_cast<size_t>(t.numel()), lo, hi);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i * n + i] = 1.0f;
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t d) const {
  const int64_t nd = ndim();
  if (d < 0) d += nd;
  TSFM_CHECK_GE(d, 0);
  TSFM_CHECK_LT(d, nd);
  return shape_[static_cast<size_t>(d)];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  TSFM_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    TSFM_CHECK_GE(i, 0);
    TSFM_CHECK_LT(i, shape_[d]);
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return (*data_)[static_cast<size_t>(FlatIndex(idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return (*data_)[static_cast<size_t>(FlatIndex(idx))];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  // Resolve a single inferred (-1) dimension.
  int64_t inferred_at = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TSFM_CHECK_EQ(inferred_at, -1) << "at most one -1 dimension";
      inferred_at = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred_at >= 0) {
    TSFM_CHECK_GT(known, 0);
    TSFM_CHECK_EQ(numel_ % known, 0)
        << "cannot infer dimension for " << ShapeToString(new_shape);
    new_shape[static_cast<size_t>(inferred_at)] = numel_ / known;
  }
  TSFM_CHECK_EQ(NumElements(new_shape), numel_)
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t(shape_, *data_);
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_->begin(), data_->end(), value);
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel_, max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << (*data_)[static_cast<size_t>(i)];
  }
  if (numel_ > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace tsfm
