#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "runtime/thread_pool.h"

namespace tsfm {
namespace {

// Work per ParallelFor chunk when packing a strided view; matches the
// elementwise grain used by the ops layer.
constexpr int64_t kPackGrain = int64_t{1} << 14;

// A view is contiguous iff walking dims innermost-first, every dim of size
// > 1 has exactly the stride a packed row-major layout would give it
// (size-1 dims impose no constraint — their stride is never multiplied by a
// nonzero index).
bool ComputeContiguous(const Shape& shape, const Shape& strides) {
  int64_t expected = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    if (shape[i] == 1) continue;
    if (strides[i] != expected) return false;
    expected *= shape[i];
  }
  return true;
}

// Gathers the elements of `src` (any strides) into dense row-major `dst`.
void PackTo(const Tensor& src, float* dst) {
  const int64_t n = src.numel();
  if (n == 0) return;
  if (src.is_contiguous()) {
    std::memcpy(dst, src.base(), static_cast<size_t>(n) * sizeof(float));
    return;
  }
  const Shape& shape = src.shape();
  const Shape& strides = src.strides();
  const float* base = src.base();
  const int64_t nd = src.ndim();

  // Row fast path: decode the odometer once per innermost row instead of
  // once per element. Permuted attention-head views keep the last axis
  // dense, so each row is a straight memcpy; any other last-axis stride
  // still drops the per-element div/mod chain. Pure gather either way —
  // every output value is identical to the generic loop's.
  const int64_t row = shape[static_cast<size_t>(nd - 1)];
  if (row >= 2) {
    const int64_t s_last = strides[static_cast<size_t>(nd - 1)];
    const int64_t rows = n / row;
    const int64_t grain = std::max<int64_t>(1, kPackGrain / row);
    runtime::ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        int64_t rem = r;
        int64_t off = 0;
        for (int64_t d = nd - 2; d >= 0; --d) {
          const int64_t sz = shape[static_cast<size_t>(d)];
          off += (rem % sz) * strides[static_cast<size_t>(d)];
          rem /= sz;
        }
        float* out = dst + r * row;
        const float* in = base + off;
        if (s_last == 1) {
          std::memcpy(out, in, static_cast<size_t>(row) * sizeof(float));
        } else {
          for (int64_t j = 0; j < row; ++j) out[j] = in[j * s_last];
        }
      }
    });
    return;
  }

  runtime::ParallelFor(0, n, kPackGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      int64_t rem = i;
      int64_t off = 0;
      for (int64_t d = nd - 1; d >= 0; --d) {
        const int64_t sz = shape[static_cast<size_t>(d)];
        off += (rem % sz) * strides[static_cast<size_t>(d)];
        rem /= sz;
      }
      dst[i] = base[off];
    }
  });
}

thread_local int g_alias_check_depth = 0;

}  // namespace

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TSFM_CHECK_GE(d, 0) << "negative dimension in shape";
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Shape DenseStrides(const Shape& shape) {
  Shape strides(shape.size());
  int64_t acc = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

Tensor::Tensor() : Tensor(Shape{0}, UninitTag{}) {}

Tensor::Tensor(Shape shape, UninitTag)
    : shape_(std::move(shape)),
      strides_(DenseStrides(shape_)),
      numel_(NumElements(shape_)),
      buf_(std::make_shared<memory::TensorBuffer>(numel_)) {}

Tensor::Tensor(Shape shape)
    : Tensor(std::move(shape), UninitTag{}) {
  // Pooled buffers are handed over dirty; a plain constructor promises zeros.
  if (numel_ > 0) std::fill_n(buf_->data(), numel_, 0.0f);
}

Tensor::Tensor(Shape shape, const std::vector<float>& values)
    : shape_(std::move(shape)),
      strides_(DenseStrides(shape_)),
      numel_(NumElements(shape_)),
      buf_(std::make_shared<memory::TensorBuffer>(numel_)) {
  TSFM_CHECK_EQ(numel_, static_cast<int64_t>(values.size()))
      << "value count does not match shape " << ShapeToString(shape_);
  if (numel_ > 0) {
    std::memcpy(buf_->data(), values.data(),
                static_cast<size_t>(numel_) * sizeof(float));
  }
}

Tensor Tensor::Empty(Shape shape) {
  return Tensor(std::move(shape), UninitTag{});
}

Tensor Tensor::Scalar(float value) {
  Tensor t = Empty(Shape{});
  t.buf_->data()[0] = value;
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Empty(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::RandN(Shape shape, Rng* rng, float stddev) {
  Tensor t = Empty(std::move(shape));
  rng->FillNormal(t.mutable_data(), static_cast<size_t>(t.numel()), stddev);
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng* rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  rng->FillUniform(t.mutable_data(), static_cast<size_t>(t.numel()), lo, hi);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i * n + i] = 1.0f;
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Empty(Shape{n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t d) const {
  const int64_t nd = ndim();
  if (d < 0) d += nd;
  TSFM_CHECK_GE(d, 0);
  TSFM_CHECK_LT(d, nd);
  return shape_[static_cast<size_t>(d)];
}

int64_t Tensor::stride(int64_t d) const {
  const int64_t nd = ndim();
  if (d < 0) d += nd;
  TSFM_CHECK_GE(d, 0);
  TSFM_CHECK_LT(d, nd);
  return strides_[static_cast<size_t>(d)];
}

float Tensor::operator[](int64_t i) const {
  TSFM_CHECK_GE(i, 0);
  TSFM_CHECK_LT(i, numel_);
  if (contiguous_) return base()[i];
  int64_t rem = i;
  int64_t off = 0;
  for (int64_t d = ndim() - 1; d >= 0; --d) {
    const int64_t sz = shape_[static_cast<size_t>(d)];
    off += (rem % sz) * strides_[static_cast<size_t>(d)];
    rem /= sz;
  }
  return base()[off];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  TSFM_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t off = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    TSFM_CHECK_GE(i, 0);
    TSFM_CHECK_LT(i, shape_[d]);
    off += i * strides_[d];
    ++d;
  }
  return off;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  CheckMutationAllowed();
  return buf_->data()[offset_ + FlatIndex(idx)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return buf_->data()[offset_ + FlatIndex(idx)];
}

void Tensor::CheckMutationAllowed() const {
  if (g_alias_check_depth == 0) return;
  TSFM_CHECK(buf_ == nullptr || buf_.use_count() == 1)
      << "mutation of shared tensor storage (shape "
      << ShapeToString(shape_)
      << ") while a ScopedAliasCheck is active: this write would be visible "
         "through every view/copy aliasing the buffer";
}

Tensor Tensor::Reshape(Shape new_shape) const {
  // Resolve a single inferred (-1) dimension.
  int64_t inferred_at = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TSFM_CHECK_EQ(inferred_at, -1) << "at most one -1 dimension";
      inferred_at = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred_at >= 0) {
    TSFM_CHECK_GT(known, 0);
    TSFM_CHECK_EQ(numel_ % known, 0)
        << "cannot infer dimension for " << ShapeToString(new_shape);
    new_shape[static_cast<size_t>(inferred_at)] = numel_ / known;
  }
  TSFM_CHECK_EQ(NumElements(new_shape), numel_)
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  if (!contiguous_) {
    // Strides cannot express an arbitrary regrouping of a strided view;
    // materialize once, then view.
    return Contiguous().Reshape(std::move(new_shape));
  }
  Tensor t = *this;
  t.strides_ = DenseStrides(new_shape);
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::Narrow(int64_t axis, int64_t start, int64_t len) const {
  const int64_t nd = ndim();
  if (axis < 0) axis += nd;
  TSFM_CHECK_GE(axis, 0);
  TSFM_CHECK_LT(axis, nd);
  TSFM_CHECK_GE(start, 0);
  TSFM_CHECK_GE(len, 0);
  TSFM_CHECK_LE(start + len, shape_[static_cast<size_t>(axis)]);
  Tensor t = *this;
  t.shape_[static_cast<size_t>(axis)] = len;
  t.offset_ += start * strides_[static_cast<size_t>(axis)];
  t.numel_ = NumElements(t.shape_);
  t.contiguous_ = ComputeContiguous(t.shape_, t.strides_);
  return t;
}

Tensor Tensor::PermuteAxes(const std::vector<int64_t>& perm) const {
  const int64_t nd = ndim();
  TSFM_CHECK_EQ(static_cast<int64_t>(perm.size()), nd);
  Tensor t = *this;
  std::vector<bool> seen(static_cast<size_t>(nd), false);
  for (int64_t i = 0; i < nd; ++i) {
    const int64_t p = perm[static_cast<size_t>(i)];
    TSFM_CHECK_GE(p, 0);
    TSFM_CHECK_LT(p, nd);
    TSFM_CHECK(!seen[static_cast<size_t>(p)]) << "duplicate axis in permute";
    seen[static_cast<size_t>(p)] = true;
    t.shape_[static_cast<size_t>(i)] = shape_[static_cast<size_t>(p)];
    t.strides_[static_cast<size_t>(i)] = strides_[static_cast<size_t>(p)];
  }
  t.contiguous_ = ComputeContiguous(t.shape_, t.strides_);
  return t;
}

Tensor Tensor::Contiguous() const {
  if (contiguous_) return *this;
  Tensor t = Empty(shape_);
  PackTo(*this, t.buf_->data());
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t = Empty(shape_);
  PackTo(*this, t.buf_->data());
  return t;
}

void Tensor::Fill(float value) {
  if (numel_ == 0) return;
  if (contiguous_) {
    std::fill_n(mutable_base(), numel_, value);
    return;
  }
  CheckMutationAllowed();
  float* base = buf_->data() + offset_;
  const int64_t nd = ndim();
  for (int64_t i = 0; i < numel_; ++i) {
    int64_t rem = i;
    int64_t off = 0;
    for (int64_t d = nd - 1; d >= 0; --d) {
      const int64_t sz = shape_[static_cast<size_t>(d)];
      off += (rem % sz) * strides_[static_cast<size_t>(d)];
      rem /= sz;
    }
    base[off] = value;
  }
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel_, max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << (*this)[i];
  }
  if (numel_ > n) os << ", ...";
  os << "}";
  return os.str();
}

ScopedAliasCheck::ScopedAliasCheck() { ++g_alias_check_depth; }
ScopedAliasCheck::~ScopedAliasCheck() { --g_alias_check_depth; }
bool ScopedAliasCheck::Active() { return g_alias_check_depth > 0; }

}  // namespace tsfm
