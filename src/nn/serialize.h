#ifndef TSFM_NN_SERIALIZE_H_
#define TSFM_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace tsfm::nn {

/// Writes every named parameter of `module` to `path` in a simple binary
/// checkpoint format (magic, count, then {name, shape, float32 data} records).
/// This is how "pretrained checkpoints" are persisted and reloaded, standing
/// in for the paper's HuggingFace MOMENT checkpoint.
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every parameter in the module must be
/// present in the file with a matching shape; extra records in the file are
/// an error (the checkpoint and architecture must correspond exactly).
Status LoadCheckpoint(Module* module, const std::string& path);

}  // namespace tsfm::nn

#endif  // TSFM_NN_SERIALIZE_H_
