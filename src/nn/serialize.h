#ifndef TSFM_NN_SERIALIZE_H_
#define TSFM_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace tsfm::nn {

/// Writes every named parameter of `module` to `path` in a simple binary
/// checkpoint format (magic, count, then {name, shape, float32 data} records).
/// This is how "pretrained checkpoints" are persisted and reloaded, standing
/// in for the paper's HuggingFace MOMENT checkpoint.
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every parameter in the module must be
/// present in the file with a matching shape; extra records in the file are
/// an error (the checkpoint and architecture must correspond exactly).
///
/// Accepts both formats: the magic is sniffed, and quantized ("TSFMCKQ1")
/// files are dequantized into the fp32 parameters while the exact stored
/// int8 images are installed into the module's quantized-weight caches
/// (Module::AdoptQuantized), so a quantized-mode predict after loading
/// serves the very bytes on disk.
Status LoadCheckpoint(Module* module, const std::string& path);

/// Writes a quantized ("TSFMCKQ1") checkpoint: 2-D parameters are stored as
/// per-column symmetric int8 + fp32 scales (~4x smaller on encoder-sized
/// weight matrices), everything else stays raw fp32.
Status SaveQuantizedCheckpoint(const Module& module, const std::string& path);

/// Transcodes an existing fp32 checkpoint file into the quantized format
/// without needing the model architecture (record-level rewrite). Produces
/// byte-identical output to SaveQuantizedCheckpoint of the module the fp32
/// file was saved from.
Status QuantizeCheckpointFile(const std::string& in_path,
                              const std::string& out_path);

/// True when `path` holds a quantized ("TSFMCKQ1") checkpoint.
Result<bool> IsQuantizedCheckpoint(const std::string& path);

}  // namespace tsfm::nn

#endif  // TSFM_NN_SERIALIZE_H_
