#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

namespace tsfm::nn {

namespace {

constexpr uint64_t kMagic = 0x5453464D30303031ULL;  // "TSFM0001"

void WriteU64(std::ofstream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& is, uint64_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IoError("cannot open for writing: " + path);
  const auto params = module.NamedParameters();
  WriteU64(os, kMagic);
  WriteU64(os, params.size());
  for (const auto& [name, p] : params) {
    WriteU64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor t = p.value().Contiguous();  // views serialize packed
    WriteU64(os, static_cast<uint64_t>(t.ndim()));
    for (int64_t d : t.shape()) WriteU64(os, static_cast<uint64_t>(d));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!os) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for reading: " + path);
  uint64_t magic = 0, count = 0;
  if (!ReadU64(is, &magic) || magic != kMagic) {
    return Status::IoError("bad checkpoint magic in " + path);
  }
  if (!ReadU64(is, &count)) return Status::IoError("truncated checkpoint");

  std::map<std::string, Tensor> records;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(is, &name_len)) return Status::IoError("truncated checkpoint");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t ndim = 0;
    if (!ReadU64(is, &ndim)) return Status::IoError("truncated checkpoint");
    Shape shape(ndim);
    for (uint64_t d = 0; d < ndim; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(is, &dim)) return Status::IoError("truncated checkpoint");
      shape[d] = static_cast<int64_t>(dim);
    }
    Tensor t(shape);
    is.read(reinterpret_cast<char*>(t.mutable_data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!is) return Status::IoError("truncated checkpoint data");
    records.emplace(std::move(name), std::move(t));
  }

  auto params = module->NamedParameters();
  if (params.size() != records.size()) {
    return Status::InvalidArgument(
        "checkpoint/module parameter count mismatch: file has " +
        std::to_string(records.size()) + ", module has " +
        std::to_string(params.size()));
  }
  for (auto& [name, p] : params) {
    auto it = records.find(name);
    if (it == records.end()) {
      return Status::NotFound("parameter missing from checkpoint: " + name);
    }
    if (it->second.shape() != p.value().shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          ShapeToString(it->second.shape()) + " vs module " +
          ShapeToString(p.value().shape()));
    }
    p.SetValue(it->second);
  }
  return Status::OK();
}

}  // namespace tsfm::nn
