#include "nn/serialize.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "io/artifact.h"
#include "simd/dispatch.h"
#include "simd/quant.h"

namespace tsfm::nn {

namespace {

// Checkpoint format v2: the record stream below rides inside the
// io::WriteArtifact container (magic + version + size header, CRC-32
// trailer, atomic replace). v1 files ("TSFM0001", no integrity data) are
// rejected by the container's magic check and re-pretrained by callers.
constexpr uint64_t kMagic = 0x32504B434D465354ULL;  // "TSFMCKP2"
constexpr uint32_t kVersion = 2;

// Quantized checkpoint: same container, own magic. Records are ordered
// lexicographically by parameter path (unlike the fp32 format's
// registration order) so that transcoding an fp32 file and re-saving a
// loaded module produce byte-identical output. Per record:
//   u64 name_len, name bytes
//   u64 kind                  0 = raw fp32, 1 = per-column symmetric int8
//   u64 ndim, u64 dims[ndim]
//   kind 0: f32 data[numel]
//   kind 1: f32 scales[cols], i8 data[rows*cols]   (ndim == 2 only)
constexpr uint64_t kMagicQuant = 0x31514B434D465354ULL;  // "TSFMCKQ1"
constexpr uint32_t kVersionQuant = 1;
constexpr uint64_t kKindF32 = 0;
constexpr uint64_t kKindInt8 = 1;

// Plausibility caps: a parameter path is a short slash-separated string and
// tensors are at most (batch, time, channel, head)-shaped. Anything larger
// is a corrupt or hostile length field, not a real checkpoint.
constexpr uint64_t kMaxNameLen = 1 << 12;
constexpr uint64_t kMaxNdim = 8;

void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Bounded reader over the (CRC-verified) payload: every length field is
// checked against the bytes actually remaining, so no field can demand an
// allocation beyond the file's real size.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload)
      : p_(payload.data()), remaining_(payload.size()) {}

  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }

  bool ReadBytes(void* dst, size_t n) {
    if (remaining_ < n) return false;
    std::memcpy(dst, p_, n);
    p_ += n;
    remaining_ -= n;
    return true;
  }

  size_t remaining() const { return remaining_; }

 private:
  const char* p_;
  size_t remaining_;
};

// Reads one record's name header (shared by both formats).
Status ReadName(PayloadReader* in, std::string* name) {
  uint64_t name_len = 0;
  if (!in->ReadU64(&name_len)) return Status::IoError("truncated checkpoint");
  if (name_len > kMaxNameLen || name_len > in->remaining()) {
    return Status::IoError("implausible parameter name length");
  }
  name->assign(name_len, '\0');
  if (!in->ReadBytes(name->data(), name_len)) {
    return Status::IoError("truncated checkpoint (name)");
  }
  return Status::OK();
}

// Reads a shape whose element count is bounded by the remaining bytes at
// `bytes_per_elem` granularity (overflow-safe: divide before multiplying).
Status ReadShape(PayloadReader* in, uint64_t bytes_per_elem, Shape* shape,
                 uint64_t* numel) {
  uint64_t ndim = 0;
  if (!in->ReadU64(&ndim)) return Status::IoError("truncated checkpoint");
  if (ndim > kMaxNdim) {
    return Status::IoError("implausible tensor rank in checkpoint");
  }
  shape->assign(ndim, 0);
  *numel = 1;
  for (uint64_t d = 0; d < ndim; ++d) {
    uint64_t dim = 0;
    if (!in->ReadU64(&dim)) return Status::IoError("truncated checkpoint");
    if (dim == 0 || dim > (in->remaining() / bytes_per_elem) / *numel) {
      return Status::IoError("non-positive or oversized dim in checkpoint");
    }
    (*shape)[d] = static_cast<int64_t>(dim);
    *numel *= dim;
  }
  return Status::OK();
}

// Parses the fp32 record stream into name -> tensor.
Status ParseFp32Payload(const std::string& payload,
                        std::map<std::string, Tensor>* records) {
  PayloadReader in(payload);
  uint64_t count = 0;
  if (!in.ReadU64(&count)) return Status::IoError("truncated checkpoint");
  // Each record needs at least its two length fields.
  if (count > in.remaining() / 16) {
    return Status::IoError("implausible parameter count in checkpoint");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    TSFM_RETURN_IF_ERROR(ReadName(&in, &name));
    Shape shape;
    uint64_t numel = 0;
    TSFM_RETURN_IF_ERROR(ReadShape(&in, sizeof(float), &shape, &numel));
    Tensor t = Tensor::Empty(shape);
    if (!in.ReadBytes(t.mutable_data(), numel * sizeof(float))) {
      return Status::IoError("truncated checkpoint data");
    }
    records->emplace(std::move(name), std::move(t));
  }
  if (in.remaining() != 0) {
    return Status::IoError("trailing bytes after checkpoint records");
  }
  return Status::OK();
}

struct QuantRecord {
  Tensor value;  // dequantized (or raw) fp32
  std::shared_ptr<const simd::QuantizedMatrix> q;  // kind-int8 records only
};

// Parses the quantized record stream, dequantizing into fp32 tensors while
// keeping the exact int8 images.
Status ParseQuantPayload(const std::string& payload,
                         std::map<std::string, QuantRecord>* records) {
  PayloadReader in(payload);
  uint64_t count = 0;
  if (!in.ReadU64(&count)) return Status::IoError("truncated checkpoint");
  if (count > in.remaining() / 24) {
    return Status::IoError("implausible parameter count in checkpoint");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    TSFM_RETURN_IF_ERROR(ReadName(&in, &name));
    uint64_t kind = 0;
    if (!in.ReadU64(&kind)) return Status::IoError("truncated checkpoint");
    QuantRecord rec;
    if (kind == kKindF32) {
      Shape shape;
      uint64_t numel = 0;
      TSFM_RETURN_IF_ERROR(ReadShape(&in, sizeof(float), &shape, &numel));
      Tensor t = Tensor::Empty(shape);
      if (!in.ReadBytes(t.mutable_data(), numel * sizeof(float))) {
        return Status::IoError("truncated checkpoint data");
      }
      rec.value = std::move(t);
    } else if (kind == kKindInt8) {
      Shape shape;
      uint64_t numel = 0;
      TSFM_RETURN_IF_ERROR(ReadShape(&in, /*bytes_per_elem=*/1, &shape,
                                     &numel));
      if (shape.size() != 2) {
        return Status::IoError("int8 checkpoint record is not 2-D");
      }
      const uint64_t rows = static_cast<uint64_t>(shape[0]);
      const uint64_t cols = static_cast<uint64_t>(shape[1]);
      if (cols * sizeof(float) > in.remaining() ||
          numel > in.remaining() - cols * sizeof(float)) {
        return Status::IoError("truncated checkpoint data");
      }
      auto q = std::make_shared<simd::QuantizedMatrix>();
      q->rows = static_cast<int64_t>(rows);
      q->cols = static_cast<int64_t>(cols);
      q->scales.resize(cols);
      q->data.resize(numel);
      if (!in.ReadBytes(q->scales.data(), cols * sizeof(float)) ||
          !in.ReadBytes(q->data.data(), numel)) {
        return Status::IoError("truncated checkpoint data");
      }
      simd::PackQuantized(q.get());
      Tensor t = Tensor::Empty(shape);
      float* p = t.mutable_data();
      for (uint64_t r = 0; r < rows; ++r) {
        for (uint64_t c = 0; c < cols; ++c) {
          p[r * cols + c] =
              static_cast<float>(q->data[r * cols + c]) * q->scales[c];
        }
      }
      rec.value = std::move(t);
      rec.q = std::move(q);
    } else {
      return Status::IoError("unknown record kind in quantized checkpoint");
    }
    records->emplace(std::move(name), std::move(rec));
  }
  if (in.remaining() != 0) {
    return Status::IoError("trailing bytes after checkpoint records");
  }
  return Status::OK();
}

// Appends one quantized-format record. `t` must be contiguous.
void AppendQuantRecord(std::ostream& os, const std::string& name,
                       const Tensor& t) {
  WriteU64(os, name.size());
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  const bool quantize = t.ndim() == 2;
  WriteU64(os, quantize ? kKindInt8 : kKindF32);
  WriteU64(os, static_cast<uint64_t>(t.ndim()));
  for (int64_t d : t.shape()) WriteU64(os, static_cast<uint64_t>(d));
  if (!quantize) {
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
    return;
  }
  const simd::QuantizedMatrix q =
      simd::QuantizeWeight(t.data(), t.dim(0), t.dim(1));
  os.write(reinterpret_cast<const char*>(q.scales.data()),
           static_cast<std::streamsize>(q.scales.size() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(q.data.data()),
           static_cast<std::streamsize>(q.data.size()));
}

Status LoadQuantizedCheckpoint(Module* module, const std::string& path) {
  TSFM_ASSIGN_OR_RETURN(
      const std::string payload,
      io::ReadArtifactPayload(path, kMagicQuant, kVersionQuant));
  std::map<std::string, QuantRecord> records;
  TSFM_RETURN_IF_ERROR(ParseQuantPayload(payload, &records));

  auto params = module->NamedParameters();
  if (params.size() != records.size()) {
    return Status::InvalidArgument(
        "checkpoint/module parameter count mismatch: file has " +
        std::to_string(records.size()) + ", module has " +
        std::to_string(params.size()));
  }
  for (auto& [name, p] : params) {
    auto it = records.find(name);
    if (it == records.end()) {
      return Status::NotFound("parameter missing from checkpoint: " + name);
    }
    if (it->second.value.shape() != p.value().shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          ShapeToString(it->second.value.shape()) + " vs module " +
          ShapeToString(p.value().shape()));
    }
    p.SetValue(it->second.value);
  }
  // Install the exact stored int8 images: re-quantizing the dequantized
  // fp32 weights is not guaranteed to reproduce them bit-for-bit (the
  // scales wobble through the fp32 round trip), and save -> load -> predict
  // must be bit-stable in quant mode.
  std::map<std::string, std::shared_ptr<const simd::QuantizedMatrix>>
      by_path;
  for (auto& [name, rec] : records) {
    if (rec.q != nullptr) by_path.emplace(name, rec.q);
  }
  module->AdoptQuantized(by_path);
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  const auto params = module.NamedParameters();
  std::ostringstream os;
  WriteU64(os, params.size());
  for (const auto& [name, p] : params) {
    WriteU64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor t = p.value().Contiguous();  // views serialize packed
    WriteU64(os, static_cast<uint64_t>(t.ndim()));
    for (int64_t d : t.shape()) WriteU64(os, static_cast<uint64_t>(d));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  return io::WriteArtifact(path, kMagic, kVersion, os.str());
}

Status SaveQuantizedCheckpoint(const Module& module,
                               const std::string& path) {
  auto params = module.NamedParameters();
  std::sort(params.begin(), params.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream os;
  WriteU64(os, params.size());
  for (const auto& [name, p] : params) {
    AppendQuantRecord(os, name, p.value().Contiguous());
  }
  return io::WriteArtifact(path, kMagicQuant, kVersionQuant, os.str());
}

Status QuantizeCheckpointFile(const std::string& in_path,
                              const std::string& out_path) {
  TSFM_ASSIGN_OR_RETURN(const std::string payload,
                        io::ReadArtifactPayload(in_path, kMagic, kVersion));
  std::map<std::string, Tensor> records;
  TSFM_RETURN_IF_ERROR(ParseFp32Payload(payload, &records));
  // std::map iterates in name order — same order SaveQuantizedCheckpoint
  // writes, so the two produce byte-identical files.
  std::ostringstream os;
  WriteU64(os, records.size());
  for (const auto& [name, t] : records) {
    AppendQuantRecord(os, name, t);
  }
  return io::WriteArtifact(out_path, kMagicQuant, kVersionQuant, os.str());
}

Result<bool> IsQuantizedCheckpoint(const std::string& path) {
  TSFM_ASSIGN_OR_RETURN(const uint64_t magic, io::ReadArtifactMagic(path));
  return magic == kMagicQuant;
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  TSFM_ASSIGN_OR_RETURN(const uint64_t magic, io::ReadArtifactMagic(path));
  if (magic == kMagicQuant) return LoadQuantizedCheckpoint(module, path);
  TSFM_ASSIGN_OR_RETURN(const std::string payload,
                        io::ReadArtifactPayload(path, kMagic, kVersion));
  std::map<std::string, Tensor> records;
  TSFM_RETURN_IF_ERROR(ParseFp32Payload(payload, &records));

  auto params = module->NamedParameters();
  if (params.size() != records.size()) {
    return Status::InvalidArgument(
        "checkpoint/module parameter count mismatch: file has " +
        std::to_string(records.size()) + ", module has " +
        std::to_string(params.size()));
  }
  for (auto& [name, p] : params) {
    auto it = records.find(name);
    if (it == records.end()) {
      return Status::NotFound("parameter missing from checkpoint: " + name);
    }
    if (it->second.shape() != p.value().shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          ShapeToString(it->second.shape()) + " vs module " +
          ShapeToString(p.value().shape()));
    }
    p.SetValue(it->second);
  }
  // Per-channel scales are computed once here rather than lazily mid-serve
  // when the quantized path is active.
  if (simd::QuantModeEnabled()) module->PrepareQuantized();
  return Status::OK();
}

}  // namespace tsfm::nn
