#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <sstream>

#include "io/artifact.h"

namespace tsfm::nn {

namespace {

// Checkpoint format v2: the record stream below rides inside the
// io::WriteArtifact container (magic + version + size header, CRC-32
// trailer, atomic replace). v1 files ("TSFM0001", no integrity data) are
// rejected by the container's magic check and re-pretrained by callers.
constexpr uint64_t kMagic = 0x32504B434D465354ULL;  // "TSFMCKP2"
constexpr uint32_t kVersion = 2;

// Plausibility caps: a parameter path is a short slash-separated string and
// tensors are at most (batch, time, channel, head)-shaped. Anything larger
// is a corrupt or hostile length field, not a real checkpoint.
constexpr uint64_t kMaxNameLen = 1 << 12;
constexpr uint64_t kMaxNdim = 8;

void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Bounded reader over the (CRC-verified) payload: every length field is
// checked against the bytes actually remaining, so no field can demand an
// allocation beyond the file's real size.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload)
      : p_(payload.data()), remaining_(payload.size()) {}

  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }

  bool ReadBytes(void* dst, size_t n) {
    if (remaining_ < n) return false;
    std::memcpy(dst, p_, n);
    p_ += n;
    remaining_ -= n;
    return true;
  }

  size_t remaining() const { return remaining_; }

 private:
  const char* p_;
  size_t remaining_;
};

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  const auto params = module.NamedParameters();
  std::ostringstream os;
  WriteU64(os, params.size());
  for (const auto& [name, p] : params) {
    WriteU64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor t = p.value().Contiguous();  // views serialize packed
    WriteU64(os, static_cast<uint64_t>(t.ndim()));
    for (int64_t d : t.shape()) WriteU64(os, static_cast<uint64_t>(d));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  return io::WriteArtifact(path, kMagic, kVersion, os.str());
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  TSFM_ASSIGN_OR_RETURN(const std::string payload,
                        io::ReadArtifactPayload(path, kMagic, kVersion));
  PayloadReader in(payload);
  uint64_t count = 0;
  if (!in.ReadU64(&count)) return Status::IoError("truncated checkpoint");
  // Each record needs at least its two length fields.
  if (count > in.remaining() / 16) {
    return Status::IoError("implausible parameter count in checkpoint");
  }

  std::map<std::string, Tensor> records;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!in.ReadU64(&name_len)) return Status::IoError("truncated checkpoint");
    if (name_len > kMaxNameLen || name_len > in.remaining()) {
      return Status::IoError("implausible parameter name length");
    }
    std::string name(name_len, '\0');
    if (!in.ReadBytes(name.data(), name_len)) {
      return Status::IoError("truncated checkpoint (name)");
    }
    uint64_t ndim = 0;
    if (!in.ReadU64(&ndim)) return Status::IoError("truncated checkpoint");
    if (ndim > kMaxNdim) {
      return Status::IoError("implausible tensor rank in checkpoint");
    }
    Shape shape(ndim);
    uint64_t numel = 1;
    for (uint64_t d = 0; d < ndim; ++d) {
      uint64_t dim = 0;
      if (!in.ReadU64(&dim)) return Status::IoError("truncated checkpoint");
      // Overflow-safe bound: the element count can never exceed the float
      // capacity of the bytes still unread, so divide before multiplying.
      if (dim == 0 || dim > (in.remaining() / sizeof(float)) / numel) {
        return Status::IoError("non-positive or oversized dim in checkpoint");
      }
      shape[d] = static_cast<int64_t>(dim);
      numel *= dim;
    }
    Tensor t = Tensor::Empty(shape);
    if (!in.ReadBytes(t.mutable_data(), numel * sizeof(float))) {
      return Status::IoError("truncated checkpoint data");
    }
    records.emplace(std::move(name), std::move(t));
  }
  if (in.remaining() != 0) {
    return Status::IoError("trailing bytes after checkpoint records");
  }

  auto params = module->NamedParameters();
  if (params.size() != records.size()) {
    return Status::InvalidArgument(
        "checkpoint/module parameter count mismatch: file has " +
        std::to_string(records.size()) + ", module has " +
        std::to_string(params.size()));
  }
  for (auto& [name, p] : params) {
    auto it = records.find(name);
    if (it == records.end()) {
      return Status::NotFound("parameter missing from checkpoint: " + name);
    }
    if (it->second.shape() != p.value().shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          ShapeToString(it->second.shape()) + " vs module " +
          ShapeToString(p.value().shape()));
    }
    p.SetValue(it->second);
  }
  return Status::OK();
}

}  // namespace tsfm::nn
