#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "simd/dispatch.h"
#include "tensor/ops.h"

namespace tsfm::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  TSFM_CHECK_GT(in_features, 0);
  TSFM_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter("weight",
                              GlorotUniform(in_features, out_features, rng));
  if (use_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_features}));
  }
}

ag::Var Linear::Forward(const ag::Var& x) const {
  TSFM_CHECK_EQ(x.dim(-1), in_features_);
  if (simd::QuantModeEnabled() && !ag::GradEnabled()) {
    return ag::Constant(QuantForward(x.value()));
  }
  ag::Var y;
  if (x.ndim() == 1) {
    ag::Var x2 = ag::Reshape(x, Shape{1, in_features_});
    y = ag::Reshape(ag::MatMul(x2, weight_), Shape{out_features_});
  } else {
    y = ag::MatMul(x, weight_);
  }
  if (bias_.defined()) y = ag::Add(y, bias_);
  return y;
}

Tensor Linear::QuantForward(const Tensor& x) const {
  const Tensor xc = x.Contiguous();
  const int64_t m = xc.numel() / in_features_;
  Shape out_shape = xc.shape();
  out_shape.back() = out_features_;
  Tensor y = Tensor::Empty(out_shape);
  const auto q = QuantWeight();
  simd::QuantMatMul(xc.data(), m, *q, y.mutable_data());
  if (bias_.defined()) y = tsfm::Add(y, bias_.value());
  return y;
}

std::shared_ptr<const simd::QuantizedMatrix> Linear::QuantWeight() const {
  std::lock_guard<std::mutex> lock(quant_mu_);
  const Tensor& w = weight_.value();
  if (qweight_ == nullptr || qweight_src_ != w.data()) {
    qweight_ = std::make_shared<const simd::QuantizedMatrix>(
        simd::QuantizeWeight(w.data(), in_features_, out_features_));
    qweight_src_ = w.data();
  }
  return qweight_;
}

void Linear::PrepareQuantizedSelf() {
  {
    std::lock_guard<std::mutex> lock(quant_mu_);
    qweight_.reset();
    qweight_src_ = nullptr;
  }
  (void)QuantWeight();
}

bool Linear::AdoptQuantizedParam(
    const std::string& local_name,
    std::shared_ptr<const simd::QuantizedMatrix> q) {
  if (local_name != "weight" || q == nullptr) return false;
  if (q->rows != in_features_ || q->cols != out_features_) return false;
  TSFM_CHECK(!q->packed.empty()) << "AdoptQuantizedParam: matrix not packed";
  std::lock_guard<std::mutex> lock(quant_mu_);
  qweight_ = std::move(q);
  qweight_src_ = weight_.value().data();
  return true;
}

LayerNorm::LayerNorm(int64_t dim, float epsilon) : epsilon_(epsilon) {
  TSFM_CHECK_GT(dim, 0);
  gamma_ = RegisterParameter("gamma", Tensor::Ones(Shape{dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros(Shape{dim}));
}

ag::Var LayerNorm::Forward(const ag::Var& x) const {
  return ag::LayerNorm(x, gamma_, beta_, epsilon_);
}

FeedForward::FeedForward(int64_t d_model, int64_t d_hidden, float dropout,
                         Rng* rng, Activation activation)
    : activation_(activation) {
  fc1_ = std::make_shared<Linear>(d_model, d_hidden, rng);
  fc2_ = std::make_shared<Linear>(d_hidden, d_model, rng);
  dropout_ = std::make_shared<Dropout>(dropout);
  RegisterModule("fc1", fc1_);
  RegisterModule("fc2", fc2_);
  RegisterModule("dropout", dropout_);
}

ag::Var FeedForward::Forward(const ag::Var& x,
                             const ForwardContext& ctx) const {
  ag::Var h = fc1_->Forward(x);
  h = activation_ == Activation::kGelu ? ag::Gelu(h) : ag::Relu(h);
  h = dropout_->Forward(h, ctx);
  return fc2_->Forward(h);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t d_model,
                                               int64_t num_heads,
                                               float dropout, Rng* rng)
    : d_model_(d_model), num_heads_(num_heads), d_head_(d_model / num_heads) {
  TSFM_CHECK_EQ(d_model % num_heads, 0)
      << "d_model must be divisible by num_heads";
  wq_ = std::make_shared<Linear>(d_model, d_model, rng);
  wk_ = std::make_shared<Linear>(d_model, d_model, rng);
  wv_ = std::make_shared<Linear>(d_model, d_model, rng);
  wo_ = std::make_shared<Linear>(d_model, d_model, rng);
  attn_dropout_ = std::make_shared<Dropout>(dropout);
  RegisterModule("wq", wq_);
  RegisterModule("wk", wk_);
  RegisterModule("wv", wv_);
  RegisterModule("wo", wo_);
  RegisterModule("attn_dropout", attn_dropout_);
}

ag::Var MultiHeadSelfAttention::Forward(const ag::Var& x,
                                        const ForwardContext& ctx) const {
  TSFM_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0);
  const int64_t s = x.dim(1);
  TSFM_CHECK_EQ(x.dim(2), d_model_);

  auto split_heads = [&](const ag::Var& t) {
    // (B, S, E) -> (B, H, S, Dh)
    ag::Var r = ag::Reshape(t, Shape{b, s, num_heads_, d_head_});
    return ag::Permute(r, {0, 2, 1, 3});
  };

  ag::Var q = split_heads(wq_->Forward(x));
  ag::Var k = split_heads(wk_->Forward(x));
  ag::Var v = split_heads(wv_->Forward(x));

  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  ag::Var scores =
      ag::Scale(ag::MatMul(q, ag::TransposeLast2(k)), scale);  // (B,H,S,S)
  ag::Var attn = ag::Softmax(scores);
  attn = attn_dropout_->Forward(attn, ctx);
  ag::Var ctx_heads = ag::MatMul(attn, v);  // (B,H,S,Dh)
  ag::Var merged =
      ag::Reshape(ag::Permute(ctx_heads, {0, 2, 1, 3}), Shape{b, s, d_model_});
  return wo_->Forward(merged);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t d_model,
                                                 int64_t num_heads,
                                                 int64_t d_hidden,
                                                 float dropout, Rng* rng) {
  norm1_ = std::make_shared<LayerNorm>(d_model);
  norm2_ = std::make_shared<LayerNorm>(d_model);
  attn_ =
      std::make_shared<MultiHeadSelfAttention>(d_model, num_heads, dropout, rng);
  ff_ = std::make_shared<FeedForward>(d_model, d_hidden, dropout, rng);
  dropout_ = std::make_shared<Dropout>(dropout);
  RegisterModule("norm1", norm1_);
  RegisterModule("norm2", norm2_);
  RegisterModule("attn", attn_);
  RegisterModule("ff", ff_);
  RegisterModule("dropout", dropout_);
}

ag::Var TransformerEncoderLayer::Forward(const ag::Var& x,
                                         const ForwardContext& ctx) const {
  ag::Var h = ag::Add(
      x, dropout_->Forward(attn_->Forward(norm1_->Forward(x), ctx), ctx));
  h = ag::Add(h,
              dropout_->Forward(ff_->Forward(norm2_->Forward(h), ctx), ctx));
  return h;
}

TransformerEncoder::TransformerEncoder(int64_t num_layers, int64_t d_model,
                                       int64_t num_heads, int64_t d_hidden,
                                       float dropout, Rng* rng)
    : d_model_(d_model) {
  TSFM_CHECK_GT(num_layers, 0);
  for (int64_t i = 0; i < num_layers; ++i) {
    auto layer = std::make_shared<TransformerEncoderLayer>(
        d_model, num_heads, d_hidden, dropout, rng);
    RegisterModule("layer" + std::to_string(i), layer);
    layers_.push_back(std::move(layer));
  }
  final_norm_ = std::make_shared<LayerNorm>(d_model);
  RegisterModule("final_norm", final_norm_);
}

ag::Var TransformerEncoder::Forward(const ag::Var& x,
                                    const ForwardContext& ctx) const {
  ag::Var h = x;
  for (const auto& layer : layers_) h = layer->Forward(h, ctx);
  return final_norm_->Forward(h);
}

PositionalEncoding::PositionalEncoding(int64_t max_len, int64_t d_model)
    : table_(Shape{max_len, d_model}) {
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < d_model; ++i) {
      const double angle =
          pos / std::pow(10000.0, 2.0 * (i / 2) / static_cast<double>(d_model));
      table_.at({pos, i}) = static_cast<float>(i % 2 == 0 ? std::sin(angle)
                                                          : std::cos(angle));
    }
  }
}

ag::Var PositionalEncoding::Forward(const ag::Var& x) const {
  TSFM_CHECK_EQ(x.ndim(), 3);
  const int64_t s = x.dim(1);
  TSFM_CHECK_LE(s, table_.dim(0)) << "sequence longer than max_len";
  TSFM_CHECK_EQ(x.dim(2), table_.dim(1));
  Tensor pos = Slice(table_, 0, 0, s);  // (S, E) broadcasts over batch
  return ag::Add(x, ag::Constant(pos));
}

}  // namespace tsfm::nn
