#ifndef TSFM_NN_LAYERS_H_
#define TSFM_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "autograd/ops.h"
#include "nn/module.h"
#include "simd/quant.h"

namespace tsfm::nn {

/// Fully connected layer: y = x W + b, applied over the last axis.
/// Input (..., in_features) -> output (..., out_features).
///
/// When quant mode is on (simd::QuantModeEnabled()) and gradients are
/// disabled, Forward takes the int8 dynamic-quantization path: the weight's
/// per-column int8 image is cached on first use (or installed eagerly via
/// Module::PrepareQuantized / AdoptQuantized), activations are quantized
/// per row on the fly, and the matmul accumulates in exact int32
/// (simd/quant.h), so outputs are bit-identical across thread counts.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  ag::Var Forward(const ag::Var& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const ag::Var& weight() const { return weight_; }

 protected:
  void PrepareQuantizedSelf() override;
  bool AdoptQuantizedParam(
      const std::string& local_name,
      std::shared_ptr<const simd::QuantizedMatrix> q) override;

 private:
  Tensor QuantForward(const Tensor& x) const;
  /// Lazily (re)built int8 cache; invalidated when the weight's storage
  /// address changes (SetValue allocates a fresh buffer). Full fine-tune
  /// additionally triggers an explicit PrepareQuantized refresh, since a
  /// pooled buffer address can recur.
  std::shared_ptr<const simd::QuantizedMatrix> QuantWeight() const;

  int64_t in_features_;
  int64_t out_features_;
  ag::Var weight_;  // (in, out)
  ag::Var bias_;    // (out) or undefined
  mutable std::mutex quant_mu_;
  mutable std::shared_ptr<const simd::QuantizedMatrix> qweight_;
  mutable const float* qweight_src_ = nullptr;
};

/// Layer normalization over the last axis with learned affine transform.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float epsilon = 1e-5f);

  ag::Var Forward(const ag::Var& x) const;

 private:
  ag::Var gamma_;
  ag::Var beta_;
  float epsilon_;
};

/// Inverted dropout with probability `p`.
class Dropout : public Module {
 public:
  explicit Dropout(float p) : p_(p) {}

  ag::Var Forward(const ag::Var& x, const ForwardContext& ctx) const {
    return ag::Dropout(x, p_, ctx.training, ctx.rng);
  }

 private:
  float p_;
};

/// Activation kinds supported by FeedForward.
enum class Activation { kGelu, kRelu };

/// Transformer position-wise feed-forward: Linear -> act -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(int64_t d_model, int64_t d_hidden, float dropout, Rng* rng,
              Activation activation = Activation::kGelu);

  ag::Var Forward(const ag::Var& x, const ForwardContext& ctx) const;

 private:
  std::shared_ptr<Linear> fc1_;
  std::shared_ptr<Linear> fc2_;
  std::shared_ptr<Dropout> dropout_;
  Activation activation_;
};

/// Multi-head scaled-dot-product self-attention over (B, S, E) inputs.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t d_model, int64_t num_heads, float dropout,
                         Rng* rng);

  ag::Var Forward(const ag::Var& x, const ForwardContext& ctx) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t d_head_;
  std::shared_ptr<Linear> wq_;
  std::shared_ptr<Linear> wk_;
  std::shared_ptr<Linear> wv_;
  std::shared_ptr<Linear> wo_;
  std::shared_ptr<Dropout> attn_dropout_;
};

/// Pre-norm transformer encoder layer:
///   x += Dropout(Attn(LN(x)));  x += Dropout(FF(LN(x))).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t d_model, int64_t num_heads, int64_t d_hidden,
                          float dropout, Rng* rng);

  ag::Var Forward(const ag::Var& x, const ForwardContext& ctx) const;

 private:
  std::shared_ptr<LayerNorm> norm1_;
  std::shared_ptr<LayerNorm> norm2_;
  std::shared_ptr<MultiHeadSelfAttention> attn_;
  std::shared_ptr<FeedForward> ff_;
  std::shared_ptr<Dropout> dropout_;
};

/// Stack of encoder layers with a final layer norm.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int64_t num_layers, int64_t d_model, int64_t num_heads,
                     int64_t d_hidden, float dropout, Rng* rng);

  ag::Var Forward(const ag::Var& x, const ForwardContext& ctx) const;

  int64_t d_model() const { return d_model_; }

 private:
  int64_t d_model_;
  std::vector<std::shared_ptr<TransformerEncoderLayer>> layers_;
  std::shared_ptr<LayerNorm> final_norm_;
};

/// Fixed sinusoidal positional encoding added to (B, S, E) token sequences.
/// Not a learned parameter; supports sequences up to `max_len`.
class PositionalEncoding {
 public:
  PositionalEncoding(int64_t max_len, int64_t d_model);

  /// Adds positions [0, S) to `x` of shape (B, S, E); S <= max_len.
  ag::Var Forward(const ag::Var& x) const;

 private:
  Tensor table_;  // (max_len, d_model)
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_LAYERS_H_
