#ifndef TSFM_NN_MODULE_H_
#define TSFM_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace tsfm::nn {

/// Per-forward-pass context: training mode toggles dropout; `rng` provides
/// the randomness stream (so forward passes are reproducible per seed).
struct ForwardContext {
  bool training = false;
  Rng* rng = nullptr;
};

/// Base class for neural-network modules.
///
/// A module owns named parameters (leaf `Var`s with `requires_grad == true`)
/// and named sub-modules; `NamedParameters()` flattens the tree with
/// slash-separated paths (e.g. "encoder/layer0/attn/wq"). There is no virtual
/// `Forward` — each concrete module exposes its own typed forward method.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, with path names.
  std::vector<std::pair<std::string, ag::Var>> NamedParameters() const;

  /// All parameters (no names), in deterministic registration order.
  std::vector<ag::Var> Parameters() const;

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

  /// Zeroes the gradient accumulator on every parameter.
  void ZeroGrad();

 protected:
  /// Registers a trainable parameter. Returns the stored Var (aliasing).
  ag::Var RegisterParameter(const std::string& name, Tensor value);

  /// Registers a child module (kept alive by shared ownership).
  void RegisterModule(const std::string& name, std::shared_ptr<Module> child);

 private:
  std::vector<std::pair<std::string, ag::Var>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

/// Glorot/Xavier-uniform initialization for a (fan_in, fan_out) weight.
Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

}  // namespace tsfm::nn

#endif  // TSFM_NN_MODULE_H_
