#ifndef TSFM_NN_MODULE_H_
#define TSFM_NN_MODULE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"
#include "simd/quant.h"

namespace tsfm::nn {

/// Per-forward-pass context: training mode toggles dropout; `rng` provides
/// the randomness stream (so forward passes are reproducible per seed).
struct ForwardContext {
  bool training = false;
  Rng* rng = nullptr;
};

/// Base class for neural-network modules.
///
/// A module owns named parameters (leaf `Var`s with `requires_grad == true`)
/// and named sub-modules; `NamedParameters()` flattens the tree with
/// slash-separated paths (e.g. "encoder/layer0/attn/wq"). There is no virtual
/// `Forward` — each concrete module exposes its own typed forward method.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, with path names.
  std::vector<std::pair<std::string, ag::Var>> NamedParameters() const;

  /// All parameters (no names), in deterministic registration order.
  std::vector<ag::Var> Parameters() const;

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

  /// Zeroes the gradient accumulator on every parameter.
  void ZeroGrad();

  /// Builds (or rebuilds) the int8 weight caches of every
  /// quantization-capable descendant (Linear layers) from the current fp32
  /// parameter values. Call after loading a checkpoint or after mutating
  /// encoder weights (full fine-tune) while quant mode is on; lazy builds
  /// would also happen on first frozen forward, but an explicit refresh
  /// avoids serving a stale cache when a pooled buffer address is reused.
  void PrepareQuantized();

  /// Installs pre-built quantized weights keyed by parameter path (the
  /// NamedParameters naming, e.g. "encoder/layer0/attn/wq/weight"). Used by
  /// the quantized-checkpoint loader so the exact stored int8 values are
  /// served, rather than a re-quantization of the dequantized fp32 weights
  /// (whose scales are not bit-stable through the fp32 round trip). Returns
  /// the number of entries adopted.
  int64_t AdoptQuantized(
      const std::map<std::string,
                     std::shared_ptr<const simd::QuantizedMatrix>>& by_path);

 protected:
  /// Registers a trainable parameter. Returns the stored Var (aliasing).
  ag::Var RegisterParameter(const std::string& name, Tensor value);

  /// Registers a child module (kept alive by shared ownership).
  void RegisterModule(const std::string& name, std::shared_ptr<Module> child);

  /// Module-local quantization hooks, overridden by layers that own a
  /// quantizable weight (Linear). Defaults do nothing.
  virtual void PrepareQuantizedSelf() {}
  virtual bool AdoptQuantizedParam(
      const std::string& local_name,
      std::shared_ptr<const simd::QuantizedMatrix> q) {
    (void)local_name;
    (void)q;
    return false;
  }

 private:
  int64_t AdoptQuantizedImpl(
      const std::string& prefix,
      const std::map<std::string,
                     std::shared_ptr<const simd::QuantizedMatrix>>& by_path);

  std::vector<std::pair<std::string, ag::Var>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

/// Glorot/Xavier-uniform initialization for a (fan_in, fan_out) weight.
Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

}  // namespace tsfm::nn

#endif  // TSFM_NN_MODULE_H_
