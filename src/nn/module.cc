#include "nn/module.h"

#include <cmath>

#include "common/check.h"

namespace tsfm::nn {

std::vector<std::pair<std::string, ag::Var>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, ag::Var>> out = params_;
  for (const auto& [name, child] : children_) {
    for (const auto& [pname, p] : child->NamedParameters()) {
      out.emplace_back(name + "/" + pname, p);
    }
  }
  return out;
}

std::vector<ag::Var> Module::Parameters() const {
  std::vector<ag::Var> out;
  for (const auto& [name, p] : NamedParameters()) out.push_back(p);
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.value().numel();
  return n;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void Module::PrepareQuantized() {
  PrepareQuantizedSelf();
  for (auto& [name, child] : children_) child->PrepareQuantized();
}

int64_t Module::AdoptQuantized(
    const std::map<std::string,
                   std::shared_ptr<const simd::QuantizedMatrix>>& by_path) {
  return AdoptQuantizedImpl("", by_path);
}

int64_t Module::AdoptQuantizedImpl(
    const std::string& prefix,
    const std::map<std::string,
                   std::shared_ptr<const simd::QuantizedMatrix>>& by_path) {
  int64_t adopted = 0;
  for (auto& [pname, p] : params_) {
    const auto it = by_path.find(prefix + pname);
    if (it != by_path.end() && AdoptQuantizedParam(pname, it->second)) {
      ++adopted;
    }
  }
  for (auto& [cname, child] : children_) {
    adopted += child->AdoptQuantizedImpl(prefix + cname + "/", by_path);
  }
  return adopted;
}

ag::Var Module::RegisterParameter(const std::string& name, Tensor value) {
  ag::Var v(std::move(value), /*requires_grad=*/true);
  params_.emplace_back(name, v);
  return v;
}

void Module::RegisterModule(const std::string& name,
                            std::shared_ptr<Module> child) {
  TSFM_CHECK(child != nullptr);
  children_.emplace_back(name, std::move(child));
}

Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform(Shape{fan_in, fan_out}, rng, -limit, limit);
}

}  // namespace tsfm::nn
