#include "serve/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/artifact.h"

namespace tsfm::serve {

namespace {

// Poll tick for interruptible reads; the stop flag is observed at this
// granularity. Once a frame is partially read, the reader grants the peer
// kMidFrameGraceTicks more ticks to finish the frame during a drain so a
// fully-sent request racing the stop flag is still answered.
constexpr int kPollMillis = 50;
constexpr int kMidFrameGraceTicks = 20;  // ~1 s

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Bounds-checked little-endian reads from a payload cursor.
bool GetU32(std::string_view s, size_t* pos, uint32_t* v) {
  if (s.size() - *pos < sizeof(*v)) return false;
  std::memcpy(v, s.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}
bool GetU64(std::string_view s, size_t* pos, uint64_t* v) {
  if (s.size() - *pos < sizeof(*v)) return false;
  std::memcpy(v, s.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

/// Reads exactly `n` bytes. `started` reports whether any byte of the
/// current frame had already been consumed when a stop/EOF cut the read
/// short, which is what distinguishes a truncated frame from an idle close.
Status ReadExact(int fd, void* buf, size_t n, const std::atomic<bool>* stop,
                 bool* started) {
  uint8_t* out = static_cast<uint8_t*>(buf);
  size_t got = 0;
  int grace = kMidFrameGraceTicks;
  while (got < n) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      if (!*started) return Status::ResourceExhausted("server stopping");
      // Mid-frame: keep reading for a bounded grace period so a request
      // already on the wire completes; a peer that stalls forfeits it.
      if (--grace < 0) return Status::IoError("frame truncated by shutdown");
    }
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollMillis);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (pr == 0) continue;  // tick: recheck stop
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) {
      if (!*started) return Status::NotFound("connection closed");
      return Status::IoError("truncated frame");
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
    *started = true;
  }
  return Status::OK();
}

Status WriteAll(int fd, const void* buf, size_t n) {
  const uint8_t* data = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

bool IsKnownMessageType(uint16_t type) {
  return type >= static_cast<uint16_t>(MessageType::kClassifyRequest) &&
         type <= static_cast<uint16_t>(MessageType::kMetricsResponse);
}

std::string EncodeFrame(const Frame& frame) {
  // A frame without context encodes as plain v1, so the wire stays
  // byte-identical for every pre-context peer and for all responses.
  const bool with_ctx = frame.trace_id != 0;
  std::string out;
  out.reserve(kFrameHeaderBytes + (with_ctx ? 2 + kContextBytes : 0) +
              frame.payload.size() + kFrameTrailerBytes);
  PutU32(&out, kFrameMagic);
  PutU16(&out, with_ctx ? kProtocolVersionContext : kProtocolVersion);
  PutU16(&out, static_cast<uint16_t>(frame.type));
  PutU64(&out, frame.request_id);
  PutU64(&out, static_cast<uint64_t>(frame.payload.size()));
  uint32_t crc = 0;
  if (with_ctx) {
    std::string ctx;
    PutU64(&ctx, frame.trace_id);
    PutU64(&ctx, 0);  // reserved
    PutU16(&out, static_cast<uint16_t>(ctx.size()));
    out += ctx;
    crc = io::Crc32(ctx.data(), ctx.size());
  }
  out += frame.payload;
  PutU32(&out, io::Crc32(frame.payload.data(), frame.payload.size(), crc));
  return out;
}

Status ParseFrameHeader(const uint8_t* data, FrameHeader* out) {
  uint32_t magic;
  uint16_t version, type;
  std::memcpy(&magic, data, 4);
  std::memcpy(&version, data + 4, 2);
  std::memcpy(&type, data + 6, 2);
  std::memcpy(&out->request_id, data + 8, 8);
  std::memcpy(&out->payload_size, data + 16, 8);
  if (magic != kFrameMagic) return Status::InvalidArgument("bad frame magic");
  if (version != kProtocolVersion && version != kProtocolVersionContext) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  out->version = version;
  if (!IsKnownMessageType(type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  if (out->payload_size > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload " + std::to_string(out->payload_size) +
        " exceeds limit " + std::to_string(kMaxFramePayload));
  }
  out->type = static_cast<MessageType>(type);
  return Status::OK();
}

std::string EncodeTensorPayload(const Tensor& x) {
  const Tensor dense = x.Contiguous();
  std::string out;
  out.reserve(8 + 8 * dense.ndim() + 4 * dense.numel());
  PutU64(&out, static_cast<uint64_t>(dense.ndim()));
  for (int64_t d = 0; d < dense.ndim(); ++d) {
    PutU64(&out, static_cast<uint64_t>(dense.dim(d)));
  }
  out.append(reinterpret_cast<const char*>(dense.data()),
             static_cast<size_t>(dense.numel()) * sizeof(float));
  return out;
}

Result<Tensor> DecodeTensorPayload(std::string_view payload,
                                   int64_t expected_ndim) {
  size_t pos = 0;
  uint64_t ndim;
  if (!GetU64(payload, &pos, &ndim)) {
    return Status::InvalidArgument("tensor payload too short for rank");
  }
  if (ndim != static_cast<uint64_t>(expected_ndim)) {
    return Status::InvalidArgument("tensor payload rank " +
                                   std::to_string(ndim) + ", expected " +
                                   std::to_string(expected_ndim));
  }
  // Dims are bounded individually and jointly *before* any allocation: the
  // product may not exceed what the remaining payload bytes can actually
  // hold, so a hostile dim can never size a buffer past the frame cap.
  const uint64_t max_elems = (payload.size() - pos) / sizeof(float);
  Shape shape(static_cast<size_t>(ndim));
  uint64_t numel = 1;
  for (auto& dim : shape) {
    uint64_t d;
    if (!GetU64(payload, &pos, &d)) {
      return Status::InvalidArgument("tensor payload too short for dims");
    }
    if (d == 0 || d > max_elems) {
      return Status::InvalidArgument("hostile tensor dim " +
                                     std::to_string(d));
    }
    numel *= d;
    if (numel > max_elems) {
      return Status::InvalidArgument("tensor dims exceed payload bytes");
    }
    dim = static_cast<int64_t>(d);
  }
  if (payload.size() - pos != numel * sizeof(float)) {
    return Status::InvalidArgument("tensor payload size mismatch");
  }
  Tensor out = Tensor::Empty(std::move(shape));
  std::memcpy(out.mutable_data(), payload.data() + pos,
              numel * sizeof(float));
  return out;
}

std::string EncodeLabelsPayload(const std::vector<int64_t>& labels) {
  std::string out;
  out.reserve(8 + 8 * labels.size());
  PutU64(&out, static_cast<uint64_t>(labels.size()));
  for (int64_t label : labels) {
    PutU64(&out, static_cast<uint64_t>(label));
  }
  return out;
}

Result<std::vector<int64_t>> DecodeLabelsPayload(std::string_view payload) {
  size_t pos = 0;
  uint64_t n;
  if (!GetU64(payload, &pos, &n)) {
    return Status::InvalidArgument("labels payload too short");
  }
  if (n != (payload.size() - pos) / sizeof(int64_t) ||
      payload.size() - pos != n * sizeof(int64_t)) {
    return Status::InvalidArgument("labels payload size mismatch");
  }
  std::vector<int64_t> labels(static_cast<size_t>(n));
  if (n > 0) {
    std::memcpy(labels.data(), payload.data() + pos, n * sizeof(int64_t));
  }
  return labels;
}

std::string EncodeStringPayload(std::string_view s) {
  std::string out;
  out.reserve(4 + s.size());
  PutU32(&out, static_cast<uint32_t>(s.size()));
  out.append(s);
  return out;
}

Result<std::string> DecodeStringPayload(std::string_view payload) {
  size_t pos = 0;
  uint32_t len;
  if (!GetU32(payload, &pos, &len)) {
    return Status::InvalidArgument("string payload too short");
  }
  if (payload.size() - pos != len) {
    return Status::InvalidArgument("string payload size mismatch");
  }
  return std::string(payload.substr(pos, len));
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(status.code()));
  out += EncodeStringPayload(status.message());
  return out;
}

Status DecodeErrorPayload(std::string_view payload) {
  size_t pos = 0;
  uint32_t code;
  if (!GetU32(payload, &pos, &code)) {
    return Status::IoError("malformed error payload");
  }
  auto message = DecodeStringPayload(payload.substr(pos));
  if (!message.ok()) return Status::IoError("malformed error payload");
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kInternal)) {
    return Status::Internal("remote error with unknown code: " + *message);
  }
  return Status(static_cast<StatusCode>(code), *message);
}

Status ReadFrame(int fd, Frame* out, const std::atomic<bool>* stop) {
  uint8_t header[kFrameHeaderBytes];
  bool started = false;
  TSFM_RETURN_IF_ERROR(ReadExact(fd, header, sizeof(header), stop, &started));
  FrameHeader parsed;
  TSFM_RETURN_IF_ERROR(ParseFrameHeader(header, &parsed));
  out->type = parsed.type;
  out->request_id = parsed.request_id;
  out->trace_id = 0;
  uint32_t ctx_crc = 0;
  if (parsed.version == kProtocolVersionContext) {
    uint8_t len_bytes[2];
    TSFM_RETURN_IF_ERROR(ReadExact(fd, len_bytes, sizeof(len_bytes), stop,
                                   &started));
    uint16_t ctx_len;
    std::memcpy(&ctx_len, len_bytes, sizeof(ctx_len));
    // Validated before any read of the block itself; the cap fits in a
    // stack buffer, so a hostile ctx_len never causes an allocation.
    if (ctx_len > kMaxContextBytes) {
      return Status::InvalidArgument(
          "context block " + std::to_string(ctx_len) + " exceeds limit " +
          std::to_string(kMaxContextBytes));
    }
    uint8_t ctx[kMaxContextBytes];
    if (ctx_len > 0) {
      TSFM_RETURN_IF_ERROR(ReadExact(fd, ctx, ctx_len, stop, &started));
      ctx_crc = io::Crc32(ctx, ctx_len);
    }
    // Known fields up front; a longer (future) block's tail is ignored.
    if (ctx_len >= sizeof(uint64_t)) {
      std::memcpy(&out->trace_id, ctx, sizeof(uint64_t));
    }
  }
  // payload_size was validated against kMaxFramePayload above, so this
  // resize is bounded no matter what the peer claims.
  out->payload.resize(parsed.payload_size);
  if (parsed.payload_size > 0) {
    TSFM_RETURN_IF_ERROR(ReadExact(fd, out->payload.data(),
                                   parsed.payload_size, stop, &started));
  }
  uint8_t trailer[kFrameTrailerBytes];
  TSFM_RETURN_IF_ERROR(ReadExact(fd, trailer, sizeof(trailer), stop,
                                 &started));
  uint32_t crc;
  std::memcpy(&crc, trailer, sizeof(crc));
  // CRC-32 chains: seeding the payload pass with the context block's CRC is
  // equivalent to hashing ctx||payload, so v2 covers both, v1 just the
  // payload.
  if (crc != io::Crc32(out->payload.data(), out->payload.size(), ctx_crc)) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  return Status::OK();
}

Status WriteFrame(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  return WriteAll(fd, bytes.data(), bytes.size());
}

}  // namespace tsfm::serve
