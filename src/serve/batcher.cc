#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace tsfm::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct BatchMetrics {
  obs::Counter* batches;
  obs::Counter* merged_requests;
  obs::Histogram* batch_size;
  obs::Histogram* execute_seconds;
};

BatchMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static BatchMetrics m{r.GetCounter("serve.batches"),
                        r.GetCounter("serve.merged_requests"),
                        r.GetHistogram("serve.batch.size"),
                        r.GetHistogram("serve.batch.execute_seconds")};
  return m;
}

bool Compatible(const Tensor& a, bool a_embed, const Tensor& b,
                bool b_embed) {
  return a_embed == b_embed && a.dim(1) == b.dim(1) && a.dim(2) == b.dim(2);
}

}  // namespace

MicroBatcher::MicroBatcher(SessionProvider provider, BatchOptions options)
    : provider_(std::move(provider)), options_(options) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

std::future<Result<std::vector<int64_t>>> MicroBatcher::SubmitClassify(
    Tensor x) {
  Pending p;
  p.x = std::move(x);
  p.embed = false;
  auto future = p.labels.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      p.labels.set_value(Status::ResourceExhausted("server stopping"));
      return future;
    }
    queued_samples_ += p.x.dim(0);
    queue_.push_back(std::move(p));
  }
  cv_.notify_all();
  return future;
}

std::future<Result<Tensor>> MicroBatcher::SubmitEmbed(Tensor x) {
  Pending p;
  p.x = std::move(x);
  p.embed = true;
  auto future = p.tensor.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      p.tensor.set_value(Status::ResourceExhausted("server stopping"));
      return future;
    }
    queued_samples_ += p.x.dim(0);
    queue_.push_back(std::move(p));
  }
  cv_.notify_all();
  return future;
}

int64_t MicroBatcher::pending_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_samples_;
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Already stopping; fall through to join if the worker is still live.
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::vector<MicroBatcher::Pending> MicroBatcher::TakeBatchLocked() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  // Copies (cheap shared-buffer aliases): the front element is moved out of
  // the deque below, so references into it would dangle.
  const Tensor anchor = queue_.front().x;
  const bool anchor_embed = queue_.front().embed;
  int64_t samples = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const bool take =
        batch.empty() ||
        (Compatible(anchor, anchor_embed, it->x, it->embed) &&
         samples + it->x.dim(0) <= options_.max_batch);
    if (take) {
      samples += it->x.dim(0);
      queued_samples_ -= it->x.dim(0);
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
      // The anchor request alone may exceed max_batch (the session chunks
      // internally); further merging stops once the cap is reached.
      if (samples >= options_.max_batch) break;
    } else {
      ++it;
    }
  }
  return batch;
}

void MicroBatcher::ExecuteBatch(
    const std::shared_ptr<const pipeline::InferenceSession>& session,
    std::vector<Pending> batch) {
  TSFM_TRACE_SPAN("serve.batch.execute");
  const auto t_start = Clock::now();
  int64_t samples = 0;
  for (const Pending& p : batch) samples += p.x.dim(0);

  auto fail_all = [&](const Status& status) {
    for (Pending& p : batch) {
      if (p.embed) {
        p.tensor.set_value(status);
      } else {
        p.labels.set_value(status);
      }
    }
  };
  if (session == nullptr) {
    fail_all(Status::FailedPrecondition("no session installed"));
    return;
  }

  // Single-request batches skip the concat; merged ones run one forward and
  // split results back by each request's sample count.
  Tensor merged;
  if (batch.size() == 1) {
    merged = batch[0].x;
  } else {
    std::vector<Tensor> parts;
    parts.reserve(batch.size());
    for (const Pending& p : batch) parts.push_back(p.x);
    merged = Concat(parts, 0);
  }

  if (batch[0].embed) {
    auto embeddings = session->Embed(merged);
    if (!embeddings.ok()) {
      fail_all(embeddings.status());
    } else {
      int64_t row = 0;
      for (Pending& p : batch) {
        const int64_t n = p.x.dim(0);
        p.tensor.set_value(Slice(*embeddings, 0, row, row + n).Contiguous());
        row += n;
      }
    }
  } else {
    auto labels = session->PredictBatch(merged);
    if (!labels.ok()) {
      fail_all(labels.status());
    } else {
      size_t row = 0;
      for (Pending& p : batch) {
        const size_t n = static_cast<size_t>(p.x.dim(0));
        p.labels.set_value(std::vector<int64_t>(labels->begin() + row,
                                                labels->begin() + row + n));
        row += n;
      }
    }
  }

  BatchMetrics& m = Metrics();
  m.batches->Add(1);
  if (batch.size() > 1) m.merged_requests->Add(batch.size());
  m.batch_size->Observe(static_cast<double>(samples));
  m.execute_seconds->Observe(
      std::chrono::duration<double>(Clock::now() - t_start).count());
}

void MicroBatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Micro-batch window: give compatible requests a chance to coalesce with
    // the one that just arrived. During a drain the window is skipped so
    // shutdown answers the backlog as fast as possible.
    if (!stop_ && options_.window_us > 0) {
      const auto deadline =
          Clock::now() + std::chrono::microseconds(options_.window_us);
      while (!stop_ && queued_samples_ < options_.max_batch) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
    }
    std::vector<Pending> batch = TakeBatchLocked();
    if (batch.empty()) continue;
    // The forward runs outside the lock so new requests keep queueing (and
    // Stop can be requested) while the encoder is busy.
    auto session = provider_ ? provider_() : nullptr;
    lock.unlock();
    ExecuteBatch(session, std::move(batch));
    lock.lock();
  }
}

}  // namespace tsfm::serve
