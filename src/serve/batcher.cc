#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace tsfm::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct BatchMetrics {
  obs::Counter* batches;
  obs::Counter* merged_requests;
  obs::Histogram* batch_size;
  obs::Histogram* execute_seconds;
};

BatchMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static BatchMetrics m{r.GetCounter("serve.batches"),
                        r.GetCounter("serve.merged_requests"),
                        r.GetHistogram("serve.batch.size"),
                        r.GetHistogram("serve.batch.execute_seconds")};
  return m;
}

bool Compatible(const Tensor& a, bool a_embed, const Tensor& b,
                bool b_embed) {
  return a_embed == b_embed && a.dim(1) == b.dim(1) && a.dim(2) == b.dim(2);
}

// Process-unique micro-batch ids, minted per executed batch. Nonzero so a
// zero batch_id in a span or access-log line always means "never batched".
std::atomic<uint64_t> g_next_batch_id{0};

}  // namespace

MicroBatcher::MicroBatcher(SessionProvider provider, BatchOptions options)
    : provider_(std::move(provider)), options_(options) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

std::future<Result<std::vector<int64_t>>> MicroBatcher::SubmitClassify(
    Tensor x, RequestMeta meta, BatchStats* stats) {
  Pending p;
  p.x = std::move(x);
  p.embed = false;
  p.meta = meta;
  p.stats = stats;
  p.enqueue_ns = obs::TraceNowNs();
  auto future = p.labels.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      p.labels.set_value(Status::ResourceExhausted("server stopping"));
      return future;
    }
    queued_samples_ += p.x.dim(0);
    queue_.push_back(std::move(p));
  }
  cv_.notify_all();
  return future;
}

std::future<Result<Tensor>> MicroBatcher::SubmitEmbed(Tensor x,
                                                      RequestMeta meta,
                                                      BatchStats* stats) {
  Pending p;
  p.x = std::move(x);
  p.embed = true;
  p.meta = meta;
  p.stats = stats;
  p.enqueue_ns = obs::TraceNowNs();
  auto future = p.tensor.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      p.tensor.set_value(Status::ResourceExhausted("server stopping"));
      return future;
    }
    queued_samples_ += p.x.dim(0);
    queue_.push_back(std::move(p));
  }
  cv_.notify_all();
  return future;
}

int64_t MicroBatcher::pending_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_samples_;
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Already stopping; fall through to join if the worker is still live.
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::vector<MicroBatcher::Pending> MicroBatcher::TakeBatchLocked() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  // Copies (cheap shared-buffer aliases): the front element is moved out of
  // the deque below, so references into it would dangle.
  const Tensor anchor = queue_.front().x;
  const bool anchor_embed = queue_.front().embed;
  int64_t samples = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const bool take =
        batch.empty() ||
        (Compatible(anchor, anchor_embed, it->x, it->embed) &&
         samples + it->x.dim(0) <= options_.max_batch);
    if (take) {
      samples += it->x.dim(0);
      queued_samples_ -= it->x.dim(0);
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
      // The anchor request alone may exceed max_batch (the session chunks
      // internally); further merging stops once the cap is reached.
      if (samples >= options_.max_batch) break;
    } else {
      ++it;
    }
  }
  return batch;
}

void MicroBatcher::ExecuteBatch(
    const std::shared_ptr<const pipeline::InferenceSession>& session,
    std::vector<Pending> batch) {
  const uint64_t batch_id =
      g_next_batch_id.fetch_add(1, std::memory_order_relaxed) + 1;
  // Every span recorded on this thread during the batch — the execute span
  // below and the session/pipeline stage spans inside the forward — carries
  // the batch id, which is the join key stitching each rider's request tree
  // to the shared batch.
  obs::ContextScope batch_scope({0, batch_id});
  const auto t_start = Clock::now();
  int64_t samples = 0;
  for (const Pending& p : batch) samples += p.x.dim(0);

  // Run the (merged) forward and stage per-request results; promises are
  // only resolved in the finalize loop after each request's BatchStats and
  // queue-wait span are published — the promise/future edge is what makes
  // the stats visible to the submitter without extra synchronization.
  Status failure = Status::OK();
  std::vector<std::vector<int64_t>> label_parts;
  std::vector<Tensor> tensor_parts;
  const int64_t exec_start_ns = obs::TraceNowNs();
  if (session == nullptr) {
    failure = Status::FailedPrecondition("no session installed");
  } else {
    TSFM_TRACE_SPAN("serve.batch.execute");
    // Single-request batches skip the concat; merged ones run one forward
    // and split results back by each request's sample count.
    Tensor merged;
    if (batch.size() == 1) {
      merged = batch[0].x;
    } else {
      std::vector<Tensor> parts;
      parts.reserve(batch.size());
      for (const Pending& p : batch) parts.push_back(p.x);
      merged = Concat(parts, 0);
    }

    if (batch[0].embed) {
      auto embeddings = session->Embed(merged);
      if (!embeddings.ok()) {
        failure = embeddings.status();
      } else {
        int64_t row = 0;
        for (const Pending& p : batch) {
          const int64_t n = p.x.dim(0);
          tensor_parts.push_back(
              Slice(*embeddings, 0, row, row + n).Contiguous());
          row += n;
        }
      }
    } else {
      auto labels = session->PredictBatch(merged);
      if (!labels.ok()) {
        failure = labels.status();
      } else {
        size_t row = 0;
        for (const Pending& p : batch) {
          const size_t n = static_cast<size_t>(p.x.dim(0));
          label_parts.emplace_back(labels->begin() + row,
                                   labels->begin() + row + n);
          row += n;
        }
      }
    }
  }
  const int64_t exec_end_ns = obs::TraceNowNs();
  const int64_t execute_us = (exec_end_ns - exec_start_ns) / 1000;

  // Publish batch metrics before any promise resolves: a submitter that has
  // seen its future complete must also see these counts.
  BatchMetrics& m = Metrics();
  m.batches->Add(1);
  if (batch.size() > 1) m.merged_requests->Add(batch.size());
  m.batch_size->Observe(static_cast<double>(samples));
  m.execute_seconds->Observe(
      std::chrono::duration<double>(Clock::now() - t_start).count());

  const bool tracing = obs::TraceEnabled();
  for (size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    if (p.stats != nullptr) {
      p.stats->batch_id = batch_id;
      p.stats->queue_us = (exec_start_ns - p.enqueue_ns) / 1000;
      p.stats->execute_us = execute_us;
      p.stats->batch_samples = samples;
      p.stats->batch_requests = static_cast<int64_t>(batch.size());
    }
    if (tracing) {
      // Retroactive per-request queue-wait span: its trace_id ties it to
      // the request's tree, its batch_id to the shared execute span above.
      obs::RecordSpan("serve.queue_wait", p.enqueue_ns,
                      exec_start_ns - p.enqueue_ns,
                      {p.meta.trace_id, batch_id});
    }
    if (!failure.ok()) {
      if (p.embed) {
        p.tensor.set_value(failure);
      } else {
        p.labels.set_value(failure);
      }
    } else if (p.embed) {
      p.tensor.set_value(std::move(tensor_parts[i]));
    } else {
      p.labels.set_value(std::move(label_parts[i]));
    }
  }
}

void MicroBatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Micro-batch window: give compatible requests a chance to coalesce with
    // the one that just arrived. During a drain the window is skipped so
    // shutdown answers the backlog as fast as possible.
    if (!stop_ && options_.window_us > 0) {
      const auto deadline =
          Clock::now() + std::chrono::microseconds(options_.window_us);
      while (!stop_ && queued_samples_ < options_.max_batch) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
    }
    std::vector<Pending> batch = TakeBatchLocked();
    if (batch.empty()) continue;
    // The forward runs outside the lock so new requests keep queueing (and
    // Stop can be requested) while the encoder is busy.
    auto session = provider_ ? provider_() : nullptr;
    lock.unlock();
    ExecuteBatch(session, std::move(batch));
    lock.lock();
  }
}

}  // namespace tsfm::serve
