#ifndef TSFM_SERVE_SERVER_H_
#define TSFM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "pipeline/registry.h"
#include "serve/batcher.h"
#include "serve/protocol.h"
#include "serve/slo.h"

namespace tsfm::serve {

/// Server configuration (`tsfm serve` flags map 1:1 onto these).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by Server::port().
  int port = 0;
  /// Registry name the serving session is resolved under (per batch, which
  /// is what makes `tsfm serve reload` a zero-downtime hot-swap).
  std::string session_name = "default";
  BatchOptions batch;
  /// Admission cap: classify/embed requests arriving while this many samples
  /// are already queued are shed with kBusy instead of queued.
  int64_t max_pending = 256;
  /// When a live budget is configured (obs::SetBudget), requests are also
  /// shed with kBusy once the budget monitor trips — the watchdog acts as an
  /// admission controller here, never as an abort.
  bool budget_admission = true;
  /// Handler for kReloadRequest frames: loads the fitted bundle under the
  /// given prefix and installs it under session_name. Unset = reload
  /// requests answered with Unimplemented.
  std::function<Status(const std::string& prefix)> reload_fn;
  /// SLO thresholds over the rolling 60 s window (serve/slo.h); inert when
  /// both thresholds are zero.
  SloOptions slo;
  /// Per-request JSON access log; disabled when the path is empty.
  AccessLogOptions access_log;
};

/// Multi-threaded TCP inference server over the length-prefixed frame
/// protocol (serve/protocol.h).
///
/// One thread accepts connections; each connection gets a handler thread
/// that reads one frame at a time, admits it, and hands classify/embed work
/// to the shared MicroBatcher — so concurrency across connections is what
/// fills micro-batches. Responses carry the request's id; a connection
/// handles one request at a time (responses are never interleaved).
///
/// Protocol errors (bad magic/version/type, hostile lengths, CRC mismatch)
/// are answered with a best-effort kError frame and the connection is
/// closed; the process never crashes or over-allocates on malformed input
/// (serve_test fuzzes this).
///
/// Stop() drains: the listener closes, idle connections unblock, requests
/// already queued are executed and answered, then all threads are joined.
class Server {
 public:
  /// Binds, listens, and starts the accept loop. `registry` must outlive
  /// the server.
  static Result<std::unique_ptr<Server>> Start(pipeline::Registry* registry,
                                               ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually-bound TCP port (resolves port 0).
  int port() const { return port_; }

  const ServerOptions& options() const { return options_; }

  /// True once a client's kShutdownRequest was acknowledged; the owner (CLI
  /// loop) is expected to notice and call Stop().
  bool ShutdownRequested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// Graceful drain (idempotent): stop accepting, answer every queued
  /// request, join all threads, close every socket.
  void Stop();

 private:
  Server(pipeline::Registry* registry, ServerOptions options);

  Status Listen();
  void AcceptLoop();
  void Connection(int fd);
  /// Returns false when the connection should close after this frame.
  bool HandleFrame(int fd, Frame frame);
  void HandlePredict(int fd, Frame frame);

  pipeline::Registry* const registry_;
  const ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::unique_ptr<MicroBatcher> batcher_;
  std::unique_ptr<SloTracker> slo_;
  std::unique_ptr<AccessLog> access_log_;
  /// Per-op rolling latency, labeled with the op and this server's model
  /// (session) name: serve.request.latency{model=...,op=classify|embed}.
  obs::RollingHistogram* latency_classify_ = nullptr;
  obs::RollingHistogram* latency_embed_ = nullptr;
  std::thread accept_thread_;

  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;
};

}  // namespace tsfm::serve

#endif  // TSFM_SERVE_SERVER_H_
