#ifndef TSFM_SERVE_CLIENT_H_
#define TSFM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"
#include "tensor/tensor.h"

namespace tsfm::serve {

/// Blocking client for the tsfm serve protocol: one request in flight at a
/// time per connection (which is exactly what lets the server's micro-batch
/// window coalesce across *many* connections). Used by the CLI verbs
/// (`tsfm serve reload|stats|stop`), the load generator, and serve_test.
///
/// Not thread-safe; use one Client per thread.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Classifies a (N, T, D) batch (a single (T, D) sample is auto-lifted).
  /// A kBusy reply surfaces as ResourceExhausted("server busy").
  Result<std::vector<int64_t>> Classify(const Tensor& x);

  /// Embeds a (N, T, D) batch into (N, E).
  Result<Tensor> Embed(const Tensor& x);

  Status Ping();

  /// Asks the server to hot-swap the bundle saved under `prefix` into its
  /// serving slot; returns the session name it was installed under.
  Result<std::string> Reload(const std::string& prefix);

  /// The server's metrics registry dump (obs RenderText format).
  Result<std::string> Stats();

  /// The server's live metrics in Prometheus text exposition format
  /// (kMetricsRequest; forces an SLO evaluation server-side first so
  /// serve.slo.* gauges are current at scrape time).
  Result<std::string> MetricsText();

  /// Requests a graceful drain; returns once the server acknowledged.
  Status Shutdown();

  /// Raw frame round-trip (exposed for protocol tests and the fuzz matrix).
  /// `trace_id` != 0 upgrades the request frame to the v2 context-carrying
  /// wire variant.
  Result<Frame> Call(MessageType type, std::string payload,
                     uint64_t trace_id = 0);

  /// Trace id minted for the most recent Classify/Embed call (0 before the
  /// first). Tests use this to find the request's spans in a trace dump.
  uint64_t last_trace_id() const { return last_trace_id_; }

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_id_ = 1;
  uint64_t last_trace_id_ = 0;
};

}  // namespace tsfm::serve

#endif  // TSFM_SERVE_CLIENT_H_
