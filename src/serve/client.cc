#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.h"

namespace tsfm::serve {

Result<Client> Client::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::IoError("connect " + host + ":" +
                                     std::to_string(port) + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_id_(other.next_id_),
      last_trace_id_(other.last_trace_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    last_trace_id_ = other.last_trace_id_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Frame> Client::Call(MessageType type, std::string payload,
                           uint64_t trace_id) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Frame request{type, next_id_++, std::move(payload)};
  request.trace_id = trace_id;
  TSFM_RETURN_IF_ERROR(WriteFrame(fd_, request));
  Frame response;
  TSFM_RETURN_IF_ERROR(ReadFrame(fd_, &response, nullptr));
  if (response.request_id != request.request_id) {
    return Status::Internal("response id " +
                            std::to_string(response.request_id) +
                            " does not match request " +
                            std::to_string(request.request_id));
  }
  // Uniform error mapping so callers only see their success type.
  if (response.type == MessageType::kError) {
    return DecodeErrorPayload(response.payload);
  }
  if (response.type == MessageType::kBusy) {
    return Status::ResourceExhausted("server busy");
  }
  return response;
}

Result<std::vector<int64_t>> Client::Classify(const Tensor& x) {
  Tensor batch = x;
  if (x.ndim() == 2) batch = x.Reshape({1, x.dim(0), x.dim(1)});
  if (batch.ndim() != 3) {
    return Status::InvalidArgument("Classify expects (N, T, D) or (T, D)");
  }
  // Each predict call mints a trace id that rides the v2 frame to the
  // server; the local client span carries the same id so the client side of
  // the round-trip stitches into the server's tree.
  last_trace_id_ = obs::NewTraceId();
  obs::ContextScope ctx({last_trace_id_, 0});
  TSFM_TRACE_SPAN("serve.client.request");
  TSFM_ASSIGN_OR_RETURN(Frame response,
                        Call(MessageType::kClassifyRequest,
                             EncodeTensorPayload(batch), last_trace_id_));
  if (response.type != MessageType::kClassifyResponse) {
    return Status::Internal("unexpected response type");
  }
  TSFM_ASSIGN_OR_RETURN(std::vector<int64_t> labels,
                        DecodeLabelsPayload(response.payload));
  if (labels.size() != static_cast<size_t>(batch.dim(0))) {
    return Status::Internal("label count does not match batch size");
  }
  return labels;
}

Result<Tensor> Client::Embed(const Tensor& x) {
  Tensor batch = x;
  if (x.ndim() == 2) batch = x.Reshape({1, x.dim(0), x.dim(1)});
  if (batch.ndim() != 3) {
    return Status::InvalidArgument("Embed expects (N, T, D) or (T, D)");
  }
  last_trace_id_ = obs::NewTraceId();
  obs::ContextScope ctx({last_trace_id_, 0});
  TSFM_TRACE_SPAN("serve.client.request");
  TSFM_ASSIGN_OR_RETURN(
      Frame response,
      Call(MessageType::kEmbedRequest, EncodeTensorPayload(batch),
           last_trace_id_));
  if (response.type != MessageType::kEmbedResponse) {
    return Status::Internal("unexpected response type");
  }
  return DecodeTensorPayload(response.payload, /*expected_ndim=*/2);
}

Status Client::Ping() {
  TSFM_ASSIGN_OR_RETURN(Frame response, Call(MessageType::kPing, ""));
  return response.type == MessageType::kPong
             ? Status::OK()
             : Status::Internal("unexpected response type");
}

Result<std::string> Client::Reload(const std::string& prefix) {
  TSFM_ASSIGN_OR_RETURN(Frame response,
                        Call(MessageType::kReloadRequest,
                             EncodeStringPayload(prefix)));
  if (response.type != MessageType::kReloadResponse) {
    return Status::Internal("unexpected response type");
  }
  return DecodeStringPayload(response.payload);
}

Result<std::string> Client::Stats() {
  TSFM_ASSIGN_OR_RETURN(Frame response, Call(MessageType::kStatsRequest, ""));
  if (response.type != MessageType::kStatsResponse) {
    return Status::Internal("unexpected response type");
  }
  return DecodeStringPayload(response.payload);
}

Result<std::string> Client::MetricsText() {
  TSFM_ASSIGN_OR_RETURN(Frame response,
                        Call(MessageType::kMetricsRequest, ""));
  if (response.type != MessageType::kMetricsResponse) {
    return Status::Internal("unexpected response type");
  }
  return DecodeStringPayload(response.payload);
}

Status Client::Shutdown() {
  TSFM_ASSIGN_OR_RETURN(Frame response,
                        Call(MessageType::kShutdownRequest, ""));
  return response.type == MessageType::kShutdownResponse
             ? Status::OK()
             : Status::Internal("unexpected response type");
}

}  // namespace tsfm::serve
