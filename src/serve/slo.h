#ifndef TSFM_SERVE_SLO_H_
#define TSFM_SERVE_SLO_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/rolling.h"

namespace tsfm::serve {

// ---------------------------------------------------------------------------
// Serving SLO evaluation and the per-request access log. Both consume the
// rolling-window instruments the server keeps (obs/rolling.h): the SLO
// tracker compares the last-60s latency p99 and error/shed rate against
// operator thresholds, and the access log writes one JSON line per request
// with the ids and micro-timings the batcher measured — the two signals an
// operator needs before trusting a hot-swap (ROADMAP item 5).

/// Thresholds from `tsfm serve --slo-p99-ms --slo-error-rate`. A zero
/// threshold disables that check; with both zero the tracker is inert.
struct SloOptions {
  /// Breach when the rolling-window p99 request latency exceeds this.
  double p99_ms = 0.0;
  /// Breach when (errors + shed) / requests over the window exceeds this
  /// fraction.
  double error_rate = 0.0;

  bool enabled() const { return p99_ms > 0.0 || error_rate > 0.0; }
};

/// Evaluates the rolling serve metrics against SloOptions. Thread-safe;
/// Evaluate() self-rate-limits to roughly one evaluation per second so it
/// can sit on the per-request completion path. State transitions publish:
///   serve.slo.ok        gauge, 1 healthy / 0 in breach
///   serve.slo.breaches  counter, incremented on each ok -> breach edge
/// and emit one structured JSON event line on stderr per transition
/// ({"event":"slo_breach",...} / {"event":"slo_recovered",...}).
class SloTracker {
 public:
  SloTracker(SloOptions options, obs::RollingHistogram* latency_seconds,
             obs::RollingCounter* requests, obs::RollingCounter* errors,
             obs::RollingCounter* shed);

  /// Re-evaluates the window (rate-limited unless `force`). No-op when no
  /// threshold is configured.
  void Evaluate(bool force = false);

  bool in_breach() const {
    return breach_.load(std::memory_order_relaxed);
  }

 private:
  const SloOptions options_;
  obs::RollingHistogram* const latency_seconds_;
  obs::RollingCounter* const requests_;
  obs::RollingCounter* const errors_;
  obs::RollingCounter* const shed_;
  obs::Counter* const breaches_;
  obs::Gauge* const ok_gauge_;

  std::atomic<int64_t> last_eval_ns_{-1};
  std::atomic<bool> breach_{false};
  std::mutex transition_mu_;  // serializes the stderr transition events
};

/// `--access-log[=path]` configuration. An empty path disables the log;
/// "stderr" / "stdout" write to the process streams, anything else is a
/// file (truncated at open). `sample` keeps every Nth request (1 = all).
struct AccessLogOptions {
  std::string path;
  int64_t sample = 1;
};

/// Sampled JSON-lines access log: one object per completed request with
/// request id, op, trace id, batch id, queue/execute/total micros, and
/// status — everything tools/tsfm_loadgen needs to cross-check its own
/// measurements. Record() is mutex-serialized (one line, one write) and
/// flushes per line so `tail -f` and the CI checks see complete records.
class AccessLog {
 public:
  struct Entry {
    uint64_t request_id = 0;
    uint64_t trace_id = 0;
    uint64_t batch_id = 0;
    const char* op = "";      // "classify" | "embed"
    int64_t samples = 0;      // batch dimension of the request tensor
    int64_t queue_us = 0;
    int64_t execute_us = 0;
    int64_t total_us = 0;
    const char* status = "";  // "ok" | "error" | "busy" | "bad_request"
  };

  /// nullptr (inside an OK result) when options.path is empty.
  static Result<std::unique_ptr<AccessLog>> Open(
      const AccessLogOptions& options);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  void Record(const Entry& entry);

 private:
  AccessLog(std::FILE* out, bool owned, int64_t sample)
      : out_(out), owned_(owned), sample_(sample < 1 ? 1 : sample) {}

  std::FILE* const out_;
  const bool owned_;
  const int64_t sample_;
  std::atomic<uint64_t> seen_{0};
  std::mutex mu_;
};

}  // namespace tsfm::serve

#endif  // TSFM_SERVE_SLO_H_
