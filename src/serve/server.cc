#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace tsfm::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Traffic-facing serve metrics live on rolling-window instruments so a
// long-lived server can answer "what is p99 / the shed rate *right now*";
// their snapshot keys are a superset of the old cumulative ones, so nothing
// downstream changes. Structural counters (connections, reloads, protocol
// errors) stay cumulative.
struct ServerMetrics {
  obs::RollingCounter* requests;
  obs::RollingCounter* responses;
  obs::RollingCounter* errors;
  obs::RollingCounter* shed;
  obs::Counter* protocol_errors;
  obs::Counter* reloads;
  obs::Counter* connections;
  obs::RollingHistogram* request_seconds;
};

ServerMetrics& Metrics() {
  auto& r = obs::Registry::Instance();
  static ServerMetrics m{r.GetRollingCounter("serve.requests"),
                         r.GetRollingCounter("serve.responses"),
                         r.GetRollingCounter("serve.errors"),
                         r.GetRollingCounter("serve.shed"),
                         r.GetCounter("serve.protocol_errors"),
                         r.GetCounter("serve.reloads"),
                         r.GetCounter("serve.connections"),
                         r.GetRollingHistogram("serve.request_seconds")};
  return m;
}

}  // namespace

Server::Server(pipeline::Registry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Result<std::unique_ptr<Server>> Server::Start(pipeline::Registry* registry,
                                              ServerOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("server needs a registry");
  }
  if (options.max_pending <= 0 || options.batch.max_batch <= 0) {
    return Status::InvalidArgument(
        "max_pending and max_batch must be positive");
  }
  std::unique_ptr<Server> server(new Server(registry, std::move(options)));
  TSFM_RETURN_IF_ERROR(server->Listen());
  pipeline::Registry* reg = server->registry_;
  const std::string name = server->options_.session_name;
  server->batcher_ = std::make_unique<MicroBatcher>(
      [reg, name] { return reg->Get(name); }, server->options_.batch);
  auto& metrics_registry = obs::Registry::Instance();
  server->latency_classify_ = metrics_registry.GetRollingHistogram(
      obs::LabeledName("serve.request.latency",
                       {{"model", name}, {"op", "classify"}}));
  server->latency_embed_ = metrics_registry.GetRollingHistogram(
      obs::LabeledName("serve.request.latency",
                       {{"model", name}, {"op", "embed"}}));
  ServerMetrics& m = Metrics();
  server->slo_ = std::make_unique<SloTracker>(
      server->options_.slo, m.request_seconds, m.requests, m.errors, m.shed);
  TSFM_ASSIGN_OR_RETURN(server->access_log_,
                        AccessLog::Open(server->options_.access_log));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::IoError("bind " + options_.host + ":" +
                        std::to_string(options_.port) + ": " +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status s =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Metrics().connections->Add(1);
    std::lock_guard<std::mutex> lock(conns_mu_);
    // Reap finished handlers so a long-lived server doesn't accumulate
    // joinable-but-dead threads.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    conn->thread = std::thread([this, fd, raw] {
      Connection(fd);
      raw->done.store(true, std::memory_order_release);
    });
    conns_.push_back(std::move(conn));
  }
}

void Server::Connection(int fd) {
  while (true) {
    Frame frame;
    const Status s = ReadFrame(fd, &frame, &stop_);
    if (!s.ok()) {
      // NotFound = clean close, ResourceExhausted = drain while idle; both
      // end the connection silently. Anything else is a malformed or
      // truncated frame: count it, best-effort error reply, close — there
      // is no reliable way to resynchronize a framed stream after garbage.
      if (s.code() != StatusCode::kNotFound &&
          s.code() != StatusCode::kResourceExhausted) {
        Metrics().protocol_errors->Add(1);
        WriteFrame(fd, Frame{MessageType::kError, frame.request_id,
                             EncodeErrorPayload(s)});
      }
      break;
    }
    if (!HandleFrame(fd, std::move(frame))) break;
  }
  ::close(fd);
}

bool Server::HandleFrame(int fd, Frame frame) {
  switch (frame.type) {
    case MessageType::kPing:
      return WriteFrame(fd, Frame{MessageType::kPong, frame.request_id, ""})
          .ok();
    case MessageType::kClassifyRequest:
    case MessageType::kEmbedRequest:
      HandlePredict(fd, std::move(frame));
      return true;
    case MessageType::kReloadRequest: {
      Status status;
      auto prefix = DecodeStringPayload(frame.payload);
      if (!prefix.ok()) {
        status = prefix.status();
      } else if (!options_.reload_fn) {
        status = Status::Unimplemented("server has no reload handler");
      } else {
        status = options_.reload_fn(*prefix);
      }
      if (!status.ok()) {
        return WriteFrame(fd, Frame{MessageType::kError, frame.request_id,
                                    EncodeErrorPayload(status)})
            .ok();
      }
      Metrics().reloads->Add(1);
      return WriteFrame(fd,
                        Frame{MessageType::kReloadResponse, frame.request_id,
                              EncodeStringPayload(options_.session_name)})
          .ok();
    }
    case MessageType::kStatsRequest:
      return WriteFrame(
                 fd, Frame{MessageType::kStatsResponse, frame.request_id,
                           EncodeStringPayload(
                               obs::Registry::Instance().RenderText())})
          .ok();
    case MessageType::kMetricsRequest:
      // Live scrape: refresh the SLO gauges first so a poller sees current
      // breach state, then render the whole registry as Prometheus text.
      if (slo_ != nullptr) slo_->Evaluate(/*force=*/true);
      return WriteFrame(
                 fd,
                 Frame{MessageType::kMetricsResponse, frame.request_id,
                       EncodeStringPayload(
                           obs::Registry::Instance().RenderPrometheus())})
          .ok();
    case MessageType::kShutdownRequest:
      // Flag before ack: a client that saw the acknowledgement must observe
      // ShutdownRequested() == true.
      shutdown_requested_.store(true, std::memory_order_relaxed);
      WriteFrame(fd,
                 Frame{MessageType::kShutdownResponse, frame.request_id, ""});
      return false;
    default: {
      // A response type on the request path is a peer bug; treat it like any
      // other protocol error.
      Metrics().protocol_errors->Add(1);
      WriteFrame(fd, Frame{MessageType::kError, frame.request_id,
                           EncodeErrorPayload(Status::InvalidArgument(
                               "unexpected message type on server"))});
      return false;
    }
  }
}

void Server::HandlePredict(int fd, Frame frame) {
  // The wire-carried trace id becomes this thread's context, so the request
  // span below (and anything recorded before the batcher takes over)
  // stitches into the client's trace.
  obs::ContextScope request_ctx({frame.trace_id, 0});
  TSFM_TRACE_SPAN("serve.request");
  const auto t_start = Clock::now();
  ServerMetrics& m = Metrics();
  m.requests->Add(1);

  const bool embed = frame.type == MessageType::kEmbedRequest;
  const char* op = embed ? "embed" : "classify";
  BatchStats stats;
  auto log_request = [&](int64_t samples, const char* status) {
    if (access_log_ == nullptr) return;
    AccessLog::Entry entry;
    entry.request_id = frame.request_id;
    entry.trace_id = frame.trace_id;
    entry.batch_id = stats.batch_id;
    entry.op = op;
    entry.samples = samples;
    entry.queue_us = stats.queue_us;
    entry.execute_us = stats.execute_us;
    entry.total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         Clock::now() - t_start)
                         .count();
    entry.status = status;
    access_log_->Record(entry);
  };

  auto request = DecodeTensorPayload(frame.payload, /*expected_ndim=*/3);
  if (!request.ok()) {
    m.protocol_errors->Add(1);
    m.errors->Add(1);
    WriteFrame(fd, Frame{MessageType::kError, frame.request_id,
                         EncodeErrorPayload(request.status())});
    log_request(0, "bad_request");
    return;
  }
  const int64_t samples = request->dim(0);

  // Admission control: shed with an explicit BUSY instead of queueing past
  // the cap — and when a live budget is configured, a tripped budget monitor
  // sheds too (the watchdog degrades to load-shedding here rather than
  // aborting the process as it does for offline runs).
  bool busy = batcher_->pending_samples() + samples > options_.max_pending;
  if (!busy && options_.budget_admission && obs::BudgetConfigured()) {
    busy = !obs::CheckBudget("serve.admission").ok();
  }
  if (busy) {
    m.shed->Add(1);
    WriteFrame(fd, Frame{MessageType::kBusy, frame.request_id, ""});
    log_request(samples, "busy");
    slo_->Evaluate();
    return;
  }

  const RequestMeta meta{frame.request_id, frame.trace_id};
  bool ok;
  Frame response;
  response.request_id = frame.request_id;
  if (embed) {
    auto future = batcher_->SubmitEmbed(std::move(*request), meta, &stats);
    Result<Tensor> embeddings = future.get();
    ok = embeddings.ok();
    if (ok) {
      response.type = MessageType::kEmbedResponse;
      response.payload = EncodeTensorPayload(*embeddings);
    } else {
      response.type = MessageType::kError;
      response.payload = EncodeErrorPayload(embeddings.status());
    }
  } else {
    auto future = batcher_->SubmitClassify(std::move(*request), meta, &stats);
    Result<std::vector<int64_t>> labels = future.get();
    ok = labels.ok();
    if (ok) {
      response.type = MessageType::kClassifyResponse;
      response.payload = EncodeLabelsPayload(*labels);
    } else {
      response.type = MessageType::kError;
      response.payload = EncodeErrorPayload(labels.status());
    }
  }
  if (!ok) m.errors->Add(1);
  if (WriteFrame(fd, response).ok()) m.responses->Add(1);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t_start).count();
  m.request_seconds->Observe(seconds);
  (embed ? latency_embed_ : latency_classify_)->Observe(seconds);
  log_request(samples, ok ? "ok" : "error");
  slo_->Evaluate();
}

void Server::Stop() {
  const bool was_stopping = stop_.exchange(true, std::memory_order_relaxed);
  if (!was_stopping) {
    // Order matters for the drain contract: first the batcher executes and
    // answers everything already queued (connection handlers blocked on
    // futures wake up and write their responses), then the handlers notice
    // the stop flag at the next frame boundary and exit, then everything is
    // joined. Requests that raced past the stop flag into Submit are failed
    // fast by the batcher rather than left hanging.
    if (batcher_ != nullptr) batcher_->Stop();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  while (true) {
    std::unique_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace tsfm::serve
