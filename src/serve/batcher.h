#ifndef TSFM_SERVE_BATCHER_H_
#define TSFM_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "pipeline/session.h"
#include "tensor/tensor.h"

namespace tsfm::serve {

/// Micro-batching knobs, mirroring every production model server: the first
/// pending request opens a window of `window_us`; compatible requests
/// arriving inside it are coalesced into one forward pass, capped at
/// `max_batch` samples. window_us == 0 degenerates to per-request execution.
struct BatchOptions {
  int64_t window_us = 1000;
  int64_t max_batch = 64;
};

/// Request identity carried into the batcher: `trace_id` stitches the
/// request's spans (queue wait, the batch it rode in) into the client's
/// trace; `request_id` is the wire-level id, echoed into the access log.
struct RequestMeta {
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
};

/// Per-request batching outcome, filled by the worker *before* the
/// request's future resolves (the promise/future edge publishes it, so the
/// submitter may read it after future.get() with no extra synchronization).
struct BatchStats {
  uint64_t batch_id = 0;      // process-unique id of the executed batch
  int64_t queue_us = 0;       // enqueue -> batch execute start
  int64_t execute_us = 0;     // merged forward duration
  int64_t batch_samples = 0;  // total samples in the batch this request rode
  int64_t batch_requests = 0; // number of requests merged into it
};

/// Coalesces concurrent classify/embed requests into single
/// PredictBatch/Embed calls on the current InferenceSession.
///
/// Requests are compatible when they ask for the same operation (classify vs
/// embed) and carry the same (T, D) series shape; the scheduler merges every
/// compatible queued request (arrival order preserved) into one (ΣN, T, D)
/// forward and splits results back per request. Because the per-sample math
/// is batch-composition-independent (the determinism contract), merged
/// responses are bit-identical to serial ones — serve_test asserts this.
///
/// The session is re-resolved from `provider` once per executed batch, which
/// is what makes registry hot-swap safe: a batch runs entirely on one
/// session, in-flight batches keep their session alive via shared_ptr, and
/// the next batch picks up the newly installed one.
class MicroBatcher {
 public:
  using SessionProvider =
      std::function<std::shared_ptr<const pipeline::InferenceSession>()>;

  MicroBatcher(SessionProvider provider, BatchOptions options);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues a (N, T, D) batch for classification; the future resolves to
  /// the labels (or the session's error). After Stop, submissions fail
  /// immediately with ResourceExhausted. `meta` propagates the request's
  /// trace context into the batch's spans; a non-null `stats` (which must
  /// outlive the future) receives the request's batching outcome before the
  /// future resolves.
  std::future<Result<std::vector<int64_t>>> SubmitClassify(
      Tensor x, RequestMeta meta = {}, BatchStats* stats = nullptr);

  /// Enqueues a (N, T, D) batch for embedding; resolves to a (N, E) tensor.
  std::future<Result<Tensor>> SubmitEmbed(Tensor x, RequestMeta meta = {},
                                          BatchStats* stats = nullptr);

  /// Samples currently queued (admission-control input).
  int64_t pending_samples() const;

  /// Drains: every queued request is executed and answered (no window
  /// waiting), then the worker exits. Idempotent; safe to call while
  /// submitters are blocked on futures.
  void Stop();

 private:
  struct Pending {
    Tensor x;
    bool embed = false;
    RequestMeta meta;
    BatchStats* stats = nullptr;  // owned by the submitter
    int64_t enqueue_ns = 0;       // obs::TraceNowNs() at submit time
    std::promise<Result<std::vector<int64_t>>> labels;
    std::promise<Result<Tensor>> tensor;
  };

  void WorkerLoop();
  /// Pops front plus every compatible queued request, up to max_batch
  /// samples. Caller holds mu_.
  std::vector<Pending> TakeBatchLocked();
  static void ExecuteBatch(
      const std::shared_ptr<const pipeline::InferenceSession>& session,
      std::vector<Pending> batch);

  const SessionProvider provider_;
  const BatchOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  int64_t queued_samples_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace tsfm::serve

#endif  // TSFM_SERVE_BATCHER_H_
