#include "serve/slo.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace tsfm::serve {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t WallMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kEvalIntervalNs = 1'000'000'000;  // at most ~1 eval/sec

}  // namespace

SloTracker::SloTracker(SloOptions options,
                       obs::RollingHistogram* latency_seconds,
                       obs::RollingCounter* requests,
                       obs::RollingCounter* errors,
                       obs::RollingCounter* shed)
    : options_(options),
      latency_seconds_(latency_seconds),
      requests_(requests),
      errors_(errors),
      shed_(shed),
      breaches_(obs::Registry::Instance().GetCounter("serve.slo.breaches")),
      ok_gauge_(obs::Registry::Instance().GetGauge("serve.slo.ok")) {
  if (options_.enabled()) ok_gauge_->Set(1.0);
}

void SloTracker::Evaluate(bool force) {
  if (!options_.enabled()) return;
  const int64_t now = NowNs();
  int64_t last = last_eval_ns_.load(std::memory_order_relaxed);
  if (!force) {
    // One thread wins each interval; everyone else returns without work.
    if (last >= 0 && now - last < kEvalIntervalNs) return;
    if (!last_eval_ns_.compare_exchange_strong(last, now,
                                               std::memory_order_relaxed)) {
      return;
    }
  } else {
    last_eval_ns_.store(now, std::memory_order_relaxed);
  }

  const double p99_ms = latency_seconds_->WindowPercentile(0.99) * 1000.0;
  const double window_requests =
      static_cast<double>(requests_->WindowCount());
  const double window_failures = static_cast<double>(
      errors_->WindowCount() + shed_->WindowCount());
  const double error_rate =
      window_requests > 0.0 ? window_failures / window_requests : 0.0;

  const bool latency_breach =
      options_.p99_ms > 0.0 && latency_seconds_->WindowCount() > 0 &&
      p99_ms > options_.p99_ms;
  const bool error_breach = options_.error_rate > 0.0 &&
                            window_requests > 0.0 &&
                            error_rate > options_.error_rate;
  const bool breach = latency_breach || error_breach;

  const bool was = breach_.exchange(breach, std::memory_order_relaxed);
  ok_gauge_->Set(breach ? 0.0 : 1.0);
  if (was == breach) return;

  // Transition edge: one structured stderr event, counter on entry.
  std::lock_guard<std::mutex> lock(transition_mu_);
  if (breach) breaches_->Add(1);
  std::fprintf(
      stderr,
      "{\"event\":\"%s\",\"ts_ms\":%lld,\"window_s\":%.0f,"
      "\"p99_ms\":%.3f,\"slo_p99_ms\":%.3f,\"error_rate\":%.4f,"
      "\"slo_error_rate\":%.4f,\"window_requests\":%.0f}\n",
      breach ? "slo_breach" : "slo_recovered",
      static_cast<long long>(WallMillis()), obs::kRollingWindowSeconds,
      p99_ms, options_.p99_ms, error_rate, options_.error_rate,
      window_requests);
  std::fflush(stderr);
}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(
    const AccessLogOptions& options) {
  if (options.path.empty()) return std::unique_ptr<AccessLog>();
  if (options.sample < 1) {
    return Status::InvalidArgument("access-log sample must be >= 1");
  }
  if (options.path == "stderr") {
    return std::unique_ptr<AccessLog>(
        new AccessLog(stderr, /*owned=*/false, options.sample));
  }
  if (options.path == "stdout") {
    return std::unique_ptr<AccessLog>(
        new AccessLog(stdout, /*owned=*/false, options.sample));
  }
  std::FILE* f = std::fopen(options.path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open access log " + options.path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<AccessLog>(
      new AccessLog(f, /*owned=*/true, options.sample));
}

AccessLog::~AccessLog() {
  if (owned_ && out_ != nullptr) std::fclose(out_);
}

void AccessLog::Record(const Entry& entry) {
  // Sampling counts every request so "every Nth" stays uniform under
  // concurrency; only the kept ones take the write lock.
  const uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed);
  if (n % static_cast<uint64_t>(sample_) != 0) return;
  char buf[512];
  const int len = std::snprintf(
      buf, sizeof(buf),
      "{\"ts_ms\":%lld,\"request_id\":%llu,\"op\":\"%s\",\"samples\":%lld,"
      "\"trace_id\":%llu,\"batch_id\":%llu,\"queue_us\":%lld,"
      "\"execute_us\":%lld,\"total_us\":%lld,\"status\":\"%s\"}\n",
      static_cast<long long>(WallMillis()),
      static_cast<unsigned long long>(entry.request_id), entry.op,
      static_cast<long long>(entry.samples),
      static_cast<unsigned long long>(entry.trace_id),
      static_cast<unsigned long long>(entry.batch_id),
      static_cast<long long>(entry.queue_us),
      static_cast<long long>(entry.execute_us),
      static_cast<long long>(entry.total_us), entry.status);
  if (len <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(buf, 1, static_cast<size_t>(len), out_);
  std::fflush(out_);
}

}  // namespace tsfm::serve
