#ifndef TSFM_SERVE_PROTOCOL_H_
#define TSFM_SERVE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tsfm::serve {

// ---------------------------------------------------------------------------
// Wire format. One request or response per frame:
//
//   u32 magic         "TSV1" (0x31565354 little-endian)
//   u16 version       1 (plain) or 2 (frame carries a context block)
//   u16 type          MessageType
//   u64 request_id    client-chosen, echoed verbatim in the response
//   u64 payload_size  exact byte count of the payload (<= kMaxFramePayload)
//   [v2 only]
//   u16 ctx_len       context block length (<= kMaxContextBytes)
//   ...ctx...         u64 trace_id, u64 reserved (longer blocks within the
//                     cap are legal; unknown trailing bytes are ignored)
//   [end v2]
//   ...payload...
//   u32 crc32         CRC-32 (io::Crc32) of the payload bytes — and, for v2
//                     frames, of the context block chained before them
//
// Version 2 is a strict superset of version 1: a v1 frame is a v2 frame
// with no context block, both sides accept either, and a request's
// trace_id rides the wire so the server can stitch its spans into the
// client's trace. The same discipline as the src/io artifact container:
// every header field is validated before any allocation sized by it —
// ctx_len is checked against kMaxContextBytes (which fits on the stack, so
// a context read never allocates at all), and a hostile length surfaces as
// a protocol error, never a crash.

inline constexpr uint32_t kFrameMagic = 0x31565354;  // "TSV1"
inline constexpr uint16_t kProtocolVersion = 1;
/// Frames of this version carry a trace/request context block.
inline constexpr uint16_t kProtocolVersionContext = 2;
/// Hard cap on a frame payload (64 MiB ~ a 4M-element float batch). Anything
/// larger is rejected from the header alone.
inline constexpr uint64_t kMaxFramePayload = 64ull << 20;
inline constexpr size_t kFrameHeaderBytes = 24;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Hard cap on a v2 context block; small enough to read into a stack
/// buffer, so hostile ctx_len values are rejected before any allocation.
inline constexpr size_t kMaxContextBytes = 64;
/// Bytes this implementation actually encodes (trace_id + reserved).
inline constexpr size_t kContextBytes = 16;

/// Frame kinds. Requests are even-free-form; each maps to one response kind
/// (or kError / kBusy).
enum class MessageType : uint16_t {
  kClassifyRequest = 1,   // tensor payload (N, T, D) -> kClassifyResponse
  kEmbedRequest = 2,      // tensor payload (N, T, D) -> kEmbedResponse
  kClassifyResponse = 3,  // labels payload (N int64)
  kEmbedResponse = 4,     // tensor payload (N, E)
  kError = 5,             // error payload (status code + message)
  kBusy = 6,              // empty; admission controller shed this request
  kPing = 7,              // empty -> kPong
  kPong = 8,              // empty
  kReloadRequest = 9,     // string payload: fitted-bundle prefix
  kReloadResponse = 10,   // string payload: installed session name
  kStatsRequest = 11,     // empty -> kStatsResponse
  kStatsResponse = 12,    // string payload: metrics registry RenderText()
  kShutdownRequest = 13,  // empty -> kShutdownResponse, then server drains
  kShutdownResponse = 14,
  kMetricsRequest = 15,   // empty -> kMetricsResponse (live scrape verb)
  kMetricsResponse = 16,  // string payload: registry RenderPrometheus()
};

/// True for the values actually named in MessageType (used to reject frames
/// whose type field is garbage before reading their payload).
bool IsKnownMessageType(uint16_t type);

/// A decoded frame. A nonzero `trace_id` makes EncodeFrame emit a v2 frame
/// carrying it in the context block; decoding a v1 frame leaves it 0.
struct Frame {
  MessageType type = MessageType::kError;
  uint64_t request_id = 0;
  std::string payload;
  uint64_t trace_id = 0;
};

/// Validated header fields (payload and context not yet read).
struct FrameHeader {
  MessageType type;
  uint64_t request_id;
  uint64_t payload_size;
  uint16_t version = kProtocolVersion;
};

/// Serializes a frame (header [+ context block] + payload + CRC trailer).
std::string EncodeFrame(const Frame& frame);

/// Parses and validates `kFrameHeaderBytes` of header: magic, version (1 or
/// 2), known type, and payload_size <= kMaxFramePayload. InvalidArgument on
/// any violation — the caller must not read a payload for a rejected header.
Status ParseFrameHeader(const uint8_t* data, FrameHeader* out);

// ---------------------------------------------------------------------------
// Payload codecs. Decoders bound every length field before allocating.

/// Tensor payload: u64 ndim, ndim * u64 dims, numel * f32 values.
std::string EncodeTensorPayload(const Tensor& x);
/// `expected_ndim` pins the rank (3 for raw series batches, 2 for embedding
/// matrices). Dims must be positive and consistent with the payload size.
Result<Tensor> DecodeTensorPayload(std::string_view payload,
                                   int64_t expected_ndim);

/// Labels payload: u64 n, n * i64 labels.
std::string EncodeLabelsPayload(const std::vector<int64_t>& labels);
Result<std::vector<int64_t>> DecodeLabelsPayload(std::string_view payload);

/// String payload: u32 length, bytes.
std::string EncodeStringPayload(std::string_view s);
Result<std::string> DecodeStringPayload(std::string_view payload);

/// Error payload: u32 status code, string message. Decoding returns the
/// carried Status (e.g. to propagate a server-side error to a client caller).
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

// ---------------------------------------------------------------------------
// Blocking socket I/O. All calls poll in short ticks so a raised `stop` flag
// (the server's drain signal) interrupts an idle wait instead of blocking
// forever; `stop == nullptr` waits indefinitely.

/// Reads one frame. Distinguishes outcomes by code:
///   NotFound          clean EOF before any byte of a new frame (client done)
///   ResourceExhausted `stop` observed while idle between frames
///   IoError           EOF/error mid-frame (truncated frame)
///   InvalidArgument   header validation or CRC failure (protocol error)
Status ReadFrame(int fd, Frame* out, const std::atomic<bool>* stop);

/// Writes a whole frame (retrying short writes).
Status WriteFrame(int fd, const Frame& frame);

}  // namespace tsfm::serve

#endif  // TSFM_SERVE_PROTOCOL_H_
