#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace tsfm::simd {
namespace {

bool EnvTruthy(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] == '1';
}

bool EnvQuant(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  return std::strcmp(env, "int8") == 0 || std::strcmp(env, "1") == 0;
}

std::atomic<bool> g_simd_mode{EnvTruthy("TSFM_SIMD")};
std::atomic<bool> g_quant_mode{EnvQuant("TSFM_QUANT")};

bool DetectAvx2() {
#if defined(__AVX2__) && defined(__FMA__) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

bool SimdEnabled() { return g_simd_mode.load(std::memory_order_relaxed); }

void SetSimdMode(bool enabled) {
  g_simd_mode.store(enabled, std::memory_order_relaxed);
}

bool QuantModeEnabled() {
  return g_quant_mode.load(std::memory_order_relaxed);
}

void SetQuantMode(bool enabled) {
  g_quant_mode.store(enabled, std::memory_order_relaxed);
}

bool CpuHasAvx2() {
  // cpuid probes are not cheap enough for inner loops; cache the answer.
  static const bool has = DetectAvx2();
  return has;
}

const char* BackendName() {
  if (CpuHasAvx2()) return "avx2";
#if defined(__aarch64__) && defined(__ARM_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace tsfm::simd
