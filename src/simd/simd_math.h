#ifndef TSFM_SIMD_SIMD_MATH_H_
#define TSFM_SIMD_SIMD_MATH_H_

#include <cstdint>

// Vectorized transcendental kernels (AVX2/NEON with a scalar fallback).
//
// Layout of the contract:
//
//   * ExpS/TanhS/ErfS/GeluS/SigmoidS are the SCALAR REFERENCE functions.
//     Each is written as an explicit fmaf/min/max/select chain whose every
//     operation has an exact per-lane vector counterpart, and each has a
//     single out-of-line machine-code instance (same reasoning as
//     ops::detail::GeluScalar — see tensor/op_math.h).
//
//   * The *Row kernels apply the vector implementation to the main body of
//     the row and the scalar reference to the tail. Because the scalar and
//     vector code perform identical operations per lane, a row kernel is
//     BIT-IDENTICAL to applying the scalar reference element-wise, for any
//     row length and any split point. This is what makes SIMD mode keep the
//     repo's determinism contract for free: ParallelFor chunk boundaries and
//     eager-vs-graph fusion both reduce to "same scalar function, different
//     split", which cannot change any output bit.
//
//   * SIMD-mode results may differ from the std::exp/std::tanh scalar-mode
//     kernels by a few ulps; the CI accuracy-epsilon gate bounds the
//     end-to-end effect on classification.
//
// Special values: NaN propagates; exp(-inf)=0, exp(+inf)=inf; tanh/erf
// saturate to +/-1; GELU follows the saturation-guarded GeluScalar contract.
namespace tsfm::simd {

/// Scalar references (exact per-lane semantics of the vector kernels).
float ExpS(float x);
float TanhS(float x);
float ErfS(float x);
float GeluS(float x);
float SigmoidS(float x);

/// Vectorized element maps; `out` may alias `in`. Bit-identical to the
/// scalar reference applied element-wise.
void ExpRow(const float* in, float* out, int64_t n);
void TanhRow(const float* in, float* out, int64_t n);
void ErfRow(const float* in, float* out, int64_t n);
void GeluRow(const float* in, float* out, int64_t n);
void SigmoidRow(const float* in, float* out, int64_t n);

/// Fused softmax / log-softmax of one dense row, SIMD-mode counterparts of
/// ops::detail::SoftmaxRow with the same non-finite contract (NaN rows
/// poison, all--inf rows are uniform, +inf entries split the mass). The
/// denominator reduction order is fixed per backend, so results are
/// deterministic and thread-count independent, but the scalar-fallback
/// backend is not bit-identical to the AVX2 backend (unlike the element
/// maps above, which are backend-identical).
void SoftmaxRow(const float* in, float* out, int64_t n);
void LogSoftmaxRow(const float* in, float* out, int64_t n);

}  // namespace tsfm::simd

#endif  // TSFM_SIMD_SIMD_MATH_H_
