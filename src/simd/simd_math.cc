#include "simd/simd_math.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "simd/dispatch.h"

#if defined(__AVX2__) && defined(__FMA__) && \
    (defined(__x86_64__) || defined(__i386__))
#define TSFM_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define TSFM_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace tsfm::simd {
namespace {

// ---------------------------------------------------------------------------
// Shared constants. The exp core is the classic Cephes range reduction:
// n = floor(x*log2e + 1/2), r = x - n*ln2 (two-part ln2 for accuracy),
// exp(x) = 2^n * P(r) with a degree-6 polynomial on |r| <= ln2/2.
// ---------------------------------------------------------------------------
constexpr float kExpHi = 88.3762626647949f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kNegLn2Hi = -0.693359375f;
constexpr float kNegLn2Lo = 2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

// Abramowitz & Stegun 7.1.26 erf polynomial (|error| <= 1.5e-7).
constexpr float kErfP = 0.3275911f;
constexpr float kErfA1 = 0.254829592f;
constexpr float kErfA2 = -0.284496736f;
constexpr float kErfA3 = 1.421413741f;
constexpr float kErfA4 = -1.453152027f;
constexpr float kErfA5 = 1.061405429f;

constexpr float kGeluSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluA = 0.044715f;
constexpr float kGeluSat = 8.0f;

constexpr float kInf = std::numeric_limits<float>::infinity();

// Scalar mirrors of the SSE/AVX min/max semantics: when either operand is
// NaN the SECOND operand is returned. Keeps the scalar tail lane-exact with
// _mm256_min_ps/_mm256_max_ps even on unclamped NaN inputs.
inline float MinPs(float a, float b) { return a < b ? a : b; }
inline float MaxPs(float a, float b) { return a > b ? a : b; }

// 2^e for e in [-126, 127] via exponent bits.
inline float Pow2I(int32_t e) {
  const uint32_t bits = static_cast<uint32_t>(e + 127) << 23;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// |mag| with the sign bit of `sgn` OR-ed in (mag must be >= 0 or carry a
// clear sign bit). Mirrors the vector or(and(sign)) idiom bit-for-bit,
// including NaN payloads.
inline float OrSignOf(float mag, float sgn) {
  uint32_t mb, sb;
  std::memcpy(&mb, &mag, sizeof(mb));
  std::memcpy(&sb, &sgn, sizeof(sb));
  mb |= (sb & 0x80000000u);
  float f;
  std::memcpy(&f, &mb, sizeof(f));
  return f;
}

inline float AbsPs(float x) {
  uint32_t b;
  std::memcpy(&b, &x, sizeof(b));
  b &= 0x7fffffffu;
  float f;
  std::memcpy(&f, &b, sizeof(f));
  return f;
}

inline float NegPs(float x) {
  uint32_t b;
  std::memcpy(&b, &x, sizeof(b));
  b ^= 0x80000000u;
  float f;
  std::memcpy(&f, &b, sizeof(f));
  return f;
}

// Core on pre-clamped input; every operation below has an exact vector twin.
inline float ExpCoreS(float x) {
  const float fx = std::floor(std::fmaf(x, kLog2e, 0.5f));
  float r = std::fmaf(fx, kNegLn2Hi, x);
  r = std::fmaf(fx, kNegLn2Lo, r);
  float y = kExpP0;
  y = std::fmaf(y, r, kExpP1);
  y = std::fmaf(y, r, kExpP2);
  y = std::fmaf(y, r, kExpP3);
  y = std::fmaf(y, r, kExpP4);
  y = std::fmaf(y, r, kExpP5);
  y = std::fmaf(y, r * r, r);
  y = y + 1.0f;
  // 2^n in two halves so n = 128 (exp just under the fp32 overflow bound)
  // stays finite: y * 2^128 can be representable even though 2^128 is not.
  const int32_t n = static_cast<int32_t>(fx);
  const int32_t nb = n >> 1;  // arithmetic shift, matches vector srai
  return (y * Pow2I(n - nb)) * Pow2I(nb);
}

inline float ExpImplS(float x) {
  const float xc = MaxPs(MinPs(x, kExpHi), kExpLo);
  float res = ExpCoreS(xc);
  res = (x > kExpHi) ? kInf : res;
  res = (x < kExpLo) ? 0.0f : res;
  res = (x != x) ? x : res;
  return res;
}

inline float TanhImplS(float x) {
  const float ax = AbsPs(x);
  const float e = ExpImplS(2.0f * ax);
  const float t = 1.0f - 2.0f / (e + 1.0f);
  return OrSignOf(t, x);
}

inline float ErfImplS(float x) {
  const float ax = AbsPs(x);
  const float t = 1.0f / std::fmaf(kErfP, ax, 1.0f);
  float p = kErfA5;
  p = std::fmaf(p, t, kErfA4);
  p = std::fmaf(p, t, kErfA3);
  p = std::fmaf(p, t, kErfA2);
  p = std::fmaf(p, t, kErfA1);
  p = p * t;
  const float e = ExpImplS(NegPs(ax * ax));
  const float r = std::fmaf(NegPs(p), e, 1.0f);
  return OrSignOf(r, x);
}

inline float GeluImplS(float x) {
  const float u = (x * x) * x;
  const float inner = kGeluSqrt2OverPi * std::fmaf(kGeluA, u, x);
  const float t = TanhImplS(inner);
  float res = (0.5f * x) * (1.0f + t);
  res = (x >= kGeluSat) ? x : res;
  res = (x <= -kGeluSat) ? -0.0f : res;
  return res;
}

inline float SigmoidImplS(float x) {
  return 1.0f / (1.0f + ExpImplS(NegPs(x)));
}

#if defined(TSFM_SIMD_AVX2)

inline __m256 ExpCoreV(__m256 x) {
  const __m256 fx = _mm256_floor_ps(
      _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2e), _mm256_set1_ps(0.5f)));
  __m256 r = _mm256_fmadd_ps(fx, _mm256_set1_ps(kNegLn2Hi), x);
  r = _mm256_fmadd_ps(fx, _mm256_set1_ps(kNegLn2Lo), r);
  __m256 y = _mm256_set1_ps(kExpP0);
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP1));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP2));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP3));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP4));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP5));
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(r, r), r);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i nb = _mm256_srai_epi32(n, 1);
  const __m256i na = _mm256_sub_epi32(n, nb);
  const __m256i bias = _mm256_set1_epi32(127);
  const __m256 pa = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(na, bias), 23));
  const __m256 pb = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(nb, bias), 23));
  return _mm256_mul_ps(_mm256_mul_ps(y, pa), pb);
}

inline __m256 ExpV(__m256 x) {
  const __m256 hi = _mm256_set1_ps(kExpHi);
  const __m256 lo = _mm256_set1_ps(kExpLo);
  const __m256 xc = _mm256_max_ps(_mm256_min_ps(x, hi), lo);
  __m256 res = ExpCoreV(xc);
  res = _mm256_blendv_ps(res, _mm256_set1_ps(kInf),
                         _mm256_cmp_ps(x, hi, _CMP_GT_OQ));
  res = _mm256_blendv_ps(res, _mm256_setzero_ps(),
                         _mm256_cmp_ps(x, lo, _CMP_LT_OQ));
  res = _mm256_blendv_ps(res, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return res;
}

inline __m256 AbsV(__m256 x) {
  return _mm256_and_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff)));
}

inline __m256 SignBitV(__m256 x) {
  return _mm256_and_ps(x,
                       _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000u)));
}

inline __m256 NegV(__m256 x) {
  return _mm256_xor_ps(x,
                       _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000u)));
}

inline __m256 TanhV(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 ax = AbsV(x);
  const __m256 e = ExpV(_mm256_mul_ps(_mm256_set1_ps(2.0f), ax));
  const __m256 t = _mm256_sub_ps(
      one, _mm256_div_ps(_mm256_set1_ps(2.0f), _mm256_add_ps(e, one)));
  return _mm256_or_ps(t, SignBitV(x));
}

inline __m256 ErfV(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 ax = AbsV(x);
  const __m256 t = _mm256_div_ps(
      one, _mm256_fmadd_ps(_mm256_set1_ps(kErfP), ax, one));
  __m256 p = _mm256_set1_ps(kErfA5);
  p = _mm256_fmadd_ps(p, t, _mm256_set1_ps(kErfA4));
  p = _mm256_fmadd_ps(p, t, _mm256_set1_ps(kErfA3));
  p = _mm256_fmadd_ps(p, t, _mm256_set1_ps(kErfA2));
  p = _mm256_fmadd_ps(p, t, _mm256_set1_ps(kErfA1));
  p = _mm256_mul_ps(p, t);
  const __m256 e = ExpV(NegV(_mm256_mul_ps(ax, ax)));
  const __m256 r = _mm256_fmadd_ps(NegV(p), e, one);
  return _mm256_or_ps(r, SignBitV(x));
}

inline __m256 GeluV(__m256 x) {
  const __m256 u = _mm256_mul_ps(_mm256_mul_ps(x, x), x);
  const __m256 inner = _mm256_mul_ps(
      _mm256_set1_ps(kGeluSqrt2OverPi),
      _mm256_fmadd_ps(_mm256_set1_ps(kGeluA), u, x));
  const __m256 t = TanhV(inner);
  __m256 res = _mm256_mul_ps(
      _mm256_mul_ps(_mm256_set1_ps(0.5f), x),
      _mm256_add_ps(_mm256_set1_ps(1.0f), t));
  res = _mm256_blendv_ps(
      res, x, _mm256_cmp_ps(x, _mm256_set1_ps(kGeluSat), _CMP_GE_OQ));
  res = _mm256_blendv_ps(
      res, _mm256_set1_ps(-0.0f),
      _mm256_cmp_ps(x, _mm256_set1_ps(-kGeluSat), _CMP_LE_OQ));
  return res;
}

inline __m256 SigmoidV(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  return _mm256_div_ps(one, _mm256_add_ps(one, ExpV(NegV(x))));
}

// Fixed-order horizontal sum: ((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7)).
inline float HSumV(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 s = _mm_add_ps(lo, hi);            // l0+l4, l1+l5, l2+l6, l3+l7
  const __m128 sh = _mm_movehl_ps(s, s);          // l2+l6, l3+l7
  const __m128 s2 = _mm_add_ps(s, sh);
  const __m128 s3 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1));
  return _mm_cvtss_f32(s3);
}

inline float HMaxV(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 s = _mm_max_ps(lo, hi);
  const __m128 s2 = _mm_max_ps(s, _mm_movehl_ps(s, s));
  const __m128 s3 = _mm_max_ss(s2, _mm_shuffle_ps(s2, s2, 1));
  return _mm_cvtss_f32(s3);
}

template <typename VecFn, typename ScalFn>
inline void MapRowAvx2(const float* in, float* out, int64_t n, VecFn vf,
                       ScalFn sf) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, vf(_mm256_loadu_ps(in + i)));
  }
  for (; i < n; ++i) out[i] = sf(in[i]);
}

#elif defined(TSFM_SIMD_NEON)

// NEON (AArch64) twins of the AVX2 kernels. Same per-lane operation
// sequence; vminq/vmaxq propagate NaN where SSE returns the second operand,
// but every NaN lane is overwritten by the final NaN select, so outputs
// still agree with the scalar reference.
inline float32x4_t ExpCoreV(float32x4_t x) {
  const float32x4_t fx = vrndmq_f32(
      vfmaq_f32(vdupq_n_f32(0.5f), x, vdupq_n_f32(kLog2e)));
  float32x4_t r = vfmaq_f32(x, fx, vdupq_n_f32(kNegLn2Hi));
  r = vfmaq_f32(r, fx, vdupq_n_f32(kNegLn2Lo));
  float32x4_t y = vdupq_n_f32(kExpP0);
  y = vfmaq_f32(vdupq_n_f32(kExpP1), y, r);
  y = vfmaq_f32(vdupq_n_f32(kExpP2), y, r);
  y = vfmaq_f32(vdupq_n_f32(kExpP3), y, r);
  y = vfmaq_f32(vdupq_n_f32(kExpP4), y, r);
  y = vfmaq_f32(vdupq_n_f32(kExpP5), y, r);
  y = vfmaq_f32(r, y, vmulq_f32(r, r));
  y = vaddq_f32(y, vdupq_n_f32(1.0f));
  const int32x4_t n = vcvtq_s32_f32(fx);
  const int32x4_t nb = vshrq_n_s32(n, 1);
  const int32x4_t na = vsubq_s32(n, nb);
  const int32x4_t bias = vdupq_n_s32(127);
  const float32x4_t pa =
      vreinterpretq_f32_s32(vshlq_n_s32(vaddq_s32(na, bias), 23));
  const float32x4_t pb =
      vreinterpretq_f32_s32(vshlq_n_s32(vaddq_s32(nb, bias), 23));
  return vmulq_f32(vmulq_f32(y, pa), pb);
}

inline float32x4_t ExpV(float32x4_t x) {
  const float32x4_t hi = vdupq_n_f32(kExpHi);
  const float32x4_t lo = vdupq_n_f32(kExpLo);
  const float32x4_t xc = vmaxq_f32(vminq_f32(x, hi), lo);
  float32x4_t res = ExpCoreV(xc);
  res = vbslq_f32(vcgtq_f32(x, hi), vdupq_n_f32(kInf), res);
  res = vbslq_f32(vcltq_f32(x, lo), vdupq_n_f32(0.0f), res);
  const uint32x4_t nan = vmvnq_u32(vceqq_f32(x, x));
  res = vbslq_f32(nan, x, res);
  return res;
}

inline float32x4_t SignBitV(float32x4_t x) {
  return vreinterpretq_f32_u32(vandq_u32(
      vreinterpretq_u32_f32(x), vdupq_n_u32(0x80000000u)));
}

inline float32x4_t OrV(float32x4_t a, float32x4_t b) {
  return vreinterpretq_f32_u32(
      vorrq_u32(vreinterpretq_u32_f32(a), vreinterpretq_u32_f32(b)));
}

inline float32x4_t TanhV(float32x4_t x) {
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t ax = vabsq_f32(x);
  const float32x4_t e = ExpV(vmulq_f32(vdupq_n_f32(2.0f), ax));
  const float32x4_t t =
      vsubq_f32(one, vdivq_f32(vdupq_n_f32(2.0f), vaddq_f32(e, one)));
  return OrV(t, SignBitV(x));
}

inline float32x4_t ErfV(float32x4_t x) {
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t ax = vabsq_f32(x);
  const float32x4_t t =
      vdivq_f32(one, vfmaq_f32(one, vdupq_n_f32(kErfP), ax));
  float32x4_t p = vdupq_n_f32(kErfA5);
  p = vfmaq_f32(vdupq_n_f32(kErfA4), p, t);
  p = vfmaq_f32(vdupq_n_f32(kErfA3), p, t);
  p = vfmaq_f32(vdupq_n_f32(kErfA2), p, t);
  p = vfmaq_f32(vdupq_n_f32(kErfA1), p, t);
  p = vmulq_f32(p, t);
  const float32x4_t e = ExpV(vnegq_f32(vmulq_f32(ax, ax)));
  const float32x4_t r = vfmaq_f32(one, vnegq_f32(p), e);
  return OrV(r, SignBitV(x));
}

inline float32x4_t GeluV(float32x4_t x) {
  const float32x4_t u = vmulq_f32(vmulq_f32(x, x), x);
  const float32x4_t inner = vmulq_f32(
      vdupq_n_f32(kGeluSqrt2OverPi), vfmaq_f32(x, vdupq_n_f32(kGeluA), u));
  const float32x4_t t = TanhV(inner);
  float32x4_t res =
      vmulq_f32(vmulq_f32(vdupq_n_f32(0.5f), x),
                vaddq_f32(vdupq_n_f32(1.0f), t));
  res = vbslq_f32(vcgeq_f32(x, vdupq_n_f32(kGeluSat)), x, res);
  res = vbslq_f32(vcleq_f32(x, vdupq_n_f32(-kGeluSat)), vdupq_n_f32(-0.0f),
                  res);
  return res;
}

inline float32x4_t SigmoidV(float32x4_t x) {
  const float32x4_t one = vdupq_n_f32(1.0f);
  return vdivq_f32(one, vaddq_f32(one, ExpV(vnegq_f32(x))));
}

template <typename VecFn, typename ScalFn>
inline void MapRowNeon(const float* in, float* out, int64_t n, VecFn vf,
                       ScalFn sf) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vf(vld1q_f32(in + i)));
  }
  for (; i < n; ++i) out[i] = sf(in[i]);
}

#endif  // TSFM_SIMD_AVX2 / TSFM_SIMD_NEON

// Row max over non-NaN entries plus NaN detection, vectorized.
inline float RowMaxSkipNan(const float* in, int64_t n, bool* has_nan) {
  float mx = -kInf;
  bool nan = false;
  int64_t i = 0;
#if defined(TSFM_SIMD_AVX2)
  if (CpuHasAvx2() && n >= 8) {
    const __m256 ninf = _mm256_set1_ps(-kInf);
    __m256 mv = ninf;
    __m256 nanacc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(in + i);
      const __m256 unord = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
      nanacc = _mm256_or_ps(nanacc, unord);
      mv = _mm256_max_ps(mv, _mm256_blendv_ps(v, ninf, unord));
    }
    mx = HMaxV(mv);
    nan = _mm256_movemask_ps(nanacc) != 0;
  }
#endif
  for (; i < n; ++i) {
    const float v = in[i];
    if (v != v) {
      nan = true;
    } else {
      mx = std::max(mx, v);
    }
  }
  *has_nan = nan;
  return mx;
}

// Handles the non-finite rows shared by SoftmaxRow/LogSoftmaxRow; returns
// true when the row was fully written.
inline bool SoftmaxEdgeRow(const float* in, float* out, int64_t n, float mx,
                           bool has_nan, bool log_space) {
  if (has_nan) {
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    for (int64_t i = 0; i < n; ++i) out[i] = qnan;
    return true;
  }
  if (mx == kInf) {
    int64_t count = 0;
    for (int64_t i = 0; i < n; ++i) count += (in[i] == kInf) ? 1 : 0;
    const float share = 1.0f / static_cast<float>(count);
    const float log_share = -std::log(static_cast<float>(count));
    for (int64_t i = 0; i < n; ++i) {
      if (log_space) {
        out[i] = (in[i] == kInf) ? log_share : -kInf;
      } else {
        out[i] = (in[i] == kInf) ? share : 0.0f;
      }
    }
    return true;
  }
  if (mx == -kInf) {
    const float fill = log_space ? -std::log(static_cast<float>(n))
                                 : 1.0f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) out[i] = fill;
    return true;
  }
  return false;
}

// exp(in - mx), returning the denominator (fixed reduction order per
// backend). When `out` is non-null the exponentials are stored there (out
// may alias in); when null only the sum is computed, leaving `in` intact.
inline float ExpSubSum(const float* in, float* out, int64_t n, float mx) {
  int64_t i = 0;
  float denom = 0.0f;
#if defined(TSFM_SIMD_AVX2)
  if (CpuHasAvx2() && n >= 8) {
    const __m256 mxv = _mm256_set1_ps(mx);
    __m256 acc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      const __m256 e = ExpV(_mm256_sub_ps(_mm256_loadu_ps(in + i), mxv));
      if (out != nullptr) _mm256_storeu_ps(out + i, e);
      acc = _mm256_add_ps(acc, e);
    }
    denom = HSumV(acc);
  }
#endif
  for (; i < n; ++i) {
    const float e = ExpS(in[i] - mx);
    if (out != nullptr) out[i] = e;
    denom += e;
  }
  return denom;
}

}  // namespace

// Out-of-line, single machine-code instance each (see header).
__attribute__((noinline)) float ExpS(float x) { return ExpImplS(x); }
__attribute__((noinline)) float TanhS(float x) { return TanhImplS(x); }
__attribute__((noinline)) float ErfS(float x) { return ErfImplS(x); }
__attribute__((noinline)) float GeluS(float x) { return GeluImplS(x); }
__attribute__((noinline)) float SigmoidS(float x) { return SigmoidImplS(x); }

#define TSFM_SIMD_DEFINE_ROW(Name, VecFn, ScalFn)                     \
  void Name(const float* in, float* out, int64_t n) {                 \
    TSFM_SIMD_ROW_BODY(VecFn, ScalFn)                                 \
  }

#if defined(TSFM_SIMD_AVX2)
#define TSFM_SIMD_ROW_BODY(VecFn, ScalFn)                             \
  if (CpuHasAvx2()) {                                                 \
    MapRowAvx2(in, out, n, [](__m256 v) { return VecFn(v); },         \
               [](float v) { return ScalFn(v); });                    \
    return;                                                           \
  }                                                                   \
  for (int64_t i = 0; i < n; ++i) out[i] = ScalFn(in[i]);
#elif defined(TSFM_SIMD_NEON)
#define TSFM_SIMD_ROW_BODY(VecFn, ScalFn)                             \
  MapRowNeon(in, out, n, [](float32x4_t v) { return VecFn(v); },      \
             [](float v) { return ScalFn(v); });
#else
#define TSFM_SIMD_ROW_BODY(VecFn, ScalFn)                             \
  for (int64_t i = 0; i < n; ++i) out[i] = ScalFn(in[i]);
#endif

TSFM_SIMD_DEFINE_ROW(ExpRow, ExpV, ExpImplS)
TSFM_SIMD_DEFINE_ROW(TanhRow, TanhV, TanhImplS)
TSFM_SIMD_DEFINE_ROW(ErfRow, ErfV, ErfImplS)
TSFM_SIMD_DEFINE_ROW(GeluRow, GeluV, GeluImplS)
TSFM_SIMD_DEFINE_ROW(SigmoidRow, SigmoidV, SigmoidImplS)

#undef TSFM_SIMD_DEFINE_ROW
#undef TSFM_SIMD_ROW_BODY

void SoftmaxRow(const float* in, float* out, int64_t n) {
  if (n <= 0) return;
  bool has_nan = false;
  const float mx = RowMaxSkipNan(in, n, &has_nan);
  if (SoftmaxEdgeRow(in, out, n, mx, has_nan, /*log_space=*/false)) return;
  const float denom = ExpSubSum(in, out, n, mx);
  const float inv = 1.0f / denom;
  int64_t i = 0;
#if defined(TSFM_SIMD_AVX2)
  if (CpuHasAvx2()) {
    const __m256 invv = _mm256_set1_ps(inv);
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(out + i,
                       _mm256_mul_ps(_mm256_loadu_ps(out + i), invv));
    }
  }
#endif
  for (; i < n; ++i) out[i] *= inv;
}

void LogSoftmaxRow(const float* in, float* out, int64_t n) {
  if (n <= 0) return;
  bool has_nan = false;
  const float mx = RowMaxSkipNan(in, n, &has_nan);
  if (SoftmaxEdgeRow(in, out, n, mx, has_nan, /*log_space=*/true)) return;
  // Sum-only pass: `out` may alias `in`, so the exponentials are not stored.
  const float denom = ExpSubSum(in, /*out=*/nullptr, n, mx);
  const float log_denom = std::log(denom) + mx;
  int64_t i = 0;
#if defined(TSFM_SIMD_AVX2)
  if (CpuHasAvx2()) {
    const __m256 ld = _mm256_set1_ps(log_denom);
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(out + i,
                       _mm256_sub_ps(_mm256_loadu_ps(in + i), ld));
    }
  }
#endif
  for (; i < n; ++i) out[i] = in[i] - log_denom;
}

}  // namespace tsfm::simd
