#ifndef TSFM_SIMD_DISPATCH_H_
#define TSFM_SIMD_DISPATCH_H_

// Mode flags and CPU dispatch for the vectorized math / quantized inference
// paths. Mirrors the graph-mode gate (graph/executor.cc): each mode is a
// process-wide atomic initialized from an environment variable and togglable
// at runtime, with a scoped RAII override for tests and benchmarks.
//
//   TSFM_SIMD=1     / SetSimdMode(true)  -> vectorized exp/tanh/erf/GELU and
//                                           fused softmax row kernels.
//   TSFM_QUANT=int8 / SetQuantMode(true) -> int8 dynamic-quantized matmul in
//                                           frozen (no-grad) Linear layers.
//
// Determinism contract: each mode is bit-identical across thread counts.
// SIMD mode may diverge from scalar mode by bounded ulps (the CI
// accuracy-epsilon gate bounds the end-to-end effect); quantized mode is
// exact integer arithmetic, so its results are additionally independent of
// the scalar/AVX2 kernel choice.
namespace tsfm::simd {

/// True when SIMD transcendental kernels are enabled (TSFM_SIMD=1 or
/// SetSimdMode(true)).
bool SimdEnabled();
void SetSimdMode(bool enabled);

/// True when the int8 quantized frozen-encoder path is enabled
/// (TSFM_QUANT=int8|1 or SetQuantMode(true)).
bool QuantModeEnabled();
void SetQuantMode(bool enabled);

/// True when the running CPU supports the AVX2+FMA code path compiled into
/// this binary. False on other architectures or when the translation unit
/// was not compiled with AVX2 support.
bool CpuHasAvx2();

/// Human-readable backend name for logs/reports: "avx2", "neon", or
/// "scalar".
const char* BackendName();

class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(bool enabled) : prev_(SimdEnabled()) {
    SetSimdMode(enabled);
  }
  ~ScopedSimdMode() { SetSimdMode(prev_); }
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  bool prev_;
};

class ScopedQuantMode {
 public:
  explicit ScopedQuantMode(bool enabled) : prev_(QuantModeEnabled()) {
    SetQuantMode(enabled);
  }
  ~ScopedQuantMode() { SetQuantMode(prev_); }
  ScopedQuantMode(const ScopedQuantMode&) = delete;
  ScopedQuantMode& operator=(const ScopedQuantMode&) = delete;

 private:
  bool prev_;
};

}  // namespace tsfm::simd

#endif  // TSFM_SIMD_DISPATCH_H_
