#include "simd/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"

#if defined(__AVX2__) && defined(__FMA__) && \
    (defined(__x86_64__) || defined(__i386__))
#define TSFM_QUANT_AVX2 1
#include <immintrin.h>
#endif

namespace tsfm::simd {
namespace {

constexpr int64_t kMaxQuantK = 1 << 16;  // int32 accumulator exactness bound

inline int8_t QuantizeValue(float v, float scale) {
  const float q = std::nearbyint(v / scale);
  const float c = std::min(127.0f, std::max(-127.0f, q));
  return static_cast<int8_t>(c);
}

#if defined(TSFM_QUANT_AVX2)

// One output row from column j0 on: crow[j] = float(acc_j) * sa * scales[j]
// for 8/16 columns at a time. a16 is the row's int8 activations widened to
// int16 and zero-padded to 2*kp entries.
void QuantRowAvx2(const int16_t* a16, const QuantizedMatrix& q, float sa,
                  float* crow, int64_t j0) {
  const int64_t n = q.cols;
  const int64_t kp = (q.rows + 1) / 2;
  const int16_t* packed = q.packed.data();
  const __m256 sav = _mm256_set1_ps(sa);
  int64_t j = j0;
  for (; j + 16 <= n; j += 16) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (int64_t kk = 0; kk < kp; ++kk) {
      int32_t pair;
      std::memcpy(&pair, a16 + 2 * kk, sizeof(pair));
      const __m256i av = _mm256_set1_epi32(pair);
      const int16_t* bp = packed + kk * n * 2 + j * 2;
      const __m256i b0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
      const __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
      acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av, b0));
      acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(av, b1));
    }
    const __m256 f0 = _mm256_mul_ps(
        _mm256_mul_ps(_mm256_cvtepi32_ps(acc0), sav),
        _mm256_loadu_ps(q.scales.data() + j));
    const __m256 f1 = _mm256_mul_ps(
        _mm256_mul_ps(_mm256_cvtepi32_ps(acc1), sav),
        _mm256_loadu_ps(q.scales.data() + j + 8));
    _mm256_storeu_ps(crow + j, f0);
    _mm256_storeu_ps(crow + j + 8, f1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256i acc = _mm256_setzero_si256();
    for (int64_t kk = 0; kk < kp; ++kk) {
      int32_t pair;
      std::memcpy(&pair, a16 + 2 * kk, sizeof(pair));
      const __m256i av = _mm256_set1_epi32(pair);
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(packed + kk * n * 2 + j * 2));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, b));
    }
    const __m256 f = _mm256_mul_ps(
        _mm256_mul_ps(_mm256_cvtepi32_ps(acc), sav),
        _mm256_loadu_ps(q.scales.data() + j));
    _mm256_storeu_ps(crow + j, f);
  }
  for (; j < n; ++j) {
    int32_t acc = 0;
    for (int64_t kk = 0; kk < kp; ++kk) {
      const int16_t* bp = packed + kk * n * 2 + j * 2;
      acc += static_cast<int32_t>(a16[2 * kk]) * bp[0] +
             static_cast<int32_t>(a16[2 * kk + 1]) * bp[1];
    }
    crow[j] = (static_cast<float>(acc) * sa) * q.scales[j];
  }
}

// Four output rows at once: each weight load is reused across four
// activation rows, which is what makes the int8 path beat the fp32 GEMM —
// one row at a time the kernel is weight-bandwidth-bound and loses.
// `a16` holds 4 widened rows at `stride` int16 apart; results land in
// c + r * ldc. Returns the first column not covered (the caller finishes
// the <16-wide tail per row with QuantRowAvx2). The integer accumulation is
// exact, so blocking rows this way cannot change any output bit.
int64_t Quant4RowsAvx2(const int16_t* a16, int64_t stride,
                       const QuantizedMatrix& q, const float* sa, float* c,
                       int64_t ldc) {
  const int64_t n = q.cols;
  const int64_t kp = (q.rows + 1) / 2;
  const int16_t* packed = q.packed.data();
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256i acc[8];
    for (auto& r : acc) r = _mm256_setzero_si256();
    for (int64_t kk = 0; kk < kp; ++kk) {
      const int16_t* bp = packed + kk * n * 2 + j * 2;
      const __m256i b0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
      const __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
      for (int r = 0; r < 4; ++r) {
        int32_t pair;
        std::memcpy(&pair, a16 + r * stride + 2 * kk, sizeof(pair));
        const __m256i av = _mm256_set1_epi32(pair);
        acc[2 * r] = _mm256_add_epi32(acc[2 * r], _mm256_madd_epi16(av, b0));
        acc[2 * r + 1] =
            _mm256_add_epi32(acc[2 * r + 1], _mm256_madd_epi16(av, b1));
      }
    }
    const __m256 s0 = _mm256_loadu_ps(q.scales.data() + j);
    const __m256 s1 = _mm256_loadu_ps(q.scales.data() + j + 8);
    for (int r = 0; r < 4; ++r) {
      const __m256 sav = _mm256_set1_ps(sa[r]);
      _mm256_storeu_ps(
          c + r * ldc + j,
          _mm256_mul_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc[2 * r]), sav),
                        s0));
      _mm256_storeu_ps(
          c + r * ldc + j + 8,
          _mm256_mul_ps(
              _mm256_mul_ps(_mm256_cvtepi32_ps(acc[2 * r + 1]), sav), s1));
    }
  }
  return j;
}

#endif  // TSFM_QUANT_AVX2

// Reference kernel: exact same integer sums (order-independent), same
// dequant expression shape as the vector kernel.
void QuantRowScalar(const int16_t* a16, const QuantizedMatrix& q, float sa,
                    float* crow) {
  const int64_t n = q.cols;
  const int64_t kp = (q.rows + 1) / 2;
  const int16_t* packed = q.packed.data();
  for (int64_t j = 0; j < n; ++j) {
    int32_t acc = 0;
    for (int64_t kk = 0; kk < kp; ++kk) {
      const int16_t* bp = packed + kk * n * 2 + j * 2;
      acc += static_cast<int32_t>(a16[2 * kk]) * bp[0] +
             static_cast<int32_t>(a16[2 * kk + 1]) * bp[1];
    }
    crow[j] = (static_cast<float>(acc) * sa) * q.scales[j];
  }
}

}  // namespace

QuantizedMatrix QuantizeWeight(const float* w, int64_t rows, int64_t cols) {
  TSFM_CHECK(rows > 0 && cols > 0) << "QuantizeWeight: empty matrix";
  TSFM_CHECK(rows <= kMaxQuantK)
      << "QuantizeWeight: k = " << rows << " exceeds int32 exactness bound";
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.scales.assign(static_cast<size_t>(cols), 1.0f);
  q.data.resize(static_cast<size_t>(rows * cols));
  for (int64_t j = 0; j < cols; ++j) {
    float maxabs = 0.0f;
    for (int64_t i = 0; i < rows; ++i) {
      maxabs = std::max(maxabs, std::fabs(w[i * cols + j]));
    }
    if (maxabs > 0.0f) q.scales[static_cast<size_t>(j)] = maxabs / 127.0f;
  }
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      q.data[static_cast<size_t>(i * cols + j)] =
          QuantizeValue(w[i * cols + j], q.scales[static_cast<size_t>(j)]);
    }
  }
  PackQuantized(&q);
  return q;
}

void PackQuantized(QuantizedMatrix* q) {
  const int64_t rows = q->rows, cols = q->cols;
  TSFM_CHECK_EQ(static_cast<int64_t>(q->data.size()), rows * cols)
      << "PackQuantized: data size mismatch";
  const int64_t kp = (rows + 1) / 2;
  q->packed.assign(static_cast<size_t>(kp * cols * 2), 0);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      q->packed[static_cast<size_t>((i / 2) * cols * 2 + j * 2 + (i & 1))] =
          static_cast<int16_t>(q->data[static_cast<size_t>(i * cols + j)]);
    }
  }
}

void QuantMatMul(const float* a, int64_t m, const QuantizedMatrix& q,
                 float* c) {
  const int64_t k = q.rows, n = q.cols;
  TSFM_CHECK(!q.packed.empty()) << "QuantMatMul: matrix not packed";
  const int64_t kp = (k + 1) / 2;
  // Chunk size depends only on the shape, never on the thread count, so the
  // row partition (and with it every output bit) is thread-count invariant.
  const int64_t grain =
      std::max<int64_t>(1, (1 << 20) / std::max<int64_t>(1, k * n));
  const int64_t stride = 2 * kp;
  runtime::ParallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
    // Scratch for up to 4 quantized rows (the register-blocked kernel's
    // height); zero-padded so the odd-k pair slot always multiplies by 0.
    std::vector<int16_t> a16(static_cast<size_t>(4 * stride), 0);
    float sa[4];
    const auto quantize_row = [&](int64_t i, int slot) {
      const float* arow = a + i * k;
      float maxabs = 0.0f;
      for (int64_t t = 0; t < k; ++t) {
        maxabs = std::max(maxabs, std::fabs(arow[t]));
      }
      const float s = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
      sa[slot] = s;
      int16_t* dst = a16.data() + slot * stride;
      for (int64_t t = 0; t < k; ++t) {
        dst[t] = static_cast<int16_t>(QuantizeValue(arow[t], s));
      }
      if (k & 1) dst[k] = 0;
    };
    int64_t i = r0;
#if defined(TSFM_QUANT_AVX2)
    if (CpuHasAvx2()) {
      for (; i + 4 <= r1; i += 4) {
        for (int r = 0; r < 4; ++r) quantize_row(i + r, r);
        const int64_t done =
            Quant4RowsAvx2(a16.data(), stride, q, sa, c + i * n, n);
        if (done < n) {
          for (int r = 0; r < 4; ++r) {
            QuantRowAvx2(a16.data() + r * stride, q, sa[r],
                         c + (i + r) * n, done);
          }
        }
      }
      for (; i < r1; ++i) {
        quantize_row(i, 0);
        QuantRowAvx2(a16.data(), q, sa[0], c + i * n, 0);
      }
      return;
    }
#endif
    for (; i < r1; ++i) {
      quantize_row(i, 0);
      QuantRowScalar(a16.data(), q, sa[0], c + i * n);
    }
  });
}

}  // namespace tsfm::simd
