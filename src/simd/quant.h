#ifndef TSFM_SIMD_QUANT_H_
#define TSFM_SIMD_QUANT_H_

#include <cstdint>
#include <vector>

// Int8 dynamic quantization for frozen (no-grad) inference.
//
// Scheme: symmetric per-output-channel weight scales computed once
// (checkpoint load or first frozen forward), symmetric per-row dynamic
// activation scales computed on the fly, int8 x int8 -> int32 exact integer
// accumulation, dequantize at the layer boundary:
//
//   C[i][j] = float(sum_k qa[i][k] * qw[k][j]) * sa_i * sw_j
//
// Because the accumulation is exact integer arithmetic, the result is
// independent of summation order: bit-identical across thread counts AND
// across the scalar / AVX2 kernels, a strictly stronger determinism
// guarantee than the fp32 path needs.
//
// The AVX2 kernel widens int8 to int16 and uses _mm256_madd_epi16 with a
// k-pair-interleaved packed copy of the weights (layout [ceil(k/2)][n][2]),
// giving 16 multiply-accumulates per instruction. |q| <= 127 keeps every
// madd pair below 2*127^2, so int32 accumulators are exact for k up to
// 2^16 (checked).
namespace tsfm::simd {

struct QuantizedMatrix {
  int64_t rows = 0;  // k: input features
  int64_t cols = 0;  // n: output features
  std::vector<int8_t> data;    // row-major (rows, cols), values in [-127,127]
  std::vector<float> scales;   // per-column dequant scale, size cols
  // Kernel-ready k-pair-interleaved int16 copy, [ceil(rows/2)][cols][2],
  // zero-padded on odd rows. Built by PackQuantized; not serialized.
  std::vector<int16_t> packed;
};

/// Quantizes a row-major (rows, cols) fp32 weight matrix with per-column
/// symmetric scales (round-to-nearest-even, clamped to [-127, 127];
/// all-zero columns get scale 1). The result is packed and kernel-ready.
QuantizedMatrix QuantizeWeight(const float* w, int64_t rows, int64_t cols);

/// (Re)builds `packed` from `data`. Call after filling data/scales by hand
/// (e.g. when loading a quantized checkpoint).
void PackQuantized(QuantizedMatrix* q);

/// C(m, q.cols) = A(m, q.rows) x dequant(q). A row-major, C row-major.
/// Per-row activation scales are derived dynamically from A. Deterministic
/// at any thread count; bit-identical between scalar and AVX2 kernels.
void QuantMatMul(const float* a, int64_t m, const QuantizedMatrix& q,
                 float* c);

}  // namespace tsfm::simd

#endif  // TSFM_SIMD_QUANT_H_
