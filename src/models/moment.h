#ifndef TSFM_MODELS_MOMENT_H_
#define TSFM_MODELS_MOMENT_H_

#include <memory>

#include "models/foundation_model.h"

namespace tsfm::models {

/// Scaled-down MOMENT-style foundation model (Goswami et al., 2024):
/// the time axis is split into non-overlapping patches of `patch_len`, each
/// patch is linearly embedded, sinusoidal positions are added, and a pre-norm
/// transformer encoder produces token embeddings. Pretraining reconstructs
/// randomly masked (zeroed) patches with an MSE objective restricted to the
/// masked positions.
class MomentModel : public FoundationModel {
 public:
  /// Builds the model with freshly initialized weights drawn from `rng`.
  MomentModel(const FoundationModelConfig& config, Rng* rng);

  ag::Var EncodeSeries(const ag::Var& series,
                       const nn::ForwardContext& ctx) const override;

  Result<double> Pretrain(const PretrainOptions& options) override;

  /// Number of patches produced for a series of length `t` (>= 1; the tail
  /// shorter than patch_len is dropped, and series shorter than one patch are
  /// right-padded with zeros).
  int64_t NumPatches(int64_t t) const;

  /// Imputation: reconstructs the positions of `series` (B, T) flagged by
  /// nonzero entries of `mask` (B, T) with the pretrained masked-
  /// reconstruction head (MOMENT's native pretraining task, exposed as a
  /// user-facing capability). Masked values are zeroed before encoding, so
  /// callers need not pre-clean missing entries. Positions beyond the last
  /// full patch cannot be reconstructed and are returned unchanged.
  Result<Tensor> Impute(const Tensor& series, const Tensor& mask) const;

 private:
  /// (B, T) -> patch value tensor (B, P, patch_len).
  ag::Var Patchify(const ag::Var& series) const;

  std::shared_ptr<nn::Linear> patch_embed_;
  std::shared_ptr<nn::TransformerEncoder> encoder_;
  std::shared_ptr<nn::Linear> reconstruction_head_;
  std::unique_ptr<nn::PositionalEncoding> positions_;
};

}  // namespace tsfm::models

#endif  // TSFM_MODELS_MOMENT_H_
