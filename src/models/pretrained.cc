#include "models/pretrained.h"

#include <filesystem>
#include <fstream>

#include "nn/serialize.h"
#include "simd/dispatch.h"

namespace tsfm::models {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMoment:
      return "MOMENT";
    case ModelKind::kVit:
      return "ViT";
  }
  return "unknown";
}

Result<std::shared_ptr<FoundationModel>> LoadOrPretrain(
    ModelKind kind, const FoundationModelConfig& config,
    const PretrainOptions& options, const std::string& cache_path,
    uint64_t init_seed) {
  Rng init_rng(init_seed);
  std::shared_ptr<FoundationModel> model;
  if (kind == ModelKind::kMoment) {
    model = std::make_shared<MomentModel>(config, &init_rng);
  } else {
    model = std::make_shared<VitModel>(config, &init_rng);
  }

  if (!cache_path.empty()) {
    std::ifstream probe(cache_path, std::ios::binary);
    if (probe.good()) {
      probe.close();
      Status s = nn::LoadCheckpoint(model.get(), cache_path);
      if (s.ok()) return model;
      // Stale/incompatible checkpoint: fall through and re-pretrain.
    }
  }

  TSFM_ASSIGN_OR_RETURN(double final_loss, model->Pretrain(options));
  (void)final_loss;
  if (!cache_path.empty()) {
    const auto parent = std::filesystem::path(cache_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    TSFM_RETURN_IF_ERROR(nn::SaveCheckpoint(*model, cache_path));
  }
  // The checkpoint-load path prepares the int8 caches inside LoadCheckpoint;
  // the fresh-pretrain path does it here, so either way a quant-mode caller
  // gets per-channel scales computed once, up front.
  if (simd::QuantModeEnabled()) model->PrepareQuantized();
  return model;
}

}  // namespace tsfm::models
