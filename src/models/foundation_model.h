#ifndef TSFM_MODELS_FOUNDATION_MODEL_H_
#define TSFM_MODELS_FOUNDATION_MODEL_H_

#include <memory>
#include <string>

#include "autograd/ops.h"
#include "common/status.h"
#include "graph/executor.h"
#include "models/config.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace tsfm::models {

/// Abstract univariate time-series foundation model.
///
/// Like MOMENT and other TSFMs, the encoder is *univariate*: a multivariate
/// series of D channels is processed by running the encoder independently on
/// each channel and pooling, so compute and memory scale linearly in D —
/// the bottleneck the paper's adapters attack.
class FoundationModel : public nn::Module {
 public:
  explicit FoundationModel(FoundationModelConfig config)
      : config_(std::move(config)) {}

  const FoundationModelConfig& config() const { return config_; }
  int64_t embedding_dim() const { return config_.d_model; }

  /// Encodes a batch of univariate series (B, T) into per-patch token
  /// embeddings (B, P, E). Differentiable w.r.t. the input.
  virtual ag::Var EncodeSeries(const ag::Var& series,
                               const nn::ForwardContext& ctx) const = 0;

  /// Encodes a multivariate batch (B, T, D) into sample embeddings (B, E):
  /// channels are flattened into the batch (univariate processing), token
  /// embeddings are mean-pooled over patches, then over channels.
  /// Differentiable w.r.t. the input, so learnable adapters (lcomb) can be
  /// trained end-to-end through the frozen or unfrozen encoder.
  ///
  /// When graph mode is on (TSFM_GRAPH=1 / --graph) and this is a pure
  /// inference call (no gradients, not training), the forward routes through
  /// the per-model graph::Executor: captured once per input shape, then
  /// replayed through the fused/memory-planned interpreter. The result is
  /// bit-identical to eager; training and autograd always run eager.
  ag::Var EncodeChannels(const ag::Var& x, const nn::ForwardContext& ctx) const;

  /// The eager forward, always available regardless of graph mode (and the
  /// function the executor captures). Exposed for tests and benchmarks.
  ag::Var EncodeChannelsEager(const ag::Var& x,
                              const nn::ForwardContext& ctx) const;

  /// Graph-mode executor for this model instance (compiled-plan
  /// introspection in tests).
  const graph::Executor& graph_executor() const { return graph_exec_; }

  /// Runs one self-supervised pretraining pass appropriate to the model
  /// (masked reconstruction for MOMENT, InfoNCE for ViT). Returns the mean
  /// training loss of the final epoch.
  virtual Result<double> Pretrain(const PretrainOptions& options) = 0;

 protected:
  FoundationModelConfig config_;

 private:
  mutable graph::Executor graph_exec_;
};

}  // namespace tsfm::models

#endif  // TSFM_MODELS_FOUNDATION_MODEL_H_
