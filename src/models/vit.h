#ifndef TSFM_MODELS_VIT_H_
#define TSFM_MODELS_VIT_H_

#include <memory>

#include "models/foundation_model.h"

namespace tsfm::models {

/// Scaled-down ViT-style foundation model following the paper's Nu-Time-
/// inspired implementation (Appendix B.1): *overlapping* patches are
/// extracted from the series, each patch is augmented with statistical
/// embeddings (its mean and standard deviation) before linear projection,
/// and a transformer encoder processes the resulting tokens. Pretraining is
/// contrastive: a MoCo-style InfoNCE loss between two stochastic
/// augmentations of the same series.
class VitModel : public FoundationModel {
 public:
  VitModel(const FoundationModelConfig& config, Rng* rng);

  ag::Var EncodeSeries(const ag::Var& series,
                       const nn::ForwardContext& ctx) const override;

  Result<double> Pretrain(const PretrainOptions& options) override;

  /// Number of overlapping patches for a series of length `t`.
  int64_t NumPatches(int64_t t) const;

 private:
  /// (B, T) -> (B, P, patch_len + 2): overlapping patch values concatenated
  /// with their per-patch mean and std ("statistical embedding" tokens).
  ag::Var PatchifyWithStats(const ag::Var& series) const;

  std::shared_ptr<nn::Linear> token_embed_;
  std::shared_ptr<nn::TransformerEncoder> encoder_;
  std::shared_ptr<nn::Linear> projection_head_;  // contrastive head
  std::unique_ptr<nn::PositionalEncoding> positions_;
};

}  // namespace tsfm::models

#endif  // TSFM_MODELS_VIT_H_
