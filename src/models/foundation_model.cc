#include "models/foundation_model.h"

#include "common/check.h"
#include "simd/dispatch.h"

namespace tsfm::models {

ag::Var FoundationModel::EncodeChannels(const ag::Var& x,
                                        const nn::ForwardContext& ctx) const {
  // Graph mode only replaces pure inference: with gradients enabled (or in
  // training mode) the captured-Tensor result would sever the autograd tape,
  // so those calls always run eager. Quant mode bypasses the graph executor
  // outright — the int8 Linear forward already returns constants, and its
  // output is identical either way, so capturing a plan would only add
  // overhead (this is also what makes quant-mode results trivially
  // bit-identical across --graph on/off).
  if (graph::GraphModeEnabled() && !simd::QuantModeEnabled() &&
      !ctx.training && !ag::GradEnabled()) {
    Tensor out = graph_exec_.Run(x.value(), [this, &ctx](const ag::Var& in) {
      return EncodeChannelsEager(in, ctx);
    });
    return ag::Constant(out);
  }
  return EncodeChannelsEager(x, ctx);
}

ag::Var FoundationModel::EncodeChannelsEager(
    const ag::Var& x, const nn::ForwardContext& ctx) const {
  TSFM_CHECK_EQ(x.ndim(), 3) << "EncodeChannels expects (B, T, D)";
  const int64_t b = x.dim(0);
  const int64_t t = x.dim(1);
  const int64_t d = x.dim(2);
  // (B, T, D) -> (B, D, T) -> (B*D, T): one univariate series per channel.
  ag::Var per_channel =
      ag::Reshape(ag::Permute(x, {0, 2, 1}), Shape{b * d, t});
  ag::Var tokens = EncodeSeries(per_channel, ctx);  // (B*D, P, E)
  ag::Var pooled = ag::MeanAxis(tokens, 1, /*keepdim=*/false);  // (B*D, E)
  ag::Var grouped = ag::Reshape(pooled, Shape{b, d, config_.d_model});
  return ag::MeanAxis(grouped, 1, /*keepdim=*/false);  // (B, E)
}

FoundationModelConfig MomentSmallConfig() {
  FoundationModelConfig c;
  c.name = "MOMENT";
  c.d_model = 64;
  c.num_layers = 2;
  c.num_heads = 4;
  c.d_hidden = 128;
  c.patch_len = 8;
  c.patch_stride = 8;
  c.dropout = 0.1f;
  return c;
}

FoundationModelConfig VitSmallConfig() {
  FoundationModelConfig c;
  c.name = "ViT";
  c.d_model = 48;
  c.num_layers = 2;
  c.num_heads = 4;
  c.d_hidden = 96;
  c.patch_len = 8;
  c.patch_stride = 4;
  c.dropout = 0.1f;
  return c;
}

FoundationModelConfig MomentTestConfig() {
  FoundationModelConfig c = MomentSmallConfig();
  c.d_model = 16;
  c.num_heads = 2;
  c.d_hidden = 32;
  c.num_layers = 1;
  c.dropout = 0.0f;
  return c;
}

FoundationModelConfig VitTestConfig() {
  FoundationModelConfig c = VitSmallConfig();
  c.d_model = 16;
  c.num_heads = 2;
  c.d_hidden = 32;
  c.num_layers = 1;
  c.dropout = 0.0f;
  return c;
}

}  // namespace tsfm::models
