#include "models/moment.h"

#include <algorithm>

#include "common/check.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "optim/optim.h"
#include "tensor/ops.h"

namespace tsfm::models {

MomentModel::MomentModel(const FoundationModelConfig& config, Rng* rng)
    : FoundationModel(config) {
  TSFM_CHECK_EQ(config.patch_stride, config.patch_len)
      << "MOMENT uses non-overlapping patches";
  patch_embed_ =
      std::make_shared<nn::Linear>(config.patch_len, config.d_model, rng);
  encoder_ = std::make_shared<nn::TransformerEncoder>(
      config.num_layers, config.d_model, config.num_heads, config.d_hidden,
      config.dropout, rng);
  reconstruction_head_ =
      std::make_shared<nn::Linear>(config.d_model, config.patch_len, rng);
  positions_ = std::make_unique<nn::PositionalEncoding>(config.max_patches,
                                                        config.d_model);
  RegisterModule("patch_embed", patch_embed_);
  RegisterModule("encoder", encoder_);
  RegisterModule("reconstruction_head", reconstruction_head_);
}

int64_t MomentModel::NumPatches(int64_t t) const {
  return std::max<int64_t>(1, t / config_.patch_len);
}

ag::Var MomentModel::Patchify(const ag::Var& series) const {
  TSFM_CHECK_EQ(series.ndim(), 2) << "Patchify expects (B, T)";
  const int64_t b = series.dim(0);
  const int64_t t = series.dim(1);
  const int64_t l = config_.patch_len;
  if (t >= l) {
    const int64_t p = t / l;
    ag::Var trimmed = t % l == 0 ? series : ag::SliceOp(series, 1, 0, p * l);
    return ag::Reshape(trimmed, Shape{b, p, l});
  }
  // Right-pad short series with zeros to one full patch.
  ag::Var pad = ag::Constant(Tensor::Zeros(Shape{b, l - t}));
  return ag::Reshape(ag::ConcatOp({series, pad}, 1), Shape{b, 1, l});
}

ag::Var MomentModel::EncodeSeries(const ag::Var& series,
                                  const nn::ForwardContext& ctx) const {
  ag::Var patches = Patchify(series);                 // (B, P, L)
  ag::Var tokens = patch_embed_->Forward(patches);    // (B, P, E)
  tokens = positions_->Forward(tokens);
  return encoder_->Forward(tokens, ctx);              // (B, P, E)
}

Result<Tensor> MomentModel::Impute(const Tensor& series,
                                   const Tensor& mask) const {
  if (series.ndim() != 2) {
    return Status::InvalidArgument("Impute expects series of shape (B, T)");
  }
  if (mask.shape() != series.shape()) {
    return Status::InvalidArgument("mask shape must match series shape");
  }
  const int64_t b = series.dim(0);
  const int64_t t = series.dim(1);
  const int64_t l = config_.patch_len;
  const int64_t p = NumPatches(t);
  const int64_t covered = std::min(t, p * l);

  Tensor corrupted = series.Clone();
  for (int64_t i = 0; i < b * t; ++i) {
    if (mask[i] != 0.0f) corrupted.mutable_data()[i] = 0.0f;
  }
  ag::NoGradGuard guard;
  nn::ForwardContext ctx{/*training=*/false, nullptr};
  ag::Var tokens = EncodeSeries(ag::Constant(corrupted), ctx);  // (B, P, E)
  Tensor recon =
      reconstruction_head_->Forward(tokens).value();  // (B, P, L)
  Tensor out = series.Clone();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t s = 0; s < covered; ++s) {
      if (mask.at({i, s}) != 0.0f) {
        out.at({i, s}) = recon.at({i, s / l, s % l});
      }
    }
  }
  return out;
}

Result<double> MomentModel::Pretrain(const PretrainOptions& options) {
  if (options.mask_ratio <= 0.0f || options.mask_ratio >= 1.0f) {
    return Status::InvalidArgument("mask_ratio must be in (0, 1)");
  }
  Rng rng(options.seed);
  Tensor corpus = data::GeneratePretrainCorpus(
      options.corpus_size, options.series_length, options.seed ^ 0xC0FFEE);
  optim::AdamW opt(Parameters(), options.lr);
  const int64_t p = NumPatches(options.series_length);
  const int64_t l = config_.patch_len;

  double last_epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    Rng epoch_rng = rng.Fork();
    auto batches =
        data::MakeBatches(corpus.dim(0), options.batch_size, &epoch_rng);
    double loss_sum = 0.0;
    for (const auto& batch_idx : batches) {
      Tensor batch = TakeRows(corpus, batch_idx);  // (B, T)
      const int64_t b = batch.dim(0);
      // Build the patch-level mask and the corrupted input (masked patches
      // zeroed out in the raw series).
      Tensor mask(Shape{b, p, l});
      Tensor corrupted = batch.Clone();
      for (int64_t i = 0; i < b; ++i) {
        for (int64_t j = 0; j < p; ++j) {
          if (epoch_rng.Uniform() < options.mask_ratio) {
            for (int64_t s = 0; s < l; ++s) {
              mask.at({i, j, s}) = 1.0f;
              corrupted.at({i, static_cast<int64_t>(j * l + s)}) = 0.0f;
            }
          }
        }
      }
      nn::ForwardContext ctx{/*training=*/true, &epoch_rng};
      ag::Var tokens = EncodeSeries(ag::Constant(corrupted), ctx);
      ag::Var recon = reconstruction_head_->Forward(tokens);  // (B, P, L)
      Tensor target =
          Slice(batch, 1, 0, p * l).Reshape(Shape{b, p, l});
      // Masked reconstruction is the MOMENT objective; a small full-series
      // term additionally supervises the head on visible patches so that
      // downstream imputation of partially-observed patches is meaningful.
      ag::Var loss = ag::Add(
          ag::MaskedMseLoss(recon, target, mask),
          ag::Scale(ag::MseLoss(recon, target), 0.2f));
      loss.Backward();
      optim::ClipGradNorm(Parameters(), 1.0f);
      opt.Step();
      opt.ZeroGrad();
      loss_sum += loss.value()[0];
    }
    last_epoch_loss = loss_sum / static_cast<double>(batches.size());
  }
  return last_epoch_loss;
}

}  // namespace tsfm::models
