#ifndef TSFM_MODELS_CONFIG_H_
#define TSFM_MODELS_CONFIG_H_

#include <cstdint>
#include <string>

namespace tsfm::models {

/// Architecture hyper-parameters of a (scaled-down) foundation model.
/// The paper-scale dimensions used for V100 memory/time verdicts live in
/// `tsfm::resources::PaperModelSpec`, not here.
struct FoundationModelConfig {
  std::string name;
  int64_t d_model = 64;
  int64_t num_layers = 2;
  int64_t num_heads = 4;
  int64_t d_hidden = 128;
  /// Patch length for tokenization (both models patch the time axis).
  int64_t patch_len = 8;
  /// Patch stride; == patch_len means non-overlapping (MOMENT), smaller
  /// means overlapping patches (ViT).
  int64_t patch_stride = 8;
  float dropout = 0.1f;
  /// Capacity of the positional-encoding table (max patches per series).
  int64_t max_patches = 512;
};

/// Scaled-down stand-in for MOMENT (Goswami et al., 2024): non-overlapping
/// patches, masked-reconstruction pretraining. The real model has 341 M
/// parameters; this config keeps the architecture shape at CPU-trainable size.
FoundationModelConfig MomentSmallConfig();

/// Scaled-down stand-in for the paper's ViT model (Nu-Time-like):
/// overlapping patches + statistical embeddings, InfoNCE pretraining.
/// The real model has 8 M parameters.
FoundationModelConfig VitSmallConfig();

/// Extra-small configs used by unit tests.
FoundationModelConfig MomentTestConfig();
FoundationModelConfig VitTestConfig();

/// Options controlling self-supervised pretraining.
struct PretrainOptions {
  int64_t corpus_size = 512;
  int64_t series_length = 64;
  int64_t batch_size = 32;
  int64_t epochs = 3;
  float lr = 1e-3f;
  float mask_ratio = 0.3f;     // MOMENT: fraction of masked patches
  float temperature = 0.2f;    // ViT: InfoNCE temperature
  uint64_t seed = 7;
};

}  // namespace tsfm::models

#endif  // TSFM_MODELS_CONFIG_H_
