#include "models/vit.h"

#include <algorithm>

#include "common/check.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "optim/optim.h"
#include "tensor/ops.h"

namespace tsfm::models {

VitModel::VitModel(const FoundationModelConfig& config, Rng* rng)
    : FoundationModel(config) {
  TSFM_CHECK_LE(config.patch_stride, config.patch_len)
      << "ViT patches must overlap or tile";
  TSFM_CHECK_GT(config.patch_stride, 0);
  token_embed_ = std::make_shared<nn::Linear>(config.patch_len + 2,
                                              config.d_model, rng);
  encoder_ = std::make_shared<nn::TransformerEncoder>(
      config.num_layers, config.d_model, config.num_heads, config.d_hidden,
      config.dropout, rng);
  projection_head_ =
      std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  positions_ = std::make_unique<nn::PositionalEncoding>(config.max_patches,
                                                        config.d_model);
  RegisterModule("token_embed", token_embed_);
  RegisterModule("encoder", encoder_);
  RegisterModule("projection_head", projection_head_);
}

int64_t VitModel::NumPatches(int64_t t) const {
  if (t < config_.patch_len) return 1;
  return (t - config_.patch_len) / config_.patch_stride + 1;
}

ag::Var VitModel::PatchifyWithStats(const ag::Var& series) const {
  TSFM_CHECK_EQ(series.ndim(), 2) << "PatchifyWithStats expects (B, T)";
  const int64_t b = series.dim(0);
  const int64_t t = series.dim(1);
  const int64_t l = config_.patch_len;

  ag::Var padded = series;
  int64_t eff_t = t;
  if (t < l) {  // right-pad short series to one full patch
    padded = ag::ConcatOp({series, ag::Constant(Tensor::Zeros(Shape{b, l - t}))},
                          1);
    eff_t = l;
  }
  const int64_t p = (eff_t - l) / config_.patch_stride + 1;
  std::vector<ag::Var> tokens;
  tokens.reserve(static_cast<size_t>(p));
  for (int64_t j = 0; j < p; ++j) {
    const int64_t start = j * config_.patch_stride;
    ag::Var patch = ag::SliceOp(padded, 1, start, start + l);  // (B, L)
    ag::Var mean = ag::MeanAxis(patch, 1, /*keepdim=*/true);   // (B, 1)
    ag::Var var =
        ag::MeanAxis(ag::Square(ag::Sub(patch, mean)), 1, /*keepdim=*/true);
    ag::Var std = ag::Sqrt(ag::AddScalar(var, 1e-6f));
    ag::Var tok = ag::ConcatOp({patch, mean, std}, 1);  // (B, L+2)
    tokens.push_back(ag::Reshape(tok, Shape{b, 1, l + 2}));
  }
  return ag::ConcatOp(tokens, 1);  // (B, P, L+2)
}

ag::Var VitModel::EncodeSeries(const ag::Var& series,
                               const nn::ForwardContext& ctx) const {
  ag::Var patches = PatchifyWithStats(series);
  ag::Var tokens = token_embed_->Forward(patches);
  tokens = positions_->Forward(tokens);
  return encoder_->Forward(tokens, ctx);
}

Result<double> VitModel::Pretrain(const PretrainOptions& options) {
  if (options.temperature <= 0.0f) {
    return Status::InvalidArgument("temperature must be positive");
  }
  Rng rng(options.seed);
  Tensor corpus = data::GeneratePretrainCorpus(
      options.corpus_size, options.series_length, options.seed ^ 0xBEEF);
  optim::AdamW opt(Parameters(), options.lr);

  double last_epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    Rng epoch_rng = rng.Fork();
    auto batches =
        data::MakeBatches(corpus.dim(0), options.batch_size, &epoch_rng);
    double loss_sum = 0.0;
    for (const auto& batch_idx : batches) {
      Tensor batch = TakeRows(corpus, batch_idx);
      Tensor view1 = data::AugmentView(batch, &epoch_rng);
      Tensor view2 = data::AugmentView(batch, &epoch_rng);
      nn::ForwardContext ctx{/*training=*/true, &epoch_rng};
      auto embed = [&](const Tensor& view) {
        ag::Var tokens = EncodeSeries(ag::Constant(view), ctx);  // (B, P, E)
        ag::Var pooled = ag::MeanAxis(tokens, 1, /*keepdim=*/false);
        return projection_head_->Forward(pooled);  // (B, E)
      };
      ag::Var anchors = embed(view1);
      ag::Var positives = embed(view2);
      ag::Var loss = ag::InfoNceLoss(anchors, positives, options.temperature);
      loss.Backward();
      optim::ClipGradNorm(Parameters(), 1.0f);
      opt.Step();
      opt.ZeroGrad();
      loss_sum += loss.value()[0];
    }
    last_epoch_loss = loss_sum / static_cast<double>(batches.size());
  }
  return last_epoch_loss;
}

}  // namespace tsfm::models
