#ifndef TSFM_MODELS_HEAD_H_
#define TSFM_MODELS_HEAD_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace tsfm::models {

/// Linear classification head mapping sample embeddings (B, E) to class
/// logits (B, C) — the "head" in the paper's head-only and adapter+head
/// fine-tuning strategies.
class ClassificationHead : public nn::Module {
 public:
  ClassificationHead(int64_t embedding_dim, int64_t num_classes, Rng* rng)
      : fc_(std::make_shared<nn::Linear>(embedding_dim, num_classes, rng)) {
    RegisterModule("fc", fc_);
  }

  ag::Var Forward(const ag::Var& embeddings) const {
    return fc_->Forward(embeddings);
  }

 private:
  std::shared_ptr<nn::Linear> fc_;
};

}  // namespace tsfm::models

#endif  // TSFM_MODELS_HEAD_H_
