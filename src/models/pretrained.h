#ifndef TSFM_MODELS_PRETRAINED_H_
#define TSFM_MODELS_PRETRAINED_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "models/moment.h"
#include "models/vit.h"

namespace tsfm::models {

/// Model families provided by the library.
enum class ModelKind { kMoment, kVit };

const char* ModelKindName(ModelKind kind);

/// Returns a pretrained model of `kind`, loading weights from
/// `cache_path` if present, otherwise pretraining from scratch (per
/// `options`) and saving the checkpoint. This stands in for downloading the
/// HuggingFace MOMENT checkpoint: the expensive pretraining happens once per
/// machine and is reused afterwards.
///
/// `init_seed` controls the weight initialization (and hence the identity of
/// the "published checkpoint"). Pass an empty `cache_path` to skip caching.
Result<std::shared_ptr<FoundationModel>> LoadOrPretrain(
    ModelKind kind, const FoundationModelConfig& config,
    const PretrainOptions& options, const std::string& cache_path,
    uint64_t init_seed = 1234);

}  // namespace tsfm::models

#endif  // TSFM_MODELS_PRETRAINED_H_
