// Bit-exact determinism across thread counts.
//
// The runtime's contract is that chunk boundaries depend only on
// (begin, end, grain) and per-chunk partials are reduced in chunk-index
// order, so every parallelized op must produce bit-identical floats for
// TSFM_NUM_THREADS=1, 2, and 8. These tests run the hot ops at each
// thread count and compare raw buffers with memcmp — any reordering of
// floating-point accumulation fails loudly.

#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "core/pca_adapter.h"
#include "nn/layers.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/quant.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = runtime::NumThreads(); }
  void TearDown() override { runtime::SetNumThreads(saved_); }

  // Runs `compute` once per thread count and checks the raw output bytes
  // never change.
  void ExpectBitIdentical(const std::function<Tensor()>& compute,
                          const char* what) {
    runtime::SetNumThreads(kThreadCounts[0]);
    Tensor reference = compute();
    for (size_t i = 1; i < std::size(kThreadCounts); ++i) {
      runtime::SetNumThreads(kThreadCounts[i]);
      Tensor got = compute();
      ASSERT_EQ(got.shape(), reference.shape()) << what;
      EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                            sizeof(float) * static_cast<size_t>(got.numel())),
                0)
          << what << " differs at " << kThreadCounts[i] << " threads";
    }
  }

  int saved_ = 1;
};

TEST_F(DeterminismTest, MatMul) {
  Rng rng(7);
  Tensor a = Tensor::RandN({130, 70}, &rng);
  Tensor b = Tensor::RandN({70, 90}, &rng);
  ExpectBitIdentical([&] { return MatMul(a, b); }, "MatMul 2-D");
}

TEST_F(DeterminismTest, BatchedBroadcastMatMul) {
  Rng rng(8);
  Tensor a = Tensor::RandN({4, 33, 17}, &rng);
  Tensor b = Tensor::RandN({17, 29}, &rng);  // broadcast over batch
  ExpectBitIdentical([&] { return MatMul(a, b); }, "MatMul batched");
}

TEST_F(DeterminismTest, Elementwise) {
  Rng rng(9);
  Tensor a = Tensor::RandN({100000}, &rng);
  Tensor b = Tensor::RandN({100000}, &rng);
  ExpectBitIdentical([&] { return Mul(Add(a, b), a); }, "elementwise");
}

TEST_F(DeterminismTest, Reductions) {
  Rng rng(10);
  Tensor a = Tensor::RandN({64, 1000}, &rng);
  ExpectBitIdentical(
      [&] { return Tensor(Shape{1}, {SumAll(a)}); }, "SumAll");
  ExpectBitIdentical([&] { return Sum(a, 0) ; }, "Sum axis 0");
  ExpectBitIdentical([&] { return Sum(a, 1); }, "Sum axis 1");
  ExpectBitIdentical([&] { return Softmax(a); }, "Softmax");
}

TEST_F(DeterminismTest, PcaFitAndTransform) {
  Rng rng(11);
  Tensor x = Tensor::RandN({24, 50, 6}, &rng);
  std::vector<int64_t> y(24, 0);
  auto fit_transform = [&] {
    core::AdapterOptions options;
    options.out_channels = 3;
    core::PcaAdapter pca(options);
    EXPECT_TRUE(pca.Fit(x, y).ok());
    auto out = pca.Transform(x);
    EXPECT_TRUE(out.ok());
    return out.value();
  };
  ExpectBitIdentical(fit_transform, "PCA fit+transform");
}

// Regression test for the removed `a == 0` skip in MatMul's inner loop:
// IEEE 754 requires 0 * NaN == NaN, so a NaN in B must poison every
// output that multiplies it — even against a zero in A.
TEST_F(DeterminismTest, MatMulPropagatesNanThroughZero) {
  Tensor a(Shape{1, 2}, {0.0f, 0.0f});
  Tensor b(Shape{2, 1}, {std::nanf(""), 1.0f});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(std::isnan(c[0]));

  // Same through the blocked kernel path (full 6x tile of rows).
  Tensor big_a = Tensor::Zeros(Shape{12, 8});
  Rng rng(12);
  Tensor big_b = Tensor::RandN({8, 40}, &rng);
  big_b.mutable_data()[0] = std::nanf("");
  Tensor big_c = MatMul(big_a, big_b);
  // The NaN sits at B(0, 0), which feeds C(i, 0) for every row i.
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(std::isnan(big_c.at({i, 0}))) << "row " << i;
  }
}

// SIMD mode keeps the same contract: the row kernels are bit-identical to
// their scalar reference at any chunk split, so ParallelFor boundaries
// cannot change output bits.
TEST_F(DeterminismTest, SimdModeElementwiseAndSoftmax) {
  simd::ScopedSimdMode simd_on(true);
  Rng rng(40);
  Tensor a = Tensor::RandN({150, 90}, &rng, 3.0f);
  ExpectBitIdentical([&] { return Exp(a); }, "SIMD Exp");
  ExpectBitIdentical([&] { return Tanh(a); }, "SIMD Tanh");
  ExpectBitIdentical([&] { return Gelu(a); }, "SIMD Gelu");
  ExpectBitIdentical([&] { return Sigmoid(a); }, "SIMD Sigmoid");
  ExpectBitIdentical([&] { return Softmax(a); }, "SIMD Softmax");
  ExpectBitIdentical([&] { return LogSoftmax(a); }, "SIMD LogSoftmax");
}

// Quant mode is even stronger: int8 x int8 -> int32 accumulation is exact
// integer arithmetic, independent of summation order entirely.
TEST_F(DeterminismTest, QuantizedLinearForward) {
  simd::ScopedQuantMode quant_on(true);
  ag::NoGradGuard guard;
  Rng rng(41);
  nn::Linear fc(64, 64, &rng);
  Tensor x = Tensor::RandN({300, 64}, &rng);
  ExpectBitIdentical([&] { return fc.Forward(ag::Constant(x)).value(); },
                     "quantized Linear forward");
}

TEST_F(DeterminismTest, QuantMatMulKernel) {
  Rng rng(42);
  const int64_t m = 400, k = 48, n = 56;
  Tensor a = Tensor::RandN({m, k}, &rng);
  Tensor w = Tensor::RandN({k, n}, &rng);
  const simd::QuantizedMatrix q = simd::QuantizeWeight(w.data(), k, n);
  ExpectBitIdentical(
      [&] {
        Tensor c = Tensor::Empty({m, n});
        simd::QuantMatMul(a.data(), m, q, c.mutable_data());
        return c;
      },
      "QuantMatMul");
}

}  // namespace
}  // namespace tsfm
