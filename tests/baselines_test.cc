#include <gtest/gtest.h>

#include "baselines/rocket.h"
#include "data/uea_like.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using baselines::RocketClassifier;
using baselines::RocketConfig;

data::DatasetPair EasyProblem(uint64_t seed = 1) {
  data::UeaDatasetSpec spec{"rocket_toy", "rt", 60, 40, 6, 40, 2, 3};
  return data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
}

RocketConfig QuickConfig() {
  RocketConfig config;
  config.num_kernels = 120;
  config.epochs = 40;
  config.seed = 3;
  return config;
}

TEST(RocketTest, LearnsEasyProblem) {
  auto pair = EasyProblem();
  RocketClassifier rocket(QuickConfig());
  ASSERT_TRUE(rocket.Fit(pair.train).ok());
  auto acc = rocket.Evaluate(pair.test);
  ASSERT_TRUE(acc.ok()) << acc.status().ToString();
  EXPECT_GT(*acc, 0.65) << "chance is 0.5";
}

TEST(RocketTest, FeatureShapeAndRange) {
  auto pair = EasyProblem(2);
  RocketConfig config = QuickConfig();
  config.num_kernels = 50;
  RocketClassifier rocket(config);
  ASSERT_TRUE(rocket.Fit(pair.train).ok());
  auto features = rocket.ExtractFeatures(pair.test.x);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->shape(), (Shape{pair.test.size(), 100}));
  // PPV features (even columns) are proportions in [0, 1].
  for (int64_t i = 0; i < features->dim(0); ++i) {
    for (int64_t j = 0; j < features->dim(1); j += 2) {
      const float ppv = features->at({i, j});
      EXPECT_GE(ppv, 0.0f);
      EXPECT_LE(ppv, 1.0f);
    }
  }
}

TEST(RocketTest, DeterministicPerSeed) {
  auto pair = EasyProblem(3);
  RocketClassifier a(QuickConfig()), b(QuickConfig());
  ASSERT_TRUE(a.Fit(pair.train).ok());
  ASSERT_TRUE(b.Fit(pair.train).ok());
  auto pa = a.Predict(pair.test);
  auto pb = b.Predict(pair.test);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(*pa, *pb);
}

TEST(RocketTest, ErrorsBeforeFitAndOnBadInput) {
  RocketClassifier rocket(QuickConfig());
  EXPECT_FALSE(rocket.fitted());
  auto pair = EasyProblem(4);
  EXPECT_FALSE(rocket.Predict(pair.test).ok());
  EXPECT_FALSE(rocket.ExtractFeatures(pair.test.x).ok());

  ASSERT_TRUE(rocket.Fit(pair.train).ok());
  // Channel mismatch.
  Tensor wrong(Shape{2, 40, 9});
  EXPECT_FALSE(rocket.ExtractFeatures(wrong).ok());
  // Not 3-D.
  EXPECT_FALSE(rocket.ExtractFeatures(Tensor(Shape{2, 40})).ok());
}

TEST(RocketTest, RejectsTooShortSeries) {
  data::UeaDatasetSpec spec{"short", "s", 10, 5, 3, 5, 2, 2};
  auto pair = data::GenerateUeaLike(spec, 5, data::GeneratorCaps{});
  RocketClassifier rocket(QuickConfig());
  EXPECT_FALSE(rocket.Fit(pair.train).ok());
}

TEST(RocketTest, RejectsNonPositiveKernels) {
  RocketConfig config = QuickConfig();
  config.num_kernels = 0;
  RocketClassifier rocket(config);
  auto pair = EasyProblem(6);
  EXPECT_FALSE(rocket.Fit(pair.train).ok());
}

TEST(RocketTest, HandlesMultiChannelRouting) {
  // Kernels pick random channels; with D=6 and 120 kernels every channel is
  // sampled with overwhelming probability, so zeroing one channel must
  // change some features.
  auto pair = EasyProblem(7);
  RocketClassifier rocket(QuickConfig());
  ASSERT_TRUE(rocket.Fit(pair.train).ok());
  Tensor x = pair.test.x.Clone();
  auto before = rocket.ExtractFeatures(x);
  for (int64_t i = 0; i < x.dim(0); ++i) {
    for (int64_t t = 0; t < x.dim(1); ++t) x.at({i, t, 0}) = 0.0f;
  }
  auto after = rocket.ExtractFeatures(x);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_GT(MaxAbsDiff(*before, *after), 1e-4f);
}

}  // namespace
}  // namespace tsfm
