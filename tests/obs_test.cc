// Tests for the observability layer (src/obs): metric registry semantics,
// histogram percentile math, trace-span recording under ParallelFor, the
// chrome://tracing JSON export, and the "silent when disabled" contract the
// hot paths rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "resources/measured.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

double SnapValue(const obs::Snapshot& snap, const std::string& name) {
  auto it = snap.find(name);
  return it == snap.end() ? 0.0 : it->second;
}

// This suite must run before anything in this binary touches the trace API:
// the trace metrics provider registers from a namespace-scope initializer in
// trace.cc, not lazily on first span, so a metrics scrape of a process that
// never traced still sees trace.dropped / trace.events (both 0).
TEST(AATraceRegistration, DroppedRegisteredBeforeAnyTracing) {
  const obs::Snapshot snap = obs::Registry::Instance().TakeSnapshot();
  ASSERT_NE(snap.find("trace.dropped"), snap.end());
  ASSERT_NE(snap.find("trace.events"), snap.end());
  EXPECT_DOUBLE_EQ(SnapValue(snap, "trace.dropped"), 0.0);
  EXPECT_DOUBLE_EQ(SnapValue(snap, "trace.events"), 0.0);
  // The exposition endpoint sees it too, before any span was ever recorded.
  EXPECT_NE(obs::Registry::Instance().RenderPrometheus().find(
                "tsfm_trace_dropped"),
            std::string::npos);
}

TEST(MetricsRegistry, CounterIsStableAndAccumulates) {
  auto& registry = obs::Registry::Instance();
  obs::Counter* c = registry.GetCounter("obs_test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(registry.GetCounter("obs_test.counter"), c);
  const uint64_t before = c->value();
  c->Add(3);
  c->Add();
  EXPECT_EQ(c->value(), before + 4);
  EXPECT_GE(SnapValue(registry.TakeSnapshot(), "obs_test.counter"),
            static_cast<double>(before + 4));
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  obs::Gauge* g = obs::Registry::Instance().GetGauge("obs_test.gauge");
  g->Set(2.5);
  g->Set(-7.0);
  EXPECT_DOUBLE_EQ(g->value(), -7.0);
}

TEST(MetricsRegistryDeathTest, TypeMismatchIsFatal) {
  obs::Registry::Instance().GetCounter("obs_test.typed_as_counter");
  EXPECT_DEATH(
      obs::Registry::Instance().GetGauge("obs_test.typed_as_counter"),
      "already registered");
  EXPECT_DEATH(
      obs::Registry::Instance().GetHistogram("obs_test.typed_as_counter"),
      "already registered");
}

TEST(Histogram, CountSumExtremaExact) {
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("obs_test.hist_exact");
  double sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    h->Observe(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  EXPECT_EQ(h->count(), 100u);
  EXPECT_DOUBLE_EQ(h->sum(), sum);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 100.0);
}

TEST(Histogram, PercentileWithinBucketInterpolation) {
  // All observations land in the [1, 2) bucket, so the estimate reduces to
  // pure linear interpolation between the observed extrema.
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("obs_test.hist_interp");
  for (int i = 0; i < 1000; ++i) {
    h->Observe(1.0 + static_cast<double>(i) / 1000.0);
  }
  const double p50 = h->Percentile(0.5);
  EXPECT_GT(p50, 1.4);
  EXPECT_LT(p50, 1.6);
  EXPECT_LE(h->Percentile(0.5), h->Percentile(0.9));
  EXPECT_LE(h->Percentile(0.9), h->Percentile(0.99));
  EXPECT_LE(h->Percentile(0.99), h->max());
}

TEST(Histogram, PercentileAcrossBuckets) {
  // 50 observations at ~1 and 50 at ~1024: the median straddles the gap, so
  // p25 must sit in the low bucket and p75 in the high one — the cumulative
  // walk across buckets, not just in-bucket interpolation.
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("obs_test.hist_buckets");
  for (int i = 0; i < 50; ++i) {
    h->Observe(1.25);
    h->Observe(1024.5);
  }
  EXPECT_LT(h->Percentile(0.25), 2.0);
  EXPECT_GT(h->Percentile(0.75), 1024.0);
  EXPECT_LT(h->Percentile(0.75), 2048.0);
}

TEST(Histogram, BucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketLowerBound(-obs::Histogram::kMinExp),
                   1.0);
  EXPECT_DOUBLE_EQ(
      obs::Histogram::BucketLowerBound(-obs::Histogram::kMinExp + 10),
      1024.0);
}

// Counter totals produced by instrumented kernels must not depend on the
// thread count: FLOP/byte counters are computed from shapes, and ParallelFor
// chunk counts depend only on (begin, end, grain) — the same determinism
// contract the numerics obey.
TEST(Metrics, CounterTotalsThreadCountInvariant) {
  auto& registry = obs::Registry::Instance();
  const int ambient = runtime::NumThreads();
  const char* const names[] = {
      "tensor.matmul_flops", "tensor.matmul_calls", "tensor.elementwise_bytes",
      "tensor.elementwise_calls", "runtime.parallel_for.chunks"};

  auto run_workload_deltas = [&](int threads) {
    runtime::SetNumThreads(threads);
    const obs::Snapshot before = registry.TakeSnapshot();
    Rng rng(42);
    Tensor a = Tensor::RandN({64, 96}, &rng);
    Tensor b = Tensor::RandN({96, 64}, &rng);
    Tensor c = MatMul(a, b);
    Tensor d = Add(c, c);
    (void)SumAll(d);
    const obs::Snapshot after = registry.TakeSnapshot();
    std::vector<double> deltas;
    for (const char* name : names) {
      deltas.push_back(SnapValue(after, name) - SnapValue(before, name));
    }
    return deltas;
  };

  const std::vector<double> serial = run_workload_deltas(1);
  const std::vector<double> parallel = run_workload_deltas(4);
  runtime::SetNumThreads(ambient);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << names[i];
  }
  // Sanity: the workload actually counted something.
  EXPECT_EQ(serial[0], 2.0 * 64 * 96 * 64);
  EXPECT_GE(serial[1], 1.0);
}

TEST(Trace, SpanNestingAndOrderingUnderParallelFor) {
  const int ambient = runtime::NumThreads();
  auto run_spans = [&](int threads) {
    runtime::SetNumThreads(threads);
    obs::EnableTracing();
    obs::ClearTrace();
    {
      TSFM_TRACE_SPAN("obs_test.outer");
      runtime::ParallelFor(0, 64, /*grain=*/8, [](int64_t lo, int64_t hi) {
        TSFM_TRACE_SPAN("obs_test.chunk");
        volatile int64_t sink = 0;
        for (int64_t i = lo; i < hi; ++i) sink = sink + i;
      });
    }
    obs::DisableTracing();
    return obs::TraceSnapshot();
  };

  const auto serial = run_spans(1);
  const auto parallel = run_spans(4);
  runtime::SetNumThreads(ambient);

  // 64/8 = 8 chunks, each traced exactly once, plus the outer span —
  // regardless of how many workers executed them.
  ASSERT_EQ(serial.size(), 9u);
  ASSERT_EQ(parallel.size(), serial.size());

  for (const auto& events : {serial, parallel}) {
    const obs::TraceEvent* outer = nullptr;
    int chunks = 0;
    for (const auto& e : events) {
      if (std::string(e.name) == "obs_test.outer") outer = &e;
      if (std::string(e.name) == "obs_test.chunk") ++chunks;
    }
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(chunks, 8);
    // Nesting: every chunk span lies inside the outer span's interval.
    for (const auto& e : events) {
      if (std::string(e.name) != "obs_test.chunk") continue;
      EXPECT_GE(e.start_ns, outer->start_ns);
      EXPECT_LE(e.start_ns + e.dur_ns, outer->start_ns + outer->dur_ns);
      EXPECT_GE(e.dur_ns, 0);
    }
    // Ordering: the outer span closes last, so it is the newest event.
    EXPECT_STREQ(events.back().name, "obs_test.outer");
  }
}

TEST(Trace, WriteTraceEmitsWellFormedChromeJson) {
  obs::EnableTracing();
  obs::ClearTrace();
  {
    TSFM_TRACE_SPAN("obs_test.json_outer");
    TSFM_TRACE_SPAN("obs_test.json_inner");
  }
  obs::DisableTracing();

  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(obs::WriteTrace(path));

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string json = buf.str();

  // Structural checks: the chrome://tracing envelope, balanced delimiters,
  // one "X" record per span, no trailing comma before the closing bracket.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.json_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.json_inner\""), std::string::npos);
  EXPECT_EQ(json.find(",\n]"), std::string::npos);
  int64_t braces = 0, brackets = 0;
  size_t ph_records = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '{') ++braces;
    if (json[i] == '}') --braces;
    if (json[i] == '[') ++brackets;
    if (json[i] == ']') --brackets;
  }
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++ph_records;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(ph_records, 2u);
  std::remove(path.c_str());
}

// The negative contract: with tracing disabled, spans record nothing at all
// — no events, no drops — so kernels can carry TSFM_TRACE_SPAN
// unconditionally.
TEST(Trace, DisabledSpansAreSilent) {
  obs::DisableTracing();
  obs::ClearTrace();
  const int64_t dropped_before = obs::TraceDroppedCount();
  for (int i = 0; i < 1000; ++i) {
    TSFM_TRACE_SPAN("obs_test.should_not_record");
  }
  Rng rng(7);
  Tensor a = Tensor::RandN({16, 16}, &rng);
  (void)MatMul(a, a);  // instrumented kernels, tracing off
  EXPECT_EQ(obs::TraceEventCount(), 0);
  EXPECT_EQ(obs::TraceDroppedCount(), dropped_before);
}

TEST(Trace, EnableDisableRoundTrip) {
  obs::DisableTracing();
  EXPECT_FALSE(obs::TraceEnabled());
  obs::EnableTracing();
  EXPECT_TRUE(obs::TraceEnabled());
  obs::ClearTrace();
  { TSFM_TRACE_SPAN("obs_test.roundtrip"); }
  EXPECT_EQ(obs::TraceEventCount(), 1);
  obs::DisableTracing();
  obs::ClearTrace();
}

// resources::MeasurePeak now reads pool.* through the registry; the numbers
// must still describe the measured workload.
TEST(Metrics, MeasurePeakReadsPoolMetricsFromRegistry) {
  const auto snap = obs::Registry::Instance().TakeSnapshot();
  ASSERT_NE(snap.find("pool.acquires"), snap.end())
      << "pool metrics provider not registered";

  const resources::MeasuredMemory m = resources::MeasurePeak([] {
    Rng rng(3);
    Tensor t = Tensor::RandN({256, 256}, &rng);
    (void)SumAll(t);
  });
  EXPECT_GT(m.acquires, 0);
  // 256*256 floats = 256 KiB; the allocator must have held at least that.
  EXPECT_GE(m.peak_bytes, 256 * 1024);
}

TEST(Histogram, EmptyHistogramPercentileIsZero) {
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("obs_test.hist_empty");
  EXPECT_EQ(h->count(), 0u);
  // Every percentile of an empty histogram is 0.0, including the endpoints
  // that normally short-circuit to the observed extrema.
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 0.0);
}

TEST(Histogram, SingleObservationCollapsesAllPercentiles) {
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("obs_test.hist_single");
  h->Observe(3.5);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->min(), 3.5);
  EXPECT_DOUBLE_EQ(h->max(), 3.5);
  // With one observation the in-bucket interpolation window collapses to
  // [min, max] = [3.5, 3.5]: every percentile is the observation itself.
  for (double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h->Percentile(p), 3.5) << "p=" << p;
  }
}

// The profiler reconstructs nesting per tid from span intervals. Run the
// same outer+chunks workload serially and under a 4-worker pool: serially
// the chunks are children of the outer span; in parallel, chunks that ran on
// worker threads root their own subtrees (their parent ran on another tid).
// Either way, every chunk occurrence must be accounted for exactly once.
TEST(Profiler, NestingReconstructionUnderParallelFor) {
  const int ambient = runtime::NumThreads();
  auto run_profile = [&](int threads) {
    runtime::SetNumThreads(threads);
    obs::EnableTracing();
    obs::ClearTrace();
    {
      TSFM_TRACE_SPAN("obs_test.outer");
      runtime::ParallelFor(0, 64, /*grain=*/8, [](int64_t lo, int64_t hi) {
        TSFM_TRACE_SPAN("obs_test.chunk");
        volatile int64_t sink = 0;
        for (int64_t i = lo; i < hi; ++i) sink = sink + i;
      });
    }
    obs::DisableTracing();
    return obs::Profile::FromCurrentTrace();
  };

  const obs::Profile serial = run_profile(1);
  const obs::Profile parallel = run_profile(4);
  runtime::SetNumThreads(ambient);

  // Serial: one worker means every chunk interval lies inside the outer
  // span's on the same tid — a single "outer;chunk" child node.
  const obs::ProfileNode* outer = nullptr;
  const obs::ProfileNode* chunk_child = nullptr;
  for (const auto& n : serial.nodes()) {
    if (n.path == "obs_test.outer") outer = &n;
    if (n.path == "obs_test.outer;obs_test.chunk") chunk_child = &n;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(chunk_child, nullptr);
  EXPECT_EQ(outer->calls, 1);
  EXPECT_EQ(chunk_child->calls, 8);
  EXPECT_EQ(chunk_child->depth, 1);
  // Self time excludes the children: outer self = outer total - chunk total.
  EXPECT_EQ(outer->self_ns, outer->total_ns - chunk_child->total_ns);
  EXPECT_LE(chunk_child->min_ns, chunk_child->p50_ns);
  EXPECT_LE(chunk_child->p50_ns, chunk_child->p99_ns);
  EXPECT_LE(chunk_child->p99_ns, chunk_child->max_ns);

  // Parallel: chunks may split across several tids (some nested under the
  // outer span, some rooted on workers), but the call counts must still sum
  // to the 8 executed chunks.
  int64_t chunk_calls = 0;
  bool outer_seen = false;
  for (const auto& n : parallel.nodes()) {
    if (n.name == "obs_test.chunk") chunk_calls += n.calls;
    if (n.path == "obs_test.outer") outer_seen = true;
  }
  EXPECT_EQ(chunk_calls, 8);
  EXPECT_TRUE(outer_seen);

  // The per-name rollup folds all those subtrees back into one line.
  const auto top = parallel.TopByTotal(10);
  int64_t rolled = 0;
  for (const auto& n : top) {
    if (n.name == "obs_test.chunk") rolled = n.calls;
  }
  EXPECT_EQ(rolled, 8);
}

TEST(Profiler, SyntheticTreeAggregationAndRendering) {
  // Hand-built event list (all on tid 0, nanoseconds): root [0, 1ms) with
  // two "child" spans inside, plus an unrelated root on tid 1.
  const std::vector<obs::TraceEvent> events = {
      {"root", 0, 0, 1'000'000},
      {"child", 0, 100'000, 200'000},
      {"child", 0, 400'000, 300'000},
      {"lone", 1, 0, 50'000},
  };
  const obs::Profile profile = obs::Profile::FromEvents(events);
  ASSERT_EQ(profile.nodes().size(), 3u);
  // DFS order, roots by descending total: root, its child, then lone.
  EXPECT_EQ(profile.nodes()[0].path, "root");
  EXPECT_EQ(profile.nodes()[1].path, "root;child");
  EXPECT_EQ(profile.nodes()[2].path, "lone");
  EXPECT_EQ(profile.nodes()[0].self_ns, 500'000);
  EXPECT_EQ(profile.nodes()[1].calls, 2);
  EXPECT_EQ(profile.nodes()[1].min_ns, 200'000);
  EXPECT_EQ(profile.nodes()[1].max_ns, 300'000);

  // Collapsed-stack export: "path self_us" lines, child path ';'-joined.
  const std::string folded = profile.RenderCollapsed();
  EXPECT_NE(folded.find("root 500\n"), std::string::npos);
  EXPECT_NE(folded.find("root;child 500\n"), std::string::npos);
  EXPECT_NE(folded.find("lone 50\n"), std::string::npos);

  // JSON export names every field of every node.
  const std::string json = profile.RenderJson();
  EXPECT_NE(json.find("\"path\":\"root;child\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":2"), std::string::npos);

  // Text table carries the header and the indented child row.
  const std::string text = profile.RenderText();
  EXPECT_NE(text.find("calls"), std::string::npos);
  EXPECT_NE(text.find("span"), std::string::npos);
  EXPECT_NE(text.find("  child"), std::string::npos);
}

TEST(Metrics, TraceProviderPublishesRingHealth) {
  obs::EnableTracing();
  obs::ClearTrace();
  { TSFM_TRACE_SPAN("obs_test.provider_span"); }
  obs::DisableTracing();
  const obs::Snapshot snap = obs::Registry::Instance().TakeSnapshot();
  ASSERT_NE(snap.find("trace.events"), snap.end());
  ASSERT_NE(snap.find("trace.dropped"), snap.end());
  EXPECT_GE(SnapValue(snap, "trace.events"), 1.0);
  EXPECT_DOUBLE_EQ(SnapValue(snap, "trace.dropped"), 0.0);
  obs::ClearTrace();
}

TEST(Metrics, RenderTextListsSortedNames) {
  auto& registry = obs::Registry::Instance();
  registry.GetCounter("obs_test.render_a")->Add(1);
  registry.GetCounter("obs_test.render_b")->Add(2);
  const std::string text = registry.RenderText();
  const size_t pos_a = text.find("obs_test.render_a 1");
  const size_t pos_b = text.find("obs_test.render_b 2");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
}

// ---------------------------------------------------------------------------
// Rolling-window instruments (obs/rolling.h). Tests freeze the rolling clock
// so slot rotation is deterministic and window counts are exact.

struct FrozenClock {
  explicit FrozenClock(int64_t ns) {
    obs::internal::SetRollingClockForTest(ns);
  }
  ~FrozenClock() { obs::internal::SetRollingClockForTest(-1); }
};

TEST(Rolling, CounterWindowExpiresOldEpochsCumulativeDoesNot) {
  FrozenClock clock(obs::kRollingSlotNs);  // epoch 1
  auto* c = obs::Registry::Instance().GetRollingCounter(
      "obs_test.rolling.counter");
  c->Add(5);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(c->WindowCount(), 5u);

  obs::internal::SetRollingClockForTest(4 * obs::kRollingSlotNs);
  c->Add(2);
  EXPECT_EQ(c->value(), 7u);
  EXPECT_EQ(c->WindowCount(), 7u);

  // Epoch 1 ages out at epoch 13 (window is kRollingSlots epochs deep);
  // epoch 4 is still inside.
  obs::internal::SetRollingClockForTest(13 * obs::kRollingSlotNs);
  EXPECT_EQ(c->WindowCount(), 2u);
  EXPECT_EQ(c->value(), 7u);

  // Far future: the whole window is empty, the cumulative total survives.
  obs::internal::SetRollingClockForTest(40 * obs::kRollingSlotNs);
  EXPECT_EQ(c->WindowCount(), 0u);
  EXPECT_DOUBLE_EQ(c->WindowRatePerSec(), 0.0);
  EXPECT_EQ(c->value(), 7u);
}

TEST(Rolling, SlotReuseClearsExpiredEpochData) {
  FrozenClock clock(obs::kRollingSlotNs);  // epoch 1
  auto* c = obs::Registry::Instance().GetRollingCounter(
      "obs_test.rolling.reuse");
  c->Add(100);
  // Epoch 1 + kRollingSlots maps onto the same ring slot; the rotation CAS
  // must clear the stale 100 before counting the new 1.
  obs::internal::SetRollingClockForTest((1 + obs::kRollingSlots) *
                                        obs::kRollingSlotNs);
  c->Add(1);
  EXPECT_EQ(c->WindowCount(), 1u);
  EXPECT_EQ(c->value(), 101u);
}

TEST(Rolling, WindowP99RespondsToStepChangeWhileCumulativeLags) {
  FrozenClock clock(obs::kRollingSlotNs);
  auto* h = obs::Registry::Instance().GetRollingHistogram(
      "obs_test.rolling.step");
  // A long healthy history: 10000 fast observations...
  for (int i = 0; i < 10000; ++i) h->Observe(0.001);
  // ...then the latency regime steps up after the old window ages out.
  obs::internal::SetRollingClockForTest((2 + obs::kRollingSlots) *
                                        obs::kRollingSlotNs);
  for (int i = 0; i < 50; ++i) h->Observe(0.5);

  // The window view sees the regression immediately...
  EXPECT_EQ(h->WindowCount(), 50u);
  EXPECT_DOUBLE_EQ(h->WindowPercentile(0.99), 0.5);
  // ...while the cumulative p99 is still buried under the 10000 fast
  // observations (rank 0.99 * 10050 lands well inside the fast bucket).
  EXPECT_LT(h->Percentile(0.99), 0.01);
  EXPECT_EQ(h->count(), 10050u);
}

TEST(Rolling, WindowPercentileClampsToObservedExtrema) {
  FrozenClock clock(obs::kRollingSlotNs);
  auto* h = obs::Registry::Instance().GetRollingHistogram(
      "obs_test.rolling.clamp");
  // All observations identical: every percentile must collapse to exactly
  // that value (bucket interpolation clamped to observed min/max), on both
  // the window and the cumulative side.
  for (int i = 0; i < 100; ++i) h->Observe(3.0);
  EXPECT_DOUBLE_EQ(h->WindowPercentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h->WindowPercentile(0.99), 3.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.99), 3.0);
  EXPECT_DOUBLE_EQ(h->min(), 3.0);
  EXPECT_DOUBLE_EQ(h->max(), 3.0);
}

TEST(Rolling, EmptyWindowReportsZeroes) {
  FrozenClock clock(obs::kRollingSlotNs);
  auto* h = obs::Registry::Instance().GetRollingHistogram(
      "obs_test.rolling.empty");
  EXPECT_EQ(h->WindowCount(), 0u);
  EXPECT_DOUBLE_EQ(h->WindowPercentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
}

TEST(Rolling, EightThreadMergeOnReadIsExactUnderFrozenClock) {
  FrozenClock clock(obs::kRollingSlotNs);
  auto* h = obs::Registry::Instance().GetRollingHistogram(
      "obs_test.rolling.threads");
  auto* c = obs::Registry::Instance().GetRollingCounter(
      "obs_test.rolling.threads_count");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};

  // A reader thread merges the ring continuously while writers hammer it —
  // this is the TSan-visible part of the merge-on-read contract.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h->WindowCount();
      (void)h->WindowPercentile(0.99);
      (void)c->WindowRatePerSec();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(0.25);
        c->Add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Frozen clock => no rotation can race the writes, so the window merge is
  // exact, not just an estimate.
  EXPECT_EQ(h->count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->WindowCount(), uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(h->WindowPercentile(0.99), 0.25);
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(c->WindowCount(), uint64_t{kThreads} * kPerThread);
}

TEST(Rolling, SnapshotPublishesWindowKeysNextToCumulative) {
  FrozenClock clock(obs::kRollingSlotNs);
  auto& registry = obs::Registry::Instance();
  auto* h = registry.GetRollingHistogram("obs_test.rolling.snap");
  auto* c = registry.GetRollingCounter("obs_test.rolling.snap_count");
  h->Observe(1.0);
  c->Add(4);
  const obs::Snapshot snap = registry.TakeSnapshot();
  // The cumulative keys match what a plain Histogram/Counter would publish
  // (swapping instrument kinds under a name is invisible to consumers)...
  EXPECT_DOUBLE_EQ(SnapValue(snap, "obs_test.rolling.snap.count"), 1.0);
  EXPECT_DOUBLE_EQ(SnapValue(snap, "obs_test.rolling.snap.p99"), 1.0);
  EXPECT_DOUBLE_EQ(SnapValue(snap, "obs_test.rolling.snap_count"), 4.0);
  // ...and the window keys ride alongside.
  EXPECT_DOUBLE_EQ(SnapValue(snap, "obs_test.rolling.snap.window.count"),
                   1.0);
  EXPECT_DOUBLE_EQ(SnapValue(snap, "obs_test.rolling.snap.window.p99"), 1.0);
  EXPECT_DOUBLE_EQ(
      SnapValue(snap, "obs_test.rolling.snap_count.window.count"), 4.0);
}

// ---------------------------------------------------------------------------
// Request context propagation (obs/trace.h ContextScope).

TEST(Context, ScopePropagatesAndNestsPerThread) {
  EXPECT_EQ(obs::CurrentContext().trace_id, 0u);
  EXPECT_EQ(obs::CurrentContext().batch_id, 0u);
  {
    obs::ContextScope outer({7, 0});
    EXPECT_EQ(obs::CurrentContext().trace_id, 7u);
    {
      obs::ContextScope inner({7, 99});
      EXPECT_EQ(obs::CurrentContext().trace_id, 7u);
      EXPECT_EQ(obs::CurrentContext().batch_id, 99u);
      // The context is thread-local: a fresh thread starts clean.
      std::thread([] {
        EXPECT_EQ(obs::CurrentContext().trace_id, 0u);
        EXPECT_EQ(obs::CurrentContext().batch_id, 0u);
      }).join();
    }
    EXPECT_EQ(obs::CurrentContext().batch_id, 0u);
    EXPECT_EQ(obs::CurrentContext().trace_id, 7u);
  }
  EXPECT_EQ(obs::CurrentContext().trace_id, 0u);
}

TEST(Context, SpansInheritContextAndExportWithArgs) {
  obs::EnableTracing();
  obs::ClearTrace();
  {
    obs::ContextScope ctx({0xABCu, 5});
    TSFM_TRACE_SPAN("obs_test.ctx_span");
  }
  { TSFM_TRACE_SPAN("obs_test.bare_span"); }
  // Retroactive recording under an explicit context (the batcher's
  // queue-wait path).
  const int64_t now = obs::TraceNowNs();
  obs::RecordSpan("obs_test.retro_span", now - 1000, 1000, {0xABCu, 5});
  obs::DisableTracing();

  uint64_t ctx_trace = 1, ctx_batch = 1;
  uint64_t bare_trace = 1, retro_batch = 0;
  for (const obs::TraceEvent& e : obs::TraceSnapshot()) {
    const std::string name = e.name;
    if (name == "obs_test.ctx_span") {
      ctx_trace = e.trace_id;
      ctx_batch = e.batch_id;
    } else if (name == "obs_test.bare_span") {
      bare_trace = e.trace_id;
    } else if (name == "obs_test.retro_span") {
      retro_batch = e.batch_id;
    }
  }
  EXPECT_EQ(ctx_trace, 0xABCu);
  EXPECT_EQ(ctx_batch, 5u);
  EXPECT_EQ(bare_trace, 0u);
  EXPECT_EQ(retro_batch, 5u);

  // The chrome://tracing export carries the ids as span args (0xABC = 2748).
  const std::string path = "obs_test_ctx_trace.json";
  ASSERT_TRUE(obs::WriteTrace(path));
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"args\":{\"trace_id\":2748,\"batch_id\":5}"),
            std::string::npos);
  std::remove(path.c_str());
  obs::ClearTrace();
}

TEST(Context, NewTraceIdsAreUniqueAndNonzero) {
  const uint64_t a = obs::NewTraceId();
  const uint64_t b = obs::NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (Registry::RenderPrometheus).

TEST(Metrics, RenderPrometheusIsWellFormedAndSorted) {
  FrozenClock clock(obs::kRollingSlotNs);
  auto& registry = obs::Registry::Instance();
  registry.GetCounter("obs_test.prom.counter")->Add(3);
  registry.GetGauge("obs_test.prom.gauge")->Set(1.5);
  auto* h = registry.GetHistogram("obs_test.prom.hist");
  h->Observe(0.5);
  h->Observe(2.0);
  auto* labeled = registry.GetRollingHistogram(obs::LabeledName(
      "obs_test.prom.latency", {{"model", "toy"}, {"op", "classify"}}));
  labeled->Observe(0.01);

  const std::string text = registry.RenderPrometheus();
  // Counters get _total and a # TYPE line; dots mangle to underscores.
  EXPECT_NE(text.find("# TYPE tsfm_obs_test_prom_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("tsfm_obs_test_prom_counter_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("tsfm_obs_test_prom_gauge 1.5"), std::string::npos);
  // Histograms expose ascending buckets ending in +Inf == _count.
  EXPECT_NE(text.find("# TYPE tsfm_obs_test_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tsfm_obs_test_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tsfm_obs_test_prom_hist_count 2"), std::string::npos);
  // Labeled rolling histograms keep their labels on every series and add
  // window gauges.
  EXPECT_NE(
      text.find("tsfm_obs_test_prom_latency_window_p99"
                "{model=\"toy\",op=\"classify\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find("tsfm_obs_test_prom_latency_count"
                "{model=\"toy\",op=\"classify\"} 1"),
      std::string::npos);
  // Families are emitted in sorted order.
  EXPECT_LT(text.find("tsfm_obs_test_prom_counter"),
            text.find("tsfm_obs_test_prom_gauge"));
  EXPECT_LT(text.find("tsfm_obs_test_prom_gauge"),
            text.find("tsfm_obs_test_prom_hist"));
}

}  // namespace
}  // namespace tsfm
