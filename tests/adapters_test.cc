#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "core/adapter.h"
#include "core/lcomb_adapter.h"
#include "core/pca_adapter.h"
#include "core/static_adapters.h"
#include "data/uea_like.h"
#include "linalg/linalg.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using core::AdapterKind;
using core::AdapterOptions;

// Correlated multivariate data: D channels mixed from L latent signals.
Tensor CorrelatedData(int64_t n, int64_t t, int64_t d, int64_t latent,
                      uint64_t seed) {
  Rng rng(seed);
  Tensor mixing = Tensor::RandN({latent, d}, &rng);
  Tensor z = Tensor::RandN({n * t, latent}, &rng);
  Tensor x = MatMul(z, mixing);
  Tensor noise = Tensor::RandN({n * t, d}, &rng, 0.05f);
  return Add(x, noise).Reshape({n, t, d});
}

std::vector<int64_t> DummyLabels(int64_t n) {
  std::vector<int64_t> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) y[static_cast<size_t>(i)] = i % 2;
  return y;
}

// ------------------------------- Factory -----------------------------------

TEST(FactoryTest, CreatesEveryKind) {
  AdapterOptions options;
  for (AdapterKind kind :
       {AdapterKind::kNone, AdapterKind::kPca, AdapterKind::kSvd,
        AdapterKind::kRandProj, AdapterKind::kVar, AdapterKind::kLcomb,
        AdapterKind::kLcombTopK}) {
    auto adapter = core::CreateAdapter(kind, options);
    ASSERT_NE(adapter, nullptr) << core::AdapterKindName(kind);
    EXPECT_FALSE(adapter->fitted());
  }
  EXPECT_EQ(core::AllAdapterKinds().size(), 6u);
}

TEST(FactoryTest, KindNames) {
  EXPECT_STREQ(core::AdapterKindName(AdapterKind::kPca), "PCA");
  EXPECT_STREQ(core::AdapterKindName(AdapterKind::kLcombTopK), "lcomb_top_k");
}

TEST(AdapterTest, TransformBeforeFitFails) {
  AdapterOptions options;
  for (AdapterKind kind :
       {AdapterKind::kPca, AdapterKind::kSvd, AdapterKind::kRandProj,
        AdapterKind::kVar, AdapterKind::kNone}) {
    auto adapter = core::CreateAdapter(kind, options);
    EXPECT_FALSE(adapter->Transform(Tensor(Shape{2, 4, 8})).ok())
        << core::AdapterKindName(kind);
  }
}

// --------------------------------- PCA -------------------------------------

TEST(PcaTest, OutputShapeAndName) {
  AdapterOptions options;
  options.out_channels = 3;
  core::PcaAdapter pca(options);
  EXPECT_EQ(pca.name(), "PCA");
  Tensor x = CorrelatedData(6, 10, 8, 4, 1);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(6)).ok());
  auto out = pca.Transform(x);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{6, 10, 3}));
}

TEST(PcaTest, ComponentsOrthonormal) {
  AdapterOptions options;
  options.out_channels = 4;
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(8, 12, 10, 6, 2);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(8)).ok());
  const Tensor& w = pca.components();  // (10, 4)
  Tensor wtw = MatMul(TransposeLast2(w), w);
  EXPECT_LT(MaxAbsDiff(wtw, Tensor::Eye(4)), 1e-3f);
}

TEST(PcaTest, CapturesVarianceOfLowRankData) {
  // Data has intrinsic rank 3: 3 components must capture almost everything.
  AdapterOptions options;
  options.out_channels = 3;
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(10, 20, 12, 3, 3);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(10)).ok());
  EXPECT_GT(pca.explained_variance_ratio(), 0.95);
}

TEST(PcaTest, ProjectedVarianceDescending) {
  AdapterOptions options;
  options.out_channels = 4;
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(10, 16, 9, 6, 4);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(10)).ok());
  Tensor out = *pca.Transform(x);
  Tensor var = Variance(out.Reshape({-1, 4}), 0);
  for (int64_t j = 1; j < 4; ++j) {
    EXPECT_GE(var[j - 1], var[j] - 1e-4f);
  }
}

TEST(PcaTest, ScaledVariantNormalizesColumns) {
  AdapterOptions options;
  options.out_channels = 2;
  options.pca_scale = true;
  core::PcaAdapter pca(options);
  EXPECT_EQ(pca.name(), "ScaledPCA");
  // One channel has huge scale; scaled PCA should not let it dominate.
  Rng rng(5);
  Tensor x = CorrelatedData(8, 10, 6, 3, 5);
  for (int64_t i = 0; i < x.numel(); i += 6) x.mutable_data()[i] *= 1000.0f;
  ASSERT_TRUE(pca.Fit(x, DummyLabels(8)).ok());
  // First component must not be (almost) equal to e_0.
  EXPECT_LT(std::fabs(pca.components().at({0, 0})), 0.99f);
}

TEST(PcaTest, PatchVariantCoarsensTime) {
  AdapterOptions options;
  options.out_channels = 3;
  options.pca_patch_window = 4;
  core::PcaAdapter pca(options);
  EXPECT_EQ(pca.name(), "PatchPCA_4");
  Tensor x = CorrelatedData(5, 16, 6, 3, 6);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(5)).ok());
  auto out = pca.Transform(x);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{5, 4, 3}));  // T/pws = 16/4
}

TEST(PcaTest, PatchWindowLargerThanSeriesFails) {
  AdapterOptions options;
  options.pca_patch_window = 64;
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(4, 16, 6, 3, 7);
  EXPECT_FALSE(pca.Fit(x, DummyLabels(4)).ok());
}

TEST(PcaTest, RejectsBadOutChannels) {
  AdapterOptions options;
  options.out_channels = 20;  // > D
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(4, 8, 6, 3, 8);
  EXPECT_FALSE(pca.Fit(x, DummyLabels(4)).ok());
}

TEST(PcaTest, TransformRejectsChannelMismatch) {
  AdapterOptions options;
  options.out_channels = 2;
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(4, 8, 6, 3, 9);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(4)).ok());
  EXPECT_FALSE(pca.Transform(Tensor(Shape{4, 8, 7})).ok());
}

TEST(PcaTest, LinearityAcrossTimeSteps) {
  // Standard PCA applies the same W at every time step: transforming a
  // time-shuffled copy must equal time-shuffling the transform.
  AdapterOptions options;
  options.out_channels = 3;
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(3, 6, 8, 4, 10);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(3)).ok());
  Tensor y = *pca.Transform(x);
  // Reverse time.
  Tensor x_rev(Shape{3, 6, 8});
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t t = 0; t < 6; ++t) {
      for (int64_t d = 0; d < 8; ++d) {
        x_rev.at({b, t, d}) = x.at({b, 5 - t, d});
      }
    }
  }
  Tensor y_rev = *pca.Transform(x_rev);
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t t = 0; t < 6; ++t) {
      for (int64_t d = 0; d < 3; ++d) {
        EXPECT_NEAR(y_rev.at({b, t, d}), y.at({b, 5 - t, d}), 1e-4f);
      }
    }
  }
}

// --------------------------------- SVD -------------------------------------

TEST(SvdTest, ShapeAndSingularValuesDescending) {
  AdapterOptions options;
  options.out_channels = 3;
  core::SvdAdapter svd(options);
  Tensor x = CorrelatedData(6, 10, 8, 5, 11);
  ASSERT_TRUE(svd.Fit(x, DummyLabels(6)).ok());
  auto out = svd.Transform(x);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{6, 10, 3}));
  for (int64_t j = 1; j < 3; ++j) {
    EXPECT_GE(svd.singular_values()[j - 1], svd.singular_values()[j] - 1e-3f);
  }
}

TEST(SvdTest, DiffersFromPcaOnUncenteredData) {
  // With a large common offset, uncentered SVD's first direction tracks the
  // mean while PCA ignores it.
  AdapterOptions options;
  options.out_channels = 1;
  core::SvdAdapter svd(options);
  core::PcaAdapter pca(options);
  Tensor x = AddScalar(CorrelatedData(6, 10, 5, 3, 12), 50.0f);
  ASSERT_TRUE(svd.Fit(x, DummyLabels(6)).ok());
  ASSERT_TRUE(pca.Fit(x, DummyLabels(6)).ok());
  Tensor svd_out = *svd.Transform(x);
  Tensor pca_out = *pca.Transform(x);
  // SVD projection magnitude reflects the offset; PCA's does not.
  EXPECT_GT(std::fabs(MeanAll(svd_out)), 10.0f);
  EXPECT_LT(std::fabs(MeanAll(pca_out)), 5.0f);
}

// ------------------------------ Rand_Proj ----------------------------------

TEST(RandProjTest, ShapeAndDeterminismPerSeed) {
  AdapterOptions options;
  options.out_channels = 4;
  options.seed = 77;
  core::RandProjAdapter a(options), b(options);
  Tensor x = CorrelatedData(5, 8, 10, 4, 13);
  ASSERT_TRUE(a.Fit(x, DummyLabels(5)).ok());
  ASSERT_TRUE(b.Fit(x, DummyLabels(5)).ok());
  EXPECT_TRUE(AllClose(*a.Transform(x), *b.Transform(x)));
  AdapterOptions other = options;
  other.seed = 78;
  core::RandProjAdapter c(other);
  ASSERT_TRUE(c.Fit(x, DummyLabels(5)).ok());
  EXPECT_GT(MaxAbsDiff(*a.Transform(x), *c.Transform(x)), 1e-3f);
}

TEST(RandProjTest, ApproximatelyPreservesScale) {
  // With variance 1/D' entries, E||Wx||^2 = ||x||^2.
  AdapterOptions options;
  options.out_channels = 64;
  core::RandProjAdapter proj(options);
  Rng rng(14);
  Tensor x = Tensor::RandN({20, 4, 128}, &rng);
  ASSERT_TRUE(proj.Fit(x, DummyLabels(20)).ok());
  Tensor y = *proj.Transform(x);
  const float in_norm = Norm(x);
  const float out_norm = Norm(y);
  EXPECT_NEAR(out_norm / in_norm, 1.0f, 0.2f);
}

// --------------------------------- VAR -------------------------------------

TEST(VarTest, SelectsHighestVarianceChannels) {
  AdapterOptions options;
  options.out_channels = 2;
  core::VarAdapter var(options);
  Rng rng(15);
  Tensor x(Shape{10, 6, 4});
  for (int64_t i = 0; i < 10 * 6; ++i) {
    float* row = x.mutable_data() + i * 4;
    row[0] = static_cast<float>(rng.Normal(0.0, 0.1));  // low var
    row[1] = static_cast<float>(rng.Normal(0.0, 3.0));  // highest
    row[2] = static_cast<float>(rng.Normal(0.0, 1.0));  // second
    row[3] = static_cast<float>(rng.Normal(0.0, 0.3));
  }
  ASSERT_TRUE(var.Fit(x, DummyLabels(10)).ok());
  EXPECT_EQ(var.selected_channels()[0], 1);
  EXPECT_EQ(var.selected_channels()[1], 2);
  Tensor out = *var.Transform(x);
  EXPECT_EQ(out.shape(), (Shape{10, 6, 2}));
  // Output channel 0 is exactly input channel 1.
  EXPECT_EQ(out.at({3, 2, 0}), x.at({3, 2, 1}));
}

TEST(VarTest, TransformIsExactSubsetOfInput) {
  AdapterOptions options;
  options.out_channels = 3;
  core::VarAdapter var(options);
  Tensor x = CorrelatedData(4, 5, 8, 4, 16);
  ASSERT_TRUE(var.Fit(x, DummyLabels(4)).ok());
  Tensor out = *var.Transform(x);
  for (int64_t j = 0; j < 3; ++j) {
    const int64_t src = var.selected_channels()[static_cast<size_t>(j)];
    for (int64_t b = 0; b < 4; ++b) {
      for (int64_t t = 0; t < 5; ++t) {
        EXPECT_EQ(out.at({b, t, j}), x.at({b, t, src}));
      }
    }
  }
}

// ------------------------------ Identity -----------------------------------

TEST(IdentityTest, PassThrough) {
  core::IdentityAdapter id;
  Tensor x = CorrelatedData(3, 4, 5, 3, 17);
  ASSERT_TRUE(id.Fit(x, DummyLabels(3)).ok());
  EXPECT_EQ(id.output_channels(), 5);
  auto out = id.Transform(x);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(AllClose(*out, x));
  EXPECT_FALSE(id.Transform(Tensor(Shape{3, 4, 6})).ok());
}

// -------------------------------- lcomb ------------------------------------

TEST(LcombTest, InitAndShapes) {
  AdapterOptions options;
  options.out_channels = 3;
  core::LinearCombinerAdapter lcomb(options, /*use_top_k=*/false);
  EXPECT_EQ(lcomb.name(), "lcomb");
  EXPECT_TRUE(lcomb.IsLearnable());
  Tensor x = CorrelatedData(4, 6, 8, 4, 18);
  ASSERT_TRUE(lcomb.Fit(x, DummyLabels(4)).ok());
  EXPECT_EQ(lcomb.weight().shape(), (Shape{3, 8}));
  EXPECT_EQ(lcomb.TrainableParameters().size(), 1u);
  auto out = lcomb.Transform(x);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{4, 6, 3}));
}

TEST(LcombTest, GradientReachesWeight) {
  AdapterOptions options;
  options.out_channels = 2;
  core::LinearCombinerAdapter lcomb(options, false);
  Tensor x = CorrelatedData(3, 5, 6, 3, 19);
  ASSERT_TRUE(lcomb.Fit(x, DummyLabels(3)).ok());
  ag::Var out = lcomb.TransformVar(ag::Constant(x));
  ag::SumAll(ag::Square(out)).Backward();
  EXPECT_GT(Norm(lcomb.weight().grad()), 0.0f);
}

TEST(LcombTest, TransformMatchesManualMatMul) {
  AdapterOptions options;
  options.out_channels = 2;
  core::LinearCombinerAdapter lcomb(options, false);
  Tensor x = CorrelatedData(2, 3, 4, 2, 20);
  ASSERT_TRUE(lcomb.Fit(x, DummyLabels(2)).ok());
  const Tensor& w = lcomb.weight().value();  // (2, 4)
  Tensor expected =
      MatMul(x.Reshape({6, 4}), TransposeLast2(w)).Reshape({2, 3, 2});
  EXPECT_LT(MaxAbsDiff(*lcomb.Transform(x), expected), 1e-5f);
}

TEST(LcombTopKTest, MaskKeepsExactlyKPerRow) {
  AdapterOptions options;
  options.out_channels = 3;
  options.top_k = 4;
  core::LinearCombinerAdapter lcomb(options, /*use_top_k=*/true);
  EXPECT_EQ(lcomb.name(), "lcomb_top_k");
  Tensor x = CorrelatedData(3, 5, 10, 4, 21);
  ASSERT_TRUE(lcomb.Fit(x, DummyLabels(3)).ok());
  // Effective weight per output channel uses at most k input channels:
  // zeroing any non-top-k input channel must not change the output.
  Tensor base = *lcomb.Transform(x);
  // Find which channels matter for output row 0 by perturbing inputs.
  int used = 0;
  for (int64_t ch = 0; ch < 10; ++ch) {
    Tensor x2 = x.Clone();
    for (int64_t b = 0; b < 3; ++b) {
      for (int64_t t = 0; t < 5; ++t) x2.at({b, t, ch}) += 10.0f;
    }
    Tensor out2 = *lcomb.Transform(x2);
    // Does output channel 0 change?
    float diff = 0;
    for (int64_t b = 0; b < 3; ++b) {
      for (int64_t t = 0; t < 5; ++t) {
        diff = std::max(diff, std::fabs(out2.at({b, t, 0}) - base.at({b, t, 0})));
      }
    }
    if (diff > 1e-4f) ++used;
  }
  EXPECT_LE(used, 4);
  EXPECT_GT(used, 0);
}

TEST(LcombTopKTest, RowsAreRescaled) {
  // After the top-k rule, the effective |row| sums are ~1 (sum of kept
  // magnitudes divided by itself).
  AdapterOptions options;
  options.out_channels = 2;
  options.top_k = 3;
  core::LinearCombinerAdapter lcomb(options, true);
  Tensor x = CorrelatedData(2, 4, 8, 4, 22);
  ASSERT_TRUE(lcomb.Fit(x, DummyLabels(2)).ok());
  // Probe the effective weight: transform unit impulses.
  Tensor impulse = Tensor::Zeros({1, 1, 8});
  double row0_abs_sum = 0.0;
  for (int64_t ch = 0; ch < 8; ++ch) {
    impulse.Fill(0.0f);
    impulse.at({0, 0, ch}) = 1.0f;
    Tensor out = *lcomb.Transform(impulse);
    row0_abs_sum += std::fabs(out.at({0, 0, 0}));
  }
  EXPECT_NEAR(row0_abs_sum, 1.0, 0.05);
}

TEST(LcombTest, RejectsBadConfig) {
  AdapterOptions options;
  options.out_channels = 20;
  core::LinearCombinerAdapter lcomb(options, false);
  Tensor x = CorrelatedData(3, 4, 6, 3, 23);
  EXPECT_FALSE(lcomb.Fit(x, DummyLabels(3)).ok());
  AdapterOptions bad_k;
  bad_k.out_channels = 2;
  bad_k.top_k = 100;
  core::LinearCombinerAdapter topk(bad_k, true);
  EXPECT_FALSE(topk.Fit(x, DummyLabels(3)).ok());
}

// ---------------------------- Serialization --------------------------------

class AdapterSerializationSuite : public ::testing::TestWithParam<AdapterKind> {
};

TEST_P(AdapterSerializationSuite, SaveLoadRoundTripPreservesTransform) {
  AdapterOptions options;
  options.out_channels = 4;
  options.top_k = 3;
  auto adapter = core::CreateAdapter(GetParam(), options);
  Tensor x = CorrelatedData(5, 8, 9, 5, 90);
  ASSERT_TRUE(adapter->Fit(x, DummyLabels(5)).ok());
  const std::string path = ::testing::TempDir() + "/adapter_" +
                           core::AdapterKindName(GetParam()) + ".bin";
  ASSERT_TRUE(core::SaveAdapter(*adapter, options, path).ok());

  auto loaded = core::LoadAdapter(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->fitted());
  EXPECT_EQ((*loaded)->kind(), GetParam());
  EXPECT_EQ((*loaded)->name(), adapter->name());
  Tensor original = *adapter->Transform(x);
  Tensor reloaded = *(*loaded)->Transform(x);
  EXPECT_LT(MaxAbsDiff(original, reloaded), 1e-6f);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AdapterSerializationSuite,
                         ::testing::Values(AdapterKind::kNone,
                                           AdapterKind::kPca,
                                           AdapterKind::kSvd,
                                           AdapterKind::kRandProj,
                                           AdapterKind::kVar,
                                           AdapterKind::kLcomb,
                                           AdapterKind::kLcombTopK),
                         [](const auto& info) {
                           return core::AdapterKindName(info.param);
                         });

TEST(AdapterSerializationTest, SaveUnfittedFails) {
  AdapterOptions options;
  auto adapter = core::CreateAdapter(AdapterKind::kPca, options);
  EXPECT_FALSE(
      core::SaveAdapter(*adapter, options, ::testing::TempDir() + "/x.bin")
          .ok());
}

TEST(AdapterSerializationTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage_adapter.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not an adapter";
  }
  EXPECT_FALSE(core::LoadAdapter(path).ok());
  EXPECT_FALSE(core::LoadAdapter("/nonexistent/adapter.bin").ok());
  std::remove(path.c_str());
}

TEST(AdapterSerializationTest, PatchPcaRoundTripKeepsWindow) {
  AdapterOptions options;
  options.out_channels = 3;
  options.pca_patch_window = 4;
  core::PcaAdapter pca(options);
  Tensor x = CorrelatedData(5, 16, 6, 3, 91);
  ASSERT_TRUE(pca.Fit(x, DummyLabels(5)).ok());
  const std::string path = ::testing::TempDir() + "/patch_pca.bin";
  ASSERT_TRUE(core::SaveAdapter(pca, options, path).ok());
  auto loaded = core::LoadAdapter(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->name(), "PatchPCA_4");
  Tensor out = *(*loaded)->Transform(x);
  EXPECT_EQ(out.shape(), (Shape{5, 4, 3}));  // time coarsened by the window
  std::remove(path.c_str());
}

// ------------------- Property sweep over adapter kinds ---------------------

class StaticAdapterSuite : public ::testing::TestWithParam<AdapterKind> {};

TEST_P(StaticAdapterSuite, ShapeContractAndDeterminism) {
  AdapterOptions options;
  options.out_channels = 4;
  auto adapter = core::CreateAdapter(GetParam(), options);
  Tensor x = CorrelatedData(6, 12, 9, 5, 24);
  ASSERT_TRUE(adapter->Fit(x, DummyLabels(6)).ok());
  EXPECT_TRUE(adapter->fitted());
  EXPECT_EQ(adapter->output_channels(), 4);
  auto out1 = adapter->Transform(x);
  auto out2 = adapter->Transform(x);
  ASSERT_TRUE(out1.ok());
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out1->dim(0), 6);
  EXPECT_EQ(out1->dim(2), 4);
  EXPECT_TRUE(AllClose(*out1, *out2));  // deterministic
  // TransformVar default agrees with Transform.
  ag::Var v = adapter->TransformVar(ag::Constant(x));
  EXPECT_TRUE(AllClose(v.value(), *out1));
}

INSTANTIATE_TEST_SUITE_P(AllStaticKinds, StaticAdapterSuite,
                         ::testing::Values(AdapterKind::kPca, AdapterKind::kSvd,
                                           AdapterKind::kRandProj,
                                           AdapterKind::kVar),
                         [](const auto& info) {
                           return core::AdapterKindName(info.param);
                         });

class ReductionQualitySuite : public ::testing::TestWithParam<AdapterKind> {};

TEST_P(ReductionQualitySuite, PreservesLowRankSignalEnergy) {
  // Rank-3 data reduced to 5 dims: linear-projection adapters must keep a
  // non-trivial share of the signal (VAR keeps exact channels, trivially ok).
  AdapterOptions options;
  options.out_channels = 5;
  auto adapter = core::CreateAdapter(GetParam(), options);
  Tensor x = CorrelatedData(10, 8, 16, 3, 25);
  ASSERT_TRUE(adapter->Fit(x, DummyLabels(10)).ok());
  Tensor out = *adapter->Transform(x);
  EXPECT_GT(Norm(out), 0.05f * Norm(x));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ReductionQualitySuite,
                         ::testing::Values(AdapterKind::kPca, AdapterKind::kSvd,
                                           AdapterKind::kRandProj,
                                           AdapterKind::kVar),
                         [](const auto& info) {
                           return core::AdapterKindName(info.param);
                         });

}  // namespace
}  // namespace tsfm
