#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/optim.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

// Minimizes ||x - target||^2 with the given optimizer; returns final distance.
template <typename Opt, typename... Args>
float MinimizeQuadratic(int steps, float lr, Args... args) {
  Tensor target(Shape{3}, {1.0f, -2.0f, 0.5f});
  ag::Var x(Tensor::Zeros({3}), true);
  Opt opt({x}, lr, args...);
  for (int i = 0; i < steps; ++i) {
    ag::Var loss = ag::MseLoss(x, target);
    loss.Backward();
    opt.Step();
    opt.ZeroGrad();
  }
  return Norm(Sub(x.value(), target));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimizeQuadratic<optim::Sgd>(200, 0.3f), 1e-3f);
}

TEST(SgdTest, MomentumAccelerates) {
  const float plain = MinimizeQuadratic<optim::Sgd>(30, 0.05f, 0.0f);
  const float momentum = MinimizeQuadratic<optim::Sgd>(30, 0.05f, 0.9f);
  EXPECT_LT(momentum, plain);
}

TEST(SgdTest, WeightDecayShrinksSolution) {
  Tensor target(Shape{1}, {10.0f});
  ag::Var x(Tensor::Zeros({1}), true);
  optim::Sgd opt({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 500; ++i) {
    ag::MseLoss(x, target).Backward();
    opt.Step();
    opt.ZeroGrad();
  }
  // Equilibrium of 2(x - 10) + 0.5 x = 0 -> x = 8.
  EXPECT_NEAR(x.value()[0], 8.0f, 0.1f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimizeQuadratic<optim::Adam>(300, 0.05f), 1e-2f);
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimizeQuadratic<optim::AdamW>(300, 0.05f), 5e-2f);
}

TEST(AdamTest, HandlesSparseScaleDifferences) {
  // One coordinate has a 100x larger gradient scale; Adam should still move
  // both toward the optimum at comparable rates.
  ag::Var x(Tensor::Zeros({2}), true);
  Tensor scale(Shape{2}, {100.0f, 1.0f});
  Tensor target(Shape{2}, {1.0f, 1.0f});
  optim::Adam opt({x}, 0.05f);
  for (int i = 0; i < 200; ++i) {
    ag::Var diff = ag::Sub(ag::Mul(x, ag::Constant(scale)),
                           ag::Constant(Mul(target, scale)));
    ag::MeanAll(ag::Square(diff)).Backward();
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_NEAR(x.value()[0], 1.0f, 0.1f);
  EXPECT_NEAR(x.value()[1], 1.0f, 0.2f);
}

TEST(OptimizerTest, StepCountAdvances) {
  ag::Var x(Tensor::Zeros({1}), true);
  optim::Sgd opt({x}, 0.1f);
  EXPECT_EQ(opt.step_count(), 0);
  ag::MseLoss(x, Tensor::Ones({1})).Backward();
  opt.Step();
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(OptimizerDeathTest, RejectsNonGradParams) {
  ag::Var constant(Tensor::Zeros({1}), false);
  EXPECT_DEATH(optim::Sgd({constant}, 0.1f), "require grad");
}

TEST(ClipGradNormTest, ScalesLargeGradients) {
  ag::Var x(Tensor::Zeros({2}), true);
  Tensor big_target(Shape{2}, {1000.0f, 1000.0f});
  ag::MseLoss(x, big_target).Backward();
  const float before = Norm(x.grad());
  EXPECT_GT(before, 1.0f);
  const float reported = optim::ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(reported, before, before * 1e-5f);
  EXPECT_NEAR(Norm(x.grad()), 1.0f, 1e-4f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Var x(Tensor::Zeros({2}), true);
  Tensor target(Shape{2}, {0.01f, 0.01f});
  ag::MseLoss(x, target).Backward();
  Tensor before = x.grad().Clone();
  optim::ClipGradNorm({x}, 10.0f);
  EXPECT_TRUE(AllClose(x.grad(), before));
}

TEST(CosineScheduleTest, WarmupThenDecay) {
  // Linear warmup over first 10 steps.
  EXPECT_NEAR(optim::CosineSchedule(0, 100, 10), 0.1f, 1e-5f);
  EXPECT_NEAR(optim::CosineSchedule(9, 100, 10), 1.0f, 1e-5f);
  // Peak right after warmup, ~0 at the end.
  EXPECT_NEAR(optim::CosineSchedule(10, 100, 10), 1.0f, 1e-4f);
  EXPECT_NEAR(optim::CosineSchedule(100, 100, 10), 0.0f, 1e-4f);
  // Monotone decay after warmup.
  float prev = 2.0f;
  for (int64_t s = 10; s <= 100; s += 10) {
    const float v = optim::CosineSchedule(s, 100, 10);
    EXPECT_LE(v, prev + 1e-6f);
    prev = v;
  }
}

}  // namespace
}  // namespace tsfm
