// Tests for the benchmark grid driver (bench/grid.*): method composition,
// cell aggregation, and the cross-binary run cache.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "bench/grid.h"

namespace tsfm::bench {
namespace {

TEST(MethodSpecTest, PaperTable2Composition) {
  const auto methods = PaperTable2Methods(5);
  ASSERT_EQ(methods.size(), 7u);  // head-only + six adapters
  EXPECT_EQ(methods[0].label, "no_adapter");
  EXPECT_FALSE(methods[0].adapter.has_value());
  EXPECT_EQ(methods[0].strategy, finetune::Strategy::kHeadOnly);
  EXPECT_EQ(methods[1].label, "PCA");
  EXPECT_EQ(methods[6].label, "lcomb_top_k");
  for (size_t i = 1; i < methods.size(); ++i) {
    EXPECT_EQ(methods[i].options.out_channels, 5);
    EXPECT_EQ(methods[i].strategy, finetune::Strategy::kAdapterPlusHead);
  }
}

TEST(MethodSpecTest, PcaSensitivityComposition) {
  const auto methods = PcaSensitivityMethods(5);
  ASSERT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods[0].label, "PCA");
  EXPECT_EQ(methods[1].label, "ScaledPCA");
  EXPECT_TRUE(methods[1].options.pca_scale);
  EXPECT_EQ(methods[2].label, "PatchPCA_8");
  EXPECT_EQ(methods[2].options.pca_patch_window, 8);
  EXPECT_EQ(methods[3].label, "PatchPCA_16");
}

experiments::RunRecord MakeRecord(double acc, resources::Verdict verdict) {
  experiments::RunRecord record;
  record.estimate.verdict = verdict;
  record.estimate.total_seconds = 100.0;
  if (verdict == resources::Verdict::kOk) {
    finetune::FineTuneResult measured;
    measured.test_accuracy = acc;
    measured.total_seconds = 1.5;
    record.measured = measured;
  }
  return record;
}

TEST(CellResultTest, VerdictDominatesSummary) {
  CellResult cell;
  cell.seeds.push_back(MakeRecord(0.9, resources::Verdict::kOk));
  cell.seeds.push_back(MakeRecord(0.0, resources::Verdict::kTimeout));
  EXPECT_EQ(cell.Cell(), "TO");
  EXPECT_FALSE(cell.AllCompleted());
}

TEST(CellResultTest, MeanStdFormatting) {
  CellResult cell;
  cell.seeds.push_back(MakeRecord(0.8, resources::Verdict::kOk));
  cell.seeds.push_back(MakeRecord(0.9, resources::Verdict::kOk));
  EXPECT_EQ(cell.Cell(), "0.850+-0.071");
  EXPECT_TRUE(cell.AllCompleted());
  EXPECT_NEAR(cell.MeanAccuracy(), 0.85, 1e-9);
  EXPECT_NEAR(cell.MeanMeasuredSeconds(), 1.5, 1e-9);
  EXPECT_NEAR(cell.MeanSimulatedSeconds(), 100.0, 1e-9);
}

TEST(CellResultTest, EmptyCell) {
  CellResult cell;
  EXPECT_EQ(cell.Cell(), "-");
  EXPECT_FALSE(cell.AllCompleted());
  EXPECT_TRUE(std::isnan(cell.MeanAccuracy()));
}

TEST(GridCacheTest, SecondRunHitsCacheInsteadOfRetraining) {
  experiments::ExperimentConfig config;
  config.fast = true;
  config.num_seeds = 1;
  config.caps = data::GeneratorCaps{16, 12, 29, 10};
  config.checkpoint_dir = ::testing::TempDir() + "/grid_cache_test";
  std::filesystem::remove_all(config.checkpoint_dir);

  std::vector<MethodSpec> methods{AdapterMethod(core::AdapterKind::kVar, 3)};
  auto run_grid = [&]() {
    experiments::ExperimentRunner runner(config);
    auto datasets = runner.Datasets();
    std::vector<data::UeaDatasetSpec> one{*data::FindUeaSpec("Vowels")};
    return RunGrid(&runner, one, {models::ModelKind::kVit}, methods);
  };
  auto first = run_grid();
  const double acc =
      first.at({"JapaneseVowels", models::ModelKind::kVit, "VAR"})
          .MeanAccuracy();
  EXPECT_FALSE(std::isnan(acc));

  // Remove the model checkpoint: a cache miss would now retrain a *fresh*
  // model (different accuracy possible), a cache hit returns identical
  // results without touching the model at all.
  std::filesystem::remove(config.checkpoint_dir + "/ViT_fast.ckpt");
  auto second = run_grid();
  EXPECT_DOUBLE_EQ(
      second.at({"JapaneseVowels", models::ModelKind::kVit, "VAR"})
          .MeanAccuracy(),
      acc);
  // And the checkpoint was NOT recreated, proving no training happened.
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_dir + "/ViT_fast.ckpt"));
  std::filesystem::remove_all(config.checkpoint_dir);
}

TEST(GridCacheTest, DistinctStrategiesGetDistinctCacheKeys) {
  experiments::ExperimentConfig config;
  config.checkpoint_dir = "unused";
  MethodSpec adapter_head = AdapterMethod(core::AdapterKind::kLcomb, 5);
  MethodSpec full_ft = AdapterMethod(core::AdapterKind::kLcomb, 5);
  full_ft.strategy = finetune::Strategy::kFullFineTune;
  // The public surface that guarantees this is the key function used by the
  // cache; equal labels with different strategies must not collide.
  // (RunCache::Key is internal; we assert via the observable label+strategy
  // pair that feeds it.)
  EXPECT_EQ(adapter_head.label, full_ft.label);
  EXPECT_NE(static_cast<int>(adapter_head.strategy),
            static_cast<int>(full_ft.strategy));
}

TEST(BenchOutputDirTest, EnvOverride) {
  setenv("TSFM_BENCH_OUT", "/tmp/somewhere", 1);
  EXPECT_EQ(BenchOutputDir(), "/tmp/somewhere");
  unsetenv("TSFM_BENCH_OUT");
  EXPECT_EQ(BenchOutputDir(), ".");
}

}  // namespace
}  // namespace tsfm::bench
