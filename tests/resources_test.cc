#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/moment.h"
#include "resources/cost_model.h"
#include "resources/measured.h"
#include "tensor/tensor.h"

namespace tsfm {
namespace {

using resources::EstimateRun;
using resources::GpuSpec;
using resources::MomentPaperSpec;
using resources::PaperModelSpec;
using resources::TrainRegime;
using resources::V100Spec;
using resources::Verdict;
using resources::VitPaperSpec;
using resources::Workload;

Workload WorkloadFor(const std::string& dataset, int64_t channels = -1) {
  auto spec = data::FindUeaSpec(dataset);
  EXPECT_TRUE(spec.ok());
  return Workload{spec->train_size, spec->test_size,
                  channels > 0 ? channels : spec->channels};
}

TEST(PaperSpecTest, ModelSizesMatchPaper) {
  EXPECT_EQ(MomentPaperSpec().params, 341'000'000);
  EXPECT_EQ(VitPaperSpec().params, 8'000'000);
  EXPECT_EQ(MomentPaperSpec().NumPatches(), 64);   // 512 / 8
  EXPECT_EQ(VitPaperSpec().NumPatches(), 127);     // (512-8)/4 + 1
}

TEST(GpuSpecTest, V100Budget) {
  GpuSpec gpu = V100Spec();
  EXPECT_DOUBLE_EQ(gpu.memory_bytes, 32.0 * (1ull << 30));
  EXPECT_DOUBLE_EQ(gpu.time_limit_seconds, 7200.0);
}

// ------------- The paper's Table 1: full fine-tuning, no adapter -----------

struct Table1Row {
  const char* dataset;
  Verdict moment;
  Verdict vit;
};

// Verdicts transcribed from Table 1 of the paper.
const Table1Row kTable1[] = {
    {"DuckDuckGeese", Verdict::kCudaOutOfMemory, Verdict::kCudaOutOfMemory},
    {"FaceDetection", Verdict::kCudaOutOfMemory, Verdict::kCudaOutOfMemory},
    {"FingerMovements", Verdict::kCudaOutOfMemory, Verdict::kCudaOutOfMemory},
    {"HandMovementDirection", Verdict::kOk, Verdict::kOk},
    {"Heartbeat", Verdict::kCudaOutOfMemory, Verdict::kCudaOutOfMemory},
    {"InsectWingbeat", Verdict::kCudaOutOfMemory, Verdict::kCudaOutOfMemory},
    {"JapaneseVowels", Verdict::kOk, Verdict::kOk},
    {"MotorImagery", Verdict::kCudaOutOfMemory, Verdict::kCudaOutOfMemory},
    {"NATOPS", Verdict::kTimeout, Verdict::kOk},
    {"PEMS-SF", Verdict::kCudaOutOfMemory, Verdict::kCudaOutOfMemory},
    {"PhonemeSpectra", Verdict::kTimeout, Verdict::kOk},
    {"SpokenArabicDigits", Verdict::kTimeout, Verdict::kOk},
};

TEST(CostModelTable1Test, MomentFullFineTuneVerdictsMatchPaper) {
  const PaperModelSpec model = MomentPaperSpec();
  const GpuSpec gpu = V100Spec();
  for (const auto& row : kTable1) {
    auto est = EstimateRun(model, gpu, WorkloadFor(row.dataset),
                           TrainRegime::kFullFineTune);
    EXPECT_EQ(est.verdict, row.moment)
        << row.dataset << ": got " << resources::VerdictString(est.verdict)
        << " want " << resources::VerdictString(row.moment)
        << " (peak GB=" << est.peak_memory_bytes / (1ull << 30)
        << ", seconds=" << est.total_seconds << ")";
  }
}

TEST(CostModelTable1Test, VitFullFineTuneVerdictsMatchPaper) {
  const PaperModelSpec model = VitPaperSpec();
  const GpuSpec gpu = V100Spec();
  for (const auto& row : kTable1) {
    auto est = EstimateRun(model, gpu, WorkloadFor(row.dataset),
                           TrainRegime::kFullFineTune);
    EXPECT_EQ(est.verdict, row.vit)
        << row.dataset << ": got " << resources::VerdictString(est.verdict)
        << " want " << resources::VerdictString(row.vit)
        << " (peak GB=" << est.peak_memory_bytes / (1ull << 30)
        << ", seconds=" << est.total_seconds << ")";
  }
}

// ---------- Section 4 / Appendix C.5: fit-on-GPU counts with lcomb ---------

TEST(CostModelTest, LcombAdapterPlusHeadFitsTwelveOfTwelveForVit) {
  const GpuSpec gpu = V100Spec();
  int fits = 0;
  for (const auto& spec : data::UeaSpecs()) {
    Workload w{spec.train_size, spec.test_size, /*channels=*/5};
    auto est = EstimateRun(VitPaperSpec(), gpu, w,
                           TrainRegime::kAdapterPlusHeadLearnable);
    if (est.verdict == Verdict::kOk) ++fits;
  }
  EXPECT_EQ(fits, 12);  // paper: "12 out of 12 datasets for ViT"
}

TEST(CostModelTest, LcombAdapterPlusHeadFitsNineOfTwelveForMoment) {
  const GpuSpec gpu = V100Spec();
  int fits = 0;
  std::vector<std::string> failing;
  for (const auto& spec : data::UeaSpecs()) {
    Workload w{spec.train_size, spec.test_size, /*channels=*/5};
    auto est = EstimateRun(MomentPaperSpec(), gpu, w,
                           TrainRegime::kAdapterPlusHeadLearnable);
    if (est.verdict == Verdict::kOk) {
      ++fits;
    } else {
      failing.push_back(spec.name);
    }
  }
  EXPECT_EQ(fits, 9);  // paper: "9 out of 12 datasets for MOMENT"
  // The three largest-N datasets are the ones that time out.
  ASSERT_EQ(failing.size(), 3u);
  EXPECT_EQ(failing[0], "FaceDetection");
  EXPECT_EQ(failing[1], "PhonemeSpectra");
  EXPECT_EQ(failing[2], "SpokenArabicDigits");
}

TEST(CostModelTest, FullFineTuneBehindAdapterFitsStrictlyMoreDatasets) {
  // Figure 6 / C.5 regime: full fine-tuning *behind* a D'=5 adapter. ViT
  // fits all 12; MOMENT fits strictly more than the 2 it manages without an
  // adapter (full FT costs more epochs than adapter+head, so its count lies
  // between the no-adapter count and the adapter+head count of 9).
  const GpuSpec gpu = V100Spec();
  int vit_fits = 0, moment_fits = 0, moment_no_adapter = 0;
  for (const auto& spec : data::UeaSpecs()) {
    Workload reduced{spec.train_size, spec.test_size, 5};
    Workload full{spec.train_size, spec.test_size, spec.channels};
    if (EstimateRun(VitPaperSpec(), gpu, reduced, TrainRegime::kFullFineTune)
            .verdict == Verdict::kOk) {
      ++vit_fits;
    }
    if (EstimateRun(MomentPaperSpec(), gpu, reduced,
                    TrainRegime::kFullFineTune)
            .verdict == Verdict::kOk) {
      ++moment_fits;
    }
    if (EstimateRun(MomentPaperSpec(), gpu, full, TrainRegime::kFullFineTune)
            .verdict == Verdict::kOk) {
      ++moment_no_adapter;
    }
  }
  EXPECT_EQ(vit_fits, 12);
  EXPECT_EQ(moment_no_adapter, 2);  // Table 1: only Hand and Vowels
  EXPECT_GT(moment_fits, moment_no_adapter);
  EXPECT_LE(moment_fits, 9);
}

// ------------------------- Structural properties ---------------------------

TEST(CostModelTest, EmbedOnceNeverComsOnUeaDatasets) {
  // Streaming inference with batch 1 fits every dataset in 32 GB for both
  // models (Table 2's head-only column has entries for every dataset).
  const GpuSpec gpu = V100Spec();
  for (const auto& spec : data::UeaSpecs()) {
    for (const PaperModelSpec& model : {MomentPaperSpec(), VitPaperSpec()}) {
      Workload w{spec.train_size, spec.test_size, spec.channels};
      auto est =
          EstimateRun(model, gpu, w, TrainRegime::kEmbedOnceHeadOnly);
      EXPECT_NE(est.verdict, Verdict::kCudaOutOfMemory)
          << model.name << " on " << spec.name;
    }
  }
}

TEST(CostModelTest, MemoryMonotoneInChannels) {
  const GpuSpec gpu = V100Spec();
  const PaperModelSpec model = MomentPaperSpec();
  double prev = 0.0;
  for (int64_t d : {1, 5, 20, 100, 500}) {
    Workload w{300, 100, d};
    auto est = EstimateRun(model, gpu, w, TrainRegime::kFullFineTune);
    EXPECT_GT(est.peak_memory_bytes, prev);
    prev = est.peak_memory_bytes;
  }
}

TEST(CostModelTest, TimeMonotoneInTrainSize) {
  const GpuSpec gpu = V100Spec();
  const PaperModelSpec model = VitPaperSpec();
  double prev = 0.0;
  for (int64_t n : {100, 1000, 5000}) {
    Workload w{n, 100, 5};
    auto est = EstimateRun(model, gpu, w, TrainRegime::kFullFineTune);
    EXPECT_GT(est.total_seconds, prev);
    prev = est.total_seconds;
  }
}

TEST(CostModelTest, AdapterReducesSimulatedTimeTenfoldForMoment) {
  // Figure 1's headline: static adapters (embed-once) are ~10x faster than
  // the no-adapter head-only baseline for MOMENT on average.
  const GpuSpec gpu = V100Spec();
  const PaperModelSpec model = MomentPaperSpec();
  double with_adapter = 0.0, without = 0.0;
  for (const auto& spec : data::UeaSpecs()) {
    Workload reduced{spec.train_size, spec.test_size, 5};
    Workload full{spec.train_size, spec.test_size, spec.channels};
    with_adapter +=
        EstimateRun(model, gpu, reduced, TrainRegime::kEmbedOnceHeadOnly)
            .total_seconds;
    without += EstimateRun(model, gpu, full, TrainRegime::kEmbedOnceHeadOnly)
                   .total_seconds;
  }
  EXPECT_GT(without / with_adapter, 5.0);
}

TEST(CostModelTest, FullFineTuneCostsMoreMemoryThanHeadOnly) {
  const GpuSpec gpu = V100Spec();
  Workload w{300, 100, 20};
  for (const PaperModelSpec& model : {MomentPaperSpec(), VitPaperSpec()}) {
    auto full = EstimateRun(model, gpu, w, TrainRegime::kFullFineTune);
    auto head = EstimateRun(model, gpu, w, TrainRegime::kEmbedOnceHeadOnly);
    EXPECT_GT(full.peak_memory_bytes, head.peak_memory_bytes);
    EXPECT_GT(full.optimizer_bytes, 0.0);
    EXPECT_EQ(head.optimizer_bytes, 0.0);
  }
}

TEST(CostModelTest, ComCheckedBeforeTimeout) {
  // A run that can't allocate reports COM even if it would also be slow.
  const GpuSpec gpu = V100Spec();
  Workload w{100000, 100, 2000};
  auto est =
      EstimateRun(MomentPaperSpec(), gpu, w, TrainRegime::kFullFineTune);
  EXPECT_EQ(est.verdict, Verdict::kCudaOutOfMemory);
}

// ----------------- Analytic estimate vs measured allocator -----------------

TEST(MeasuredMemoryTest, AnalyticEstimateMatchesMeasuredEmbedPeak) {
  // One Table-2 configuration run for real: a D' = 5 adapter output feeding
  // the MOMENT-style encoder under the embed-once (head-only) regime. The
  // analytic model predicts transient memory as activation + attention bytes;
  // the BufferPool measures what the run actually held above the resident
  // weights (the baseline). The two use independent accounting — a closed-form
  // token formula vs bucket-capacity telemetry of every live tensor — so we
  // only require agreement within a factor of 4 in either direction: the
  // estimate prices one resident encoder layer, while the real run also holds
  // op scratch, per-op output tensors awaiting their consumer, and
  // power-of-two bucket rounding.
  models::FoundationModelConfig config = models::MomentSmallConfig();
  Rng rng(3);
  models::MomentModel model(config, &rng);

  const int64_t batch = 16;
  const int64_t length = 64;
  const int64_t channels = 5;  // D' fixed to 5 in Table 2
  Tensor x = Tensor::RandN(Shape{batch, length, channels}, &rng);

  const resources::MeasuredMemory measured = resources::MeasurePeak([&] {
    Tensor emb = finetune::EmbedDataset(model, x, batch, /*seed=*/0);
    ASSERT_EQ(emb.dim(0), batch);
  });
  ASSERT_GT(measured.peak_bytes, 0);
  ASSERT_GT(measured.acquires, 0);
  // The encoder weights were allocated before the measurement began.
  EXPECT_GT(measured.baseline_bytes, 0);

  // The same cost model that produces the paper-scale verdicts, evaluated at
  // the scaled-down CPU model's true dimensions.
  PaperModelSpec spec;
  spec.name = "MOMENT-small";
  spec.params = model.NumParameters();
  spec.d_model = config.d_model;
  spec.num_layers = config.num_layers;
  spec.num_heads = config.num_heads;
  spec.d_hidden = config.d_hidden;
  spec.padded_length = length;
  spec.patch_len = config.patch_len;
  spec.patch_stride = config.patch_stride;
  spec.train_batch = batch;
  spec.infer_batch = batch;
  spec.act_floats_per_token = MomentPaperSpec().act_floats_per_token;
  spec.full_ft_epochs = 1;
  spec.adapter_ft_epochs = 1;

  const Workload workload{batch, batch, channels};
  const auto est = EstimateRun(spec, V100Spec(), workload,
                               TrainRegime::kEmbedOnceHeadOnly);
  const double analytic = est.activation_bytes + est.attention_bytes;
  ASSERT_GT(analytic, 0.0);

  const double measured_bytes = static_cast<double>(measured.peak_bytes);
  EXPECT_GT(measured_bytes, analytic / 4.0)
      << "measured peak " << measured.peak_bytes << " B vs analytic "
      << analytic << " B";
  EXPECT_LT(measured_bytes, analytic * 4.0)
      << "measured peak " << measured.peak_bytes << " B vs analytic "
      << analytic << " B";
}

TEST(VerdictStringTest, Names) {
  EXPECT_STREQ(resources::VerdictString(Verdict::kOk), "OK");
  EXPECT_STREQ(resources::VerdictString(Verdict::kCudaOutOfMemory), "COM");
  EXPECT_STREQ(resources::VerdictString(Verdict::kTimeout), "TO");
  EXPECT_STREQ(resources::TrainRegimeName(TrainRegime::kFullFineTune),
               "full_fine_tune");
}

}  // namespace
}  // namespace tsfm
