#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace tsfm {
namespace {

using ::tsfm::testing::ExpectGradientsMatch;

TEST(VarTest, LeafBasics) {
  ag::Var v(Tensor(Shape{2}, {1, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.value()[1], 2.0f);
  EXPECT_EQ(v.grad()[0], 0.0f);  // zeros before backward
}

TEST(VarTest, SimpleBackward) {
  ag::Var x(Tensor(Shape{3}, {1, 2, 3}), true);
  ag::Var loss = ag::SumAll(ag::Square(x));  // sum(x^2), d/dx = 2x
  loss.Backward();
  EXPECT_NEAR(loss.value()[0], 14.0f, 1e-5f);
  EXPECT_NEAR(x.grad()[0], 2.0f, 1e-5f);
  EXPECT_NEAR(x.grad()[2], 6.0f, 1e-5f);
}

TEST(VarTest, GradAccumulatesAcrossBackwards) {
  ag::Var x(Tensor(Shape{1}, {3}), true);
  ag::SumAll(ag::Square(x)).Backward();
  ag::SumAll(ag::Square(x)).Backward();
  EXPECT_NEAR(x.grad()[0], 12.0f, 1e-5f);  // 6 + 6
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(VarTest, DiamondDependencyGradient) {
  // y = x*x + x*x uses x through two paths.
  ag::Var x(Tensor(Shape{1}, {5}), true);
  ag::Var sq = ag::Square(x);
  ag::Var y = ag::SumAll(ag::Add(sq, sq));
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 20.0f, 1e-4f);  // 2 * 2x
}

TEST(VarTest, DetachBlocksGradient) {
  ag::Var x(Tensor(Shape{1}, {2}), true);
  ag::Var d = ag::Square(x).Detach();
  ag::Var y = ag::SumAll(ag::Mul(ag::Square(x), d));  // treat d as constant 4
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 16.0f, 1e-4f);  // 4 * 2x
}

TEST(VarTest, NoGradGuardDisablesTape) {
  ag::Var x(Tensor(Shape{1}, {2}), true);
  ag::NoGradGuard guard;
  ag::Var y = ag::Square(x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(VarDeathTest, BackwardNeedsScalar) {
  ag::Var x(Tensor(Shape{2}, {1, 2}), true);
  EXPECT_DEATH(ag::Square(x).Backward(), "scalar");
}

// ----------------------------- Gradchecks ---------------------------------

Tensor SmallInput(uint64_t seed, Shape shape = {2, 3}) {
  Rng rng(seed);
  return Tensor::RandN(std::move(shape), &rng, 0.8f);
}

TEST(GradcheckTest, AddBroadcast) {
  Rng rng(1);
  Tensor b = Tensor::RandN({3}, &rng);
  ExpectGradientsMatch(
      [&](const ag::Var& x) {
        return ag::SumAll(ag::Mul(ag::Add(x, ag::Constant(b)),
                                  ag::Add(x, ag::Constant(b))));
      },
      SmallInput(100));
}

TEST(GradcheckTest, BroadcastGradReachesSmallOperand) {
  // Gradient w.r.t. the *broadcast* operand (the bias) must sum over rows.
  Tensor a = SmallInput(101, {4, 3});
  ExpectGradientsMatch(
      [&](const ag::Var& bias) {
        return ag::SumAll(ag::Square(ag::Add(ag::Constant(a), bias)));
      },
      SmallInput(102, {3}));
}

TEST(GradcheckTest, SubMulDiv) {
  Tensor other = AddScalar(Abs(SmallInput(103)), 0.5f);
  ExpectGradientsMatch(
      [&](const ag::Var& x) {
        ag::Var c = ag::Constant(other);
        return ag::SumAll(ag::Div(ag::Mul(ag::Sub(x, c), x), c));
      },
      SmallInput(104));
}

TEST(GradcheckTest, DivByVariable) {
  Tensor numer = SmallInput(105);
  ExpectGradientsMatch(
      [&](const ag::Var& x) {
        // x bounded away from 0: add 3.
        return ag::SumAll(ag::Div(ag::Constant(numer), ag::AddScalar(x, 3.0f)));
      },
      Abs(SmallInput(106)));
}

TEST(GradcheckTest, UnaryChain) {
  ExpectGradientsMatch(
      [](const ag::Var& x) {
        return ag::MeanAll(ag::Exp(ag::Neg(ag::Square(x))));
      },
      SmallInput(107));
}

TEST(GradcheckTest, LogSqrt) {
  ExpectGradientsMatch(
      [](const ag::Var& x) {
        ag::Var pos = ag::AddScalar(ag::Square(x), 1.0f);
        return ag::SumAll(ag::Log(ag::Sqrt(pos)));
      },
      SmallInput(108));
}

TEST(GradcheckTest, TanhSigmoid) {
  ExpectGradientsMatch(
      [](const ag::Var& x) {
        return ag::SumAll(ag::Mul(ag::Tanh(x), ag::Sigmoid(x)));
      },
      SmallInput(109));
}

TEST(GradcheckTest, Gelu) {
  ExpectGradientsMatch(
      [](const ag::Var& x) { return ag::SumAll(ag::Gelu(x)); },
      SmallInput(110));
}

TEST(GradcheckTest, ReluAwayFromKink) {
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor x = SmallInput(111);
  for (int64_t i = 0; i < x.numel(); ++i) {
    float& v = x.mutable_data()[i];
    if (std::fabs(v) < 0.2f) v = 0.3f;
  }
  ExpectGradientsMatch(
      [](const ag::Var& x) { return ag::SumAll(ag::Relu(x)); }, x);
}

TEST(GradcheckTest, MatMulLeft) {
  Tensor w = SmallInput(112, {3, 4});
  ExpectGradientsMatch(
      [&](const ag::Var& x) {
        return ag::SumAll(ag::Square(ag::MatMul(x, ag::Constant(w))));
      },
      SmallInput(113, {2, 3}));
}

TEST(GradcheckTest, MatMulRight) {
  Tensor a = SmallInput(114, {2, 3});
  ExpectGradientsMatch(
      [&](const ag::Var& w) {
        return ag::SumAll(ag::Square(ag::MatMul(ag::Constant(a), w)));
      },
      SmallInput(115, {3, 4}));
}

TEST(GradcheckTest, BatchedMatMulWithBroadcast) {
  Tensor a = SmallInput(116, {2, 2, 3});  // batch of 2
  ExpectGradientsMatch(
      [&](const ag::Var& w) {  // w (3, 2) broadcast over batch
        return ag::SumAll(ag::Square(ag::MatMul(ag::Constant(a), w)));
      },
      SmallInput(117, {3, 2}));
}

TEST(GradcheckTest, TransposeAndPermute) {
  ExpectGradientsMatch(
      [](const ag::Var& x) {
        ag::Var t = ag::TransposeLast2(x);
        return ag::SumAll(ag::Square(ag::MatMul(x, t)));
      },
      SmallInput(118, {3, 3}));
  ExpectGradientsMatch(
      [](const ag::Var& x) {
        return ag::SumAll(ag::Square(ag::Permute(x, {2, 0, 1})));
      },
      SmallInput(119, {2, 3, 2}));
}

TEST(GradcheckTest, ReshapeSliceConcat) {
  ExpectGradientsMatch(
      [](const ag::Var& x) {
        ag::Var r = ag::Reshape(x, {3, 2});
        ag::Var top = ag::SliceOp(r, 0, 0, 2);
        ag::Var bottom = ag::SliceOp(r, 0, 1, 3);
        return ag::SumAll(ag::Square(ag::ConcatOp({top, bottom}, 1)));
      },
      SmallInput(120));
}

TEST(GradcheckTest, SumMeanAxes) {
  ExpectGradientsMatch(
      [](const ag::Var& x) {
        ag::Var s = ag::SumAxis(x, 0, /*keepdim=*/false);
        ag::Var m = ag::MeanAxis(x, 1, /*keepdim=*/true);
        return ag::Add(ag::SumAll(ag::Square(s)), ag::SumAll(ag::Square(m)));
      },
      SmallInput(121));
}

TEST(GradcheckTest, Softmax) {
  Rng rng(2);
  Tensor target = Tensor::RandN({2, 4}, &rng);
  ExpectGradientsMatch(
      [&](const ag::Var& x) {
        ag::Var p = ag::Softmax(x);
        return ag::SumAll(ag::Mul(p, ag::Constant(target)));
      },
      SmallInput(122, {2, 4}));
}

TEST(GradcheckTest, LogSoftmax) {
  Rng rng(3);
  Tensor target = Tensor::RandN({2, 4}, &rng);
  ExpectGradientsMatch(
      [&](const ag::Var& x) {
        return ag::SumAll(ag::Mul(ag::LogSoftmax(x), ag::Constant(target)));
      },
      SmallInput(123, {2, 4}));
}

TEST(GradcheckTest, LayerNorm) {
  Rng rng(4);
  Tensor gamma = Tensor::RandUniform({4}, &rng, 0.5f, 1.5f);
  Tensor beta = Tensor::RandN({4}, &rng, 0.1f);
  ExpectGradientsMatch(
      [&](const ag::Var& x) {
        return ag::SumAll(ag::Square(ag::LayerNorm(
            x, ag::Constant(gamma), ag::Constant(beta))));
      },
      SmallInput(124, {3, 4}), /*epsilon=*/5e-3f, /*rtol=*/8e-2f,
      /*atol=*/8e-3f);
}

TEST(GradcheckTest, LayerNormGammaBeta) {
  Tensor x = SmallInput(125, {3, 4});
  Tensor beta = Tensor::Zeros({4});
  ExpectGradientsMatch(
      [&](const ag::Var& gamma) {
        return ag::SumAll(ag::Square(
            ag::LayerNorm(ag::Constant(x), gamma, ag::Constant(beta))));
      },
      Tensor::Ones({4}));
}

TEST(GradcheckTest, CrossEntropy) {
  std::vector<int64_t> labels{1, 0, 2};
  ExpectGradientsMatch(
      [&](const ag::Var& logits) { return ag::CrossEntropy(logits, labels); },
      SmallInput(126, {3, 3}));
}

TEST(GradcheckTest, MseLoss) {
  Rng rng(5);
  Tensor target = Tensor::RandN({2, 3}, &rng);
  ExpectGradientsMatch(
      [&](const ag::Var& pred) { return ag::MseLoss(pred, target); },
      SmallInput(127));
}

TEST(GradcheckTest, MaskedMseLoss) {
  Rng rng(6);
  Tensor target = Tensor::RandN({2, 4}, &rng);
  Tensor mask(Shape{2, 4}, {1, 0, 1, 0, 0, 1, 1, 0});
  ExpectGradientsMatch(
      [&](const ag::Var& pred) {
        return ag::MaskedMseLoss(pred, target, mask);
      },
      SmallInput(128, {2, 4}));
}

TEST(GradcheckTest, L2NormalizeAndInfoNce) {
  Tensor pos = SmallInput(129, {3, 4});
  ExpectGradientsMatch(
      [&](const ag::Var& anchors) {
        return ag::InfoNceLoss(anchors, ag::Constant(pos), 0.5f);
      },
      SmallInput(130, {3, 4}), /*epsilon=*/5e-3f, /*rtol=*/8e-2f,
      /*atol=*/8e-3f);
}

// ------------------------- Behavioural checks ------------------------------

TEST(LossTest, CrossEntropyOfUniformLogitsIsLogC) {
  ag::Var logits(Tensor::Zeros({4, 5}), true);
  ag::Var loss = ag::CrossEntropy(logits, {0, 1, 2, 3});
  EXPECT_NEAR(loss.value()[0], std::log(5.0f), 1e-5f);
}

TEST(LossTest, PerfectPredictionLowLoss) {
  Tensor logits(Shape{2, 2}, {100, -100, -100, 100});
  ag::Var loss = ag::CrossEntropy(ag::Var(logits, true), {0, 1});
  EXPECT_LT(loss.value()[0], 1e-4f);
}

TEST(LossTest, MaskedMseIgnoresUnmasked) {
  Tensor target = Tensor::Zeros({1, 4});
  Tensor mask(Shape{1, 4}, {1, 0, 0, 0});
  // Prediction wrong everywhere except position 0.
  Tensor pred(Shape{1, 4}, {0, 100, 100, 100});
  ag::Var loss = ag::MaskedMseLoss(ag::Var(pred, true), target, mask);
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-6f);
}

TEST(LossTest, InfoNcePrefersAlignedPairs) {
  Rng rng(7);
  Tensor e = Tensor::RandN({6, 8}, &rng);
  // Perfectly aligned pairs -> lower loss than mismatched pairs.
  ag::Var aligned = ag::InfoNceLoss(ag::Var(e, true), ag::Constant(e), 0.2f);
  Tensor shuffled = TakeRows(e, {1, 2, 3, 4, 5, 0});
  ag::Var mismatched =
      ag::InfoNceLoss(ag::Var(e, true), ag::Constant(shuffled), 0.2f);
  EXPECT_LT(aligned.value()[0], mismatched.value()[0]);
}

TEST(DropoutTest, IdentityWhenEval) {
  Rng rng(8);
  Tensor x = Tensor::RandN({4, 4}, &rng);
  ag::Var out = ag::Dropout(ag::Var(x, true), 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(AllClose(out.value(), x));
}

TEST(DropoutTest, PreservesExpectationInTraining) {
  Rng rng(9);
  Tensor x = Tensor::Ones({10000});
  ag::Var out = ag::Dropout(ag::Var(x, true), 0.3f, /*training=*/true, &rng);
  EXPECT_NEAR(MeanAll(out.value()), 1.0f, 0.05f);
}

}  // namespace
}  // namespace tsfm
