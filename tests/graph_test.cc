// Graph IR: capture, pass pipeline, memory planner, interpreter.
//
// The load-bearing property is bit-identity: with graph mode on, every
// no-grad encoder forward must produce the SAME BYTES as the eager forward,
// at every thread count, after every pass. Most tests here memcmp raw float
// buffers; a single ULP of drift fails loudly.

#include <cstring>
#include <filesystem>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "finetune/finetune.h"
#include "graph/executor.h"
#include "graph/ir.h"
#include "graph/passes.h"
#include "graph/planner.h"
#include "io/embed_cache.h"
#include "models/moment.h"
#include "models/vit.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

namespace fs = std::filesystem;

using models::MomentModel;
using models::MomentTestConfig;
using models::VitModel;
using models::VitTestConfig;

constexpr int kThreadCounts[] = {1, 4, 8};

nn::ForwardContext EvalCtx() { return nn::ForwardContext{false, nullptr}; }

uint64_t CounterValue(const char* name) {
  return obs::Registry::Instance().GetCounter(name)->value();
}

void ExpectSameBits(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const Tensor ad = a.Contiguous();
  const Tensor bd = b.Contiguous();
  EXPECT_EQ(std::memcmp(ad.data(), bd.data(),
                        sizeof(float) * static_cast<size_t>(ad.numel())),
            0)
      << what;
}

// Restores the thread count after each test (several tests sweep it).
class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = runtime::NumThreads(); }
  void TearDown() override { runtime::SetNumThreads(saved_threads_); }

  int saved_threads_ = 1;
};

// ---------------------------------------------------------------------------
// Capture

TEST_F(GraphTest, CaptureRecordsEncoderForward) {
  Rng rng(1);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({2, 32, 3}, &rng);
  Result<graph::Graph> captured =
      graph::Capture(x, [&](const ag::Var& in) {
        return model.EncodeChannelsEager(in, EvalCtx());
      });
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  const graph::Graph& g = captured.value();
  EXPECT_GT(g.captured_ops, 0);
  EXPECT_GT(static_cast<int64_t>(g.nodes.size()), g.captured_ops);  // + leaves
  EXPECT_EQ(g.input, 0);
  ASSERT_GE(g.output, 0);
  EXPECT_EQ(g.nodes[static_cast<size_t>(g.output)].shape,
            (Shape{2, MomentTestConfig().d_model}));
}

TEST_F(GraphTest, CaptureRejectsUnsupportedOpWithStatusNotAbort) {
  Rng rng(2);
  Tensor x = Tensor::RandN({4, 6}, &rng);
  // LogSoftmax has no capture hook on purpose — it only appears in losses,
  // which graph mode never replaces. Capture must latch Unimplemented (and
  // must NOT crash), leaving the executor its eager fallback.
  Result<graph::Graph> captured = graph::Capture(x, [](const ag::Var& in) {
    return ag::LogSoftmax(ag::Relu(in));
  });
  ASSERT_FALSE(captured.ok());
  EXPECT_EQ(captured.status().code(), StatusCode::kUnimplemented);
}

// ---------------------------------------------------------------------------
// Bit-identity: graph vs eager

TEST_F(GraphTest, MomentGraphMatchesEagerAtEveryThreadCount) {
  Rng rng(3);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({3, 32, 2}, &rng);
  ag::NoGradGuard guard;
  const auto fwd = [&](const ag::Var& in) {
    return model.EncodeChannelsEager(in, EvalCtx());
  };
  Tensor eager = fwd(ag::Constant(x)).value();

  Result<graph::Graph> captured = graph::Capture(x, fwd);
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  graph::Graph g = std::move(captured).value();
  graph::RunStandardPasses(&g);
  const graph::MemoryPlan plan = graph::PlanMemory(g);
  for (int threads : kThreadCounts) {
    runtime::SetNumThreads(threads);
    Tensor got = graph::Execute(g, plan, x);
    ExpectSameBits(got, eager, "moment graph vs eager");
  }
}

TEST_F(GraphTest, VitGraphMatchesEagerAtEveryThreadCount) {
  Rng rng(4);
  VitModel model(VitTestConfig(), &rng);
  Tensor x = Tensor::RandN({2, 40, 3}, &rng);
  ag::NoGradGuard guard;
  const auto fwd = [&](const ag::Var& in) {
    return model.EncodeChannelsEager(in, EvalCtx());
  };
  Tensor eager = fwd(ag::Constant(x)).value();

  Result<graph::Graph> captured = graph::Capture(x, fwd);
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  graph::Graph g = std::move(captured).value();
  graph::RunStandardPasses(&g);
  const graph::MemoryPlan plan = graph::PlanMemory(g);
  for (int threads : kThreadCounts) {
    runtime::SetNumThreads(threads);
    Tensor got = graph::Execute(g, plan, x);
    ExpectSameBits(got, eager, "vit graph vs eager");
  }
}

// Property test: every pass prefix of the standard pipeline preserves
// bit-identity on randomized shapes. The synthetic forward deliberately
// contains every fusable pattern: bias+GELU, longer elementwise chains,
// transpose-fed matmul, broadcast operands, softmax and reductions.
TEST_F(GraphTest, EveryPassPrefixPreservesBitIdentityOnRandomShapes) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t b = 1 + static_cast<int64_t>(rng.Uniform() * 3);
    const int64_t m = 2 + static_cast<int64_t>(rng.Uniform() * 9);
    const int64_t k = 2 + static_cast<int64_t>(rng.Uniform() * 9);
    const int64_t n = 2 + static_cast<int64_t>(rng.Uniform() * 9);
    Tensor x = Tensor::RandN({b, m, k}, &rng);
    Tensor w1 = Tensor::RandN({k, n}, &rng);
    Tensor bias = Tensor::RandN({n}, &rng);
    Tensor w2 = Tensor::RandN({n, n}, &rng);
    const auto fwd = [&](const ag::Var& in) {
      ag::Var h = ag::MatMul(in, ag::Constant(w1));      // (b, m, n)
      h = ag::Gelu(ag::Add(h, ag::Constant(bias)));      // bias_gelu pattern
      h = ag::MatMul(h, ag::TransposeLast2(ag::Constant(w2)));  // fold pattern
      h = ag::Scale(ag::AddScalar(ag::Tanh(h), 0.5f), 2.0f);    // eltwise chain
      h = ag::Softmax(h);
      h = ag::SumAxis(h, 1, /*keepdim=*/false);
      return ag::Relu(h);
    };
    ag::NoGradGuard guard;
    Tensor eager = fwd(ag::Constant(x)).value();
    Result<graph::Graph> captured = graph::Capture(x, fwd);
    ASSERT_TRUE(captured.ok()) << captured.status().ToString();
    const size_t num_passes = graph::StandardPasses().size();
    for (size_t upto = 0; upto <= num_passes; ++upto) {
      graph::Graph g = captured.value();  // fresh copy per prefix
      graph::RunPassesUpTo(&g, upto);
      const graph::MemoryPlan plan = graph::PlanMemory(g);
      Tensor got = graph::Execute(g, plan, x);
      ASSERT_EQ(got.shape(), eager.shape());
      ASSERT_EQ(std::memcmp(got.Contiguous().data(), eager.data(),
                            sizeof(float) * static_cast<size_t>(got.numel())),
                0)
          << "trial " << trial << " diverged after " << upto << " passes\n"
          << g.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Passes

TEST_F(GraphTest, PassesFuseAndShrinkTheEncoderGraph) {
  Rng rng(6);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({2, 32, 2}, &rng);
  Result<graph::Graph> captured =
      graph::Capture(x, [&](const ag::Var& in) {
        return model.EncodeChannelsEager(in, EvalCtx());
      });
  ASSERT_TRUE(captured.ok());
  graph::Graph g = std::move(captured).value();
  const size_t before = g.nodes.size();
  graph::RunStandardPasses(&g);
  EXPECT_LT(g.nodes.size(), before);
  // At least one multi-stage fused loop must exist (the encoder has GELU
  // after a bias add in every feed-forward block).
  bool fused = false;
  bool transb = false;
  for (const graph::NodeDef& node : g.nodes) {
    fused |= node.stages.size() >= 2;
    transb |= node.kind == graph::OpKind::kMatMulTransB;
  }
  EXPECT_TRUE(fused) << g.ToString();
  EXPECT_TRUE(transb) << g.ToString();
}

// ---------------------------------------------------------------------------
// Planner

TEST_F(GraphTest, PlannerReusesSlabsAndNeverBeatsUnplanned) {
  Rng rng(7);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({2, 32, 2}, &rng);
  Result<graph::Graph> captured =
      graph::Capture(x, [&](const ag::Var& in) {
        return model.EncodeChannelsEager(in, EvalCtx());
      });
  ASSERT_TRUE(captured.ok());
  graph::Graph g = std::move(captured).value();
  graph::RunStandardPasses(&g);
  const graph::MemoryPlan plan = graph::PlanMemory(g);
  EXPECT_GT(plan.planned_peak_bytes, 0);
  EXPECT_LT(plan.planned_peak_bytes, plan.unplanned_bytes);
  // Views and leaves never own a slot; materializing nodes the output
  // depends on always do.
  size_t materializing = 0;
  for (size_t i = 0; i < g.nodes.size(); ++i) {
    const graph::NodeDef& node = g.nodes[i];
    const bool is_view =
        node.kind == graph::OpKind::kTransposeLast2 ||
        node.kind == graph::OpKind::kPermute ||
        node.kind == graph::OpKind::kSlice ||
        (node.kind == graph::OpKind::kReshape && node.alias);
    if (node.kind == graph::OpKind::kInput ||
        node.kind == graph::OpKind::kParam || is_view) {
      EXPECT_EQ(plan.node_slot[i], -1) << "node " << i;
    } else {
      ++materializing;
    }
  }
  // Liveness-based reuse must need fewer slots than one-slab-per-node.
  EXPECT_LT(plan.slot_floats.size(), materializing);
}

// ---------------------------------------------------------------------------
// Executor

TEST_F(GraphTest, ExecutorCapturesOnceThenReplaysBitIdentically) {
  Rng rng(8);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({2, 32, 2}, &rng);
  ag::NoGradGuard guard;
  Tensor eager = model.EncodeChannelsEager(ag::Constant(x), EvalCtx()).value();

  graph::ScopedGraphMode mode(true);
  const uint64_t exec_before = CounterValue("graph.executions");
  // First call captures (and returns the capture forward's own result);
  // second call replays the compiled plan.
  Tensor first = model.EncodeChannels(ag::Constant(x), EvalCtx()).value();
  Tensor second = model.EncodeChannels(ag::Constant(x), EvalCtx()).value();
  ExpectSameBits(first, eager, "capture-call result");
  ExpectSameBits(second, eager, "replay result");
  EXPECT_NE(model.graph_executor().Lookup(x.shape()), nullptr);
  EXPECT_GE(CounterValue("graph.executions"), exec_before + 1);

  for (int threads : kThreadCounts) {
    runtime::SetNumThreads(threads);
    Tensor got = model.EncodeChannels(ag::Constant(x), EvalCtx()).value();
    ExpectSameBits(got, eager, "replay across thread counts");
  }
}

TEST_F(GraphTest, ExecutorFallsBackToEagerOnCaptureFailure) {
  Rng rng(9);
  Tensor x = Tensor::RandN({5, 7}, &rng);
  ag::NoGradGuard guard;
  graph::Executor executor;
  const auto unsupported = [](const ag::Var& in) {
    return ag::LogSoftmax(ag::Relu(in));
  };
  Tensor eager = unsupported(ag::Constant(x)).value();
  const uint64_t failures_before = CounterValue("graph.capture_failures");
  const uint64_t fallbacks_before = CounterValue("graph.eager_fallbacks");
  Tensor first = executor.Run(x, unsupported);   // capture fails, eager result
  Tensor second = executor.Run(x, unsupported);  // cached failure -> fallback
  ExpectSameBits(first, eager, "failed-capture first call");
  ExpectSameBits(second, eager, "cached-failure fallback");
  EXPECT_EQ(CounterValue("graph.capture_failures"), failures_before + 1);
  EXPECT_EQ(CounterValue("graph.eager_fallbacks"), fallbacks_before + 1);
  auto compiled = executor.Lookup(x.shape());
  ASSERT_NE(compiled, nullptr);
  EXPECT_FALSE(compiled->capture_status.ok());
}

TEST_F(GraphTest, GraphModeNeverHijacksGradientForwards) {
  Rng rng(10);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({1, 32, 2}, &rng);
  graph::ScopedGraphMode mode(true);
  // Gradients enabled: EncodeChannels must stay on the eager tape-building
  // path (a graph-mode Tensor result would silently sever backprop).
  ag::Var input(x.Clone(), /*requires_grad=*/true);
  ag::Var emb = model.EncodeChannels(input, EvalCtx());
  ag::Var loss = ag::SumAll(emb);
  loss.Backward();
  EXPECT_GT(input.grad().numel(), 0);
}

// ---------------------------------------------------------------------------
// Embedding cache interop

TEST_F(GraphTest, EmbeddingCacheKeyIsIdenticalAcrossModes) {
  Rng rng(11);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({6, 32, 2}, &rng);

  const std::string dir =
      std::string(::testing::TempDir()) + "graph_embed_cache";
  fs::remove_all(dir);
  fs::create_directories(dir);
  io::SetEmbedCacheDir(dir);

  std::string mode;
  Tensor eager_emb =
      finetune::EmbedDatasetCached(model, x, /*batch_size=*/4, /*seed=*/1,
                                   "graph_test", &mode);
  EXPECT_EQ(mode, "eager");

  graph::ScopedGraphMode graph_mode(true);
  Tensor graph_emb =
      finetune::EmbedDatasetCached(model, x, /*batch_size=*/4, /*seed=*/1,
                                   "graph_test", &mode);
  // The graph run must HIT the entry the eager run stored: the cache key is
  // independent of execution mode because the bytes are identical.
  EXPECT_EQ(mode, "cache");
  ExpectSameBits(graph_emb, eager_emb, "cached embedding");

  io::SetEmbedCacheDir("");
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST_F(GraphTest, EmbedDatasetBitIdenticalWithGraphModeOn) {
  Rng rng(12);
  VitModel model(VitTestConfig(), &rng);
  Tensor x = Tensor::RandN({5, 40, 3}, &rng);
  Tensor eager_emb = finetune::EmbedDataset(model, x, /*batch_size=*/2,
                                            /*seed=*/3);
  graph::ScopedGraphMode mode(true);
  for (int threads : kThreadCounts) {
    runtime::SetNumThreads(threads);
    Tensor graph_emb = finetune::EmbedDataset(model, x, /*batch_size=*/2,
                                              /*seed=*/3);
    ExpectSameBits(graph_emb, eager_emb, "EmbedDataset graph vs eager");
  }
}

}  // namespace
}  // namespace tsfm
