#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace tsfm::runtime {
namespace {

// Restores the ambient thread count after each test so suites are
// order-independent.
class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = NumThreads(); }
  void TearDown() override { SetNumThreads(saved_); }
  int saved_ = 1;
};

TEST_F(RuntimeTest, EmptyRangeIsNoOp) {
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });  // inverted
  EXPECT_EQ(calls, 0);
}

TEST_F(RuntimeTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 5}) {
    SetNumThreads(threads);
    for (int64_t n : {1, 7, 64, 1000}) {
      for (int64_t grain : {1, 3, 64, 4096}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        for (auto& h : hits) h.store(0);
        ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
          ASSERT_LE(0, lo);
          ASSERT_LT(lo, hi);
          ASSERT_LE(hi, n);
          for (int64_t i = lo; i < hi; ++i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
          }
        });
        for (int64_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST_F(RuntimeTest, NonZeroBeginIsRespected) {
  SetNumThreads(3);
  std::atomic<int64_t> sum{0};
  ParallelFor(10, 20, 2, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 10 + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19);
}

TEST_F(RuntimeTest, NestedParallelForRunsInline) {
  SetNumThreads(4);
  std::atomic<int> inner_total{0};
  ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    EXPECT_TRUE(InParallelRegion());
    for (int64_t i = lo; i < hi; ++i) {
      // The nested call must not deadlock on the shared pool; it degrades
      // to a serial loop on the calling worker.
      ParallelFor(0, 10, 1, [&](int64_t ilo, int64_t ihi) {
        inner_total.fetch_add(static_cast<int>(ihi - ilo));
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_total.load(), 8 * 10);
}

TEST_F(RuntimeTest, ExceptionPropagatesToCaller) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](int64_t lo, int64_t) {
                    if (lo == 42) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // Pool must stay usable after an exception.
  std::atomic<int64_t> count{0};
  ParallelFor(0, 50, 1, [&](int64_t lo, int64_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST_F(RuntimeTest, SetNumThreadsIsObserved) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  // Serial mode still runs the body.
  int64_t total = 0;  // no atomics needed with one thread
  ParallelFor(0, 17, 4, [&](int64_t lo, int64_t hi) { total += hi - lo; });
  EXPECT_EQ(total, 17);
}

TEST_F(RuntimeTest, ChunkingIsIndependentOfThreadCount) {
  // The chunk decomposition (number of chunks and their boundaries) is a
  // pure function of (begin, end, grain) — this is the determinism
  // contract's foundation.
  auto boundaries = [](int64_t n, int64_t grain) {
    std::vector<std::pair<int64_t, int64_t>> out;
    std::mutex mu;
    ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      out.emplace_back(lo, hi);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  for (int64_t n : {12, 100, 999}) {
    for (int64_t grain : {1, 7, 256}) {
      SetNumThreads(1);
      auto serial = boundaries(n, grain);
      SetNumThreads(2);
      auto two = boundaries(n, grain);
      SetNumThreads(8);
      auto eight = boundaries(n, grain);
      EXPECT_EQ(serial, two) << "n=" << n << " grain=" << grain;
      EXPECT_EQ(serial, eight) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST_F(RuntimeTest, ParallelReduceFoldsInChunkOrder) {
  SetNumThreads(4);
  // Concatenation is order-sensitive; a pool that folded in completion
  // order would scramble it.
  std::string joined = ParallelReduce<std::string>(
      0, 26, 4, std::string(),
      [](int64_t lo, int64_t hi) {
        std::string s;
        for (int64_t i = lo; i < hi; ++i) {
          s.push_back(static_cast<char>('a' + i));
        }
        return s;
      },
      [](std::string acc, const std::string& p) { return acc + p; });
  EXPECT_EQ(joined, "abcdefghijklmnopqrstuvwxyz");
}

TEST_F(RuntimeTest, StandaloneThreadPoolRunsSubmittedWork) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  // Destructor drains the queue and joins, so after this scope all 100
  // tasks must have run.
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(done.load(), 100);
}

TEST_F(RuntimeTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(DefaultNumThreads(), 1);
}

}  // namespace
}  // namespace tsfm::runtime
