#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "data/uea_like.h"
#include "finetune/classifier.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using finetune::ClassifierConfig;
using finetune::TsfmClassifier;

data::DatasetPair Problem(uint64_t seed = 1) {
  data::UeaDatasetSpec spec{"clf_toy", "ct", 48, 32, 8, 32, 2, 3};
  return data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
}

ClassifierConfig QuickConfig(models::ModelKind kind = models::ModelKind::kVit) {
  ClassifierConfig config;
  config.model_kind = kind;
  config.model_config = kind == models::ModelKind::kVit
                            ? models::VitTestConfig()
                            : models::MomentTestConfig();
  config.pretrain.corpus_size = 48;
  config.pretrain.series_length = 32;
  config.pretrain.epochs = 1;
  config.finetune.head_epochs = 40;
  config.adapter_options.out_channels = 3;
  return config;
}

TEST(ClassifierTest, FitPredictEvaluateFlow) {
  auto clf = TsfmClassifier::Create(QuickConfig());
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  EXPECT_FALSE(clf->fitted());
  auto pair = Problem();
  ASSERT_TRUE(clf->Fit(pair.train, &pair.test).ok());
  EXPECT_TRUE(clf->fitted());
  EXPECT_GT(clf->last_fit_result().test_accuracy, 0.55);

  auto preds = clf->Predict(pair.test.x);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ(preds->size(), static_cast<size_t>(pair.test.size()));
  auto acc = clf->Evaluate(pair.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.55);
}

TEST(ClassifierTest, PredictMatchesFitTimeEvaluation) {
  // Evaluate() after Fit must agree with the accuracy FineTune reported on
  // the same split — i.e. Predict applies identical preprocessing.
  auto clf = TsfmClassifier::Create(QuickConfig());
  ASSERT_TRUE(clf.ok());
  auto pair = Problem(2);
  ASSERT_TRUE(clf->Fit(pair.train, &pair.test).ok());
  auto acc = clf->Evaluate(pair.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_NEAR(*acc, clf->last_fit_result().test_accuracy, 1e-9);
}

TEST(ClassifierTest, WorksWithoutAdapter) {
  ClassifierConfig config = QuickConfig();
  config.adapter = std::nullopt;
  auto clf = TsfmClassifier::Create(config);
  ASSERT_TRUE(clf.ok());
  EXPECT_EQ(clf->adapter(), nullptr);
  auto pair = Problem(3);
  ASSERT_TRUE(clf->Fit(pair.train).ok());
  auto acc = clf->Evaluate(pair.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.5);
}

TEST(ClassifierTest, WorksWithLearnableAdapter) {
  ClassifierConfig config = QuickConfig();
  config.adapter = core::AdapterKind::kLcomb;
  config.finetune.joint_epochs = 5;
  auto clf = TsfmClassifier::Create(config);
  ASSERT_TRUE(clf.ok());
  auto pair = Problem(4);
  ASSERT_TRUE(clf->Fit(pair.train, &pair.test).ok());
  auto acc = clf->Evaluate(pair.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.5);
}

TEST(ClassifierTest, MomentFamilyDefaultsConfig) {
  ClassifierConfig config;
  config.model_kind = models::ModelKind::kMoment;
  config.model_config = models::MomentTestConfig();
  config.pretrain.corpus_size = 32;
  config.pretrain.series_length = 32;
  config.pretrain.epochs = 1;
  config.adapter_options.out_channels = 3;
  config.finetune.head_epochs = 20;
  auto clf = TsfmClassifier::Create(config);
  ASSERT_TRUE(clf.ok());
  auto pair = Problem(5);
  ASSERT_TRUE(clf->Fit(pair.train).ok());
  EXPECT_TRUE(clf->fitted());
}

TEST(ClassifierTest, ErrorsBeforeFitAndOnBadShapes) {
  auto clf = TsfmClassifier::Create(QuickConfig());
  ASSERT_TRUE(clf.ok());
  EXPECT_FALSE(clf->Predict(Tensor(Shape{2, 32, 8})).ok());  // not fitted
  auto pair = Problem(6);
  ASSERT_TRUE(clf->Fit(pair.train).ok());
  EXPECT_FALSE(clf->Predict(Tensor(Shape{2, 32})).ok());  // not (N, T, D)
}

TEST(ClassifierTest, SaveLoadRoundTripPredictsIdentically) {
  auto pair = Problem(12);
  const std::string ckpt = ::testing::TempDir() + "/clf_model.ckpt";
  ClassifierConfig config = QuickConfig();
  config.checkpoint_path = ckpt;  // shared pretrained weights

  auto trained = TsfmClassifier::Create(config);
  ASSERT_TRUE(trained.ok());
  ASSERT_TRUE(trained->Fit(pair.train).ok());
  const std::string prefix = ::testing::TempDir() + "/clf_pipeline";
  ASSERT_TRUE(trained->Save(prefix).ok());
  auto p1 = trained->Predict(pair.test.x);
  ASSERT_TRUE(p1.ok());

  // A fresh classifier (same config, same model checkpoint) restores the
  // fitted pipeline and predicts identically without refitting.
  auto restored = TsfmClassifier::Create(config);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(
      restored->Load(prefix, pair.train.num_classes).ok());
  EXPECT_TRUE(restored->fitted());
  auto p2 = restored->Predict(pair.test.x);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);
  for (const char* suffix : {".adapter", ".head", ".stats"}) {
    std::remove((prefix + suffix).c_str());
  }
  std::remove(ckpt.c_str());
}

TEST(ClassifierTest, SaveRequiresFit) {
  auto clf = TsfmClassifier::Create(QuickConfig());
  ASSERT_TRUE(clf.ok());
  EXPECT_FALSE(clf->Save(::testing::TempDir() + "/nope").ok());
}

TEST(ClassifierTest, LoadRejectsMissingFilesAndBadClasses) {
  auto clf = TsfmClassifier::Create(QuickConfig());
  ASSERT_TRUE(clf.ok());
  EXPECT_FALSE(clf->Load("/nonexistent/prefix", 2).ok());
  EXPECT_FALSE(clf->Load(::testing::TempDir() + "/x", 0).ok());
}

TEST(ClassifierTest, PredictIsDeterministic) {
  auto clf = TsfmClassifier::Create(QuickConfig());
  ASSERT_TRUE(clf.ok());
  auto pair = Problem(7);
  ASSERT_TRUE(clf->Fit(pair.train).ok());
  auto p1 = clf->Predict(pair.test.x);
  auto p2 = clf->Predict(pair.test.x);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST(ClassifierTest, FitAssemblesAndWritesRunReport) {
  ClassifierConfig config = QuickConfig();
  config.finetune.head_epochs = 5;
  config.report_dir = ::testing::TempDir() + "/classifier_report_dir";
  auto clf = TsfmClassifier::Create(config);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  auto pair = Problem(8);
  ASSERT_TRUE(clf->Fit(pair.train, &pair.test).ok());

  const obs::RunReport& report = clf->last_report();
  EXPECT_EQ(report.command, "classify");
  EXPECT_EQ(report.model, "ViT");
  EXPECT_EQ(report.adapter, "PCA");
  EXPECT_EQ(report.dprime, 3);
  ASSERT_EQ(report.epochs.size(), 5u);
  EXPECT_EQ(report.epochs.front().phase, "head");
  EXPECT_GT(report.epochs.front().pool_live_bytes, 0.0);
  EXPECT_GT(report.mem_peak_bytes, 0.0);
  EXPECT_DOUBLE_EQ(report.test_accuracy,
                   clf->last_fit_result().test_accuracy);
  // The paper-scale prediction for this configuration rides along.
  EXPECT_TRUE(report.has_estimate);
  EXPECT_EQ(report.estimate_regime, "embed_once_head_only");
  EXPECT_EQ(report.estimate_channels, 3);
  // No budget configured: the verdict is trivially "fits".
  EXPECT_TRUE(report.budget.fits());

  ASSERT_FALSE(clf->last_report_path().empty());
  std::ifstream is(clf->last_report_path());
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_NE(buf.str().find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(buf.str().find("\"estimate\""), std::string::npos);
  std::remove(clf->last_report_path().c_str());
}

// The epoch-collector callback chains onto (not replaces) a user-installed
// one.
TEST(ClassifierTest, ReportCollectorChainsUserCallback) {
  ClassifierConfig config = QuickConfig();
  config.finetune.head_epochs = 3;
  int user_calls = 0;
  config.finetune.on_epoch = [&](const finetune::EpochProgress&) {
    ++user_calls;
  };
  auto clf = TsfmClassifier::Create(config);
  ASSERT_TRUE(clf.ok());
  auto pair = Problem(9);
  ASSERT_TRUE(clf->Fit(pair.train).ok());
  EXPECT_EQ(user_calls, 3);
  EXPECT_EQ(clf->last_report().epochs.size(), 3u);
}

}  // namespace
}  // namespace tsfm
